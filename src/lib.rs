//! # dpa — Dynamic Pointer Alignment
//!
//! Facade crate re-exporting the whole DPA workspace: a Rust reproduction of
//! *"Dynamic Pointer Alignment: Tiling and Communication Optimizations for
//! Parallel Pointer-based Computations"* (Zhang & Chien, PPoPP 1997).
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use apps;
pub use dpa_compiler as compiler;
pub use dpa_core as runtime;
pub use dpa_serve as serve;
pub use fastmsg;
pub use global_heap;
pub use nbody;
pub use sim_net;
