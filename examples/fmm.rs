//! The FMM force-computation phase — the paper's second evaluation
//! application — on a simulated machine, with accuracy validation against
//! direct O(n²) summation.
//!
//! ```sh
//! cargo run --release --example fmm [-- <particles> <nodes> <terms>]
//! ```

use dpa::apps::driver::run_fmm;
use dpa::apps::fmm_dist::{FmmCost, FmmWorld};
use dpa::nbody::cx::Cx;
use dpa::nbody::distrib::uniform_square;
use dpa::nbody::fmm::FmmParams;
use dpa::nbody::quadtree::QuadTree;
use dpa::runtime::DpaConfig;
use dpa::sim_net::NetConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let particles: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4096);
    let nodes: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let terms: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);

    println!("FMM force phase: {particles} particles, {terms} terms, {nodes} simulated nodes\n");
    let bodies = uniform_square(particles, 1997);
    let zs: Vec<Cx> = bodies.iter().map(|b| Cx::new(b.pos.x, b.pos.y)).collect();
    let qs: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
    let levels = QuadTree::level_for(particles, 16);
    let world = FmmWorld::build(
        zs,
        qs,
        nodes,
        FmmParams { terms, levels },
        FmmCost::default(),
    );

    // Direct-summation oracle (O(n²); fine at example sizes).
    let exact = world.solver.direct();

    println!(
        "{:<42} {:>10} {:>9} {:>14}",
        "configuration", "time", "messages", "max rel error"
    );
    for cfg in [
        DpaConfig::dpa(50),
        DpaConfig::dpa_base(50),
        DpaConfig::caching(),
        DpaConfig::blocking(),
    ] {
        let label = cfg.describe();
        let r = run_fmm(&world, cfg, NetConfig::default());
        let mut worst = 0.0f64;
        for (a, b) in r.fields.iter().zip(&exact) {
            worst = worst.max((*a - *b).abs() / b.abs().max(1e-12));
        }
        let msgs = r.m2l_stats.total_msgs() + r.eval_stats.total_msgs();
        println!(
            "{:<42} {:>9.3}s {:>9} {:>14.2e}",
            label,
            r.makespan_ns as f64 / 1e9,
            msgs,
            worst
        );
    }

    println!(
        "\nquadtree: {levels} levels; M2L reads ~{}B multipole objects remotely.",
        16 * (terms + 1) + 16
    );
}
