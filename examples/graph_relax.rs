//! The remote-reduction extension: one sweep of push-style weighted graph
//! relaxation (PageRank-shaped), where every edge does a remote read of
//! its target's record and a remote reduction into its accumulator.
//!
//! ```sh
//! cargo run --release --example graph_relax [-- <vertices> <nodes> <degree>]
//! ```

use dpa::apps::relax::{RelaxApp, RelaxWorld};
use dpa::runtime::{run_phase, DpaConfig};
use dpa::sim_net::NetConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4096);
    let nodes: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let degree: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    let world = RelaxWorld::build(n, nodes, degree, 0.5, 2026);
    let expected = world.expected();
    println!(
        "graph relaxation: {n} vertices x {degree} out-edges on {nodes} nodes ({} edges, 50% remote)\n",
        world.total_edges()
    );
    println!(
        "{:<42} {:>10} {:>12} {:>12}",
        "configuration", "time", "update msgs", "max rel err"
    );

    for cfg in [
        DpaConfig::dpa(32),
        DpaConfig::dpa_base(32),
        DpaConfig::caching(),
        DpaConfig::blocking(),
    ] {
        let label = cfg.describe();
        let mut next = vec![0.0f64; n];
        let report = run_phase(
            nodes,
            NetConfig::default(),
            cfg,
            |i| RelaxApp::new(world.clone(), i),
            |i, app: &RelaxApp| {
                for v in world.range(i) {
                    next[v] = app.next[v];
                }
            },
        );
        let mut worst = 0.0f64;
        for (a, b) in next.iter().zip(&expected) {
            worst = worst.max((a - b).abs() / b.abs().max(1e-12));
        }
        println!(
            "{:<42} {:>10} {:>12} {:>12.2e}",
            label,
            format!("{}", report.makespan()),
            report.stats.user_total("update_msgs"),
            worst
        );
    }

    println!(
        "\nDPA batches reductions per destination; the baselines send one \
         message per remote edge."
    );
}
