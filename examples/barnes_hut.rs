//! The Barnes-Hut force-computation phase — the paper's first evaluation
//! application — on a simulated 16-node T3D-like machine.
//!
//! Builds a Plummer sphere, distributes bodies (Morton/costzones-style)
//! and octree cells (SPLASH-like builder placement), then runs the force
//! phase under DPA and the baselines, reporting timing breakdowns and
//! validating forces against the sequential tree walk.
//!
//! ```sh
//! cargo run --release --example barnes_hut [-- <bodies> <nodes>]
//! ```

use dpa::apps::bh_dist::{BhCost, BhWorld};
use dpa::apps::driver::run_bh;
use dpa::nbody::bh::{all_accels, BhParams};
use dpa::nbody::distrib::plummer;
use dpa::runtime::DpaConfig;
use dpa::sim_net::NetConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let bodies: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4096);
    let nodes: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);

    println!("Barnes-Hut force phase: {bodies} Plummer bodies, {nodes} simulated nodes\n");
    let world = BhWorld::build(
        plummer(bodies, 1997),
        nodes,
        1,
        BhParams::default(),
        BhCost::default(),
    );

    // Sequential oracle for validation.
    let oracle = all_accels(&world.tree, &world.bodies, world.params);

    println!(
        "{:<42} {:>10} {:>7} {:>7} {:>7} {:>9}",
        "configuration", "time", "local%", "ovh%", "idle%", "messages"
    );
    for cfg in [
        DpaConfig::dpa(50),
        DpaConfig::dpa_pipeline(50),
        DpaConfig::dpa_base(50),
        DpaConfig::caching(),
        DpaConfig::blocking(),
    ] {
        let label = cfg.describe();
        let r = run_bh(&world, cfg, NetConfig::default());
        let (l, o, i) = r.stats.mean_breakdown();
        let t = (l + o + i).max(1.0);
        // Validate physics.
        let mut worst = 0.0f64;
        for (k, w) in oracle.iter().enumerate() {
            let err = (r.accel[k] - w.acc).norm() / w.acc.norm().max(1e-12);
            worst = worst.max(err);
        }
        assert!(worst < 1e-9, "{label}: force mismatch {worst}");
        println!(
            "{:<42} {:>10.3}s {:>6.1}% {:>6.1}% {:>6.1}% {:>9}",
            label,
            r.makespan_ns as f64 / 1e9,
            100.0 * l / t,
            100.0 * o / t,
            100.0 * i / t,
            r.stats.total_msgs()
        );
    }

    println!(
        "\n{} interactions computed; all configurations match the sequential walk.",
        world.bodies.len()
    );
}
