//! Quickstart: run a pointer-chasing workload under Dynamic Pointer
//! Alignment and both baselines on a simulated 8-node machine.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dpa::runtime::synth::{SynthApp, SynthParams, SynthWorld};
use dpa::runtime::{run_phase, DpaConfig};
use dpa::sim_net::NetConfig;

fn main() {
    // A world of linked lists scattered across 8 nodes: 40% of records
    // live on a remote node, and half the lists share tails (data reuse).
    let world = SynthWorld::build(SynthParams {
        nodes: 8,
        lists_per_node: 64,
        list_len: 48,
        remote_fraction: 0.4,
        shared_fraction: 0.5,
        record_bytes: 32,
        work_ns: 900,
        seed: 42,
    });
    let expected: u64 = (0..8).map(|n| world.expected_sum(n)).sum();

    println!("workload: {} records, 8 nodes, expected checksum {expected:#x}\n", world.total_records());
    println!(
        "{:<42} {:>12} {:>9} {:>8}",
        "configuration", "time", "messages", "checksum"
    );

    for cfg in [
        DpaConfig::dpa(16),       // full DPA: tiling + pipelining + aggregation
        DpaConfig::dpa_base(16),  // tiling only (exposed round trips)
        DpaConfig::caching(),     // software-cache baseline
        DpaConfig::blocking(),    // naive blocking baseline
    ] {
        let label = cfg.describe();
        let mut sum = 0u64;
        let report = run_phase(
            8,
            NetConfig::default(),
            cfg,
            |i| SynthApp::new(world.clone(), i, 900),
            |_, app| sum = sum.wrapping_add(app.sum),
        );
        assert_eq!(sum, expected, "all variants compute the same answer");
        println!(
            "{:<42} {:>12} {:>9} {:>8}",
            label,
            format!("{}", report.makespan()),
            report.stats.total_msgs(),
            "ok"
        );
    }

    println!("\nSame answer everywhere; only scheduling and communication differ.");
}
