//! A full multi-step Barnes-Hut *simulation* (the paper times 4 steps):
//! leapfrog integration on the host with the distributed force phase
//! executed per step on the simulated machine, plus energy-conservation
//! validation against direct summation.
//!
//! ```sh
//! cargo run --release --example bh_simulation [-- <bodies> <nodes> <steps>]
//! ```

use dpa::apps::bh_dist::{BhCost, BhWorld};
use dpa::apps::driver::run_bh;
use dpa::nbody::bh::BhParams;
use dpa::nbody::distrib::plummer;
use dpa::nbody::integrate::{kinetic_energy, potential_energy};
use dpa::nbody::vec3::Vec3;
use dpa::runtime::DpaConfig;
use dpa::sim_net::NetConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2048);
    let nodes: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let dt = 0.005;
    let params = BhParams::default();

    let mut bodies = plummer(n, 1997);
    let e0 = kinetic_energy(&bodies) + potential_energy(&bodies, params.eps);
    println!(
        "Barnes-Hut simulation: {n} bodies, {nodes} nodes, {steps} steps (dt = {dt})"
    );
    println!("initial total energy: {e0:.6}\n");

    let mut sim_total_ns = 0u64;
    for step in 0..steps {
        // Kick-drift-kick, with the *kick* forces computed by the
        // distributed DPA force phase on the simulated machine. The
        // tree is rebuilt every step (bodies moved), as in SPLASH-2.
        let world = BhWorld::build(bodies.clone(), nodes, 1, params, BhCost::default());
        let run = run_bh(&world, DpaConfig::dpa(50), NetConfig::default());
        sim_total_ns += run.makespan_ns;
        // World bodies are Morton-sorted; integrate in that order.
        bodies = world.bodies.clone();
        for (b, a) in bodies.iter_mut().zip(&run.accel) {
            b.vel += *a * (dt * 0.5);
        }
        for b in bodies.iter_mut() {
            b.pos += b.vel * dt;
        }
        let world2 = BhWorld::build(bodies.clone(), nodes, 1, params, BhCost::default());
        let run2 = run_bh(&world2, DpaConfig::dpa(50), NetConfig::default());
        sim_total_ns += run2.makespan_ns;
        bodies = world2.bodies.clone();
        for (b, a) in bodies.iter_mut().zip(&run2.accel) {
            b.vel += *a * (dt * 0.5);
        }
        let ke = kinetic_energy(&bodies);
        println!(
            "step {step}: force phases {:>8.3} s simulated, kinetic energy {ke:.6}",
            (run.makespan_ns + run2.makespan_ns) as f64 / 1e9
        );
    }

    let e1 = kinetic_energy(&bodies) + potential_energy(&bodies, params.eps);
    let drift = (e1 - e0).abs() / e0.abs();
    let com: Vec3 = bodies
        .iter()
        .fold(Vec3::ZERO, |acc, b| acc + b.pos * b.mass);
    println!(
        "\nfinal energy {e1:.6} (relative drift {drift:.2e}); center of mass {:.4?}",
        com
    );
    println!(
        "total simulated force-phase time: {:.3} s across {steps} steps",
        sim_total_ns as f64 / 1e9
    );
    assert!(drift < 0.05, "energy drift too large: {drift}");
}
