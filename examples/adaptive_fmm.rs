//! The **adaptive** FMM (the algorithm SPLASH-2's FMM actually is) on a
//! clustered input, distributed over a simulated machine — compared
//! against the uniform-tree FMM on the same particles.
//!
//! ```sh
//! cargo run --release --example adaptive_fmm [-- <particles> <nodes> <clusters>]
//! ```

use dpa::apps::afmm_dist::AfmmWorld;
use dpa::apps::driver::{run_afmm, run_fmm};
use dpa::apps::fmm_dist::{FmmCost, FmmWorld};
use dpa::nbody::afmm::AfmmParams;
use dpa::nbody::cx::Cx;
use dpa::nbody::distrib::clustered_square;
use dpa::nbody::fmm::FmmParams;
use dpa::nbody::quadtree::QuadTree;
use dpa::runtime::DpaConfig;
use dpa::sim_net::NetConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4096);
    let nodes: u16 = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let clusters: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let terms = 16usize;

    println!(
        "adaptive vs uniform FMM: {n} particles in {clusters} clusters, {nodes} nodes, {terms} terms\n"
    );
    let bodies = clustered_square(n, clusters, 2027);
    let zs: Vec<Cx> = bodies.iter().map(|b| Cx::new(b.pos.x, b.pos.y)).collect();
    let qs: Vec<f64> = bodies.iter().map(|b| b.mass).collect();

    // Adaptive: variable-depth tree, U/V/W/X lists.
    let aw = AfmmWorld::build(
        zs.clone(),
        qs.clone(),
        nodes,
        AfmmParams {
            terms,
            leaf_cap: 16,
            max_level: 12,
        },
        FmmCost::default(),
    );
    let (tn, leaves, depth, occ) = aw.solver.tree_stats();
    println!(
        "adaptive tree: {tn} boxes, {leaves} leaves, depth {depth}, max occupancy {occ}, {} grains",
        aw.grains.len()
    );
    let ar = run_afmm(&aw, DpaConfig::dpa(50), NetConfig::default());
    let exact = aw.solver.direct();
    let mut worst = 0.0f64;
    for (a, b) in ar.fields.iter().zip(&exact) {
        worst = worst.max((*a - *b).abs() / b.abs().max(1e-12));
    }
    println!(
        "adaptive DPA:  {:>8.3} s simulated, max rel error vs direct {worst:.2e}",
        ar.makespan_ns as f64 / 1e9
    );

    // Uniform tree on the same input (count-chosen depth).
    let levels = QuadTree::level_for(n, 16);
    let uw = FmmWorld::build(zs, qs, nodes, FmmParams { terms, levels }, FmmCost::default());
    let ur = run_fmm(&uw, DpaConfig::dpa(50), NetConfig::default());
    println!(
        "uniform DPA:   {:>8.3} s simulated (level-{levels} tree, {}x slower on this input)",
        ur.makespan_ns as f64 / 1e9,
        ur.makespan_ns / ar.makespan_ns.max(1)
    );
}
