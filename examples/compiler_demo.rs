//! The compiler half of DPA: partition a recursive Mini-ICC tree walk into
//! pointer-labeled non-blocking threads (the paper's Figure 7 shape), dump
//! the thread structure, and execute it on the DPA runtime over a
//! simulated 4-node machine.
//!
//! ```sh
//! cargo run --release --example compiler_demo
//! ```

use dpa::compiler::{compile_source, IccApp, IccWorldBuilder, Value};
use dpa::global_heap::GPtr;
use dpa::runtime::{run_phase, DpaConfig};
use dpa::sim_net::{NetConfig, Rng};

const SOURCE: &str = "
// A binary tree walk with block-level concurrency: the compiler splits
// the body at the touch of `t`, hoists l/r/v from the single arrival,
// promotes the recursive calls into child threads, and joins them.
struct T { l: T*; r: T*; v: int; }
fn sum(t: T*) -> int {
  if (t == null) { return 0; }
  let a: int = 0;
  let b: int = 0;
  conc {
    a = sum(t->l);
    b = sum(t->r);
  }
  return a + b + t->v;
}";

fn main() {
    println!("-- Mini-ICC source --{SOURCE}\n");
    let prog = compile_source(SOURCE).expect("compiles");

    println!("-- static thread statistics --");
    for s in &prog.stats {
        println!(
            "  fn {}: {} templates, {} demand sites, {} fork sites, {} call sites",
            s.name, s.templates, s.demand_sites, s.fork_sites, s.call_sites
        );
    }

    println!("\n-- partitioned thread structure --");
    print!("{}", prog.dump());

    // Build a distributed tree: nodes scattered over 4 owners.
    let nodes = 4u16;
    let mut b = IccWorldBuilder::new(prog, "sum", nodes);
    let mut rng = Rng::new(7);
    let mut expected = 0i64;
    fn build(
        b: &mut IccWorldBuilder,
        rng: &mut Rng,
        nodes: u16,
        depth: u32,
        expected: &mut i64,
    ) -> Value {
        if depth == 0 {
            return Value::Ptr(GPtr::NULL);
        }
        let l = build(b, rng, nodes, depth - 1, expected);
        let r = build(b, rng, nodes, depth - 1, expected);
        let v = rng.below(100) as i64;
        *expected += v;
        let owner = rng.below(nodes as u64) as u16;
        Value::Ptr(b.alloc(owner, "T", vec![l, r, Value::Int(v)]))
    }
    for node in 0..nodes {
        for _ in 0..4 {
            let root = build(&mut b, &mut rng, nodes, 7, &mut expected);
            b.add_root(node, vec![root]);
        }
    }
    let world = b.build();
    println!(
        "\n-- executing over {} tree nodes on {nodes} simulated nodes --",
        world.total_objects()
    );

    for cfg in [DpaConfig::dpa(8), DpaConfig::blocking()] {
        let label = cfg.describe();
        let mut total = 0i64;
        let report = run_phase(
            nodes,
            NetConfig::default(),
            cfg,
            |i| IccApp::new(world.clone(), i),
            |_, app: &IccApp| total += app.int_sum,
        );
        assert_eq!(total, expected);
        println!(
            "  {:<40} {:>12}   (sum = {total}, correct)",
            label,
            format!("{}", report.makespan())
        );
    }
}
