//! Run-service scheduler test battery (`dpa::serve`): property tests over
//! the pure scheduler model — replay identity, conservation, bounded
//! queues, and the no-starvation aging guarantee — in the same style as
//! the `stripctl` battery: the scheduler is a pure function of
//! `(config, arrival stream)`, so every failure here is replayable
//! bit-for-bit (and pinnable as a `tests/dst_corpus/service-*.case`).

use dpa::serve::{
    check_conservation, check_depth_bound, check_no_starvation, gen_arrivals, run_model,
    LoadProfile, LogEntry, Priority, SchedConfig, SCENARIOS,
};
use proptest::prelude::*;

/// Draw a scheduler config from small primitive knobs.
fn cfg_from(
    shards: usize,
    queue_cap: usize,
    iw: u32,
    bw: u32,
    aging_us: u64,
    batch_cap: usize,
    degrade_depth: usize,
) -> SchedConfig {
    SchedConfig {
        shards,
        queue_cap,
        interactive_weight: iw,
        batch_weight: bw,
        aging_ns: aging_us * 1_000,
        batch_shard_cap: batch_cap,
        degrade_depth,
        ..SchedConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replay identity: the same `(config, arrival stream)` produces a
    /// bit-identical decision log — the discipline that makes scheduler
    /// bugs corpus-replayable.
    #[test]
    fn replay_identity(
        seed in any::<u64>(),
        shards in 1usize..6,
        queue_cap in 1usize..32,
        iw in 1u32..8,
        bw in 1u32..8,
        jobs in 1usize..300,
        gap_us in 0u64..800,
        fault_pm in 0u64..300,
    ) {
        let cfg = cfg_from(shards, queue_cap, iw, bw, 2_000, shards, queue_cap / 2);
        let profile = LoadProfile {
            jobs,
            mean_gap_ns: gap_us * 1_000,
            fault_ratio: fault_pm as f64 / 1_000.0,
            ..LoadProfile::default()
        };
        let arrivals = gen_arrivals(&profile, seed);
        let a = run_model(&cfg, &arrivals);
        let b = run_model(&cfg, &arrivals);
        prop_assert_eq!(a, b);
    }

    /// Conservation: every submission is accounted — accepted jobs are
    /// placed and finished exactly once, shed jobs are logged with a
    /// structured reason, and nothing is leaked in a queue or on a shard.
    #[test]
    fn conservation_under_arbitrary_load(
        seed in any::<u64>(),
        shards in 1usize..6,
        queue_cap in 1usize..24,
        jobs in 1usize..400,
        gap_us in 0u64..500,
        interactive_pm in 0u64..1001,
        fault_pm in 0u64..400,
    ) {
        let cfg = cfg_from(shards, queue_cap, 3, 1, 2_000, shards, queue_cap / 2);
        let profile = LoadProfile {
            jobs,
            mean_gap_ns: gap_us * 1_000,
            interactive_ratio: interactive_pm as f64 / 1_000.0,
            fault_ratio: fault_pm as f64 / 1_000.0,
            ..LoadProfile::default()
        };
        let arrivals = gen_arrivals(&profile, seed);
        let run = run_model(&cfg, &arrivals);
        let violations = check_conservation(&run.log);
        prop_assert!(violations.is_empty(), "{:?}", violations);
        prop_assert_eq!(run.accepted + run.rejected, arrivals.len());
        prop_assert_eq!(run.finished, run.accepted);
        // Bounded queues: nothing was ever admitted past the cap, and the
        // observed high-water depth respects it too.
        let depth = check_depth_bound(&run.log, &cfg);
        prop_assert!(depth.is_empty(), "{:?}", depth);
        prop_assert!(run.max_depth[0] <= cfg.queue_cap && run.max_depth[1] <= cfg.queue_cap);
    }

    /// No-starvation: under sustained interactive pressure the batch lane
    /// still drains — the aging rule wins every pick where the batch head
    /// is over-age and batch has concurrency headroom, and every batch
    /// job's wait is bounded by its queue position times one aging+service
    /// round.
    #[test]
    fn batch_never_starves_under_interactive_floods(
        seed in any::<u64>(),
        shards in 1usize..5,
        iw in 8u32..64,
        aging_us in 100u64..5_000,
        jobs in 50usize..400,
        degrade_depth in 0usize..12,
    ) {
        let cfg = cfg_from(shards, 64, iw, 1, aging_us, shards, degrade_depth);
        let profile = LoadProfile {
            jobs,
            interactive_ratio: 0.93,
            // Arrivals outpace service: the interactive queue stays hot.
            mean_gap_ns: 150_000,
            service_min_ns: 200_000,
            service_max_ns: 1_500_000,
            ..LoadProfile::default()
        };
        let arrivals = gen_arrivals(&profile, seed);
        let run = run_model(&cfg, &arrivals);
        let violations = check_no_starvation(&run.log, &cfg);
        prop_assert!(violations.is_empty(), "{:?}", violations);

        // Aging bound: a batch job admitted at depth d waits at most
        // (d + 2) rounds of (aging + 2 * max service). Generous, but it
        // is finite and load-independent — the difference between "slow"
        // and "starved".
        let round = cfg.aging_ns + 2 * profile.service_max_ns;
        let mut admit_depth = std::collections::HashMap::new();
        for e in &run.log {
            match e {
                LogEntry::Admit { job, priority: Priority::Batch, depth, .. } => {
                    admit_depth.insert(*job, *depth);
                }
                LogEntry::Place { job, priority: Priority::Batch, wait_ns, .. } => {
                    let d = admit_depth[job] as u64;
                    prop_assert!(
                        *wait_ns <= (d + 2) * round,
                        "batch job {:?} admitted at depth {} waited {}ns > bound {}ns",
                        job, d, wait_ns, (d + 2) * round
                    );
                }
                _ => {}
            }
        }
    }

    /// Every named corpus scenario replays clean for arbitrary seeds —
    /// the committed `service-*.case` files stay meaningful regressions,
    /// not flukes of one seed.
    #[test]
    fn scenarios_replay_clean(seed in any::<u64>()) {
        for name in SCENARIOS {
            let violations = dpa::serve::replay_scenario(name, seed).expect("known scenario");
            prop_assert!(violations.is_empty(), "{}: {:?}", name, violations);
        }
    }
}
