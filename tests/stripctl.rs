//! Strip-schedule test battery for the adaptive k-bound controller
//! (`dpa_core::stripctl`): model-style property tests over arbitrary
//! observation streams, plus the end-to-end checksum-invariance oracle —
//! adaptive strips must change schedules, never results.

use dpa::apps::bh_dist::{BhApp, BhCost, BhWorld};
use dpa::apps::driver::{run_bh, run_fmm};
use dpa::apps::fmm_dist::{FmmCost, FmmWorld};
use dpa::nbody::bh::BhParams;
use dpa::nbody::cx::Cx;
use dpa::nbody::distrib::{plummer, uniform_square};
use dpa::nbody::fmm::FmmParams;
use dpa::runtime::stripctl::{
    AdaptiveStrip, StripController, StripMode, StripObs, DEAD_BAND_MILLI, DITHER_SPAN_MILLI,
};
use dpa::runtime::{check_completed, run_phase_migrating, DpaConfig, DstOptions};
use dpa::sim_net::{NetConfig, Rng};
use proptest::prelude::*;

/// Draw a pseudo-random observation stream of `n` windows from `seed`.
/// Covers empty windows, pure-idle windows, and pressure spikes.
fn obs_stream(seed: u64, n: usize) -> Vec<StripObs> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| StripObs {
            local_ns: rng.below(2_000_000),
            overhead_ns: rng.below(500_000),
            idle_ns: rng.below(2_000_000),
            suspended_threads: if rng.chance(0.1) {
                rng.below(1 << 20)
            } else {
                rng.below(256)
            },
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under arbitrary stat streams the schedule never escapes `[min,
    /// max]`, moves are multiplicative (consecutive strips differ by at
    /// most a factor of two), and the log grows by exactly one entry per
    /// retune.
    #[test]
    fn schedule_within_bounds_under_arbitrary_streams(
        seed in any::<u64>(),
        min in 1usize..64,
        span_log2 in 0u32..7,
        target in 0u32..1000,
        node in 0u16..64,
        len in 1usize..200,
    ) {
        let params = AdaptiveStrip {
            min,
            max: min << span_log2,
            target_idle_milli: target,
        };
        let mut c = StripController::new(params, node, seed);
        for obs in obs_stream(seed ^ 0x0B5, len) {
            c.retune(&obs);
        }
        prop_assert_eq!(c.schedule().len(), len + 1);
        prop_assert_eq!(c.retunes(), len as u64);
        for w in c.schedule().windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            prop_assert!(a >= params.min && a <= params.max, "strip {a} out of bounds");
            prop_assert!(b >= params.min && b <= params.max, "strip {b} out of bounds");
            let lo = a.min(b);
            let hi = a.max(b);
            // Shrink floors (odd a -> a/2), so the factor is 2 +/- rounding.
            prop_assert!(
                hi <= 2 * lo + 1,
                "non-multiplicative move {a} -> {b} (grow x2 / shrink /2 only)"
            );
        }
    }

    /// Same `(params, node, seed)` and the same stat stream produce a
    /// bit-identical strip schedule — the determinism the DST replays
    /// rely on. A different node id may dither differently but stays
    /// within bounds (checked above), and a genuinely different stream is
    /// allowed to diverge.
    #[test]
    fn same_seed_and_stream_replay_identically(
        seed in any::<u64>(),
        node in 0u16..64,
        len in 1usize..200,
    ) {
        let run = || {
            let mut c = StripController::new(AdaptiveStrip::default(), node, seed);
            for obs in obs_stream(seed, len) {
                c.retune(&obs);
            }
            (c.schedule().to_vec(), c.strip(), c.reversals_damped())
        };
        prop_assert_eq!(run(), run());
    }

    /// A stationary workload converges within 8 boundaries and then holds:
    /// multiplicative moves cross from the geometric-mean start to either
    /// bound in `log2(max/min) / 2` steps, so 8 covers any ratio up to
    /// 2^16.
    #[test]
    fn stationary_workloads_converge_within_8_strips(
        seed in any::<u64>(),
        min in 1usize..64,
        span_log2 in 0u32..9,
        node in 0u16..64,
        idle in 0u32..1000,
        threads in 0u64..512,
    ) {
        let params = AdaptiveStrip {
            min,
            max: min << span_log2,
            ..AdaptiveStrip::default()
        };
        let idle_ns = idle as u64 * 1_000;
        let obs = StripObs {
            local_ns: 1_000_000 - idle_ns,
            overhead_ns: 0,
            idle_ns,
            suspended_threads: threads,
        };
        let mut c = StripController::new(params, node, seed);
        for _ in 0..8 {
            c.retune(&obs);
        }
        let settled = c.strip();
        for i in 0..16 {
            prop_assert_eq!(
                c.retune(&obs),
                settled,
                "stationary stream moved the strip again at boundary 8+{}",
                i
            );
        }
    }

    /// Monotone response to injected idle: with the pressure signal fixed,
    /// a starving node never picks a smaller strip than a busier one.
    #[test]
    fn response_is_monotone_in_injected_idle(
        seed in any::<u64>(),
        node in 0u16..64,
        idle_a in 0u32..1000,
        idle_b in 0u32..1000,
        threads in 0u64..256,
    ) {
        let (lo, hi) = (idle_a.min(idle_b), idle_a.max(idle_b));
        let strip_after = |idle: u32| {
            let idle_ns = idle as u64 * 1_000;
            let mut c = StripController::new(AdaptiveStrip::default(), node, seed);
            c.retune(&StripObs {
                local_ns: 1_000_000 - idle_ns,
                overhead_ns: 0,
                idle_ns,
                suspended_threads: threads,
            })
        };
        prop_assert!(
            strip_after(lo) <= strip_after(hi),
            "more idle produced a smaller strip ({} vs {})",
            lo,
            hi
        );
    }

    /// The per-node dither stays inside its advertised span: whatever the
    /// seed, an idle reading outside `target ± (band + span)` always
    /// decides the same direction on every node, so nodes disagree only
    /// inside the dither margin.
    #[test]
    fn dither_only_shifts_the_dead_band(seed in any::<u64>(), node in 0u16..256) {
        let params = AdaptiveStrip::default();
        let margin = (DEAD_BAND_MILLI + DITHER_SPAN_MILLI) as u64;
        let surely_grow = params.target_idle_milli as u64 + margin + 1;
        let surely_shrink = (params.target_idle_milli as u64).saturating_sub(margin + 1);
        let one = |idle_milli: u64| {
            let mut c = StripController::new(params, node, seed);
            let start = c.strip();
            let idle_ns = idle_milli * 1_000;
            let next = c.retune(&StripObs {
                local_ns: 1_000_000 - idle_ns,
                overhead_ns: 0,
                idle_ns,
                suspended_threads: 0,
            });
            (start, next)
        };
        let (start, grown) = one(surely_grow);
        prop_assert_eq!(grown, (start * 2).min(params.max));
        let (start, shrunk) = one(surely_shrink);
        prop_assert_eq!(shrunk, (start / 2).max(params.min));
    }
}

/// Adaptive strips must be semantics-invisible: the multi-phase Barnes-Hut
/// interaction checksums are bit-identical across fixed strips {1, 50,
/// 300}, the adaptive controller, and the adaptive controller with
/// locality-driven object migration on — and the invariant checker (which
/// now audits the strip schedule against its bounds) stays clean.
#[test]
fn adaptive_strip_preserves_bh_checksums() {
    let phases = 3usize;
    let nodes = 4u16;
    let world = BhWorld::build(plummer(160, 71), nodes, 8, BhParams::default(), BhCost::default());
    let adaptive = StripMode::Adaptive(AdaptiveStrip {
        min: 2,
        max: 64,
        ..AdaptiveStrip::default()
    });
    let configs: Vec<(String, DpaConfig)> = vec![
        ("strip=1".into(), DpaConfig::dpa(1)),
        ("strip=50".into(), DpaConfig::dpa(50)),
        ("strip=300".into(), DpaConfig::dpa(300)),
        (
            "adaptive".into(),
            DpaConfig {
                strip_mode: adaptive,
                ..DpaConfig::dpa(1)
            },
        ),
        (
            "adaptive+mig".into(),
            DpaConfig {
                strip_mode: adaptive,
                ..DpaConfig::dpa_migrating(1)
            },
        ),
    ];
    let mut baseline: Option<Vec<u64>> = None;
    for (label, cfg) in configs {
        let mut hashes = vec![0u64; phases * nodes as usize];
        let (reports, snap_sets, _) = run_phase_migrating(
            nodes,
            NetConfig::default(),
            cfg,
            &DstOptions::default(),
            phases,
            |_, i| BhApp::new(world.clone(), i),
            |ph, i, app: &BhApp| hashes[ph * nodes as usize + i as usize] = app.interaction_hash,
        );
        assert!(reports.iter().all(|r| r.completed), "{label}: stalled");
        for snaps in &snap_sets {
            let v = check_completed(snaps, false);
            assert!(v.is_empty(), "{label}: {}", v[0]);
        }
        if label.starts_with("adaptive") {
            // The controller actually ran: some node crossed a boundary.
            let retuned = snap_sets
                .iter()
                .flatten()
                .any(|s| s.strip_schedule.len() > 1);
            assert!(retuned, "{label}: no strip boundary was ever crossed");
        }
        match &baseline {
            None => baseline = Some(hashes),
            Some(b) => assert_eq!(&hashes, b, "{label}: checksums diverged"),
        }
    }
}

/// Same oracle for FMM (both sub-phases, via the app driver): fixed strips
/// {1, 50, 300}, adaptive, adaptive+migration, and migrating-fixed all
/// produce the same combined interaction checksum.
#[test]
fn adaptive_strip_preserves_fmm_checksums() {
    let particles = 256usize;
    let bodies = uniform_square(particles, 1997);
    let zs: Vec<Cx> = bodies.iter().map(|b| Cx::new(b.pos.x, b.pos.y)).collect();
    let qs: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
    let levels = dpa::nbody::quadtree::QuadTree::level_for(particles, 16);
    let world = FmmWorld::build(zs, qs, 4, FmmParams { terms: 8, levels }, FmmCost::default());
    let adaptive = StripMode::Adaptive(AdaptiveStrip {
        min: 2,
        max: 64,
        ..AdaptiveStrip::default()
    });
    let configs: Vec<(String, DpaConfig)> = vec![
        ("strip=1".into(), DpaConfig::dpa(1)),
        ("strip=50".into(), DpaConfig::dpa(50)),
        ("strip=300".into(), DpaConfig::dpa(300)),
        (
            "adaptive".into(),
            DpaConfig {
                strip_mode: adaptive,
                ..DpaConfig::dpa(1)
            },
        ),
        (
            "adaptive+mig".into(),
            DpaConfig {
                strip_mode: adaptive,
                ..DpaConfig::dpa_migrating(1)
            },
        ),
        ("mig strip=50".into(), DpaConfig::dpa_migrating(50)),
    ];
    let mut baseline: Option<u64> = None;
    for (label, cfg) in configs {
        let r = run_fmm(&world, cfg, NetConfig::default());
        match baseline {
            None => baseline = Some(r.interaction_hash),
            Some(b) => assert_eq!(r.interaction_hash, b, "{label}: checksum diverged"),
        }
    }
    // And BH through the same single-phase driver, for the BhRun plumbing.
    let world = BhWorld::build(plummer(160, 71), 4, 8, BhParams::default(), BhCost::default());
    let a = run_bh(&world, DpaConfig::dpa(50), NetConfig::default()).interaction_hash;
    let b = run_bh(
        &world,
        DpaConfig {
            strip_mode: adaptive,
            ..DpaConfig::dpa(1)
        },
        NetConfig::default(),
    )
    .interaction_hash;
    assert_eq!(a, b, "single-phase BH adaptive checksum diverged");
    assert_ne!(a, 0, "hash plumbing returned the empty checksum");
}
