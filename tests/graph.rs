//! Checksum-invariance battery for the skew-adversarial graph workload:
//! the semi-naive transitive-closure checksums must be bit-identical
//! across every config lane — fixed and adaptive strips, migration on and
//! off, differential re-alignment on and off, read-mostly replication on
//! and off — because none of those knobs
//! is allowed to change *what* is computed, only when and where. Mirrors
//! `tests/stripctl.rs`; the `DPA_SIM_QUEUE` / `DPA_SIM_THREADS` lanes come
//! from the CI matrix running this whole file under each engine.

use dpa::apps::graph_dist::{GraphApp, GraphParams, GraphWorld};
use dpa::runtime::{
    check_completed, run_phase_differential, run_phase_migrating, AdaptiveStrip, DpaConfig,
    DstOptions, StripMode,
};
use dpa::sim_net::NetConfig;

const PHASES: usize = 3;
const NODES: u16 = 4;

/// One lane: run the closure over `PHASES` timesteps under `cfg`, return
/// per-(phase, node) `(checksum, reached)` pairs, and hold the invariant
/// oracles clean. `differential` picks the driver.
fn run_lane(
    world: &std::sync::Arc<GraphWorld>,
    label: &str,
    cfg: DpaConfig,
    differential: bool,
) -> (Vec<(u64, u64)>, Vec<Vec<dpa::runtime::NodeSnapshot>>) {
    let mut sums = vec![(0u64, 0u64); PHASES * NODES as usize];
    let mk = |ph: usize, i: u16| GraphApp::new(world.clone(), i, ph as u32);
    let collect = |ph: usize, i: u16, app: &GraphApp| {
        sums[ph * NODES as usize + i as usize] = (app.sum, app.reached);
    };
    let (reports, snap_sets, _) = if differential {
        run_phase_differential(
            NODES,
            NetConfig::default(),
            cfg,
            &DstOptions::default(),
            PHASES,
            mk,
            collect,
        )
    } else {
        run_phase_migrating(
            NODES,
            NetConfig::default(),
            cfg,
            &DstOptions::default(),
            PHASES,
            mk,
            collect,
        )
    };
    assert!(reports.iter().all(|r| r.completed), "{label}: stalled");
    for snaps in &snap_sets {
        let v = check_completed(snaps, false);
        assert!(v.is_empty(), "{label}: {}", v[0]);
    }
    (sums, snap_sets)
}

/// Fixed strips {1, 16, 128}, the adaptive controller, migration, and
/// differential re-alignment (alone and composed) all agree bit-for-bit on
/// the closure checksums of a mutable power-law graph — including the
/// hot-hub generation stamps the checksum folds in — and every lane's
/// runtime-state snapshot passes the full invariant check (hot-key reply
/// conservation included).
#[test]
fn graph_checksums_invariant_across_config_lanes() {
    // root_stride = 1: every owned vertex seeds a closure, so each node
    // runs 32 iterations per phase — enough to cross several adaptive
    // strip boundaries (the controller retunes every `strip` completions,
    // starting near the geometric mean of its bounds).
    let world = GraphWorld::build(GraphParams {
        n: 128,
        root_stride: 1,
        seed: 0x06EA_9D57,
        ..GraphParams::default()
    });
    let adaptive = StripMode::Adaptive(AdaptiveStrip {
        min: 2,
        max: 64,
        ..AdaptiveStrip::default()
    });
    // (label, cfg, differential-driver)
    let lanes: Vec<(String, DpaConfig, bool)> = vec![
        ("strip=1".into(), DpaConfig::dpa(1), false),
        ("strip=16".into(), DpaConfig::dpa(16), false),
        ("strip=128".into(), DpaConfig::dpa(128), false),
        ("mig".into(), DpaConfig::dpa_migrating(8), false),
        (
            "adaptive".into(),
            DpaConfig {
                strip_mode: adaptive,
                ..DpaConfig::dpa(1)
            },
            false,
        ),
        (
            "adaptive+mig".into(),
            DpaConfig {
                strip_mode: adaptive,
                ..DpaConfig::dpa_migrating(1)
            },
            false,
        ),
        ("diff".into(), DpaConfig::dpa_differential(8), true),
        (
            "adaptive+diff".into(),
            DpaConfig {
                strip_mode: adaptive,
                ..DpaConfig::dpa_differential(1)
            },
            true,
        ),
        (
            "diff+mig".into(),
            DpaConfig {
                migration_epoch_ns: DpaConfig::dpa_migrating(8).migration_epoch_ns,
                ..DpaConfig::dpa_differential(8)
            },
            true,
        ),
        // Replication lanes: the fourth alignment mode must also be purely
        // a *when/where* knob. `dpa_replicating` keeps migration too timid
        // to steal the hub, so the promotion path (not re-homing) is what
        // gets exercised.
        ("repl".into(), DpaConfig::dpa_replicating(8), true),
        (
            "adaptive+repl".into(),
            DpaConfig {
                strip_mode: adaptive,
                ..DpaConfig::dpa_replicating(1)
            },
            true,
        ),
        (
            "repl+mig".into(),
            DpaConfig {
                migration_threshold: DpaConfig::dpa_migrating(8).migration_threshold,
                ..DpaConfig::dpa_replicating(8)
            },
            true,
        ),
        (
            "repl eager".into(),
            DpaConfig {
                replication_min_fanout: 2,
                replication_threshold: 4,
                replication_budget: 8,
                replication_write_demote: 2,
                ..DpaConfig::dpa_replicating(8)
            },
            true,
        ),
    ];
    let mut baseline: Option<Vec<(u64, u64)>> = None;
    for (label, cfg, differential) in lanes {
        let (sums, snap_sets) = run_lane(&world, &label, cfg, differential);
        if label.starts_with("adaptive") {
            let retuned = snap_sets
                .iter()
                .flatten()
                .any(|s| s.strip_schedule.len() > 1);
            assert!(retuned, "{label}: no strip boundary was ever crossed");
        }
        // The repl lanes must have exercised the protocol, not just
        // tolerated the knob: at least one owner published a directory
        // entry and at least one broadcast entry was installed somewhere.
        // This holds for `repl+mig` too: the replicating preset runs
        // migration in boundary-only mode, and the boundary pass promotes
        // (and pins) before it picks migrations, so even an eager
        // threshold cannot steal the hub out from under its consumers.
        if label.contains("repl") {
            let published = snap_sets
                .iter()
                .flatten()
                .any(|s| !s.replica_dir.is_empty());
            let installed = snap_sets
                .iter()
                .flatten()
                .any(|s| s.repl_entries_recv > 0);
            assert!(published, "{label}: no pointer was ever promoted");
            assert!(installed, "{label}: no replica broadcast was installed");
        }
        match &baseline {
            None => baseline = Some(sums),
            Some(b) => assert_eq!(&sums, b, "{label}: checksums diverged"),
        }
    }
    // The checksums also match the host oracle: this battery compares
    // against ground truth, not just lane-to-lane.
    let expect = baseline.expect("at least one lane ran");
    for ph in 0..PHASES {
        for node in 0..NODES {
            assert_eq!(
                expect[ph * NODES as usize + node as usize],
                world.expected(ph as u32, node),
                "phase {ph} node {node}: lanes agree with each other but not the oracle"
            );
        }
    }
}

/// Same battery for the setops workload, single phase: fixed and adaptive
/// strips and migration must leave the range sums and the final membership
/// digest bit-identical and equal to the host oracle.
#[test]
fn setops_checksums_invariant_across_config_lanes() {
    use dpa::apps::setops_dist::{SetopsApp, SetopsParams, SetopsWorld};
    use dpa::runtime::run_phase_dst;
    let world = SetopsWorld::build(SetopsParams {
        universe: 2048,
        ops_per_node: 32,
        seed: 0x05E7_0D57,
        ..SetopsParams::default()
    });
    let adaptive = StripMode::Adaptive(AdaptiveStrip {
        min: 2,
        max: 64,
        ..AdaptiveStrip::default()
    });
    let lanes: Vec<(String, DpaConfig)> = vec![
        ("strip=1".into(), DpaConfig::dpa(1)),
        ("strip=32".into(), DpaConfig::dpa(32)),
        ("mig".into(), DpaConfig::dpa_migrating(8)),
        (
            "adaptive".into(),
            DpaConfig {
                strip_mode: adaptive,
                ..DpaConfig::dpa(1)
            },
        ),
    ];
    let expected: Vec<(u64, u64)> = (0..NODES).map(|n| world.expected(n)).collect();
    for (label, cfg) in lanes {
        let mut got = vec![(0u64, 0u64); NODES as usize];
        let (report, snaps) = run_phase_dst(
            NODES,
            NetConfig::default(),
            cfg,
            &DstOptions::default(),
            |i| SetopsApp::new(world.clone(), i),
            |i, app: &SetopsApp| got[i as usize] = (app.range_sum, app.final_digest()),
        );
        assert!(report.completed, "{label}: stalled");
        let v = check_completed(&snaps, false);
        assert!(v.is_empty(), "{label}: {}", v[0]);
        assert_eq!(got, expected, "{label}: diverged from the host oracle");
    }
}
