//! End-to-end pipeline test: the Barnes-Hut opening-criterion walk written
//! in Mini-ICC, compiled by the DPA partitioner into pointer-labeled
//! threads, executed over a *real* octree distributed across simulated
//! nodes, and validated against a Rust oracle that mirrors the kernel's
//! arithmetic exactly.

use dpa::compiler::{compile_source, IccApp, IccWorldBuilder, Value};
use dpa::global_heap::GPtr;
use dpa::nbody::distrib::plummer;
use dpa::nbody::octree::{Octree, NO_CELL};
use dpa::runtime::{run_phase, DpaConfig};
use dpa::sim_net::NetConfig;

/// Softened BH potential with the l/d opening criterion, as a kernel of
/// eight-way `conc` recursion.
const KERNEL: &str = "
struct Cell {
  mass: float; cx: float; cy: float; cz: float; size: float; nb: int;
  c0: Cell*; c1: Cell*; c2: Cell*; c3: Cell*;
  c4: Cell*; c5: Cell*; c6: Cell*; c7: Cell*;
}
fn pot(c: Cell*, px: float, py: float, pz: float) -> float {
  if (c == null) { return 0.0; }
  let dx: float = c->cx - px;
  let dy: float = c->cy - py;
  let dz: float = c->cz - pz;
  let d2: float = dx*dx + dy*dy + dz*dz + 0.0025;
  if (c->size * c->size < d2) {
    return c->mass / sqrt(d2);
  }
  if (c->nb <= 1) {
    return c->mass / sqrt(d2);
  }
  let a0: float = 0.0;
  let a1: float = 0.0;
  let a2: float = 0.0;
  let a3: float = 0.0;
  let a4: float = 0.0;
  let a5: float = 0.0;
  let a6: float = 0.0;
  let a7: float = 0.0;
  conc {
    a0 = pot(c->c0, px, py, pz);
    a1 = pot(c->c1, px, py, pz);
    a2 = pot(c->c2, px, py, pz);
    a3 = pot(c->c3, px, py, pz);
    a4 = pot(c->c4, px, py, pz);
    a5 = pot(c->c5, px, py, pz);
    a6 = pot(c->c6, px, py, pz);
    a7 = pot(c->c7, px, py, pz);
  }
  return a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7;
}";

/// Rust mirror of the kernel (same arithmetic, same order).
fn pot_oracle(tree: &Octree, id: i32, px: f64, py: f64, pz: f64) -> f64 {
    if id == NO_CELL {
        return 0.0;
    }
    let cell = &tree.cells[id as usize];
    let dx = cell.cm.x - px;
    let dy = cell.cm.y - py;
    let dz = cell.cm.z - pz;
    let d2 = dx * dx + dy * dy + dz * dz + 0.0025;
    if cell.side() * cell.side() < d2 || cell.nbodies <= 1 {
        return cell.mass / d2.sqrt();
    }
    let mut acc = 0.0;
    for &c in &cell.children {
        acc += pot_oracle(tree, c, px, py, pz);
    }
    acc
}

#[test]
fn icc_barnes_hut_matches_rust_oracle() {
    let nodes = 4u16;
    let bodies = plummer(300, 77);
    let tree = Octree::build(&bodies, 1);

    let prog = compile_source(KERNEL).unwrap();
    // Static structure sanity: one touch (all 14 fields hoisted from a
    // single arrival), one fork of 8 children.
    let st = &prog.stats[0];
    assert_eq!(st.fork_sites, 1);
    assert_eq!(st.demand_sites, 1, "whole cell hoisted from one arrival");

    // Build the distributed Icc world mirroring the octree; scattered
    // ownership stresses the runtime.
    let mut b = IccWorldBuilder::new(prog, "pot", nodes);
    let null = Value::Ptr(GPtr::NULL);
    let mut ptrs = Vec::with_capacity(tree.len());
    for (id, cell) in tree.iter() {
        let owner = ((id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as u16 % nodes;
        let p = b.alloc(
            owner,
            "Cell",
            vec![
                Value::Float(cell.mass),
                Value::Float(cell.cm.x),
                Value::Float(cell.cm.y),
                Value::Float(cell.cm.z),
                Value::Float(cell.side()),
                Value::Int(cell.nbodies as i64),
                null, null, null, null, null, null, null, null,
            ],
        );
        ptrs.push(p);
    }
    for (id, cell) in tree.iter() {
        for (k, &c) in cell.children.iter().enumerate() {
            if c != NO_CELL {
                b.set_field(ptrs[id as usize], &format!("c{k}"), Value::Ptr(ptrs[c as usize]));
            }
        }
    }

    // Sample bodies round-robin across nodes; expected per-node sums.
    let mut expected = vec![0.0f64; nodes as usize];
    for (i, body) in bodies.iter().enumerate().step_by(5) {
        let node = (i / 5) % nodes as usize;
        b.add_root(
            node as u16,
            vec![
                Value::Ptr(ptrs[0]),
                Value::Float(body.pos.x),
                Value::Float(body.pos.y),
                Value::Float(body.pos.z),
            ],
        );
        expected[node] += pot_oracle(&tree, 0, body.pos.x, body.pos.y, body.pos.z);
    }
    let world = b.build();

    for cfg in [DpaConfig::dpa(8), DpaConfig::caching(), DpaConfig::blocking()] {
        let label = cfg.describe();
        let mut got = vec![0.0f64; nodes as usize];
        run_phase(
            nodes,
            NetConfig::default(),
            cfg,
            |i| IccApp::new(world.clone(), i),
            |i, app: &IccApp| got[i as usize] = app.float_sum,
        );
        for (g, e) in got.iter().zip(&expected) {
            let err = (g - e).abs() / e.abs().max(1e-12);
            assert!(err < 1e-12, "{label}: {g} vs {e} (rel err {err})");
        }
    }
}

#[test]
fn icc_bh_dpa_is_faster_than_blocking() {
    let nodes = 4u16;
    let bodies = plummer(200, 3);
    let tree = Octree::build(&bodies, 1);
    let prog = compile_source(KERNEL).unwrap();
    let mut b = IccWorldBuilder::new(prog, "pot", nodes);
    let null = Value::Ptr(GPtr::NULL);
    let mut ptrs = Vec::with_capacity(tree.len());
    for (id, cell) in tree.iter() {
        let owner = (id % nodes as u32) as u16;
        ptrs.push(b.alloc(
            owner,
            "Cell",
            vec![
                Value::Float(cell.mass),
                Value::Float(cell.cm.x),
                Value::Float(cell.cm.y),
                Value::Float(cell.cm.z),
                Value::Float(cell.side()),
                Value::Int(cell.nbodies as i64),
                null, null, null, null, null, null, null, null,
            ],
        ));
    }
    for (id, cell) in tree.iter() {
        for (k, &c) in cell.children.iter().enumerate() {
            if c != NO_CELL {
                b.set_field(ptrs[id as usize], &format!("c{k}"), Value::Ptr(ptrs[c as usize]));
            }
        }
    }
    for (i, body) in bodies.iter().enumerate().step_by(4) {
        b.add_root(
            ((i / 4) % nodes as usize) as u16,
            vec![
                Value::Ptr(ptrs[0]),
                Value::Float(body.pos.x),
                Value::Float(body.pos.y),
                Value::Float(body.pos.z),
            ],
        );
    }
    let world = b.build();
    let time = |cfg: DpaConfig| {
        run_phase(
            nodes,
            NetConfig::default(),
            cfg,
            |i| IccApp::new(world.clone(), i),
            |_, _| {},
        )
        .makespan()
        .as_ns()
    };
    let dpa = time(DpaConfig::dpa(8));
    let blocking = time(DpaConfig::blocking());
    assert!(
        dpa < blocking,
        "compiled BH under DPA ({dpa}) must beat blocking ({blocking})"
    );
}
