//! Paper-scale calibration contract — the anchor ratios of Table 1,
//! asserted executably.
//!
//! These run the full 16,384-body / 32,768-particle workloads and are
//! `#[ignore]`d by default (minutes in release, much longer in debug).
//! Run them with:
//!
//! ```sh
//! cargo test --release --test paper_scale -- --ignored
//! ```

use dpa::apps::bh_dist::{BhCost, BhWorld};
use dpa::apps::driver::{run_bh, run_fmm};
use dpa::apps::fmm_dist::{FmmCost, FmmWorld};
use dpa::nbody::bh::BhParams;
use dpa::nbody::cx::Cx;
use dpa::nbody::distrib::{plummer, uniform_square};
use dpa::nbody::fmm::FmmParams;
use dpa::nbody::quadtree::QuadTree;
use dpa::runtime::DpaConfig;
use dpa::sim_net::NetConfig;
use std::sync::Arc;

fn bh_world(nodes: u16) -> Arc<BhWorld> {
    BhWorld::build(
        plummer(16_384, 1997),
        nodes,
        1,
        BhParams::default(),
        BhCost::default(),
    )
}

fn fmm_world(nodes: u16) -> Arc<FmmWorld> {
    let bodies = uniform_square(32_768, 1997);
    let zs: Vec<Cx> = bodies.iter().map(|b| Cx::new(b.pos.x, b.pos.y)).collect();
    let qs: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
    let levels = QuadTree::level_for(32_768, 16);
    FmmWorld::build(
        zs,
        qs,
        nodes,
        FmmParams { terms: 29, levels },
        FmmCost::default(),
    )
}

#[test]
#[ignore = "paper-scale run; use --release --ignored"]
fn barnes_hut_anchors_hold() {
    // Sequential ≈ paper's 97.84 s / 4 steps (±10%).
    let seq = run_bh(&bh_world(1), DpaConfig::sequential(), NetConfig::default()).makespan_ns;
    let seq4 = 4.0 * seq as f64 / 1e9;
    assert!(
        (88.0..108.0).contains(&seq4),
        "sequential BH x4 = {seq4:.2} s (paper 97.84)"
    );

    // Single-node overheads: DPA ≈ +20.6%, caching ≈ +17.7% (±3 pts).
    let dpa1 = run_bh(&bh_world(1), DpaConfig::dpa(50), NetConfig::default()).makespan_ns;
    let cache1 = run_bh(&bh_world(1), DpaConfig::caching(), NetConfig::default()).makespan_ns;
    let dpa_over = dpa1 as f64 / seq as f64 - 1.0;
    let cache_over = cache1 as f64 / seq as f64 - 1.0;
    assert!(
        (0.17..0.24).contains(&dpa_over),
        "DPA 1-node overhead {dpa_over:.3} (paper 0.206)"
    );
    assert!(
        (0.14..0.21).contains(&cache_over),
        "caching 1-node overhead {cache_over:.3} (paper 0.177)"
    );
    assert!(cache1 < dpa1, "caching must win at P = 1 (pure overheads)");

    // DPA beats caching at P = 16 and 64; near-paper speedup at 64.
    for p in [16u16, 64] {
        let w = bh_world(p);
        let dpa = run_bh(&w, DpaConfig::dpa(50), NetConfig::default()).makespan_ns;
        let cache = run_bh(&w, DpaConfig::caching(), NetConfig::default()).makespan_ns;
        assert!(dpa < cache, "P={p}: DPA {dpa} must beat caching {cache}");
        if p == 64 {
            let speedup = dpa1 as f64 / dpa as f64;
            assert!(
                speedup > 42.0,
                "BH speedup vs 1-node DPA at 64 = {speedup:.1} (paper: >42)"
            );
        }
    }
}

#[test]
#[ignore = "paper-scale run; use --release --ignored"]
fn fmm_anchors_hold() {
    // Sequential ≈ paper's 14.46 s (±12%).
    let seq = run_fmm(&fmm_world(1), DpaConfig::sequential(), NetConfig::default()).makespan_ns;
    let seq_s = seq as f64 / 1e9;
    assert!(
        (12.7..16.2).contains(&seq_s),
        "sequential FMM = {seq_s:.2} s (paper 14.46)"
    );

    // 54-fold-ish speedup at 64 nodes, DPA ahead of caching.
    let w = fmm_world(64);
    let dpa = run_fmm(&w, DpaConfig::dpa(50), NetConfig::default()).makespan_ns;
    let cache = run_fmm(&w, DpaConfig::caching(), NetConfig::default()).makespan_ns;
    assert!(dpa < cache);
    let speedup = seq as f64 / dpa as f64;
    assert!(
        (48.0..66.0).contains(&speedup),
        "FMM speedup at 64 = {speedup:.1} (paper: 54)"
    );
}
