//! Cross-crate property-based tests (proptest): the invariants that make
//! the reproduction trustworthy, exercised over randomized inputs.

use dpa::compiler::{compile_source, IccApp, IccWorldBuilder, Value};
use dpa::global_heap::{GPtr, ObjClass};
use dpa::nbody::afmm::{AfmmParams, AfmmSolver};
use dpa::nbody::cx::Cx;
use dpa::nbody::body::direct_accel;
use dpa::nbody::distrib::uniform_cube;
use dpa::nbody::octree::Octree;
use dpa::runtime::synth::{SynthApp, SynthParams, SynthWorld};
use dpa::runtime::{
    check_completed, run_phase, run_phase_dst, DpaConfig, DstOptions, PendingRequests, PointerMap,
};
use dpa::sim_net::{EventKey, NetConfig, TimingWheel, WheelItem};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Minimal wheel payload for the queue-model property: the key is the
/// whole item.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Keyed(EventKey);

impl WheelItem for Keyed {
    fn key(&self) -> EventKey {
        self.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every execution variant computes the same checksums on random
    /// worlds — the core "scheduling never changes semantics" guarantee —
    /// and stays correct under seeded schedule perturbation: permuted
    /// event tie-breaks plus message jitter must leave the (integer)
    /// checksums bit-identical and drain the M/D tables.
    #[test]
    fn variants_agree_on_random_worlds(
        seed in any::<u64>(),
        nodes in 1u16..6,
        lists in 1usize..12,
        len in 1usize..24,
        remote in 0.0f64..0.9,
        shared in 0.0f64..0.9,
        strip in 1usize..20,
    ) {
        let world = SynthWorld::build(SynthParams {
            nodes,
            lists_per_node: lists,
            list_len: len,
            remote_fraction: remote,
            shared_fraction: shared,
            record_bytes: 32,
            work_ns: 200,
            seed,
        });
        let expected: Vec<u64> = (0..nodes).map(|n| world.expected_sum(n)).collect();
        for cfg in [DpaConfig::dpa(strip), DpaConfig::caching(), DpaConfig::blocking()] {
            let mut sums = vec![0u64; nodes as usize];
            run_phase(
                nodes,
                NetConfig::default(),
                cfg.clone(),
                |i| SynthApp::new(world.clone(), i, 200),
                |i, app| sums[i as usize] = app.sum,
            );
            prop_assert_eq!(&sums, &expected);

            for perturb in 0..3u64 {
                let opts = DstOptions {
                    schedule_seed: Some(seed ^ (perturb.wrapping_mul(0x9E37_79B9_7F4A_7C15))),
                    ..DstOptions::default()
                };
                let net = NetConfig { jitter_ns: 3_000, ..NetConfig::default() };
                let mut psums = vec![0u64; nodes as usize];
                let (report, snaps) = run_phase_dst(
                    nodes,
                    net,
                    cfg.clone(),
                    &opts,
                    |i| SynthApp::new(world.clone(), i, 200),
                    |i, app| psums[i as usize] = app.sum,
                );
                prop_assert!(report.completed, "perturbed schedule stalled: {}", report.stall_summary());
                prop_assert_eq!(&psums, &expected);
                let violations = check_completed(&snaps, false);
                prop_assert!(violations.is_empty(), "invariant violated: {}", violations[0]);
            }
        }
    }

    /// The strip size never changes results, only schedules.
    #[test]
    fn strip_size_is_semantics_preserving(
        seed in any::<u64>(),
        strip_a in 1usize..8,
        strip_b in 8usize..200,
    ) {
        let world = SynthWorld::build(SynthParams {
            nodes: 4,
            lists_per_node: 10,
            list_len: 12,
            remote_fraction: 0.5,
            shared_fraction: 0.5,
            record_bytes: 32,
            work_ns: 100,
            seed,
        });
        let run = |strip: usize| {
            let mut sums = vec![0u64; 4];
            run_phase(
                4,
                NetConfig::default(),
                DpaConfig::dpa(strip),
                |i| SynthApp::new(world.clone(), i, 100),
                |i, app| sums[i as usize] = app.sum,
            );
            sums
        };
        prop_assert_eq!(run(strip_a), run(strip_b));
    }

    /// Identical inputs produce identical simulated times (determinism).
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>()) {
        let world = SynthWorld::build(SynthParams {
            nodes: 3,
            lists_per_node: 6,
            list_len: 10,
            remote_fraction: 0.4,
            shared_fraction: 0.3,
            record_bytes: 32,
            work_ns: 300,
            seed,
        });
        let t = |_: ()| {
            run_phase(
                3,
                NetConfig::default(),
                DpaConfig::dpa(4),
                |i| SynthApp::new(world.clone(), i, 300),
                |_, _| {},
            )
            .makespan()
        };
        prop_assert_eq!(t(()), t(()));
    }

    /// The M mapping conserves threads against a model map under arbitrary
    /// align/release interleavings: release returns exactly the aligned
    /// waiters in insertion order, `live_threads` never drifts (so it can
    /// never underflow), and the peak counters are monotone high-water
    /// marks of the true live state.
    #[test]
    fn pointer_map_matches_model_under_interleavings(
        seed in any::<u64>(),
        ops in 1usize..400,
        key_space in 1u64..24,
        release_p in 0.05f64..0.6,
    ) {
        let mut rng = dpa::sim_net::Rng::new(seed);
        let mut m: PointerMap<u64> = PointerMap::new();
        let mut model: HashMap<GPtr, Vec<u64>> = HashMap::new();
        let mut prev_peak_threads = 0u64;
        let mut prev_peak_keys = 0u64;
        let mut aligned_total = 0u64;
        for op in 0..ops as u64 {
            let ptr = GPtr::new(rng.below(4) as u16, ObjClass(0), rng.below(key_space));
            if rng.chance(release_p) {
                let got = m.release(ptr);
                let want = model.remove(&ptr).unwrap_or_default();
                prop_assert_eq!(
                    got, want,
                    "release must return exactly the aligned waiters, in order"
                );
            } else {
                let first = m.align(ptr, op);
                aligned_total += 1;
                let v = model.entry(ptr).or_default();
                v.push(op);
                prop_assert_eq!(
                    first,
                    v.len() == 1,
                    "the first-waiter signal is what triggers a request"
                );
            }
            let live: u64 = model.values().map(|v| v.len() as u64).sum();
            prop_assert_eq!(m.live_threads(), live, "live_threads drifted");
            prop_assert_eq!(m.keys(), model.len());
            prop_assert_eq!(m.is_empty(), model.is_empty());
            prop_assert!(
                m.peak_threads() >= prev_peak_threads.max(live),
                "peak_threads must be a monotone high-water mark"
            );
            prop_assert!(m.peak_keys() >= prev_peak_keys.max(model.len() as u64));
            prev_peak_threads = m.peak_threads();
            prev_peak_keys = m.peak_keys();
            prop_assert_eq!(m.total_aligned(), aligned_total);
        }
    }

    /// Patching the M mapping across a phase barrier is observationally
    /// equivalent to rebuilding it: after an arbitrary first-phase
    /// align/release history and a `reset_for_phase`, a second arbitrary
    /// history drives the patched map through *exactly* the states a
    /// fresh map would visit — same first-waiter signals, same release
    /// sets, same live/peak/total counters. The only allowed difference
    /// is the retained interner (warm dense ids), which is what makes
    /// differential re-alignment cheap without changing semantics.
    #[test]
    fn phase_patched_map_equals_rebuilt_map(
        seed in any::<u64>(),
        ops_a in 0usize..200,
        ops_b in 1usize..200,
        key_space in 1u64..24,
        release_p in 0.05f64..0.6,
    ) {
        let mut rng = dpa::sim_net::Rng::new(seed);
        let mut patched: PointerMap<u64> = PointerMap::new();
        // Phase A: arbitrary history establishing a warm interner and
        // leftover waiters (carried entries may cover some of them).
        for op in 0..ops_a as u64 {
            let ptr = GPtr::new(rng.below(4) as u16, ObjClass(0), rng.below(key_space));
            if rng.chance(release_p) {
                patched.release(ptr);
            } else {
                patched.align(ptr, op);
            }
        }
        let interned_a = patched.interned();
        patched.reset_for_phase();
        prop_assert_eq!(patched.interned(), interned_a, "the interner must survive the barrier");
        // Phase B: the *same* delta applied to the patched map and to a
        // rebuilt-from-scratch map must be indistinguishable.
        let mut rebuilt: PointerMap<u64> = PointerMap::new();
        for op in 0..ops_b as u64 {
            let ptr = GPtr::new(rng.below(4) as u16, ObjClass(0), rng.below(key_space));
            if rng.chance(release_p) {
                prop_assert_eq!(
                    patched.release(ptr),
                    rebuilt.release(ptr),
                    "release sets diverged after the patch"
                );
            } else {
                prop_assert_eq!(
                    patched.align(ptr, op),
                    rebuilt.align(ptr, op),
                    "first-waiter signal diverged after the patch"
                );
            }
            prop_assert_eq!(patched.live_threads(), rebuilt.live_threads());
            prop_assert_eq!(patched.keys(), rebuilt.keys());
            prop_assert_eq!(patched.is_empty(), rebuilt.is_empty());
            prop_assert_eq!(patched.peak_threads(), rebuilt.peak_threads());
            prop_assert_eq!(patched.peak_keys(), rebuilt.peak_keys());
            prop_assert_eq!(patched.total_aligned(), rebuilt.total_aligned());
        }
        prop_assert!(
            patched.interned() >= rebuilt.interned(),
            "warm ids may only be reused, never forgotten"
        );
    }

    /// The timing wheel is observationally equal to a binary heap ordered
    /// by the full `(time, tie, src, seq)` event key, under arbitrary
    /// interleavings of near-monotone pushes, pops, and peeks — including
    /// far-future spikes that must round-trip through the overflow list.
    /// This is the model behind the simulator's queue swap: `peek_key`
    /// after every op, full-order equality on the final drain.
    #[test]
    fn timing_wheel_matches_heap_model(
        seed in any::<u64>(),
        ops in 1usize..600,
        spike_p in 0.0f64..0.2,
        pop_p in 0.1f64..0.6,
    ) {
        let mut rng = dpa::sim_net::Rng::new(seed);
        let mut wheel: TimingWheel<Keyed> = TimingWheel::new();
        let mut heap: BinaryHeap<Reverse<EventKey>> = BinaryHeap::new();
        let mut t = 0u64;
        let mut seq = 0u64;
        for _ in 0..ops {
            if rng.chance(pop_p) {
                let got = wheel.pop().map(|i| i.0);
                let want = heap.pop().map(|Reverse(k)| k);
                prop_assert_eq!(got, want, "pop order diverged from the heap model");
            } else {
                // Near-monotone base time, as the simulator produces, with
                // occasional far-future spikes (pause wakeups, deadline
                // wakes) that land past the wheel's ring window.
                t += rng.below(5_000);
                let time = if rng.chance(spike_p) {
                    t + 5_000_000 + rng.below(100_000_000)
                } else {
                    t
                };
                // Unique seq per push mirrors the machine's per-source
                // sequence numbers: full keys never tie.
                let key = EventKey {
                    time,
                    tie: rng.below(1 << 32),
                    src: rng.below(16) as u16,
                    seq,
                };
                seq += 1;
                wheel.push(Keyed(key));
                heap.push(Reverse(key));
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.peek_key(), heap.peek().map(|Reverse(k)| *k));
        }
        while let Some(i) = wheel.pop() {
            prop_assert_eq!(Some(i.0), heap.pop().map(|Reverse(k)| k));
        }
        prop_assert!(heap.pop().is_none(), "wheel drained before the model");
    }

    /// The SoA pending-request table matches a set model under arbitrary
    /// insert/complete interleavings, its dense-id interner never forgets
    /// or re-assigns an id, and its snapshots (`sorted_sample`, sorted
    /// `iter`) depend only on the outstanding *set* — not on the order the
    /// requests were issued in.
    #[test]
    fn pending_requests_match_set_model(
        seed in any::<u64>(),
        ops in 1usize..400,
        key_space in 1u64..24,
        complete_p in 0.05f64..0.6,
    ) {
        let mut rng = dpa::sim_net::Rng::new(seed);
        let mut d = PendingRequests::new();
        let mut model: HashSet<GPtr> = HashSet::new();
        let mut ever: Vec<GPtr> = Vec::new(); // first-request order
        let mut total = 0u64;
        let mut peak = 0u64;
        for _ in 0..ops {
            let ptr = GPtr::new(rng.below(4) as u16, ObjClass(0), rng.below(key_space));
            if rng.chance(complete_p) {
                prop_assert_eq!(d.complete(ptr), model.remove(&ptr));
            } else {
                let fresh = model.insert(ptr);
                prop_assert_eq!(d.insert(ptr), fresh, "duplicate suppression diverged");
                if fresh {
                    total += 1;
                    if !ever.contains(&ptr) {
                        ever.push(ptr);
                    }
                }
                peak = peak.max(model.len() as u64);
            }
            prop_assert_eq!(d.len(), model.len());
            prop_assert_eq!(d.is_empty(), model.is_empty());
            for p in &model {
                prop_assert!(d.contains(*p));
            }
        }
        prop_assert_eq!(d.total(), total);
        prop_assert_eq!(d.peak(), peak);
        // Dense-id interning: every pointer ever requested has a permanent
        // id, and iteration yields exactly the outstanding set in
        // first-request order.
        prop_assert_eq!(d.interned(), ever.len());
        let got: Vec<GPtr> = d.iter().copied().collect();
        let want: Vec<GPtr> = ever.iter().copied().filter(|p| model.contains(p)).collect();
        prop_assert_eq!(got, want, "iter must follow first-request (dense-id) order");
        // Snapshot order-independence: rebuild the same outstanding set in
        // sorted (≠ historical) order; samples must be byte-identical.
        let mut rebuilt = PendingRequests::new();
        let mut sorted: Vec<GPtr> = model.iter().copied().collect();
        sorted.sort_unstable();
        for p in &sorted {
            rebuilt.insert(*p);
        }
        prop_assert_eq!(rebuilt.sorted_sample(4), d.sorted_sample(4));
        prop_assert_eq!(rebuilt.sorted_sample(usize::MAX), d.sorted_sample(usize::MAX));
    }

    /// Global pointers round-trip through their packed representation.
    #[test]
    fn gptr_roundtrip(node in 0u16..u16::MAX, class in 0u8..255, idx in 0u64..(1u64 << 39)) {
        let p = GPtr::new(node, ObjClass(class), idx);
        prop_assert_eq!(p.node(), node);
        prop_assert_eq!(p.class(), ObjClass(class));
        prop_assert_eq!(p.index(), idx);
        prop_assert_eq!(GPtr::from_bits(p.bits()), p);
        prop_assert!(!p.is_null());
    }

    /// Compiled Mini-ICC tree sums match a host oracle on random tree
    /// shapes, owner scatters, and strip sizes — the whole pipeline
    /// (parse → partition → interpret → schedule → simulate) as one
    /// property.
    #[test]
    fn compiled_tree_sum_matches_oracle(
        seed in any::<u64>(),
        depth in 1u32..6,
        nodes in 1u16..5,
        strip in 1usize..12,
    ) {
        let prog = compile_source(
            "struct T { l: T*; r: T*; v: int; }
             fn sum(t: T*) -> int {
               if (t == null) { return 0; }
               let a: int = 0;
               let b: int = 0;
               conc { a = sum(t->l); b = sum(t->r); }
               return a + b + t->v;
             }",
        ).unwrap();
        let mut b = IccWorldBuilder::new(prog, "sum", nodes);
        let mut rng = dpa::sim_net::Rng::new(seed);
        fn build(
            b: &mut IccWorldBuilder,
            rng: &mut dpa::sim_net::Rng,
            nodes: u16,
            depth: u32,
        ) -> (Value, i64) {
            if depth == 0 || rng.chance(0.2) {
                return (Value::Ptr(GPtr::NULL), 0);
            }
            let (l, ls) = build(b, rng, nodes, depth - 1);
            let (r, rs) = build(b, rng, nodes, depth - 1);
            let v = rng.below(1000) as i64;
            let owner = rng.below(nodes as u64) as u16;
            let p = b.alloc(owner, "T", vec![l, r, Value::Int(v)]);
            (Value::Ptr(p), ls + rs + v)
        }
        let mut expected = 0i64;
        for node in 0..nodes {
            let (root, sum) = build(&mut b, &mut rng, nodes, depth);
            if let Value::Ptr(p) = root {
                if p.is_null() {
                    continue;
                }
            }
            b.add_root(node, vec![root]);
            expected += sum;
        }
        let world = b.build();
        let mut total = 0i64;
        run_phase(
            nodes,
            NetConfig::default(),
            DpaConfig::dpa(strip),
            |i| IccApp::new(world.clone(), i),
            |_, app: &IccApp| total += app.int_sum,
        );
        prop_assert_eq!(total, expected);
    }

    /// The adaptive FMM matches direct summation on random inputs.
    #[test]
    fn adaptive_fmm_matches_direct(seed in any::<u64>(), n in 30usize..150) {
        let mut rng = dpa::sim_net::Rng::new(seed);
        let zs: Vec<Cx> = (0..n)
            .map(|_| Cx::new(
                0.001 + 0.998 * rng.unit_f64(),
                0.001 + 0.998 * rng.unit_f64(),
            ))
            .collect();
        let qs: Vec<f64> = (0..n).map(|_| 0.1 + rng.unit_f64()).collect();
        let mut s = AfmmSolver::new(zs, qs, AfmmParams {
            terms: 20,
            leaf_cap: 6,
            max_level: 10,
        });
        s.downward();
        let got = s.evaluate();
        let exact = s.direct();
        for (a, b) in got.iter().zip(&exact) {
            let err = (*a - *b).abs() / b.abs().max(1e-9);
            prop_assert!(err < 1e-6, "err {}", err);
        }
    }

    /// The power-law graph generator is a pure function of its params:
    /// two builds agree edge-for-edge and generation-for-generation, and
    /// the distributed closure over the same world is bit-identical
    /// across event-queue engines and simulator thread counts.
    #[test]
    fn graph_generator_deterministic_across_engines(
        seed in any::<u64>(),
        n in 24usize..80,
        degree in 1usize..4,
    ) {
        use dpa::apps::graph_dist::{GraphApp, GraphParams, GraphWorld};
        use dpa::sim_net::QueueKind;
        let params = GraphParams { n, degree, seed, ..GraphParams::default() };
        let a = GraphWorld::build(params);
        let b = GraphWorld::build(params);
        for ph in 0..3u32 {
            for v in 0..n as u32 {
                prop_assert_eq!(a.out(ph, v), b.out(ph, v), "phase {} vertex {}", ph, v);
                prop_assert_eq!(a.gen_at(ph, v), b.gen_at(ph, v));
            }
        }
        let mut baseline: Option<[(u64, u64); 4]> = None;
        for (queue, threads) in [
            (QueueKind::Wheel, 1usize),
            (QueueKind::ShadowHeap, 1),
            (QueueKind::Wheel, 4),
        ] {
            let opts = DstOptions { queue, threads, ..DstOptions::default() };
            let mut got = [(0u64, 0u64); 4];
            let (report, snaps) = run_phase_dst(
                4,
                NetConfig::default(),
                DpaConfig::dpa(4),
                &opts,
                |i| GraphApp::new(a.clone(), i, 1),
                |i, app: &GraphApp| got[i as usize] = (app.sum, app.reached),
            );
            prop_assert!(report.completed, "stalled: {}", report.stall_summary());
            let v = check_completed(&snaps, false);
            prop_assert!(v.is_empty(), "violation: {}", v[0]);
            match &baseline {
                None => baseline = Some(got),
                Some(base) => prop_assert_eq!(
                    &got, base, "engine ({:?}, {} threads) diverged", queue, threads
                ),
            }
        }
    }

    /// Degree-distribution sanity above skew 1.5: the generator really
    /// produces a hub — vertex 0's in-degree dominates the mean, and its
    /// record is fatter than the tail's.
    #[test]
    fn graph_skew_produces_a_hub(
        seed in any::<u64>(),
        n in 48usize..160,
        skew in 1.5f64..2.5,
    ) {
        use dpa::apps::graph_dist::{GraphParams, GraphWorld};
        let w = GraphWorld::build(GraphParams { n, skew, seed, ..GraphParams::default() });
        let indeg = w.in_degrees(0);
        let max = *indeg.iter().max().expect("non-empty");
        let hub = indeg.iter().position(|&d| d == max).expect("max exists") as u32;
        let mean = indeg.iter().map(|&d| d as f64).sum::<f64>() / n as f64;
        prop_assert!(
            max as f64 > 3.0 * mean,
            "no hub at skew {}: max in-degree {} vs mean {:.1}", skew, max, mean
        );
        // The hub is an early (low-index) vertex with an outsized record.
        prop_assert!(hub < (n / 8).max(1) as u32, "hub {} not in the head", hub);
        let tail = w.vertex_bytes(n as u32 - 1);
        prop_assert!(
            w.vertex_bytes(0) > 2 * tail,
            "hub record {}B not outsized vs tail {}B", w.vertex_bytes(0), tail
        );
    }

    /// The distributed semi-naive closure equals an *independent*
    /// sequential reference (Floyd–Warshall reachability, not the world's
    /// own BFS oracle) on small graphs, at a mutated as well as the
    /// initial phase.
    #[test]
    fn graph_closure_matches_sequential_reference(
        seed in any::<u64>(),
        n in 16usize..48,
        phase in 0u32..3,
    ) {
        use dpa::apps::graph_dist::{GraphApp, GraphParams, GraphWorld};
        use dpa::runtime::DiffPlan;
        let w = GraphWorld::build(GraphParams { n, seed, ..GraphParams::default() });
        // Reference closure: boolean reachability matrix of this phase's
        // edge lists, closed by Floyd–Warshall.
        let mut reach = vec![false; n * n];
        for v in 0..n {
            reach[v * n + v] = true;
            for &t in w.out(phase, v as u32) {
                reach[v * n + t as usize] = true;
            }
        }
        for k in 0..n {
            for i in 0..n {
                if reach[i * n + k] {
                    for j in 0..n {
                        if reach[k * n + j] {
                            reach[i * n + j] = true;
                        }
                    }
                }
            }
        }
        let mut got = [(0u64, 0u64); 4];
        let (report, _) = run_phase_dst(
            4,
            NetConfig::default(),
            DpaConfig::dpa(4),
            &DstOptions::default(),
            |i| GraphApp::new(w.clone(), i, phase),
            |i, app: &GraphApp| got[i as usize] = (app.sum, app.reached),
        );
        prop_assert!(report.completed, "stalled: {}", report.stall_summary());
        for node in 0..4u16 {
            let mut sum = 0u64;
            let mut reached = 0u64;
            for root in w.roots(node) {
                for v in 0..n {
                    if reach[root as usize * n + v] {
                        sum = sum.wrapping_add(DiffPlan::stamp(
                            w.vptr(v as u32),
                            w.gen_at(phase, v as u32),
                        ));
                        reached += 1;
                    }
                }
            }
            prop_assert_eq!(
                got[node as usize], (sum, reached),
                "node {} closure diverged from Floyd–Warshall reference", node
            );
        }
    }

    /// The distributed setops run agrees with a `BTreeSet` model: range
    /// sums against the initial set, final membership after applying every
    /// node's (machine-wide distinct) insert/delete batch.
    #[test]
    fn setops_matches_btreeset_model(
        seed in any::<u64>(),
        universe in 256u64..1024,
        ops_per_node in 8usize..48,
        fill in 100u32..900,
    ) {
        use dpa::apps::setops_dist::{key_stamp, SetOp, SetopsApp, SetopsParams, SetopsWorld};
        use std::collections::BTreeSet;
        let ops_per_node = ops_per_node.min(universe as usize / 4);
        let w = SetopsWorld::build(SetopsParams {
            universe,
            ops_per_node,
            fill_permille: fill,
            seed,
            ..SetopsParams::default()
        });
        let initial: BTreeSet<u64> =
            (0..universe).filter(|&k| w.initially_present(k)).collect();
        // Model: ranges read the initial set (phase-immutable reads);
        // mutations land at the barrier. Keys are machine-wide distinct,
        // so application order cannot matter.
        let mut model = initial.clone();
        let mut model_range = [0u64; 4];
        for node in 0..4u16 {
            for op in w.batch(node) {
                match *op {
                    SetOp::Insert(k) => { model.insert(k); }
                    SetOp::Delete(k) => { model.remove(&k); }
                    SetOp::Range(lo, hi) => {
                        for &k in initial.range(lo..hi) {
                            model_range[node as usize] =
                                model_range[node as usize].wrapping_add(key_stamp(k));
                        }
                    }
                }
            }
        }
        let mut got = [(0u64, 0u64); 4];
        let (report, snaps) = run_phase_dst(
            4,
            NetConfig::default(),
            DpaConfig::dpa(4),
            &DstOptions::default(),
            |i| SetopsApp::new(w.clone(), i),
            |i, app: &SetopsApp| got[i as usize] = (app.range_sum, app.final_digest()),
        );
        prop_assert!(report.completed, "stalled: {}", report.stall_summary());
        let v = check_completed(&snaps, false);
        prop_assert!(v.is_empty(), "violation: {}", v[0]);
        for node in 0..4u16 {
            let digest: u64 = model
                .iter()
                .filter(|&&k| w.bucket_range(node).contains(&w.bucket_of(k)))
                .fold(0u64, |acc, &k| acc.wrapping_add(key_stamp(k)));
            prop_assert_eq!(
                got[node as usize],
                (model_range[node as usize], digest),
                "node {} diverged from the BTreeSet model", node
            );
        }
    }

    /// Read-mostly replication is semantically invisible under faults:
    /// on random skewed graph worlds, a replicating differential run
    /// under a drop/dup/delay plan either completes with checksums
    /// bit-identical to the single-home differential ground truth, or
    /// (under real loss) stalls with a diagnosis — it never completes
    /// with a stale replica read. Completed runs pass the full oracle
    /// battery (replica broadcast conservation and directory coherence
    /// included), and the generation an owner publishes for a replicated
    /// pointer is monotone across phases.
    #[test]
    fn replicated_reads_equal_single_home_reads(
        seed in any::<u64>(),
        n in 48usize..96,
        skew in 1.2f64..2.2,
        plan_idx in 0usize..4,
    ) {
        use dpa::apps::graph_dist::{GraphApp, GraphParams, GraphWorld};
        use dpa::runtime::run_phase_differential;
        use dpa::sim_net::FaultPlan;
        const PHASES: usize = 3;
        const NODES: u16 = 4;
        let world = GraphWorld::build(GraphParams {
            n,
            skew,
            seed,
            root_stride: 2,
            ..GraphParams::default()
        });
        let plan = match plan_idx {
            0 => FaultPlan::none(),
            1 => FaultPlan::drop(seed ^ 0xD0, 0.02),
            2 => FaultPlan::duplicate(seed ^ 0xD1, 0.10),
            _ => FaultPlan::delay(seed ^ 0xD2, 0.30, 40_000),
        };
        let run = |cfg: DpaConfig, faults: FaultPlan| {
            let mut sums = vec![(0u64, 0u64); PHASES * NODES as usize];
            let (reports, snap_sets, _) = run_phase_differential(
                NODES,
                NetConfig::default(),
                cfg,
                &DstOptions { faults, ..DstOptions::default() },
                PHASES,
                |ph, i| GraphApp::new(world.clone(), i, ph as u32),
                |ph, i, app: &GraphApp| {
                    sums[ph * NODES as usize + i as usize] = (app.sum, app.reached)
                },
            );
            (sums, reports, snap_sets)
        };
        // Single-home ground truth: plain differential, no faults.
        let (truth, t_reports, _) = run(DpaConfig::dpa_differential(8), FaultPlan::none());
        prop_assert!(t_reports.iter().all(|r| r.completed), "ground-truth run stalled");
        // Replicated run under the fault plan.
        let (got, reports, snap_sets) = run(DpaConfig::dpa_replicating(8), plan);
        let completed = reports.iter().all(|r| r.completed);
        let dropped: u64 = reports.iter().map(|r| r.stats.dropped_packets).sum();
        if plan_idx != 1 {
            // Dup and delay are lossless: dedup and reordering tolerance
            // must carry the run to completion.
            prop_assert!(completed, "lossless plan stalled: {}",
                reports.iter().map(|r| r.stall_summary()).collect::<Vec<_>>().join(" | "));
        }
        if completed {
            prop_assert_eq!(&got, &truth, "replicated reads diverged from single-home reads");
            for snaps in &snap_sets {
                let v = check_completed(snaps, dropped > 0);
                prop_assert!(v.is_empty(), "oracle violation: {}", v[0]);
            }
        } else {
            prop_assert!(
                reports.iter().any(|r| !r.completed && !r.stall_summary().is_empty()),
                "stalled without a diagnosis"
            );
        }
        // Published generations are monotone per pointer across phases: a
        // fault can delay or drop a broadcast, but it can never make an
        // owner republish an older generation.
        let mut last: HashMap<u64, u32> = HashMap::new();
        for snaps in &snap_sets {
            for s in snaps {
                for &(ptr, gen) in &s.replica_dir {
                    if let Some(&prev) = last.get(&ptr) {
                        prop_assert!(
                            gen >= prev,
                            "replica generation regressed for {:#x}: {} -> {}", ptr, prev, gen
                        );
                    }
                    last.insert(ptr, gen);
                }
            }
        }
    }

    /// Octrees contain every body exactly once and match direct gravity
    /// at θ = 0.
    #[test]
    fn octree_invariants_random_bodies(n in 2usize..120, seed in any::<u64>()) {
        let bodies = uniform_cube(n, seed);
        let tree = Octree::build(&bodies, 4);
        prop_assert_eq!(tree.check_invariants(&bodies), n);
        // θ = 0 walk equals direct summation.
        let params = dpa::nbody::bh::BhParams { theta: 0.0, eps: 0.02 };
        let w = dpa::nbody::bh::walk(&tree, &bodies, 0, params);
        let d = direct_accel(&bodies, 0, 0.02);
        prop_assert!((w.acc - d).norm() <= 1e-9 * d.norm().max(1e-9));
    }
}
