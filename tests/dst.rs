//! DST-focused properties: fault injection (duplicate / delay / drop)
//! against the runtime's idempotence and conservation guarantees, over
//! randomized worlds and fault seeds.

use dpa::apps::bh_dist::{BhApp, BhCost, BhWorld};
use dpa::apps::relax::{RelaxApp, RelaxWorld};
use dpa::global_heap::{ArrivalSet, GPtr, ObjClass};
use dpa::nbody::bh::BhParams;
use dpa::nbody::distrib::plummer;
use dpa::runtime::invariant::Violation;
use dpa::runtime::synth::{SynthApp, SynthParams, SynthWorld};
use dpa::runtime::{
    check_completed, check_conservation, run_phase_dst, run_phase_migrating, DpaConfig, DstOptions,
};
use dpa::sim_net::{FaultPlan, NetConfig, NodePause};
use proptest::prelude::*;

fn synth_world(seed: u64, nodes: u16, remote: f64) -> std::sync::Arc<SynthWorld> {
    SynthWorld::build(SynthParams {
        nodes,
        lists_per_node: 6,
        list_len: 12,
        remote_fraction: remote,
        shared_fraction: 0.4,
        record_bytes: 32,
        work_ns: 200,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The arrival set is the reply-side dedup: re-inserting a pointer
    /// reports stale and changes no accounting, whatever the interleaving
    /// of fresh and duplicate inserts.
    #[test]
    fn arrival_set_insert_is_idempotent(
        seed in any::<u64>(),
        n in 1usize..60,
        dup_every in 1usize..5,
    ) {
        let mut rng = dpa::sim_net::Rng::new(seed);
        let mut set = ArrivalSet::new();
        let mut inserted: Vec<(GPtr, u32)> = Vec::new();
        for i in 0..n {
            if !inserted.is_empty() && i % dup_every == 0 {
                // Duplicate delivery of an already-installed object.
                let (p, size) = inserted[rng.below(inserted.len() as u64) as usize];
                let before = (set.len(), set.bytes(), set.total_inserts());
                prop_assert!(!set.insert(p, size + 7), "duplicate reported fresh");
                prop_assert_eq!(before, (set.len(), set.bytes(), set.total_inserts()));
                prop_assert!(set.contains(p));
            } else {
                let p = GPtr::new(rng.below(4) as u16, ObjClass(0), i as u64);
                let size = 16 + rng.below(64) as u32;
                prop_assert!(set.insert(p, size));
                inserted.push((p, size));
            }
        }
        prop_assert_eq!(set.len(), inserted.len());
        prop_assert_eq!(set.total_inserts(), inserted.len() as u64);
    }

    /// Duplicated replies never double-install: under an aggressive
    /// duplicate plan both the DPA and caching drivers still produce
    /// bit-exact checksums, drain M/D, and conserve requests/replies.
    #[test]
    fn duplicated_replies_never_double_install(
        seed in any::<u64>(),
        nodes in 2u16..6,
        remote in 0.2f64..0.9,
        dup_p in 0.1f64..0.9,
    ) {
        let world = synth_world(seed, nodes, remote);
        let expected: Vec<u64> = (0..nodes).map(|n| world.expected_sum(n)).collect();
        for cfg in [DpaConfig::dpa(4), DpaConfig::caching()] {
            let opts = DstOptions {
                schedule_seed: Some(seed),
                faults: FaultPlan::duplicate(seed ^ 0xD0_D0, dup_p),
                ..DstOptions::default()
            };
            let mut sums = vec![0u64; nodes as usize];
            let (report, snaps) = run_phase_dst(
                nodes,
                NetConfig::default(),
                cfg,
                &opts,
                |i| SynthApp::new(world.clone(), i, 200),
                |i, app| sums[i as usize] = app.sum,
            );
            prop_assert!(report.completed, "dup plan stalled: {}", report.stall_summary());
            prop_assert!(
                report.stats.duplicated_packets > 0 || nodes == 1,
                "plan injected nothing"
            );
            prop_assert_eq!(&sums, &expected);
            let violations = check_completed(&snaps, false);
            prop_assert!(violations.is_empty(), "violation: {}", violations[0]);
        }
    }

    /// Duplicated updates never double-apply `Emit::Accum`: one relax
    /// sweep under a duplicate plan matches the host oracle exactly as
    /// often as the baseline does (per-seq dedup makes application
    /// exactly-once), and update conservation holds machine-wide.
    #[test]
    fn duplicated_updates_never_double_apply(
        seed in any::<u64>(),
        nodes in 2u16..5,
        remote in 0.2f64..0.8,
        dup_p in 0.1f64..0.9,
    ) {
        let world = RelaxWorld::build(60, nodes, 4, remote, seed);
        let expected = world.expected();
        let opts = DstOptions {
            schedule_seed: Some(seed),
            faults: FaultPlan::duplicate(seed ^ 0xD0_D0, dup_p),
            ..DstOptions::default()
        };
        let mut next = vec![0.0f64; expected.len()];
        let (report, snaps) = run_phase_dst(
            nodes,
            NetConfig::default(),
            DpaConfig::dpa(6),
            &opts,
            |i| RelaxApp::new(world.clone(), i),
            |i, app: &RelaxApp| {
                for v in world.range(i) {
                    next[v] = app.next[v];
                }
            },
        );
        prop_assert!(report.completed, "dup plan stalled: {}", report.stall_summary());
        for (v, (got, want)) in next.iter().zip(&expected).enumerate() {
            let err = (got - want).abs() / want.abs().max(1e-12);
            prop_assert!(err < 1e-9, "vertex {v}: {got} vs {want} (double-applied?)");
        }
        let violations = check_completed(&snaps, false);
        prop_assert!(violations.is_empty(), "violation: {}", violations[0]);
        let emitted: u64 = snaps.iter().map(|s| s.updates_emitted).sum();
        let applied: u64 = snaps.iter().map(|s| s.updates_applied).sum();
        prop_assert_eq!(emitted, applied);
    }

    /// Drop plans either complete (losing only fire-and-forget updates)
    /// or stall with a diagnosis naming the stuck state; conservation
    /// holds either way and updates are never over-applied.
    #[test]
    fn drops_stall_with_diagnosis_or_lose_only_updates(
        seed in any::<u64>(),
        nodes in 2u16..5,
        drop_p in 0.005f64..0.08,
    ) {
        let world = synth_world(seed, nodes, 0.5);
        let expected: Vec<u64> = (0..nodes).map(|n| world.expected_sum(n)).collect();
        let opts = DstOptions {
            schedule_seed: Some(seed),
            faults: FaultPlan::drop(seed ^ 0x0D0D, drop_p),
            ..DstOptions::default()
        };
        let mut sums = vec![0u64; nodes as usize];
        let (report, snaps) = run_phase_dst(
            nodes,
            NetConfig::default(),
            DpaConfig::dpa(4),
            &opts,
            |i| SynthApp::new(world.clone(), i, 200),
            |i, app| sums[i as usize] = app.sum,
        );
        if report.completed {
            // Synth has no updates, so a completed run dropped nothing
            // and must be exact.
            prop_assert_eq!(report.stats.dropped_packets, 0);
            prop_assert_eq!(&sums, &expected);
            prop_assert!(check_completed(&snaps, true).is_empty());
        } else {
            prop_assert!(report.stats.dropped_packets > 0);
            prop_assert!(!report.stalls.is_empty(), "stall without diagnosis");
            // Some stuck node must name what it is waiting for.
            prop_assert!(
                report.stalls.iter().any(|s| s.detail.is_some()),
                "no stall detail: {}",
                report.stall_summary()
            );
            let violations: Vec<Violation> = check_conservation(&snaps);
            prop_assert!(violations.is_empty(), "violation: {}", violations[0]);
        }
    }

    /// The reply-path scheduler partitions payload exactly: whatever the
    /// interleaving of pushes, budget flushes, deadline flushes, and the
    /// final drain, every entry and every byte pushed into a
    /// `ByteCoalescer` comes back out exactly once.
    #[test]
    fn byte_coalescer_partitions_entries_and_bytes(
        seed in any::<u64>(),
        nodes in 1u16..6,
        window in 1usize..12,
        budget in 64u64..4096,
        n in 1usize..200,
    ) {
        let mut rng = dpa::sim_net::Rng::new(seed);
        let mut c = dpa::fastmsg::ByteCoalescer::<u64>::new(nodes.into(), budget, window);
        let mut now = 0u64;
        let mut entries_out = 0usize;
        let mut bytes_in = 0u64;
        for i in 0..n as u64 {
            now += rng.below(5_000);
            let dst = rng.below(nodes as u64) as u16;
            // Occasionally exceed the budget so oversized items exercise
            // the travel-alone path.
            let sz = 1 + rng.below(budget + budget / 4);
            bytes_in += sz;
            for batch in c.push(dst, i, sz, now) {
                prop_assert!(!batch.is_empty());
                entries_out += batch.len();
            }
            if i % 7 == 0 {
                for (_, batch) in c.take_due(now, 10_000) {
                    entries_out += batch.len();
                }
            }
        }
        for (_, batch) in c.drain_all() {
            entries_out += batch.len();
        }
        prop_assert!(c.is_empty());
        prop_assert_eq!(entries_out, n, "entries lost or invented");
        prop_assert_eq!(c.total_pushed(), n as u64);
        prop_assert_eq!(c.total_pushed_bytes(), bytes_in);
    }

    /// Reply-path coalescing conserves payload exactly under every fault
    /// plan: with the owner-side scheduler on (varying window and
    /// deadline), drop / duplicate / delay plans never lose or invent a
    /// reply entry, and lossless plans stay bit-exact with the oracle.
    #[test]
    fn reply_coalescing_conserves_under_faults(
        seed in any::<u64>(),
        nodes in 2u16..5,
        reply_agg_window in 2usize..64,
        deadline_ns in 1_000u64..80_000,
        plan in 0usize..3,
    ) {
        let world = synth_world(seed, nodes, 0.6);
        let expected: Vec<u64> = (0..nodes).map(|n| world.expected_sum(n)).collect();
        let cfg = DpaConfig {
            reply_agg_window,
            reply_flush_deadline_ns: deadline_ns,
            ..DpaConfig::dpa(4)
        };
        let faults = match plan {
            0 => FaultPlan::drop(seed ^ 0x0D0D, 0.02),
            1 => FaultPlan::duplicate(seed ^ 0xD0_D0, 0.5),
            _ => FaultPlan::delay(seed ^ 0xDE1A, 0.5, 80_000),
        };
        let opts = DstOptions {
            schedule_seed: Some(seed),
            faults,
            ..DstOptions::default()
        };
        let mut sums = vec![0u64; nodes as usize];
        let (report, snaps) = run_phase_dst(
            nodes,
            NetConfig::default(),
            cfg,
            &opts,
            |i| SynthApp::new(world.clone(), i, 200),
            |i, app| sums[i as usize] = app.sum,
        );
        // Reply-path (and every other) conservation holds on any run,
        // completed or stalled, lossy or not.
        let violations = check_conservation(&snaps);
        prop_assert!(violations.is_empty(), "violation: {}", violations[0]);
        for s in &snaps {
            prop_assert_eq!(
                s.reply_pushed,
                s.reply_sent + s.reply_buffered as u64,
                "reply scheduler leaked on n{}", s.node
            );
        }
        if plan == 0 {
            // Drops may stall; a stall must carry a diagnosis.
            if !report.completed {
                prop_assert!(report.stats.dropped_packets > 0);
                prop_assert!(!report.stalls.is_empty(), "stall without diagnosis");
                return;
            }
            prop_assert_eq!(report.stats.dropped_packets, 0);
        }
        prop_assert!(report.completed, "lossless plan stalled: {}", report.stall_summary());
        prop_assert_eq!(&sums, &expected);
        let violations = check_completed(&snaps, plan == 0);
        prop_assert!(violations.is_empty(), "violation: {}", violations[0]);
    }

    /// Locality-driven object migration under lossless fault plans
    /// (duplicate / delay / pause): every phase completes, the multi-phase
    /// sums stay bit-exact with the host oracle, and the migration oracles
    /// hold — shipments conserved, chains one hop, no object lost, no
    /// orphan stranded, affinity balanced — per phase *and* across the
    /// whole run (single-home exclusivity over carried tables).
    #[test]
    fn migration_survives_lossless_faults(
        seed in any::<u64>(),
        nodes in 2u16..5,
        remote in 0.3f64..0.9,
        plan in 0usize..3,
    ) {
        let world = synth_world(seed, nodes, remote);
        let expected: Vec<u64> = (0..nodes).map(|n| world.expected_sum(n)).collect();
        let faults = match plan {
            0 => FaultPlan::duplicate(seed ^ 0xD0_D0, 0.5),
            1 => FaultPlan::delay(seed ^ 0xDE1A, 0.5, 80_000),
            _ => FaultPlan {
                pauses: vec![NodePause {
                    node: (seed % nodes as u64) as u16,
                    from_ns: 20_000,
                    until_ns: 160_000,
                }],
                ..FaultPlan::default()
            },
        };
        let opts = DstOptions { schedule_seed: Some(seed), faults, ..DstOptions::default() };
        let phases = 3usize;
        let mut sums = vec![0u64; phases * nodes as usize];
        let (reports, snap_sets, _tables) = run_phase_migrating(
            nodes,
            NetConfig::default(),
            DpaConfig::dpa_migrating(4),
            &opts,
            phases,
            |_, i| SynthApp::new(world.clone(), i, 200),
            |ph, i, app: &SynthApp| sums[ph * nodes as usize + i as usize] = app.sum,
        );
        for (ph, r) in reports.iter().enumerate() {
            prop_assert!(
                r.completed,
                "lossless plan {plan} stalled phase {ph}: {}",
                r.stall_summary()
            );
        }
        for ph in 0..phases {
            for n in 0..nodes as usize {
                prop_assert_eq!(
                    sums[ph * nodes as usize + n], expected[n],
                    "phase {} node {} sum diverged", ph, n
                );
            }
        }
        for (ph, snaps) in snap_sets.iter().enumerate() {
            let violations = check_completed(snaps, false);
            prop_assert!(violations.is_empty(), "phase {}: {}", ph, violations[0]);
        }
        let flat: Vec<_> = snap_sets.concat();
        let violations = check_completed(&flat, false);
        prop_assert!(violations.is_empty(), "cross-phase: {}", violations[0]);
    }

    /// Delay plans reorder but never lose: results and invariants match
    /// the fault-free run exactly.
    #[test]
    fn delays_reorder_but_preserve_results(
        seed in any::<u64>(),
        nodes in 2u16..5,
        delay_p in 0.1f64..0.9,
    ) {
        let world = synth_world(seed, nodes, 0.5);
        let expected: Vec<u64> = (0..nodes).map(|n| world.expected_sum(n)).collect();
        let opts = DstOptions {
            schedule_seed: Some(seed),
            faults: FaultPlan::delay(seed ^ 0xDE1A, delay_p, 80_000),
            ..DstOptions::default()
        };
        let mut sums = vec![0u64; nodes as usize];
        let (report, snaps) = run_phase_dst(
            nodes,
            NetConfig::default(),
            DpaConfig::dpa(4),
            &opts,
            |i| SynthApp::new(world.clone(), i, 200),
            |i, app| sums[i as usize] = app.sum,
        );
        prop_assert!(report.completed, "delay plan stalled: {}", report.stall_summary());
        prop_assert_eq!(&sums, &expected);
        prop_assert!(check_completed(&snaps, false).is_empty());
    }
}

/// Migration must move data, never results: the multi-phase integer
/// checksums are bit-identical with migration ON vs OFF and across strip
/// sizes {1, 4, 16}, on both the synthetic workload and Barnes-Hut.
#[test]
fn migration_and_strip_size_preserve_checksums() {
    let phases = 3usize;

    // Synthetic pointer chasing, 4 nodes.
    let world = synth_world(0xC0FFEE, 4, 0.6);
    let mut baseline: Option<Vec<u64>> = None;
    for strip in [1usize, 4, 16] {
        for migrate in [false, true] {
            let cfg = if migrate {
                DpaConfig::dpa_migrating(strip)
            } else {
                DpaConfig::dpa(strip)
            };
            let mut sums = vec![0u64; phases * 4];
            let (reports, snap_sets, _) = run_phase_migrating(
                4,
                NetConfig::default(),
                cfg,
                &DstOptions::default(),
                phases,
                |_, i| SynthApp::new(world.clone(), i, 200),
                |ph, i, app: &SynthApp| sums[ph * 4 + i as usize] = app.sum,
            );
            assert!(reports.iter().all(|r| r.completed));
            for snaps in &snap_sets {
                let v = check_completed(snaps, false);
                assert!(v.is_empty(), "strip={strip} migrate={migrate}: {}", v[0]);
            }
            match &baseline {
                None => baseline = Some(sums),
                Some(b) => assert_eq!(&sums, b, "strip={strip} migrate={migrate}"),
            }
        }
    }

    // Barnes-Hut, 4 nodes: the interaction checksum is a commutative sum,
    // so it must not feel placement, scheduling, or migration at all.
    let world = BhWorld::build(
        plummer(160, 71),
        4,
        8,
        BhParams::default(),
        BhCost::default(),
    );
    let mut baseline: Option<Vec<u64>> = None;
    for strip in [1usize, 4, 16] {
        for migrate in [false, true] {
            let cfg = if migrate {
                DpaConfig::dpa_migrating(strip)
            } else {
                DpaConfig::dpa(strip)
            };
            let mut hashes = vec![0u64; phases * 4];
            let (reports, _, _) = run_phase_migrating(
                4,
                NetConfig::default(),
                cfg,
                &DstOptions::default(),
                phases,
                |_, i| BhApp::new(world.clone(), i),
                |ph, i, app: &BhApp| hashes[ph * 4 + i as usize] = app.interaction_hash,
            );
            assert!(reports.iter().all(|r| r.completed));
            match &baseline {
                None => baseline = Some(hashes),
                Some(b) => assert_eq!(&hashes, b, "strip={strip} migrate={migrate}"),
            }
        }
    }
}

/// Issue-9 regression: a single hot hub whose record spans several packets
/// and whose reply fan-out exceeds the owner's entry window. The owner must
/// force out partial batches (window overflow), segment the hub record at
/// the MTU, and still balance both the aggregate reply-path law and the
/// per-key hot-hub ledger — with the extra packets charged honestly, never
/// dropped from the accounting.
#[test]
fn hot_hub_reply_fanout_exceeds_entry_window() {
    use dpa::apps::graph_dist::{GraphApp, GraphParams, GraphWorld};
    use dpa::fastmsg::{packets_for, Mtu};

    // Vertex 0 (node 0) gets degree 2 + 120 = 122 edges: a 504-byte record
    // that spans 4+ packets at Mtu(128), while tail vertices stay tiny.
    let params = GraphParams {
        n: 64,
        nodes: 4,
        degree: 2,
        skew: 1.8,
        hub_extra: 120,
        phases: 1,
        rewire_permille: 0,
        root_stride: 3,
        seed: 0x040B_1337,
    };
    let world = GraphWorld::build(params);
    let hub = world.vptr(0);
    let hub_entry = world.vertex_bytes(0) + GPtr::WIRE_BYTES;
    let mtu = Mtu(128);
    assert!(
        packets_for(hub_entry, mtu) >= 3,
        "fixture lost its point: hub entry is {hub_entry}B, not multi-packet at {}B",
        mtu.0
    );
    let expected: Vec<(u64, u64)> = (0..4).map(|i| world.expected(0, i)).collect();

    let run = |mtu: Mtu, faults: FaultPlan| {
        let cfg = DpaConfig {
            mtu,
            reply_agg_window: 2, // hub fan-out (3 consumers x many entries) overflows this
            ..DpaConfig::dpa(4)
        };
        let mut got = vec![(0u64, 0u64); 4];
        let opts = DstOptions {
            faults,
            ..DstOptions::default()
        };
        let (report, snaps) = run_phase_dst(
            4,
            NetConfig::default(),
            cfg,
            &opts,
            |i| GraphApp::new(world.clone(), i, 0),
            |i, app: &GraphApp| got[i as usize] = (app.sum, app.reached),
        );
        assert!(report.completed, "stalled: {}", report.stall_summary());
        assert_eq!(got, expected, "closure checksum diverged at mtu {}", mtu.0);
        let v = check_completed(&snaps, false);
        assert!(v.is_empty(), "mtu {}: {}", mtu.0, v[0]);
        for s in &snaps {
            assert_eq!(
                s.reply_pushed,
                s.reply_sent + s.reply_buffered as u64,
                "reply scheduler leaked on n{}",
                s.node
            );
        }
        // The hub is node 0's hottest reply key, served at least once to
        // every remote node, and its per-key ledger balances exactly.
        let hot = &snaps[0].reply_hot;
        let (_, pushed, sent) = *hot
            .iter()
            .find(|&&(bits, _, _)| bits == hub.bits())
            .unwrap_or_else(|| panic!("hub missing from node-0 hot keys: {hot:?}"));
        assert_eq!(pushed, sent, "hub reply ledger unbalanced");
        assert!(pushed >= 3, "hub fan-out {pushed} < one serve per remote node");
        (report, snaps)
    };

    let (narrow, _) = run(mtu, FaultPlan::none());
    let (wide, _) = run(Mtu(4096), FaultPlan::none());
    // Honest multi-packet accounting: the narrow-MTU run segments the hub
    // record (and every over-window batch) into strictly more packets, and
    // every extra packet is charged as owner overhead — so total overhead
    // must strictly exceed the single-packet-per-message run's.
    let over = |r: &dpa::sim_net::RunReport| r.stats.sum(|s| s.overhead.as_ns());
    assert!(
        over(&narrow) > over(&wide),
        "extra packets not charged: narrow-MTU overhead {} <= wide-MTU {}",
        over(&narrow),
        over(&wide)
    );

    // Duplicated delivery double-serves requests; pushed and sent advance
    // together, so the per-key ledger must still balance.
    run(mtu, FaultPlan::duplicate(0xD0B, 0.5));
}
