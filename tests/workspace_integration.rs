//! Cross-crate integration: the full pipeline (language → compiler →
//! runtime → simulator) and the applications, exercised through the
//! public facade crate.

use dpa::compiler::{compile_source, IccApp, IccWorldBuilder, Value};
use dpa::global_heap::GPtr;
use dpa::runtime::synth::{SynthApp, SynthParams, SynthWorld};
use dpa::runtime::{run_phase, run_phase_faulty, DpaConfig};
use dpa::sim_net::{NetConfig, Rng};

#[test]
fn facade_reexports_compose() {
    // Build a world with the runtime's synthetic workload through the
    // facade paths only.
    let world = SynthWorld::build(SynthParams {
        nodes: 4,
        ..SynthParams::default()
    });
    let mut sum = 0u64;
    let report = run_phase(
        4,
        NetConfig::default(),
        DpaConfig::dpa(8),
        |i| SynthApp::new(world.clone(), i, 500),
        |_, app| sum = sum.wrapping_add(app.sum),
    );
    assert!(report.completed);
    let expected: u64 = (0..4).map(|n| world.expected_sum(n)).sum();
    assert_eq!(sum, expected);
}

#[test]
fn language_to_simulator_round_trip() {
    // A Mini-ICC kernel mixing every language feature, run under DPA and
    // checked against a host-computed oracle.
    let prog = compile_source(
        "struct Item { w: float; n: Item*; }
         fn decay(head: Item*, steps: int) -> float {
           let total: float = 0.0;
           let i: int = 0;
           while (i < steps) {
             let p: Item* = head;
             while (p != null) {
               total = total + p->w / (1.0 + i);
               p = p->n;
             }
             i = i + 1;
           }
           return total;
         }",
    )
    .unwrap();

    let nodes = 3u16;
    let mut b = IccWorldBuilder::new(prog, "decay", nodes);
    let mut rng = Rng::new(77);
    let mut weights: Vec<f64> = Vec::new();
    let mut next = Value::Ptr(GPtr::NULL);
    for _ in 0..25 {
        let w = rng.below(1000) as f64 / 100.0;
        weights.push(w);
        let owner = rng.below(nodes as u64) as u16;
        next = Value::Ptr(b.alloc(owner, "Item", vec![Value::Float(w), next]));
    }
    let steps = 4i64;
    b.add_root(0, vec![next, Value::Int(steps)]);
    let world = b.build();

    let mut got = 0.0f64;
    run_phase(
        nodes,
        NetConfig::default(),
        DpaConfig::dpa(4),
        |i| IccApp::new(world.clone(), i),
        |_, app| got += app.float_sum,
    );
    let mut expected = 0.0f64;
    for i in 0..steps {
        // The interpreter walks the list head→tail; weights were pushed
        // tail-first, so iterate reversed.
        for w in weights.iter().rev() {
            expected += w / (1.0 + i as f64);
        }
    }
    assert!(
        (got - expected).abs() < 1e-9,
        "got {got}, expected {expected}"
    );
}

#[test]
fn fault_injection_reports_stall_without_hanging() {
    let world = SynthWorld::build(SynthParams {
        nodes: 4,
        remote_fraction: 0.5,
        ..SynthParams::default()
    });
    let net = NetConfig {
        drop_every: Some(7),
        ..NetConfig::default()
    };
    let report = run_phase_faulty(
        4,
        net,
        DpaConfig::dpa(8),
        |i| SynthApp::new(world.clone(), i, 500),
        |_, _| {},
    );
    assert!(!report.completed);
    assert!(report.stats.dropped_packets > 0);
}

#[test]
fn makespans_order_sensibly_across_the_stack() {
    let world = SynthWorld::build(SynthParams {
        nodes: 8,
        lists_per_node: 32,
        list_len: 32,
        remote_fraction: 0.5,
        shared_fraction: 0.6,
        ..SynthParams::default()
    });
    let time = |cfg: DpaConfig| {
        run_phase(
            8,
            NetConfig::default(),
            cfg,
            |i| SynthApp::new(world.clone(), i, 500),
            |_, _| {},
        )
        .makespan()
        .as_ns()
    };
    let dpa = time(DpaConfig::dpa(16));
    let base = time(DpaConfig::dpa_base(16));
    let blocking = time(DpaConfig::blocking());
    assert!(dpa < base, "full DPA {dpa} must beat Base {base}");
    assert!(base < blocking, "Base {base} must beat blocking {blocking}");
}

#[test]
fn compiled_kernel_matches_native_app_on_same_structure() {
    // The same logical list walk expressed (a) natively via SynthApp and
    // (b) in Mini-ICC must both visit every record exactly once per
    // traversal — cross-validated by record count.
    let prog = compile_source(
        "struct Node { val: int; next: Node*; }
         fn count(n: Node*) -> int {
           if (n == null) { return 0; }
           let rest: int = count(n->next);
           return rest + 1;
         }",
    )
    .unwrap();
    let nodes = 2u16;
    let mut b = IccWorldBuilder::new(prog, "count", nodes);
    let mut next = Value::Ptr(GPtr::NULL);
    for i in 0..40 {
        next = Value::Ptr(b.alloc((i % 2) as u16, "Node", vec![Value::Int(1), next]));
    }
    b.add_root(0, vec![next]);
    let world = b.build();
    let mut count = 0i64;
    run_phase(
        nodes,
        NetConfig::default(),
        DpaConfig::dpa(4),
        |i| IccApp::new(world.clone(), i),
        |_, app| count += app.int_sum,
    );
    assert_eq!(count, 40);
}
