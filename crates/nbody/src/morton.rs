//! Morton (Z-order) codes, used to partition bodies and tree cells across
//! nodes with spatial locality (a simple stand-in for SPLASH-2's
//! costzones/ORB partitioners).

use crate::vec3::Vec3;

/// Spread the low 21 bits of `v` so consecutive bits land 3 apart.
#[inline]
fn spread3(v: u64) -> u64 {
    let mut x = v & 0x1F_FFFF; // 21 bits
    x = (x | (x << 32)) & 0x1F00000000FFFF;
    x = (x | (x << 16)) & 0x1F0000FF0000FF;
    x = (x | (x << 8)) & 0x100F00F00F00F00F;
    x = (x | (x << 4)) & 0x10C30C30C30C30C3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Spread the low 31 bits of `v` so consecutive bits land 2 apart.
#[inline]
fn spread2(v: u64) -> u64 {
    let mut x = v & 0x7FFF_FFFF;
    x = (x | (x << 16)) & 0x0000FFFF0000FFFF;
    x = (x | (x << 8)) & 0x00FF00FF00FF00FF;
    x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0F;
    x = (x | (x << 2)) & 0x3333333333333333;
    x = (x | (x << 1)) & 0x5555555555555555;
    x
}

/// 63-bit 3D Morton code of a point inside the cube
/// `[lo, lo + extent]^3`. Points outside are clamped.
pub fn morton3(p: Vec3, lo: Vec3, extent: f64) -> u64 {
    debug_assert!(extent > 0.0);
    let scale = ((1u64 << 21) - 1) as f64;
    let q = |v: f64, l: f64| (((v - l) / extent).clamp(0.0, 1.0) * scale) as u64;
    (spread3(q(p.x, lo.x)) << 2) | (spread3(q(p.y, lo.y)) << 1) | spread3(q(p.z, lo.z))
}

/// 62-bit 2D Morton code of a point inside `[0,1]^2` (clamped).
pub fn morton2(x: f64, y: f64) -> u64 {
    let scale = ((1u64 << 31) - 1) as f64;
    let q = |v: f64| ((v.clamp(0.0, 1.0)) * scale) as u64;
    (spread2(q(x)) << 1) | spread2(q(y))
}

/// Split `n` items (already Morton-sorted) into `parts` contiguous chunks
/// of near-equal size; returns the start index of each chunk plus a final
/// `n` sentinel.
pub fn even_splits(n: usize, parts: usize) -> Vec<usize> {
    assert!(parts >= 1);
    let mut out = Vec::with_capacity(parts + 1);
    for i in 0..=parts {
        out.push(i * n / parts);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morton3_orders_octants() {
        let lo = Vec3::new(0.0, 0.0, 0.0);
        // The all-low octant precedes the all-high octant.
        let a = morton3(Vec3::new(0.1, 0.1, 0.1), lo, 1.0);
        let b = morton3(Vec3::new(0.9, 0.9, 0.9), lo, 1.0);
        assert!(a < b);
    }

    #[test]
    fn morton3_octant_blocks() {
        // The top three interleaved bits are the octant: every point in
        // the all-low octant sorts before every point in the all-high one.
        let lo = Vec3::new(0.0, 0.0, 0.0);
        let lows = [
            Vec3::new(0.1, 0.2, 0.3),
            Vec3::new(0.45, 0.45, 0.01),
            Vec3::new(0.3, 0.05, 0.49),
        ];
        let highs = [
            Vec3::new(0.6, 0.7, 0.8),
            Vec3::new(0.51, 0.99, 0.55),
            Vec3::new(0.9, 0.52, 0.61),
        ];
        for l in lows {
            for h in highs {
                assert!(morton3(l, lo, 1.0) < morton3(h, lo, 1.0));
            }
        }
    }

    #[test]
    fn morton2_interleaves() {
        assert_eq!(morton2(0.0, 0.0), 0);
        assert!(morton2(0.3, 0.3) < morton2(0.8, 0.8));
    }

    #[test]
    fn clamping_out_of_range() {
        let lo = Vec3::new(0.0, 0.0, 0.0);
        assert_eq!(
            morton3(Vec3::new(-5.0, -5.0, -5.0), lo, 1.0),
            morton3(Vec3::new(0.0, 0.0, 0.0), lo, 1.0)
        );
        assert_eq!(morton2(2.0, 2.0), morton2(1.0, 1.0));
    }

    #[test]
    fn splits_cover_everything() {
        let s = even_splits(103, 8);
        assert_eq!(s.len(), 9);
        assert_eq!(s[0], 0);
        assert_eq!(s[8], 103);
        for w in s.windows(2) {
            assert!(w[0] <= w[1]);
            assert!(w[1] - w[0] <= 14);
        }
    }
}
