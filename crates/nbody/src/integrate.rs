//! Leapfrog (kick-drift-kick) time integration and energy diagnostics.
//!
//! The paper times the force-computation phase of a 4-step Barnes-Hut
//! run; this module supplies the step loop around that phase, plus the
//! standard energy-conservation check used to validate N-body codes.

use crate::bh::{all_accels, BhParams};
use crate::body::Body;
use crate::octree::Octree;
use crate::vec3::Vec3;

/// Total kinetic energy of the system.
pub fn kinetic_energy(bodies: &[Body]) -> f64 {
    bodies
        .iter()
        .map(|b| 0.5 * b.mass * b.vel.norm2())
        .sum()
}

/// Total (softened) gravitational potential energy, by direct summation.
pub fn potential_energy(bodies: &[Body], eps: f64) -> f64 {
    let mut pe = 0.0;
    for i in 0..bodies.len() {
        for j in (i + 1)..bodies.len() {
            let r2 = (bodies[i].pos - bodies[j].pos).norm2() + eps * eps;
            pe -= bodies[i].mass * bodies[j].mass / r2.sqrt();
        }
    }
    pe
}

/// Total energy (kinetic + potential).
pub fn total_energy(bodies: &[Body], eps: f64) -> f64 {
    kinetic_energy(bodies) + potential_energy(bodies, eps)
}

/// Advance `bodies` by one leapfrog step of size `dt` using Barnes-Hut
/// forces with a freshly-built tree (`leaf_cap` per leaf). Returns the
/// tree so callers can inspect it.
pub fn leapfrog_step(bodies: &mut [Body], dt: f64, leaf_cap: usize, params: BhParams) -> Octree {
    // Kick (half) with current accelerations.
    let tree = Octree::build(bodies, leaf_cap);
    let accs: Vec<Vec3> = all_accels(&tree, bodies, params)
        .into_iter()
        .map(|w| w.acc)
        .collect();
    for (b, a) in bodies.iter_mut().zip(&accs) {
        b.vel += *a * (dt * 0.5);
    }
    // Drift (full).
    for b in bodies.iter_mut() {
        b.pos += b.vel * dt;
    }
    // Kick (half) with new accelerations.
    let tree = Octree::build(bodies, leaf_cap);
    let accs: Vec<Vec3> = all_accels(&tree, bodies, params)
        .into_iter()
        .map(|w| w.acc)
        .collect();
    for (b, a) in bodies.iter_mut().zip(&accs) {
        b.vel += *a * (dt * 0.5);
    }
    tree
}

/// Run `steps` leapfrog steps; returns the relative total-energy drift
/// `|E_end − E_start| / |E_start|`.
pub fn run_steps(
    bodies: &mut [Body],
    steps: usize,
    dt: f64,
    leaf_cap: usize,
    params: BhParams,
) -> f64 {
    let e0 = total_energy(bodies, params.eps);
    for _ in 0..steps {
        leapfrog_step(bodies, dt, leaf_cap, params);
    }
    let e1 = total_energy(bodies, params.eps);
    (e1 - e0).abs() / e0.abs().max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distrib::plummer;

    #[test]
    fn two_body_circular_orbit_conserves_energy() {
        // Two equal masses on a circular orbit: v² = G m_other / (2 r)
        // for separation 2r about the barycenter (G = 1).
        let m: f64 = 0.5;
        let r: f64 = 1.0;
        let v = (m / (4.0 * r)).sqrt();
        let mut bodies = vec![
            Body {
                pos: Vec3::new(-r, 0.0, 0.0),
                vel: Vec3::new(0.0, -v, 0.0),
                mass: m,
            },
            Body {
                pos: Vec3::new(r, 0.0, 0.0),
                vel: Vec3::new(0.0, v, 0.0),
                mass: m,
            },
        ];
        let params = BhParams {
            theta: 0.0, // exact forces
            eps: 0.0,
        };
        let drift = run_steps(&mut bodies, 200, 0.01, 1, params);
        assert!(drift < 1e-4, "energy drift {drift}");
        // Still roughly at unit radius.
        let sep = (bodies[0].pos - bodies[1].pos).norm();
        assert!((sep - 2.0 * r).abs() < 0.05, "separation {sep}");
    }

    #[test]
    fn plummer_short_run_energy_bounded() {
        let mut bodies = plummer(300, 9);
        let params = BhParams::default();
        let drift = run_steps(&mut bodies, 4, 0.005, 4, params);
        // 4 paper-scale steps: drift stays small (softened, leapfrog).
        assert!(drift < 0.02, "energy drift {drift}");
    }

    #[test]
    fn momentum_is_conserved() {
        let mut bodies = plummer(200, 31);
        // Zero out net momentum first.
        let mut p = Vec3::ZERO;
        for b in &bodies {
            p += b.vel * b.mass;
        }
        let total_mass: f64 = bodies.iter().map(|b| b.mass).sum();
        for b in bodies.iter_mut() {
            b.vel = b.vel - p / total_mass;
        }
        let params = BhParams {
            theta: 0.0, // exact pairwise forces conserve momentum exactly
            eps: 0.05,
        };
        for _ in 0..3 {
            leapfrog_step(&mut bodies, 0.01, 4, params);
        }
        let mut p1 = Vec3::ZERO;
        for b in &bodies {
            p1 += b.vel * b.mass;
        }
        assert!(p1.norm() < 1e-10, "net momentum {p1:?}");
    }

    #[test]
    fn energies_have_expected_signs() {
        let bodies = plummer(100, 3);
        assert!(kinetic_energy(&bodies) >= 0.0);
        assert!(potential_energy(&bodies, 0.05) < 0.0);
    }
}
