//! Bodies (point masses) shared by both applications.

use crate::vec3::Vec3;

/// A point mass.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: Vec3,
    /// Velocity (carried for completeness; the timed phase computes
    /// accelerations only, as the paper times the force phase).
    pub vel: Vec3,
    /// Mass (or charge, for the 2D FMM where `z` is ignored).
    pub mass: f64,
}

impl Body {
    /// A stationary body.
    pub fn at(pos: Vec3, mass: f64) -> Body {
        Body {
            pos,
            vel: Vec3::ZERO,
            mass,
        }
    }
}

/// Gravitational acceleration exerted on a body at `pos` by a point mass
/// `(src_pos, src_mass)` with Plummer softening `eps`.
#[inline]
pub fn point_accel(pos: Vec3, src_pos: Vec3, src_mass: f64, eps: f64) -> Vec3 {
    let d = src_pos - pos;
    let r2 = d.norm2() + eps * eps;
    let r = r2.sqrt();
    d * (src_mass / (r2 * r))
}

/// Total gravitational acceleration on `bodies[i]` by direct summation —
/// the O(n²) oracle the tree codes are validated against.
pub fn direct_accel(bodies: &[Body], i: usize, eps: f64) -> Vec3 {
    let mut acc = Vec3::ZERO;
    let pi = bodies[i].pos;
    for (j, b) in bodies.iter().enumerate() {
        if j != i {
            acc += point_accel(pi, b.pos, b.mass, eps);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accel_points_toward_source() {
        let a = point_accel(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 2.0, 0.0);
        assert!(a.x > 0.0);
        assert_eq!(a.y, 0.0);
        // inverse square: m/r^2 = 2
        assert!((a.x - 2.0).abs() < 1e-12);
    }

    #[test]
    fn softening_bounds_close_encounters() {
        let hard = point_accel(Vec3::ZERO, Vec3::new(1e-9, 0.0, 0.0), 1.0, 0.0);
        let soft = point_accel(Vec3::ZERO, Vec3::new(1e-9, 0.0, 0.0), 1.0, 0.05);
        assert!(hard.x > soft.x);
        assert!(soft.x.is_finite());
    }

    #[test]
    fn direct_sum_symmetry() {
        // Two equal masses attract each other equally and oppositely.
        let bodies = [
            Body::at(Vec3::new(-1.0, 0.0, 0.0), 3.0),
            Body::at(Vec3::new(1.0, 0.0, 0.0), 3.0),
        ];
        let a0 = direct_accel(&bodies, 0, 0.0);
        let a1 = direct_accel(&bodies, 1, 0.0);
        assert!((a0 + a1).norm() < 1e-12);
        assert!(a0.x > 0.0 && a1.x < 0.0);
    }

    #[test]
    fn self_interaction_excluded() {
        let bodies = [Body::at(Vec3::ZERO, 5.0)];
        assert_eq!(direct_accel(&bodies, 0, 0.0), Vec3::ZERO);
    }
}
