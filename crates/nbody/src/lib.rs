//! # nbody — hierarchical N-body substrate
//!
//! From-scratch implementations of the two SPLASH-2 applications whose
//! force-computation phases the paper evaluates:
//!
//! * **Barnes-Hut** — octree construction ([`octree`]) and θ-criterion
//!   tree-walk force evaluation ([`bh`]), 3D, Plummer inputs;
//! * **FMM** — the 2D Greengard–Rokhlin fast multipole method, in both
//!   the uniform form ([`fmm`]: multipole/local expansions, M2M/M2L/L2L,
//!   interaction lists over a uniform quadtree ([`quadtree`])) and the
//!   **adaptive** form SPLASH-2 implements ([`afmm`]: variable-depth
//!   tree with the classic U/V/W/X lists).
//!
//! Everything here is sequential and simulator-free: it is the
//! *algorithmic truth* that the distributed variants in the `apps` crate
//! must reproduce bit-for-bit (they run the same arithmetic, scheduled
//! differently), and the direct-summation oracles validate both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod afmm;
pub mod bh;
pub mod body;
pub mod cx;
pub mod distrib;
pub mod fmm;
pub mod integrate;
pub mod morton;
pub mod octree;
pub mod quadtree;
pub mod vec3;

pub use afmm::{AfmmParams, AfmmSolver};
pub use bh::{BhParams, WalkResult};
pub use body::Body;
pub use cx::Cx;
pub use fmm::{FmmParams, FmmSolver, Local, Multipole};
pub use octree::{Cell, Octree};
pub use quadtree::{BoxId, QuadTree};
pub use vec3::Vec3;
