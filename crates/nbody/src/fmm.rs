//! The 2D fast multipole method (Greengard–Rokhlin), sequential reference.
//!
//! Potentials are complex-analytic: a source of charge `q` at `z0`
//! contributes `q·log(z − z0)`; the physical field at `z` is the complex
//! derivative `q/(z − z0)` (its conjugate is the force vector). The
//! SPLASH-2 FMM application is this method in its 2D adaptive form; we use
//! the uniform-refinement form, whose interaction lists have the same
//! communication structure.
//!
//! The paper runs FMM with **29 terms** (`p = 29`), which at the standard
//! well-separateness ratio converges far past double precision — our
//! accuracy tests verify machine-level agreement with direct summation.

use crate::cx::{Binomials, Cx};
use crate::quadtree::{BoxId, QuadTree};

/// FMM parameters.
#[derive(Clone, Copy, Debug)]
pub struct FmmParams {
    /// Number of expansion terms `p` (the paper's "29 terms").
    pub terms: usize,
    /// Finest refinement level of the quadtree.
    pub levels: u32,
}

impl Default for FmmParams {
    fn default() -> Self {
        FmmParams {
            terms: 29,
            levels: 4,
        }
    }
}

/// A multipole expansion about a box center: `coeffs[0]` is the total
/// charge `Q`; `coeffs[k]` (k ≥ 1) the `a_k` of
/// `Φ(z) = Q·log(z−c) + Σ a_k (z−c)^{-k}`.
#[derive(Clone, Debug, PartialEq)]
pub struct Multipole {
    /// `p + 1` coefficients.
    pub coeffs: Vec<Cx>,
}

/// A local (Taylor) expansion about a box center:
/// `Ψ(z) = Σ c_l (z−c)^l`.
#[derive(Clone, Debug, PartialEq)]
pub struct Local {
    /// `p + 1` coefficients.
    pub coeffs: Vec<Cx>,
}

impl Multipole {
    /// The zero expansion with `p` terms.
    pub fn zero(p: usize) -> Multipole {
        Multipole {
            coeffs: vec![Cx::ZERO; p + 1],
        }
    }

    /// Total charge represented.
    pub fn charge(&self) -> Cx {
        self.coeffs[0]
    }
}

impl Local {
    /// The zero expansion with `p` terms.
    pub fn zero(p: usize) -> Local {
        Local {
            coeffs: vec![Cx::ZERO; p + 1],
        }
    }

    /// Accumulate another local expansion.
    pub fn add_assign(&mut self, o: &Local) {
        debug_assert_eq!(self.coeffs.len(), o.coeffs.len());
        for (a, b) in self.coeffs.iter_mut().zip(&o.coeffs) {
            *a += *b;
        }
    }
}

/// Form the multipole expansion of point charges `(z_i, q_i)` about
/// `center` (P2M).
pub fn p2m(points: &[(Cx, f64)], center: Cx, p: usize) -> Multipole {
    let mut m = Multipole::zero(p);
    for &(z, q) in points {
        let d = z - center;
        m.coeffs[0] += Cx::real(q);
        let mut dk = Cx::ONE;
        for k in 1..=p {
            dk = dk * d;
            // a_k = -q d^k / k
            m.coeffs[k] += dk * (-q / k as f64);
        }
    }
    m
}

/// Shift a child multipole (center `zc`) to the parent center `zp`
/// (M2M); `d = zc − zp`.
pub fn m2m(child: &Multipole, d: Cx, bin: &Binomials) -> Multipole {
    let p = child.coeffs.len() - 1;
    let mut out = Multipole::zero(p);
    out.coeffs[0] = child.coeffs[0];
    // Powers of d.
    let mut dpow = vec![Cx::ONE; p + 1];
    for k in 1..=p {
        dpow[k] = dpow[k - 1] * d;
    }
    for l in 1..=p {
        // b_l = -Q d^l / l + Σ_{k=1..l} a_k d^{l-k} C(l-1, k-1)
        let mut b = dpow[l] * (child.coeffs[0] * (-1.0 / l as f64));
        for k in 1..=l {
            b += child.coeffs[k] * dpow[l - k] * bin.c(l - 1, k - 1);
        }
        out.coeffs[l] = b;
    }
    out
}

/// Convert a well-separated multipole (center `zs`) into a local expansion
/// about `zt` (M2L); `d = zs − zt`, which must be nonzero and
/// well-separated for convergence.
pub fn m2l(src: &Multipole, d: Cx, bin: &Binomials) -> Local {
    let p = src.coeffs.len() - 1;
    let mut out = Local::zero(p);
    let q = src.coeffs[0];
    let dinv = d.recip();
    // t_k = a_k (−1)^k / d^k for k ≥ 1
    let mut t = vec![Cx::ZERO; p + 1];
    let mut dik = Cx::ONE;
    #[allow(clippy::needless_range_loop)] // k drives both dik and the sign
    for k in 1..=p {
        dik = dik * dinv;
        let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
        t[k] = src.coeffs[k] * dik * sign;
    }
    // c_0 = Q log(−d) + Σ t_k
    let mut c0 = q * (-d).ln();
    for tk in t.iter().skip(1) {
        c0 += *tk;
    }
    out.coeffs[0] = c0;
    // c_l = (1/d^l) [ −Q/l + Σ_k t_k C(l+k−1, k−1) ]
    let mut dil = Cx::ONE;
    for l in 1..=p {
        dil = dil * dinv;
        let mut s = q * (-1.0 / l as f64);
        #[allow(clippy::needless_range_loop)] // k feeds the binomial index
        for k in 1..=p {
            s += t[k] * bin.c(l + k - 1, k - 1);
        }
        out.coeffs[l] = s * dil;
    }
    out
}

/// Shift a parent local expansion (center `zp`) to a child center `zc`
/// (L2L); `t = zc − zp`.
pub fn l2l(parent: &Local, t: Cx, bin: &Binomials) -> Local {
    let p = parent.coeffs.len() - 1;
    let mut out = Local::zero(p);
    let mut tpow = vec![Cx::ONE; p + 1];
    for k in 1..=p {
        tpow[k] = tpow[k - 1] * t;
    }
    for l in 0..=p {
        let mut s = Cx::ZERO;
        for k in l..=p {
            s += parent.coeffs[k] * tpow[k - l] * bin.c(k, l);
        }
        out.coeffs[l] = s;
    }
    out
}

/// Evaluate the *field* (complex derivative `Ψ'`) of a local expansion at
/// `z` (expansion center `c`).
pub fn eval_local_field(local: &Local, z: Cx, c: Cx) -> Cx {
    let w = z - c;
    // Horner on Σ l c_l w^{l-1}.
    let p = local.coeffs.len() - 1;
    let mut acc = Cx::ZERO;
    for l in (1..=p).rev() {
        acc = acc * w + local.coeffs[l] * (l as f64);
    }
    acc
}

/// Evaluate the field of a multipole expansion at a well-separated `z`
/// (expansion center `c`): `Φ'(z) = Q/(z−c) − Σ k a_k (z−c)^{-k-1}`.
pub fn eval_multipole_field(m: &Multipole, z: Cx, c: Cx) -> Cx {
    let w = z - c;
    let winv = w.recip();
    let p = m.coeffs.len() - 1;
    let mut acc = m.coeffs[0] * winv;
    let mut wk = winv;
    for k in 1..=p {
        wk = wk * winv; // w^{-(k+1)}
        acc += m.coeffs[k] * wk * (-(k as f64));
    }
    acc
}

/// Direct particle-particle field at `z` from sources `(z_i, q_i)`,
/// skipping any source closer than `1e-12` (self).
pub fn p2p_field(z: Cx, sources: &[(Cx, f64)]) -> Cx {
    let mut acc = Cx::ZERO;
    for &(zs, q) in sources {
        let d = z - zs;
        if d.norm2() > 1e-24 {
            acc += d.recip() * q;
        }
    }
    acc
}

/// A complete sequential FMM evaluation: fields at every particle.
///
/// This is both the correctness oracle for the distributed FMM and the
/// source of its per-operation costs.
pub struct FmmSolver {
    /// Parameters used.
    pub params: FmmParams,
    /// The quadtree.
    pub tree: QuadTree,
    /// Particle positions.
    pub zs: Vec<Cx>,
    /// Particle charges.
    pub qs: Vec<f64>,
    /// Multipole expansion per box (dense index).
    pub multipoles: Vec<Multipole>,
    /// Local expansion per box (dense index).
    pub locals: Vec<Local>,
    bin: Binomials,
}

impl FmmSolver {
    /// Build the tree and run the upward pass (P2M + M2M).
    pub fn new(zs: Vec<Cx>, qs: Vec<f64>, params: FmmParams) -> FmmSolver {
        assert_eq!(zs.len(), qs.len());
        let tree = QuadTree::build(&zs, params.levels);
        let p = params.terms;
        let bin = Binomials::new(2 * p + 2);
        let total = BoxId::total_boxes(params.levels);
        let mut solver = FmmSolver {
            params,
            tree,
            zs,
            qs,
            multipoles: vec![Multipole::zero(p); total],
            locals: vec![Local::zero(p); total],
            bin,
        };
        solver.upward();
        solver
    }

    /// The binomial table sized for this solver's translations.
    pub fn binomials(&self) -> &Binomials {
        &self.bin
    }

    /// P2M at the leaves, then M2M up the tree.
    fn upward(&mut self) {
        let p = self.params.terms;
        for b in self.tree.leaves().collect::<Vec<_>>() {
            let pts: Vec<(Cx, f64)> = self
                .tree
                .particles_in(b)
                .iter()
                .map(|&i| (self.zs[i as usize], self.qs[i as usize]))
                .collect();
            self.multipoles[b.dense_index()] = p2m(&pts, b.center(), p);
        }
        for level in (0..self.params.levels).rev() {
            for b in self.tree.boxes_at(level).collect::<Vec<_>>() {
                let mut acc = Multipole::zero(p);
                for c in b.children() {
                    let shifted =
                        m2m(&self.multipoles[c.dense_index()], c.center() - b.center(), &self.bin);
                    for (a, s) in acc.coeffs.iter_mut().zip(&shifted.coeffs) {
                        *a += *s;
                    }
                }
                self.multipoles[b.dense_index()] = acc;
            }
        }
    }

    /// Downward pass: M2L over interaction lists plus L2L from parents.
    pub fn downward(&mut self) {
        for level in 2..=self.params.levels {
            for b in self.tree.boxes_at(level).collect::<Vec<_>>() {
                let mut acc = if let Some(parent) = b.parent() {
                    l2l(
                        &self.locals[parent.dense_index()],
                        b.center() - parent.center(),
                        &self.bin,
                    )
                } else {
                    Local::zero(self.params.terms)
                };
                for s in b.interaction_list() {
                    let contrib = m2l(
                        &self.multipoles[s.dense_index()],
                        s.center() - b.center(),
                        &self.bin,
                    );
                    acc.add_assign(&contrib);
                }
                self.locals[b.dense_index()] = acc;
            }
        }
    }

    /// Near-field + far-field evaluation: the field at every particle.
    /// Must be called after [`FmmSolver::downward`].
    pub fn evaluate(&self) -> Vec<Cx> {
        let mut fields = vec![Cx::ZERO; self.zs.len()];
        for b in self.tree.leaves() {
            let mine = self.tree.particles_in(b);
            if mine.is_empty() {
                continue;
            }
            // Gather near-field sources: own box + neighbor leaves.
            let mut near: Vec<(Cx, f64)> = Vec::new();
            for &i in mine {
                near.push((self.zs[i as usize], self.qs[i as usize]));
            }
            for nb in b.neighbors() {
                for &i in self.tree.particles_in(nb) {
                    near.push((self.zs[i as usize], self.qs[i as usize]));
                }
            }
            let local = &self.locals[b.dense_index()];
            for &i in mine {
                let z = self.zs[i as usize];
                fields[i as usize] = eval_local_field(local, z, b.center()) + p2p_field(z, &near);
            }
        }
        fields
    }

    /// Direct O(n²) oracle.
    pub fn direct(&self) -> Vec<Cx> {
        let sources: Vec<(Cx, f64)> = self.zs.iter().copied().zip(self.qs.iter().copied()).collect();
        self.zs.iter().map(|&z| p2p_field(z, &sources)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> (Vec<Cx>, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let zs = (0..n)
            .map(|_| Cx::new(rng.gen_range(0.001..0.999), rng.gen_range(0.001..0.999)))
            .collect();
        let qs = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
        (zs, qs)
    }

    fn max_rel_err(a: &[Cx], b: &[Cx]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs() / y.abs().max(1e-12))
            .fold(0.0, f64::max)
    }

    #[test]
    fn multipole_matches_direct_when_separated() {
        let pts = vec![
            (Cx::new(0.1, 0.1), 1.0),
            (Cx::new(0.12, 0.08), 0.5),
            (Cx::new(0.09, 0.13), 2.0),
        ];
        let center = Cx::new(0.1, 0.1);
        let m = p2m(&pts, center, 20);
        let z = Cx::new(0.9, 0.8); // far away
        let exact = p2p_field(z, &pts);
        let approx = eval_multipole_field(&m, z, center);
        assert!((approx - exact).abs() < 1e-12, "{approx:?} vs {exact:?}");
    }

    #[test]
    fn m2m_preserves_far_field() {
        let pts = vec![(Cx::new(0.26, 0.26), 1.5), (Cx::new(0.24, 0.27), 0.7)];
        let child_c = Cx::new(0.25, 0.25);
        let parent_c = Cx::new(0.3, 0.3);
        let m_child = p2m(&pts, child_c, 24);
        let bin = Binomials::new(50);
        let m_parent = m2m(&m_child, child_c - parent_c, &bin);
        let z = Cx::new(0.95, 0.1);
        let exact = p2p_field(z, &pts);
        let approx = eval_multipole_field(&m_parent, z, parent_c);
        assert!((approx - exact).abs() < 1e-10, "{approx:?} vs {exact:?}");
    }

    #[test]
    fn m2l_converts_correctly() {
        let pts = vec![(Cx::new(0.1, 0.1), 1.0), (Cx::new(0.08, 0.12), 2.0)];
        let src_c = Cx::new(0.1, 0.1);
        let tgt_c = Cx::new(0.7, 0.7);
        let bin = Binomials::new(60);
        let m = p2m(&pts, src_c, 25);
        let l = m2l(&m, src_c - tgt_c, &bin);
        // Evaluate near the target center.
        let z = Cx::new(0.72, 0.68);
        let exact = p2p_field(z, &pts);
        let approx = eval_local_field(&l, z, tgt_c);
        assert!((approx - exact).abs() < 1e-10, "{approx:?} vs {exact:?}");
    }

    #[test]
    fn l2l_shift_is_exact() {
        // L2L is an exact polynomial re-centering: no truncation error.
        let pts = vec![(Cx::new(0.05, 0.1), 1.3)];
        let bin = Binomials::new(60);
        let m = p2m(&pts, Cx::new(0.05, 0.1), 25);
        let parent_c = Cx::new(0.7, 0.7);
        let child_c = Cx::new(0.72, 0.69);
        let l_parent = m2l(&m, Cx::new(0.05, 0.1) - parent_c, &bin);
        let l_child = l2l(&l_parent, child_c - parent_c, &bin);
        let z = Cx::new(0.71, 0.71);
        let a = eval_local_field(&l_parent, z, parent_c);
        let b = eval_local_field(&l_child, z, child_c);
        assert!((a - b).abs() < 1e-11, "{a:?} vs {b:?}");
    }

    #[test]
    fn full_fmm_matches_direct() {
        let (zs, qs) = random_points(800, 42);
        let mut solver = FmmSolver::new(
            zs,
            qs,
            FmmParams {
                terms: 20,
                levels: 3,
            },
        );
        solver.downward();
        let fmm = solver.evaluate();
        let exact = solver.direct();
        let err = max_rel_err(&fmm, &exact);
        // Worst-case interaction-list separation at p = 20 lands around
        // 1e-8 relative; p = 29 (the paper's setting) is tested tighter
        // below.
        assert!(err < 1e-7, "max rel err {err}");
    }

    #[test]
    fn paper_term_count_is_ultra_accurate() {
        let (zs, qs) = random_points(400, 7);
        let mut solver = FmmSolver::new(
            zs,
            qs,
            FmmParams {
                terms: 29,
                levels: 3,
            },
        );
        solver.downward();
        let err = max_rel_err(&solver.evaluate(), &solver.direct());
        assert!(err < 1e-11, "max rel err {err}");
    }

    #[test]
    fn accuracy_improves_with_terms() {
        let (zs, qs) = random_points(500, 9);
        let mut errs = Vec::new();
        for terms in [4, 8, 16] {
            let mut s = FmmSolver::new(zs.clone(), qs.clone(), FmmParams { terms, levels: 3 });
            s.downward();
            errs.push(max_rel_err(&s.evaluate(), &s.direct()));
        }
        assert!(errs[0] > errs[1] && errs[1] > errs[2], "errors {errs:?}");
    }

    #[test]
    fn empty_leaves_are_harmless() {
        // Clustered input leaves most leaves empty.
        let zs = vec![Cx::new(0.21, 0.22), Cx::new(0.23, 0.21), Cx::new(0.81, 0.79)];
        let qs = vec![1.0, 2.0, 3.0];
        let mut s = FmmSolver::new(zs, qs, FmmParams { terms: 16, levels: 3 });
        s.downward();
        let err = max_rel_err(&s.evaluate(), &s.direct());
        assert!(err < 1e-9, "max rel err {err}");
    }

    #[test]
    fn total_charge_conserved_up_the_tree() {
        let (zs, qs) = random_points(300, 13);
        let total: f64 = qs.iter().sum();
        let s = FmmSolver::new(zs, qs, FmmParams { terms: 8, levels: 3 });
        let root = BoxId { level: 0, x: 0, y: 0 };
        assert!((s.multipoles[root.dense_index()].charge().re - total).abs() < 1e-9);
    }
}
