//! Initial-condition generators.
//!
//! SPLASH-2's Barnes-Hut inputs are Plummer-model spheres; its FMM inputs
//! are (clustered) uniform distributions. Both are provided, seeded and
//! deterministic.

use crate::body::Body;
use crate::vec3::Vec3;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// `n` bodies uniform in the cube `[-1, 1]^3`, equal masses summing to 1.
pub fn uniform_cube(n: usize, seed: u64) -> Vec<Body> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = 1.0 / n as f64;
    (0..n)
        .map(|_| {
            Body::at(
                Vec3::new(
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                    rng.gen_range(-1.0..1.0),
                ),
                m,
            )
        })
        .collect()
}

/// `n` bodies drawn from a Plummer model (the SPLASH-2 Barnes-Hut input
/// distribution), truncated at radius `rmax`, equal masses summing to 1.
pub fn plummer(n: usize, seed: u64) -> Vec<Body> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = 1.0 / n as f64;
    let rmax = 8.0;
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        // Inverse-CDF sampling of the Plummer radial profile.
        let x: f64 = rng.gen_range(1e-8..0.999);
        let r = (x.powf(-2.0 / 3.0) - 1.0).powf(-0.5);
        if r > rmax {
            continue;
        }
        // Uniform direction.
        let z: f64 = rng.gen_range(-1.0..1.0);
        let phi: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let s = (1.0 - z * z).sqrt();
        out.push(Body::at(
            Vec3::new(r * s * phi.cos(), r * s * phi.sin(), r * z),
            m,
        ));
    }
    out
}

/// `n` bodies uniform in the unit square (z = 0), unit total charge —
/// the FMM input (2D).
pub fn uniform_square(n: usize, seed: u64) -> Vec<Body> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = 1.0 / n as f64;
    (0..n)
        .map(|_| {
            Body::at(
                Vec3::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0), 0.0),
                m,
            )
        })
        .collect()
}

/// `n` bodies in `k` Gaussian clusters inside the unit square (z = 0) —
/// the non-uniform FMM stress input.
pub fn clustered_square(n: usize, k: usize, seed: u64) -> Vec<Body> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = 1.0 / n as f64;
    let centers: Vec<(f64, f64)> = (0..k.max(1))
        .map(|_| (rng.gen_range(0.15..0.85), rng.gen_range(0.15..0.85)))
        .collect();
    (0..n)
        .map(|i| {
            let (cx, cy) = centers[i % centers.len()];
            // Box-Muller-ish scatter, clamped into the unit square.
            let dx: f64 = rng.gen_range(-1.0f64..1.0).powi(3) * 0.12;
            let dy: f64 = rng.gen_range(-1.0f64..1.0).powi(3) * 0.12;
            Body::at(
                Vec3::new((cx + dx).clamp(1e-6, 1.0 - 1e-6), (cy + dy).clamp(1e-6, 1.0 - 1e-6), 0.0),
                m,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_cube_in_bounds() {
        let b = uniform_cube(500, 1);
        assert_eq!(b.len(), 500);
        for body in &b {
            assert!(body.pos.x.abs() <= 1.0);
            assert!(body.pos.y.abs() <= 1.0);
            assert!(body.pos.z.abs() <= 1.0);
        }
        let total: f64 = b.iter().map(|x| x.mass).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn plummer_is_centrally_concentrated() {
        let b = plummer(2000, 2);
        assert_eq!(b.len(), 2000);
        // Plummer enclosed-mass profile: M(<r) = r^3 (1+r^2)^{-3/2}, so
        // ~35% of mass lies inside the scale radius and ~72% inside r = 2.
        let frac = |r: f64| b.iter().filter(|x| x.pos.norm() < r).count() as f64 / b.len() as f64;
        assert!((0.30..0.42).contains(&frac(1.0)), "f(<1) = {}", frac(1.0));
        assert!((0.65..0.80).contains(&frac(2.0)), "f(<2) = {}", frac(2.0));
        assert!(b.iter().all(|x| x.pos.norm() <= 8.0));
    }

    #[test]
    fn square_inputs_are_planar() {
        for b in uniform_square(300, 3)
            .iter()
            .chain(clustered_square(300, 4, 3).iter())
        {
            assert_eq!(b.pos.z, 0.0);
            assert!((0.0..=1.0).contains(&b.pos.x));
            assert!((0.0..=1.0).contains(&b.pos.y));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(plummer(100, 7), plummer(100, 7));
        assert_ne!(plummer(100, 7), plummer(100, 8));
    }
}
