//! The **adaptive** fast multipole method (Carrier–Greengard–Rokhlin),
//! 2D — the algorithm SPLASH-2's FMM actually implements.
//!
//! The uniform method ([`crate::fmm`]) wastes quadratic near-field work on
//! clustered inputs (dense leaves) and empty boxes on sparse regions. The
//! adaptive method subdivides only where particles are, producing leaves
//! of different sizes, and replaces the single interaction list with the
//! four classic lists per box `b`:
//!
//! * **U(b)** — leaves adjacent to leaf `b` (any size), plus `b` itself:
//!   direct particle–particle interaction;
//! * **V(b)** — same-level children of `b`'s parent's colleagues, not
//!   adjacent to `b`: multipole→local (M2L), as in the uniform method;
//! * **W(b)** — descendants of leaf `b`'s colleagues whose parents touch
//!   `b` but who do not themselves: small boxes too close for V at their
//!   level yet far relative to *their* size — evaluate their multipole
//!   directly at `b`'s particles;
//! * **X(b)** — the dual of W (`x` lists `b` in W(x)): big leaves close to
//!   small `b` — add their particles straight into `b`'s local expansion
//!   (P2L).
//!
//! Every particle pair is covered exactly once by U ∪ (V/W/X/ancestors) —
//! the partition property the tests check — and the result matches direct
//! summation to truncation accuracy on arbitrarily clustered inputs.

use crate::cx::{Binomials, Cx};
use crate::fmm::{
    eval_local_field, eval_multipole_field, l2l, m2l, m2m, p2m, p2p_field, Local, Multipole,
};

/// Index of a node in the adaptive tree.
pub type NodeId = u32;

/// Sentinel for "no node".
pub const NO_NODE: i32 = -1;

/// One adaptive-quadtree node.
#[derive(Clone, Debug)]
pub struct ANode {
    /// Refinement level (0 = root, whole unit square).
    pub level: u32,
    /// Column at this level.
    pub x: u32,
    /// Row at this level.
    pub y: u32,
    /// Parent node (`NO_NODE` for the root).
    pub parent: i32,
    /// Children (`NO_NODE` where absent); all `NO_NODE` for leaves.
    pub children: [i32; 4],
    /// Particle indices (leaves only).
    pub particles: Vec<u32>,
}

impl ANode {
    /// `true` when this node holds particles directly.
    pub fn is_leaf(&self) -> bool {
        self.children == [NO_NODE; 4]
    }

    /// Box side length.
    pub fn side(&self) -> f64 {
        1.0 / (1u64 << self.level) as f64
    }

    /// Box center in the complex plane.
    pub fn center(&self) -> Cx {
        let s = self.side();
        Cx::new((self.x as f64 + 0.5) * s, (self.y as f64 + 0.5) * s)
    }

    /// The box's extent at the finest integer resolution `max_level`:
    /// `[x0, x1) × [y0, y1)` in units of `2^-max_level`.
    fn extent(&self, max_level: u32) -> (u64, u64, u64, u64) {
        let u = 1u64 << (max_level - self.level);
        (
            self.x as u64 * u,
            (self.x as u64 + 1) * u,
            self.y as u64 * u,
            (self.y as u64 + 1) * u,
        )
    }
}

/// `true` when the two boxes' closures touch or overlap (geometric
/// adjacency, valid across levels). Exact integer arithmetic.
fn adjacent(a: &ANode, b: &ANode, max_level: u32) -> bool {
    let (ax0, ax1, ay0, ay1) = a.extent(max_level);
    let (bx0, bx1, by0, by1) = b.extent(max_level);
    ax0 <= bx1 && bx0 <= ax1 && ay0 <= by1 && by0 <= ay1
}

/// P2L: accumulate the local (Taylor) expansion of point charges
/// directly into `acc` (centered at `center`). For a unit charge at `zq`,
/// the local coefficients about `c` are `c_0 = log(c − zq)` and
/// `c_l = −1/(l (zq − c)^l)`.
pub fn p2l_into(acc: &mut Local, points: &[(Cx, f64)], center: Cx) {
    let p = acc.coeffs.len() - 1;
    for &(zq, q) in points {
        let d = zq - center;
        acc.coeffs[0] += (-d).ln() * q;
        let dinv = d.recip();
        let mut dk = Cx::ONE;
        for l in 1..=p {
            dk = dk * dinv;
            acc.coeffs[l] += dk * (-q / l as f64);
        }
    }
}

/// Adaptive-FMM parameters.
#[derive(Clone, Copy, Debug)]
pub struct AfmmParams {
    /// Expansion terms `p`.
    pub terms: usize,
    /// Maximum particles per leaf before subdividing.
    pub leaf_cap: usize,
    /// Hard depth limit.
    pub max_level: u32,
}

impl Default for AfmmParams {
    fn default() -> Self {
        AfmmParams {
            terms: 16,
            leaf_cap: 16,
            max_level: 12,
        }
    }
}

/// The adaptive solver: tree, expansions, and the four lists.
pub struct AfmmSolver {
    /// Parameters used.
    pub params: AfmmParams,
    /// All nodes; index 0 is the root.
    pub nodes: Vec<ANode>,
    /// Particle positions.
    pub zs: Vec<Cx>,
    /// Particle charges.
    pub qs: Vec<f64>,
    /// Multipole per node.
    pub multipoles: Vec<Multipole>,
    /// Local expansion per node.
    pub locals: Vec<Local>,
    bin: Binomials,
}

impl AfmmSolver {
    /// Build the adaptive tree and run the upward pass.
    pub fn new(zs: Vec<Cx>, qs: Vec<f64>, params: AfmmParams) -> AfmmSolver {
        assert_eq!(zs.len(), qs.len());
        assert!(params.leaf_cap >= 1);
        let mut nodes = vec![ANode {
            level: 0,
            x: 0,
            y: 0,
            parent: NO_NODE,
            children: [NO_NODE; 4],
            particles: (0..zs.len() as u32).collect(),
        }];
        // Recursive subdivision (worklist form).
        let mut work = vec![0usize];
        while let Some(i) = work.pop() {
            if nodes[i].particles.len() <= params.leaf_cap
                || nodes[i].level >= params.max_level
            {
                continue;
            }
            let parent = nodes[i].clone();
            let l = parent.level + 1;
            let mut buckets: [Vec<u32>; 4] = Default::default();
            for &pi in &parent.particles {
                let z = zs[pi as usize];
                let n = 1u64 << l;
                let cx = ((z.re * n as f64) as u64).min(n - 1) as u32;
                let cy = ((z.im * n as f64) as u64).min(n - 1) as u32;
                let q = ((cy & 1) << 1 | (cx & 1)) as usize;
                buckets[q].push(pi);
            }
            nodes[i].particles = Vec::new();
            for (q, bucket) in buckets.into_iter().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                let id = nodes.len();
                nodes.push(ANode {
                    level: l,
                    x: parent.x * 2 + (q as u32 & 1),
                    y: parent.y * 2 + (q as u32 >> 1),
                    parent: i as i32,
                    children: [NO_NODE; 4],
                    particles: bucket,
                });
                nodes[i].children[q] = id as i32;
                work.push(id);
            }
        }

        let p = params.terms;
        let bin = Binomials::new(2 * p + 2);
        let mut solver = AfmmSolver {
            params,
            multipoles: vec![Multipole::zero(p); nodes.len()],
            locals: vec![Local::zero(p); nodes.len()],
            nodes,
            zs,
            qs,
            bin,
        };
        solver.upward();
        solver
    }

    /// The binomial table sized for this solver's translations.
    pub fn binomials(&self) -> &Binomials {
        &self.bin
    }

    /// Particles of a (leaf) node as `(position, charge)` pairs.
    fn points_of(&self, i: usize) -> Vec<(Cx, f64)> {
        self.nodes[i]
            .particles
            .iter()
            .map(|&pi| (self.zs[pi as usize], self.qs[pi as usize]))
            .collect()
    }

    fn upward(&mut self) {
        let p = self.params.terms;
        // Children always follow parents in the vec: reverse order is
        // bottom-up.
        for i in (0..self.nodes.len()).rev() {
            if self.nodes[i].is_leaf() {
                let pts = self.points_of(i);
                self.multipoles[i] = p2m(&pts, self.nodes[i].center(), p);
            } else {
                let mut acc = Multipole::zero(p);
                for &c in &self.nodes[i].children {
                    if c != NO_NODE {
                        let shifted = m2m(
                            &self.multipoles[c as usize],
                            self.nodes[c as usize].center() - self.nodes[i].center(),
                            &self.bin,
                        );
                        for (a, s) in acc.coeffs.iter_mut().zip(&shifted.coeffs) {
                            *a += *s;
                        }
                    }
                }
                self.multipoles[i] = acc;
            }
        }
    }

    /// Same-level adjacent nodes (colleagues) of `i`, found by walking
    /// down from the parent's colleagues.
    pub fn colleagues(&self, i: usize) -> Vec<usize> {
        let node = &self.nodes[i];
        let Some(parent) = (node.parent != NO_NODE).then_some(node.parent as usize) else {
            return Vec::new();
        };
        let ml = self.params.max_level + 1;
        let mut out = Vec::new();
        // Candidates: children of the parent and of the parent's colleagues.
        let mut parents = self.colleagues(parent);
        parents.push(parent);
        for pp in parents {
            for &c in &self.nodes[pp].children {
                if c != NO_NODE
                    && c as usize != i
                    && self.nodes[c as usize].level == node.level
                    && adjacent(node, &self.nodes[c as usize], ml)
                {
                    out.push(c as usize);
                }
            }
        }
        out
    }

    /// V list: children of the parent's colleagues, same level, not
    /// adjacent to `i`.
    pub fn v_list(&self, i: usize) -> Vec<usize> {
        let node = &self.nodes[i];
        let Some(parent) = (node.parent != NO_NODE).then_some(node.parent as usize) else {
            return Vec::new();
        };
        let ml = self.params.max_level + 1;
        let mut out = Vec::new();
        for pc in self.colleagues(parent) {
            for &c in &self.nodes[pc].children {
                if c != NO_NODE && !adjacent(node, &self.nodes[c as usize], ml) {
                    out.push(c as usize);
                }
            }
        }
        out
    }

    /// U list of leaf `i`: adjacent leaves of any size, including `i`.
    pub fn u_list(&self, i: usize) -> Vec<usize> {
        debug_assert!(self.nodes[i].is_leaf());
        let ml = self.params.max_level + 1;
        let mut out = Vec::new();
        // DFS from the root, pruning non-adjacent subtrees.
        let mut stack = vec![0usize];
        while let Some(j) = stack.pop() {
            if !adjacent(&self.nodes[i], &self.nodes[j], ml) {
                continue;
            }
            if self.nodes[j].is_leaf() {
                out.push(j);
            } else {
                for &c in &self.nodes[j].children {
                    if c != NO_NODE {
                        stack.push(c as usize);
                    }
                }
            }
        }
        out
    }

    /// W list of leaf `i`: descendants of `i`'s colleagues that are not
    /// adjacent to `i` but whose parent is. Their multipoles evaluate
    /// directly at `i`'s particles.
    pub fn w_list(&self, i: usize) -> Vec<usize> {
        debug_assert!(self.nodes[i].is_leaf());
        let ml = self.params.max_level + 1;
        let mut out = Vec::new();
        let mut stack: Vec<usize> = self.colleagues(i);
        while let Some(j) = stack.pop() {
            // Invariant: `j` is adjacent to `i` (colleagues are; children
            // are only pushed when adjacent).
            for &c in &self.nodes[j].children {
                if c == NO_NODE {
                    continue;
                }
                let c = c as usize;
                if adjacent(&self.nodes[i], &self.nodes[c], ml) {
                    stack.push(c);
                } else {
                    out.push(c);
                }
            }
        }
        out
    }

    /// X list of leaf... of *any* box `i`: leaves `x` with `i ∈ W(x)` —
    /// computed as big adjacent-parent leaves. For simplicity we gather
    /// X(b) directly: leaves `x` at a coarser level than `b` such that
    /// `x` is adjacent to `b`'s parent but not to `b`.
    pub fn x_list(&self, i: usize) -> Vec<usize> {
        let node = &self.nodes[i];
        if node.parent == NO_NODE {
            return Vec::new();
        }
        let ml = self.params.max_level + 1;
        let parent = node.parent as usize;
        let mut out = Vec::new();
        // x must be a leaf colleague-or-ancestor-side box: x's level <
        // node's, adjacent to parent, not adjacent to node. Walk from the
        // root pruning by adjacency with the parent.
        let mut stack = vec![0usize];
        while let Some(j) = stack.pop() {
            if self.nodes[j].level >= node.level {
                continue;
            }
            if !adjacent(&self.nodes[parent], &self.nodes[j], ml) {
                continue;
            }
            if self.nodes[j].is_leaf() {
                if !adjacent(node, &self.nodes[j], ml) {
                    out.push(j);
                }
            } else {
                for &c in &self.nodes[j].children {
                    if c != NO_NODE {
                        stack.push(c as usize);
                    }
                }
            }
        }
        out
    }

    /// Downward pass: V (M2L), X (P2L), and L2L inheritance.
    pub fn downward(&mut self) {
        let p = self.params.terms;
        for i in 0..self.nodes.len() {
            let center = self.nodes[i].center();
            let mut acc = if self.nodes[i].parent != NO_NODE {
                let parent = self.nodes[i].parent as usize;
                l2l(
                    &self.locals[parent],
                    center - self.nodes[parent].center(),
                    &self.bin,
                )
            } else {
                Local::zero(p)
            };
            for v in self.v_list(i) {
                let contrib = m2l(
                    &self.multipoles[v],
                    self.nodes[v].center() - center,
                    &self.bin,
                );
                acc.add_assign(&contrib);
            }
            for x in self.x_list(i) {
                let pts = self.points_of(x);
                p2l_into(&mut acc, &pts, center);
            }
            self.locals[i] = acc;
        }
    }

    /// Evaluate fields at every particle: local expansion + W multipoles +
    /// U direct. Call after [`AfmmSolver::downward`].
    pub fn evaluate(&self) -> Vec<Cx> {
        let mut fields = vec![Cx::ZERO; self.zs.len()];
        for i in 0..self.nodes.len() {
            if !self.nodes[i].is_leaf() || self.nodes[i].particles.is_empty() {
                continue;
            }
            let center = self.nodes[i].center();
            let w_list = self.w_list(i);
            let mut near: Vec<(Cx, f64)> = Vec::new();
            for u in self.u_list(i) {
                near.extend(self.points_of(u));
            }
            for &pi in &self.nodes[i].particles {
                let z = self.zs[pi as usize];
                let mut f = eval_local_field(&self.locals[i], z, center);
                for &w in &w_list {
                    f += eval_multipole_field(&self.multipoles[w], z, self.nodes[w].center());
                }
                f += p2p_field(z, &near);
                fields[pi as usize] = f;
            }
        }
        fields
    }

    /// Direct O(n²) oracle.
    pub fn direct(&self) -> Vec<Cx> {
        let sources: Vec<(Cx, f64)> =
            self.zs.iter().copied().zip(self.qs.iter().copied()).collect();
        self.zs.iter().map(|&z| p2p_field(z, &sources)).collect()
    }

    /// Leaves of the tree.
    pub fn leaves(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].is_leaf())
    }

    /// Tree statistics: `(nodes, leaves, max depth, max leaf occupancy)`.
    pub fn tree_stats(&self) -> (usize, usize, u32, usize) {
        let mut leaves = 0;
        let mut depth = 0;
        let mut occ = 0;
        for n in &self.nodes {
            if n.is_leaf() {
                leaves += 1;
                occ = occ.max(n.particles.len());
            }
            depth = depth.max(n.level);
        }
        (self.nodes.len(), leaves, depth, occ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> (Vec<Cx>, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let zs = (0..n)
            .map(|_| Cx::new(rng.gen_range(0.001..0.999), rng.gen_range(0.001..0.999)))
            .collect();
        let qs = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
        (zs, qs)
    }

    fn clustered_points(n: usize, seed: u64) -> (Vec<Cx>, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let centers = [(0.2, 0.21), (0.8, 0.35), (0.45, 0.82)];
        let zs = (0..n)
            .map(|i| {
                let (cx, cy): (f64, f64) = centers[i % 3];
                Cx::new(
                    (cx + rng.gen_range(-0.02..0.02)).clamp(1e-4, 1.0 - 1e-4),
                    (cy + rng.gen_range(-0.02..0.02)).clamp(1e-4, 1.0 - 1e-4),
                )
            })
            .collect();
        let qs = (0..n).map(|_| rng.gen_range(0.1..1.0)).collect();
        (zs, qs)
    }

    fn max_rel_err(a: &[Cx], b: &[Cx]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (*x - *y).abs() / y.abs().max(1e-12))
            .fold(0.0, f64::max)
    }

    #[test]
    fn tree_contains_every_particle_once() {
        let (zs, qs) = clustered_points(700, 5);
        let s = AfmmSolver::new(zs, qs, AfmmParams::default());
        let mut seen = vec![false; 700];
        for i in s.leaves() {
            for &pi in &s.nodes[i].particles {
                assert!(!seen[pi as usize], "particle {pi} in two leaves");
                seen[pi as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
        let (_, _, depth, occ) = s.tree_stats();
        assert!(occ <= s.params.leaf_cap || depth == s.params.max_level);
    }

    #[test]
    fn adaptive_tree_is_deeper_where_clustered() {
        let (zs, qs) = clustered_points(600, 9);
        let s = AfmmSolver::new(zs, qs, AfmmParams::default());
        let (_, leaves, depth, _) = s.tree_stats();
        assert!(depth >= 5, "clusters should force depth (got {depth})");
        // Far fewer leaves than a uniform tree of the same depth.
        assert!(leaves < (1 << (2 * depth)) / 4, "leaves {leaves}");
    }

    #[test]
    fn pair_coverage_is_a_partition() {
        // Every ordered particle pair (target in leaf b, source particle)
        // must be accounted exactly once by U(b) ∪ W(b)-subtrees ∪
        // (V/X along b's ancestor chain, each covering its subtree).
        let (zs, qs) = clustered_points(250, 11);
        let n = zs.len();
        let s = AfmmSolver::new(zs, qs, AfmmParams { terms: 4, leaf_cap: 8, max_level: 8 });

        // Particle set under each node.
        let mut under: Vec<Vec<u32>> = vec![Vec::new(); s.nodes.len()];
        for i in (0..s.nodes.len()).rev() {
            if s.nodes[i].is_leaf() {
                under[i] = s.nodes[i].particles.clone();
            } else {
                let mut acc = Vec::new();
                for &c in &s.nodes[i].children {
                    if c != NO_NODE {
                        acc.extend(under[c as usize].iter().copied());
                    }
                }
                under[i] = acc;
            }
        }

        for b in s.leaves() {
            let mut covered = vec![0u32; n];
            for u in s.u_list(b) {
                for &pi in &s.nodes[u].particles {
                    covered[pi as usize] += 1;
                }
            }
            for w in s.w_list(b) {
                for &pi in &under[w] {
                    covered[pi as usize] += 1;
                }
            }
            // V and X gathered along the ancestor chain (including b).
            let mut a = b as i32;
            while a != NO_NODE {
                for v in s.v_list(a as usize) {
                    for &pi in &under[v] {
                        covered[pi as usize] += 1;
                    }
                }
                for x in s.x_list(a as usize) {
                    for &pi in &s.nodes[x].particles {
                        covered[pi as usize] += 1;
                    }
                }
                a = s.nodes[a as usize].parent;
            }
            for (pi, &c) in covered.iter().enumerate() {
                assert_eq!(
                    c, 1,
                    "leaf {b}: particle {pi} covered {c} times (must be exactly 1)"
                );
            }
        }
    }

    #[test]
    fn matches_direct_on_uniform_input() {
        let (zs, qs) = random_points(900, 21);
        let mut s = AfmmSolver::new(zs, qs, AfmmParams { terms: 20, leaf_cap: 12, max_level: 10 });
        s.downward();
        let err = max_rel_err(&s.evaluate(), &s.direct());
        assert!(err < 1e-7, "max rel err {err}");
    }

    #[test]
    fn matches_direct_on_clustered_input() {
        let (zs, qs) = clustered_points(800, 33);
        let mut s = AfmmSolver::new(zs, qs, AfmmParams { terms: 20, leaf_cap: 12, max_level: 12 });
        s.downward();
        let err = max_rel_err(&s.evaluate(), &s.direct());
        assert!(err < 1e-7, "max rel err {err}");
    }

    #[test]
    fn accuracy_improves_with_terms() {
        let (zs, qs) = clustered_points(400, 3);
        let mut errs = Vec::new();
        for terms in [4, 8, 16] {
            let mut s = AfmmSolver::new(
                zs.clone(),
                qs.clone(),
                AfmmParams { terms, leaf_cap: 10, max_level: 10 },
            );
            s.downward();
            errs.push(max_rel_err(&s.evaluate(), &s.direct()));
        }
        assert!(errs[0] > errs[1] && errs[1] > errs[2], "errors {errs:?}");
    }

    #[test]
    fn adaptive_does_less_near_field_than_uniform_on_clusters() {
        let (zs, qs) = clustered_points(1_000, 44);
        let s = AfmmSolver::new(
            zs.clone(),
            qs.clone(),
            AfmmParams { terms: 8, leaf_cap: 16, max_level: 12 },
        );
        // Near-field pairs in the adaptive method.
        let adaptive_pairs: usize = s
            .leaves()
            .map(|b| {
                let u: usize = s.u_list(b).iter().map(|&u| s.nodes[u].particles.len()).sum();
                s.nodes[b].particles.len() * u
            })
            .sum();
        // Uniform method at the count-chosen level.
        let level = crate::quadtree::QuadTree::level_for(1_000, 16);
        let t = crate::quadtree::QuadTree::build(&zs, level);
        let uniform_pairs: usize = t
            .leaves()
            .map(|b| {
                let mine = t.particles_in(b).len();
                let mut near = mine;
                for nb in b.neighbors() {
                    near += t.particles_in(nb).len();
                }
                mine * near
            })
            .sum();
        assert!(
            adaptive_pairs * 2 < uniform_pairs,
            "adaptive {adaptive_pairs} vs uniform {uniform_pairs}"
        );
    }

    #[test]
    fn charge_conserved_at_root() {
        let (zs, qs) = clustered_points(300, 8);
        let total: f64 = qs.iter().sum();
        let s = AfmmSolver::new(zs, qs, AfmmParams::default());
        assert!((s.multipoles[0].charge().re - total).abs() < 1e-9);
    }
}
