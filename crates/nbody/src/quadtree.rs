//! Uniform quadtree over the unit square for the 2D FMM: box indexing,
//! neighbor sets, and Greengard-style interaction lists.
//!
//! Boxes at level `l` form a `2^l × 2^l` grid of side `1/2^l`. A box's
//! **neighbors** are the ≤8 adjacent boxes at its level; its **interaction
//! list** is the children of its parent's neighbors that are not its own
//! neighbors — the well-separated boxes whose multipole expansions
//! converge at the box (≤27 of them). The interaction list is the remote
//! read set of the distributed FMM force phase.

use crate::cx::Cx;

/// A box identifier: `(level, x, y)` packed into a dense index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BoxId {
    /// Refinement level (0 = whole domain).
    pub level: u32,
    /// Column, `0..2^level`.
    pub x: u32,
    /// Row, `0..2^level`.
    pub y: u32,
}

impl BoxId {
    /// Side length of boxes at this level.
    pub fn side(self) -> f64 {
        1.0 / (1u64 << self.level) as f64
    }

    /// Center of this box in the complex plane.
    pub fn center(self) -> Cx {
        let s = self.side();
        Cx::new((self.x as f64 + 0.5) * s, (self.y as f64 + 0.5) * s)
    }

    /// Parent box (level 0 has none).
    pub fn parent(self) -> Option<BoxId> {
        if self.level == 0 {
            None
        } else {
            Some(BoxId {
                level: self.level - 1,
                x: self.x / 2,
                y: self.y / 2,
            })
        }
    }

    /// The four children.
    pub fn children(self) -> [BoxId; 4] {
        let l = self.level + 1;
        let (x, y) = (self.x * 2, self.y * 2);
        [
            BoxId { level: l, x, y },
            BoxId { level: l, x: x + 1, y },
            BoxId { level: l, x, y: y + 1 },
            BoxId { level: l, x: x + 1, y: y + 1 },
        ]
    }

    /// Chebyshev distance to `other` (same level assumed).
    fn grid_dist(self, other: BoxId) -> u32 {
        debug_assert_eq!(self.level, other.level);
        self.x.abs_diff(other.x).max(self.y.abs_diff(other.y))
    }

    /// `true` when `other` is `self` or one of its ≤8 neighbors.
    pub fn is_adjacent(self, other: BoxId) -> bool {
        self.grid_dist(other) <= 1
    }

    /// Adjacent boxes at the same level (excludes `self`).
    pub fn neighbors(self) -> Vec<BoxId> {
        let n = 1u32 << self.level;
        let mut out = Vec::with_capacity(8);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = self.x as i64 + dx;
                let ny = self.y as i64 + dy;
                if (0..n as i64).contains(&nx) && (0..n as i64).contains(&ny) {
                    out.push(BoxId {
                        level: self.level,
                        x: nx as u32,
                        y: ny as u32,
                    });
                }
            }
        }
        out
    }

    /// The interaction list: children of the parent's neighbors that are
    /// not adjacent to `self`. Empty at levels 0 and 1.
    pub fn interaction_list(self) -> Vec<BoxId> {
        let Some(parent) = self.parent() else {
            return Vec::new();
        };
        let mut out = Vec::with_capacity(27);
        for pn in parent.neighbors() {
            for c in pn.children() {
                if !self.is_adjacent(c) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Dense index of this box within its level (row-major).
    pub fn index_in_level(self) -> usize {
        (self.y as usize) << self.level | self.x as usize
    }

    /// Dense index across all levels `0..=max` (level-major).
    pub fn dense_index(self) -> usize {
        // offset(l) = (4^l - 1) / 3
        let off = ((1usize << (2 * self.level)) - 1) / 3;
        off + self.index_in_level()
    }

    /// Total number of boxes in a tree with finest level `levels`.
    pub fn total_boxes(levels: u32) -> usize {
        ((1usize << (2 * (levels + 1))) - 1) / 3
    }

    /// Inverse of [`BoxId::dense_index`].
    pub fn from_dense(idx: usize) -> BoxId {
        let mut level = 0u32;
        let mut off = 0usize;
        loop {
            let count = 1usize << (2 * level);
            if idx < off + count {
                let rel = idx - off;
                let n = 1usize << level;
                return BoxId {
                    level,
                    x: (rel % n) as u32,
                    y: (rel / n) as u32,
                };
            }
            off += count;
            level += 1;
        }
    }

    /// The level-`k` ancestor (or `self` when `k == level`). Panics if
    /// `k > level`.
    pub fn ancestor_at(self, k: u32) -> BoxId {
        assert!(k <= self.level);
        let shift = self.level - k;
        BoxId {
            level: k,
            x: self.x >> shift,
            y: self.y >> shift,
        }
    }
}

/// The uniform quadtree: particle assignment plus the box grid.
#[derive(Clone, Debug)]
pub struct QuadTree {
    /// Finest level.
    pub levels: u32,
    /// Particle indices per leaf (row-major at the finest level).
    pub leaf_particles: Vec<Vec<u32>>,
}

impl QuadTree {
    /// Assign `positions` (complex, inside `[0,1]^2`) to leaves at level
    /// `levels`.
    pub fn build(positions: &[Cx], levels: u32) -> QuadTree {
        assert!(levels >= 2, "FMM needs at least level 2 for nonempty interaction lists");
        let n = 1u32 << levels;
        let mut leaf_particles = vec![Vec::new(); (n as usize) * (n as usize)];
        for (i, z) in positions.iter().enumerate() {
            let x = ((z.re * n as f64) as u32).min(n - 1);
            let y = ((z.im * n as f64) as u32).min(n - 1);
            leaf_particles[((y * n) + x) as usize].push(i as u32);
        }
        QuadTree {
            levels,
            leaf_particles,
        }
    }

    /// The shallowest level at which no leaf holds more than `cap`
    /// particles (bounded at level 10). Count-based [`QuadTree::level_for`]
    /// underestimates depth for clustered inputs, whose dense leaves make
    /// near-field P2P quadratic; occupancy-based selection is the uniform
    /// tree's stand-in for the adaptive refinement the SPLASH-2 FMM uses.
    pub fn level_for_occupancy(positions: &[Cx], cap: usize) -> u32 {
        assert!(cap >= 1);
        for level in 2..=10u32 {
            let n = 1u32 << level;
            let mut buckets = vec![0u32; (n as usize) * (n as usize)];
            let mut worst = 0;
            for z in positions {
                let x = ((z.re * n as f64) as u32).min(n - 1);
                let y = ((z.im * n as f64) as u32).min(n - 1);
                let b = &mut buckets[((y * n) + x) as usize];
                *b += 1;
                worst = worst.max(*b);
            }
            if (worst as usize) <= cap {
                return level;
            }
        }
        10
    }

    /// A sensible finest level for `n` particles (~`target` per leaf).
    pub fn level_for(n: usize, target: usize) -> u32 {
        let mut l = 2u32;
        while (1usize << (2 * (l + 1))) * target < n && l < 14 {
            l += 1;
        }
        l + 1
    }

    /// The leaf box holding grid cell `(x, y)`.
    pub fn leaf(&self, x: u32, y: u32) -> BoxId {
        BoxId {
            level: self.levels,
            x,
            y,
        }
    }

    /// Iterate all leaf box ids row-major.
    pub fn leaves(&self) -> impl Iterator<Item = BoxId> + '_ {
        let n = 1u32 << self.levels;
        (0..n).flat_map(move |y| (0..n).map(move |x| self.leaf(x, y)))
    }

    /// Particles in a leaf.
    pub fn particles_in(&self, b: BoxId) -> &[u32] {
        debug_assert_eq!(b.level, self.levels);
        &self.leaf_particles[b.index_in_level()]
    }

    /// All boxes at `level`, row-major.
    pub fn boxes_at(&self, level: u32) -> impl Iterator<Item = BoxId> {
        let n = 1u32 << level;
        (0..n).flat_map(move |y| (0..n).map(move |x| BoxId { level, x, y }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_child_roundtrip() {
        let b = BoxId {
            level: 3,
            x: 5,
            y: 2,
        };
        for c in b.children() {
            assert_eq!(c.parent(), Some(b));
        }
        assert_eq!(
            b.parent(),
            Some(BoxId {
                level: 2,
                x: 2,
                y: 1
            })
        );
        assert_eq!(BoxId { level: 0, x: 0, y: 0 }.parent(), None);
    }

    #[test]
    fn neighbor_counts() {
        // Corner, edge, interior.
        let corner = BoxId { level: 2, x: 0, y: 0 };
        let edge = BoxId { level: 2, x: 1, y: 0 };
        let interior = BoxId { level: 2, x: 1, y: 1 };
        assert_eq!(corner.neighbors().len(), 3);
        assert_eq!(edge.neighbors().len(), 5);
        assert_eq!(interior.neighbors().len(), 8);
    }

    #[test]
    fn interaction_list_is_well_separated() {
        for b in [
            BoxId { level: 3, x: 4, y: 3 },
            BoxId { level: 3, x: 0, y: 0 },
            BoxId { level: 2, x: 1, y: 2 },
        ] {
            let il = b.interaction_list();
            assert!(il.len() <= 27);
            for s in &il {
                assert_eq!(s.level, b.level);
                assert!(b.grid_dist(*s) >= 2, "{s:?} too close to {b:?}");
                // Parent-level adjacency: source's parent neighbors b's parent.
                assert!(b.parent().unwrap().is_adjacent(s.parent().unwrap()));
            }
        }
        // Interior boxes at deep levels see the full 27.
        let deep = BoxId { level: 4, x: 7, y: 7 };
        assert_eq!(deep.interaction_list().len(), 27);
    }

    #[test]
    fn interaction_list_empty_at_top() {
        assert!(BoxId { level: 0, x: 0, y: 0 }.interaction_list().is_empty());
        assert!(BoxId { level: 1, x: 1, y: 0 }.interaction_list().is_empty());
    }

    #[test]
    fn near_plus_far_covers_parent_near_field() {
        // For any box b, {b} ∪ neighbors(b) ∪ IL(b) exactly tiles the
        // children of parent's {self ∪ neighbors} — the FMM correctness
        // partition.
        let b = BoxId { level: 3, x: 3, y: 5 };
        let mut covered: Vec<BoxId> = vec![b];
        covered.extend(b.neighbors());
        covered.extend(b.interaction_list());
        let p = b.parent().unwrap();
        let mut expected: Vec<BoxId> = Vec::new();
        expected.extend(p.children());
        for pn in p.neighbors() {
            expected.extend(pn.children());
        }
        covered.sort_by_key(|x| (x.x, x.y));
        expected.sort_by_key(|x| (x.x, x.y));
        assert_eq!(covered, expected);
    }

    #[test]
    fn from_dense_roundtrip() {
        for l in 0..=4u32 {
            for y in 0..(1u32 << l) {
                for x in 0..(1u32 << l) {
                    let b = BoxId { level: l, x, y };
                    assert_eq!(BoxId::from_dense(b.dense_index()), b);
                }
            }
        }
    }

    #[test]
    fn ancestor_at_levels() {
        let b = BoxId { level: 4, x: 13, y: 6 };
        assert_eq!(b.ancestor_at(4), b);
        assert_eq!(b.ancestor_at(3), BoxId { level: 3, x: 6, y: 3 });
        assert_eq!(b.ancestor_at(0), BoxId { level: 0, x: 0, y: 0 });
        assert_eq!(Some(b.ancestor_at(3)), b.parent());
    }

    #[test]
    fn dense_index_is_bijective() {
        let mut seen = std::collections::HashSet::new();
        for l in 0..=3u32 {
            for y in 0..(1u32 << l) {
                for x in 0..(1u32 << l) {
                    assert!(seen.insert(BoxId { level: l, x, y }.dense_index()));
                }
            }
        }
        assert_eq!(seen.len(), BoxId::total_boxes(3));
        assert_eq!(*seen.iter().max().unwrap(), BoxId::total_boxes(3) - 1);
    }

    #[test]
    fn build_assigns_every_particle() {
        let pts: Vec<Cx> = (0..100)
            .map(|i| Cx::new((i as f64 + 0.5) / 100.0, ((i * 7 % 100) as f64 + 0.5) / 100.0))
            .collect();
        let t = QuadTree::build(&pts, 3);
        let total: usize = t.leaf_particles.iter().map(Vec::len).sum();
        assert_eq!(total, 100);
        for b in t.leaves() {
            let c = b.center();
            for &p in t.particles_in(b) {
                let z = pts[p as usize];
                assert!((z.re - c.re).abs() <= b.side() / 2.0 + 1e-12);
                assert!((z.im - c.im).abs() <= b.side() / 2.0 + 1e-12);
            }
        }
    }

    #[test]
    fn boundary_particles_clamp_into_grid() {
        let pts = vec![Cx::new(1.0, 1.0), Cx::new(0.0, 0.0)];
        let t = QuadTree::build(&pts, 2);
        let total: usize = t.leaf_particles.iter().map(Vec::len).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn occupancy_level_bounds_leaf_population() {
        // A tight cluster forces a deeper tree than the count heuristic.
        let tight: Vec<Cx> = (0..256)
            .map(|i| Cx::new(0.5 + (i % 16) as f64 * 1e-3, 0.5 + (i / 16) as f64 * 1e-3))
            .collect();
        let lvl = QuadTree::level_for_occupancy(&tight, 8);
        assert!(lvl > QuadTree::level_for(256, 8), "cluster must deepen");
        let t = QuadTree::build(&tight, lvl);
        let max = t.leaf_particles.iter().map(Vec::len).max().unwrap();
        assert!(max <= 8, "max occupancy {max}");
        // Uniform points settle at a shallow level.
        let uniform: Vec<Cx> = (0..64)
            .map(|i| Cx::new(((i % 8) as f64 + 0.5) / 8.0, ((i / 8) as f64 + 0.5) / 8.0))
            .collect();
        assert_eq!(QuadTree::level_for_occupancy(&uniform, 1), 3);
    }

    #[test]
    fn level_for_targets_occupancy() {
        assert!(QuadTree::level_for(1000, 16) >= 3);
        assert!(QuadTree::level_for(100_000, 16) > QuadTree::level_for(1000, 16));
        assert_eq!(QuadTree::level_for(1, 16), 3);
    }
}
