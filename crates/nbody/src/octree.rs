//! Octree construction for Barnes-Hut.
//!
//! Leaves hold up to `leaf_cap` bodies *inline* — mirroring the paper's
//! note that its codes benefit from inline allocation of objects "to
//! enlarge object granularity that amortizes object access overhead and
//! simplifies communication of object state": a fetched leaf carries its
//! bodies with it.

use crate::body::Body;
use crate::vec3::Vec3;

/// Index of a cell within its [`Octree`].
pub type CellId = u32;

/// Sentinel for "no child".
pub const NO_CELL: i32 = -1;

/// A tree cell: cubic region, mass summary, and either children or inline
/// bodies.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Geometric center of the cube.
    pub center: Vec3,
    /// Half the side length.
    pub half: f64,
    /// Total mass of the subtree.
    pub mass: f64,
    /// Center of mass of the subtree.
    pub cm: Vec3,
    /// Bodies in the subtree.
    pub nbodies: u32,
    /// Children cell ids (`NO_CELL` = empty octant); empty for leaves.
    pub children: [i32; 8],
    /// Body indices held inline (leaves only).
    pub bodies: Vec<u32>,
}

impl Cell {
    /// `true` when the cell holds bodies inline.
    pub fn is_leaf(&self) -> bool {
        self.children == [NO_CELL; 8]
    }

    /// Side length of the cube.
    pub fn side(&self) -> f64 {
        self.half * 2.0
    }
}

/// An octree over a body set.
#[derive(Clone, Debug)]
pub struct Octree {
    /// All cells; index 0 is the root.
    pub cells: Vec<Cell>,
    /// Maximum bodies per leaf.
    pub leaf_cap: usize,
    /// Lower corner of the root cube.
    pub lo: Vec3,
    /// Side length of the root cube.
    pub extent: f64,
}

/// Hard recursion limit: coincident points cannot split forever.
const MAX_DEPTH: u32 = 48;

impl Octree {
    /// Build an octree over `bodies` with at most `leaf_cap` bodies per
    /// leaf. Panics on an empty body set.
    pub fn build(bodies: &[Body], leaf_cap: usize) -> Octree {
        assert!(!bodies.is_empty(), "cannot build a tree over no bodies");
        assert!(leaf_cap >= 1);
        let mut lo = bodies[0].pos;
        let mut hi = bodies[0].pos;
        for b in bodies {
            lo = lo.min(b.pos);
            hi = hi.max(b.pos);
        }
        // Slightly inflate so boundary points are strictly inside.
        let extent = ((hi - lo).max_component()).max(1e-12) * (1.0 + 1e-9);
        let center = lo + Vec3::new(extent, extent, extent) * 0.5;

        let mut tree = Octree {
            cells: Vec::new(),
            leaf_cap,
            lo,
            extent,
        };
        let all: Vec<u32> = (0..bodies.len() as u32).collect();
        tree.subdivide(bodies, all, center, extent * 0.5, 0);
        tree
    }

    /// Recursively build the cell for `idxs`; returns its id.
    fn subdivide(
        &mut self,
        bodies: &[Body],
        idxs: Vec<u32>,
        center: Vec3,
        half: f64,
        depth: u32,
    ) -> CellId {
        let id = self.cells.len() as CellId;
        let nbodies = idxs.len() as u32;
        let mut mass = 0.0;
        let mut weighted = Vec3::ZERO;
        for &i in &idxs {
            mass += bodies[i as usize].mass;
            weighted += bodies[i as usize].pos * bodies[i as usize].mass;
        }
        let cm = if mass > 0.0 { weighted / mass } else { center };

        self.cells.push(Cell {
            center,
            half,
            mass,
            cm,
            nbodies,
            children: [NO_CELL; 8],
            bodies: Vec::new(),
        });

        if idxs.len() <= self.leaf_cap || depth >= MAX_DEPTH {
            self.cells[id as usize].bodies = idxs;
            return id;
        }

        // Partition bodies into octants.
        let mut oct: [Vec<u32>; 8] = Default::default();
        for &i in &idxs {
            let p = bodies[i as usize].pos;
            let o = ((p.x >= center.x) as usize) << 2
                | ((p.y >= center.y) as usize) << 1
                | (p.z >= center.z) as usize;
            oct[o].push(i);
        }
        let qh = half * 0.5;
        for (o, sub) in oct.into_iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            let off = Vec3::new(
                if o & 4 != 0 { qh } else { -qh },
                if o & 2 != 0 { qh } else { -qh },
                if o & 1 != 0 { qh } else { -qh },
            );
            let child = self.subdivide(bodies, sub, center + off, qh, depth + 1);
            self.cells[id as usize].children[o] = child as i32;
        }
        id
    }

    /// The root cell id.
    pub fn root(&self) -> CellId {
        0
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the tree has no cells (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterator over `(cell_id, &cell)`.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells.iter().enumerate().map(|(i, c)| (i as u32, c))
    }

    /// Check structural invariants; used by tests and debug assertions.
    /// Returns the total number of bodies found in leaves.
    pub fn check_invariants(&self, bodies: &[Body]) -> usize {
        let mut seen = vec![false; bodies.len()];
        let mut count = 0usize;
        for (id, cell) in self.iter() {
            if cell.is_leaf() {
                assert!(
                    cell.bodies.len() == cell.nbodies as usize,
                    "leaf {id} body count mismatch"
                );
                for &b in &cell.bodies {
                    assert!(!seen[b as usize], "body {b} appears in two leaves");
                    seen[b as usize] = true;
                    count += 1;
                    let p = bodies[b as usize].pos;
                    let d = p - cell.center;
                    let slack = cell.half * (1.0 + 1e-6) + 1e-12;
                    assert!(
                        d.x.abs() <= slack && d.y.abs() <= slack && d.z.abs() <= slack,
                        "body {b} outside leaf {id}"
                    );
                }
            } else {
                assert!(cell.bodies.is_empty(), "internal cell {id} holds bodies");
                let child_sum: u32 = cell
                    .children
                    .iter()
                    .filter(|&&c| c != NO_CELL)
                    .map(|&c| self.cells[c as usize].nbodies)
                    .sum();
                assert_eq!(child_sum, cell.nbodies, "cell {id} count mismatch");
            }
        }
        assert!(seen.iter().all(|&s| s), "some body missing from the tree");
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distrib::{plummer, uniform_cube};

    #[test]
    fn build_contains_all_bodies_once() {
        let bodies = uniform_cube(1000, 11);
        let t = Octree::build(&bodies, 8);
        assert_eq!(t.check_invariants(&bodies), 1000);
        assert_eq!(t.cells[0].nbodies, 1000);
    }

    #[test]
    fn plummer_tree_is_deep() {
        let bodies = plummer(2000, 5);
        let t = Octree::build(&bodies, 4);
        assert!(t.len() > 100, "clustered input must subdivide");
        t.check_invariants(&bodies);
    }

    #[test]
    fn root_mass_is_total() {
        let bodies = uniform_cube(512, 3);
        let t = Octree::build(&bodies, 8);
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((t.cells[0].mass - total).abs() < 1e-12);
    }

    #[test]
    fn root_cm_matches_direct() {
        let bodies = uniform_cube(256, 9);
        let t = Octree::build(&bodies, 8);
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        let mut cm = Vec3::ZERO;
        for b in &bodies {
            cm += b.pos * b.mass;
        }
        cm = cm / total;
        assert!((t.cells[0].cm - cm).norm() < 1e-9);
    }

    #[test]
    fn single_body_is_one_leaf() {
        let bodies = vec![Body::at(Vec3::new(0.5, 0.5, 0.5), 2.0)];
        let t = Octree::build(&bodies, 8);
        assert_eq!(t.len(), 1);
        assert!(t.cells[0].is_leaf());
        assert_eq!(t.cells[0].mass, 2.0);
    }

    #[test]
    fn coincident_bodies_terminate() {
        let bodies = vec![Body::at(Vec3::new(0.1, 0.2, 0.3), 1.0); 20];
        let t = Octree::build(&bodies, 2);
        // MAX_DEPTH guard forces a leaf despite leaf_cap overflow.
        assert_eq!(t.check_invariants(&bodies), 20);
    }

    #[test]
    fn leaf_cap_respected_for_distinct_points() {
        let bodies = uniform_cube(400, 21);
        let t = Octree::build(&bodies, 4);
        for (_, c) in t.iter() {
            if c.is_leaf() {
                assert!(c.bodies.len() <= 4);
            }
        }
    }
}
