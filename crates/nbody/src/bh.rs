//! Sequential Barnes-Hut force evaluation — the algorithmic reference the
//! distributed variants must agree with, and the source of the
//! per-interaction operation counts the cost model charges.

use crate::body::{point_accel, Body};
use crate::octree::{Octree, NO_CELL};
use crate::vec3::Vec3;

/// Opening-criterion and softening parameters.
#[derive(Clone, Copy, Debug)]
pub struct BhParams {
    /// Opening angle θ: a cell of side `l` at distance `d` is accepted as
    /// a monopole when `l / d < θ` (SPLASH-2's criterion).
    pub theta: f64,
    /// Plummer softening length.
    pub eps: f64,
}

impl Default for BhParams {
    fn default() -> Self {
        BhParams {
            theta: 1.0,
            eps: 0.05,
        }
    }
}

/// Result of one body's tree walk.
#[derive(Clone, Copy, Debug, Default)]
pub struct WalkResult {
    /// Accumulated acceleration.
    pub acc: Vec3,
    /// Body–cell monopole interactions performed.
    pub cell_interactions: u64,
    /// Body–body direct interactions performed.
    pub body_interactions: u64,
    /// Cells visited (opened or accepted).
    pub cells_visited: u64,
}

/// Decide whether `cell` (side `side`, center of mass `cm`) may be
/// accepted as a monopole for a body at `pos`.
#[inline]
pub fn accepts(pos: Vec3, cm: Vec3, side: f64, theta: f64) -> bool {
    let d2 = (cm - pos).norm2();
    side * side < theta * theta * d2
}

/// Walk the tree for body `i`, accumulating acceleration.
pub fn walk(tree: &Octree, bodies: &[Body], i: usize, params: BhParams) -> WalkResult {
    let mut res = WalkResult::default();
    let pos = bodies[i].pos;
    let mut stack: Vec<u32> = vec![tree.root()];
    while let Some(id) = stack.pop() {
        let cell = &tree.cells[id as usize];
        if cell.nbodies == 0 {
            continue;
        }
        res.cells_visited += 1;
        if cell.is_leaf() {
            for &b in &cell.bodies {
                if b as usize != i {
                    res.acc += point_accel(pos, bodies[b as usize].pos, bodies[b as usize].mass, params.eps);
                    res.body_interactions += 1;
                }
            }
        } else if accepts(pos, cell.cm, cell.side(), params.theta) {
            res.acc += point_accel(pos, cell.cm, cell.mass, params.eps);
            res.cell_interactions += 1;
        } else {
            for &c in &cell.children {
                if c != NO_CELL {
                    stack.push(c as u32);
                }
            }
        }
    }
    res
}

/// Accelerations for every body (the full sequential force phase).
pub fn all_accels(tree: &Octree, bodies: &[Body], params: BhParams) -> Vec<WalkResult> {
    (0..bodies.len()).map(|i| walk(tree, bodies, i, params)).collect()
}

/// Relative error of `approx` against `exact`, guarding tiny magnitudes.
pub fn rel_err(approx: Vec3, exact: Vec3) -> f64 {
    let scale = exact.norm().max(1e-12);
    (approx - exact).norm() / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::direct_accel;
    use crate::distrib::{plummer, uniform_cube};

    #[test]
    fn theta_zero_matches_direct_exactly() {
        // θ = 0 never accepts a monopole: the walk degenerates to direct
        // summation over the leaves.
        let bodies = uniform_cube(200, 4);
        let tree = Octree::build(&bodies, 4);
        let p = BhParams {
            theta: 0.0,
            eps: 0.01,
        };
        for i in (0..bodies.len()).step_by(17) {
            let w = walk(&tree, &bodies, i, p);
            let d = direct_accel(&bodies, i, 0.01);
            assert!(rel_err(w.acc, d) < 1e-12, "body {i}: {:?} vs {d:?}", w.acc);
            assert_eq!(w.cell_interactions, 0);
            assert_eq!(w.body_interactions, 199);
        }
    }

    #[test]
    fn accuracy_improves_with_smaller_theta() {
        let bodies = plummer(600, 6);
        let tree = Octree::build(&bodies, 8);
        let mut errs = Vec::new();
        for theta in [1.5, 1.0, 0.5] {
            let p = BhParams { theta, eps: 0.05 };
            let mut worst = 0.0f64;
            for i in (0..bodies.len()).step_by(29) {
                let w = walk(&tree, &bodies, i, p);
                let d = direct_accel(&bodies, i, 0.05);
                worst = worst.max(rel_err(w.acc, d));
            }
            errs.push(worst);
        }
        assert!(errs[0] >= errs[1] && errs[1] >= errs[2], "errors {errs:?}");
        assert!(errs[2] < 0.05, "theta=0.5 should be within 5%: {errs:?}");
    }

    #[test]
    fn interaction_counts_shrink_with_larger_theta() {
        let bodies = plummer(800, 8);
        let tree = Octree::build(&bodies, 8);
        let count = |theta: f64| -> u64 {
            let p = BhParams { theta, eps: 0.05 };
            all_accels(&tree, &bodies, p)
                .iter()
                .map(|w| w.cell_interactions + w.body_interactions)
                .sum()
        };
        let loose = count(1.2);
        let tight = count(0.4);
        assert!(
            loose < tight,
            "larger theta must do fewer interactions ({loose} vs {tight})"
        );
    }

    #[test]
    fn forces_sum_to_near_zero() {
        // Newton's third law: internal forces cancel (monopole error aside).
        let bodies = uniform_cube(300, 12);
        let tree = Octree::build(&bodies, 8);
        let p = BhParams::default();
        let mut total = Vec3::ZERO;
        for (i, w) in all_accels(&tree, &bodies, p).iter().enumerate() {
            total += w.acc * bodies[i].mass;
        }
        // Direct sum would cancel to machine precision; BH to ~theta error.
        assert!(total.norm() < 0.05, "net force {total:?}");
    }

    #[test]
    fn walk_counts_are_consistent() {
        let bodies = uniform_cube(200, 1);
        let tree = Octree::build(&bodies, 4);
        let w = walk(&tree, &bodies, 0, BhParams::default());
        assert!(w.cells_visited >= w.cell_interactions);
        assert!(w.acc.is_finite());
    }
}
