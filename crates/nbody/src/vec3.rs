//! Minimal 3-vector used by the Barnes-Hut substrate.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A 3-component `f64` vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// `true` if all components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn norms_and_dot() {
        let a = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(a.norm2(), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.dot(Vec3::new(1.0, 1.0, 7.0)), 7.0);
    }

    #[test]
    fn min_max() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
        assert_eq!(a.max_component(), 5.0);
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
