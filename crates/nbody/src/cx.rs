//! Complex arithmetic for the 2D fast multipole method.
//!
//! The 2D Laplace kernel is `log|z - z0|`, most naturally handled in the
//! complex plane (Greengard & Rokhlin): particles at complex positions,
//! potentials as complex analytic functions whose real part is the
//! physical potential and whose derivative encodes the field.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A complex number.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Cx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cx {
    /// Zero.
    pub const ZERO: Cx = Cx { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Cx = Cx { re: 1.0, im: 0.0 };

    /// Construct from parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Cx {
        Cx { re, im }
    }

    /// A purely real value.
    #[inline]
    pub const fn real(re: f64) -> Cx {
        Cx { re, im: 0.0 }
    }

    /// Squared modulus.
    #[inline]
    pub fn norm2(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm2().sqrt()
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Cx {
        Cx::new(self.re, -self.im)
    }

    /// Reciprocal. Caller must avoid zero.
    #[inline]
    pub fn recip(self) -> Cx {
        let n = self.norm2();
        Cx::new(self.re / n, -self.im / n)
    }

    /// Principal branch logarithm.
    #[inline]
    pub fn ln(self) -> Cx {
        Cx::new(self.abs().ln(), self.im.atan2(self.re))
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: u32) -> Cx {
        let mut base = self;
        let mut acc = Cx::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc = acc * base;
            }
            base = base * base;
            n >>= 1;
        }
        acc
    }

    /// `true` if both parts are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Cx {
    type Output = Cx;
    #[inline]
    fn add(self, o: Cx) -> Cx {
        Cx::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Cx {
    #[inline]
    fn add_assign(&mut self, o: Cx) {
        *self = *self + o;
    }
}

impl Sub for Cx {
    type Output = Cx;
    #[inline]
    fn sub(self, o: Cx) -> Cx {
        Cx::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Cx {
    type Output = Cx;
    #[inline]
    fn mul(self, o: Cx) -> Cx {
        Cx::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Mul<f64> for Cx {
    type Output = Cx;
    #[inline]
    fn mul(self, s: f64) -> Cx {
        Cx::new(self.re * s, self.im * s)
    }
}

impl Div for Cx {
    type Output = Cx;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w = z * w^-1
    fn div(self, o: Cx) -> Cx {
        self * o.recip()
    }
}

impl Div<f64> for Cx {
    type Output = Cx;
    #[inline]
    fn div(self, s: f64) -> Cx {
        Cx::new(self.re / s, self.im / s)
    }
}

impl Neg for Cx {
    type Output = Cx;
    #[inline]
    fn neg(self) -> Cx {
        Cx::new(-self.re, -self.im)
    }
}

/// Binomial coefficients C(n, k) for the translation operators, as a
/// lower-triangular table valid for `n <= max_n`.
#[derive(Clone, Debug)]
pub struct Binomials {
    rows: Vec<Vec<f64>>,
}

impl Binomials {
    /// Pascal's triangle up to row `max_n`.
    pub fn new(max_n: usize) -> Binomials {
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(max_n + 1);
        for n in 0..=max_n {
            let mut row = vec![1.0; n + 1];
            for k in 1..n {
                row[k] = rows[n - 1][k - 1] + rows[n - 1][k];
            }
            rows.push(row);
        }
        Binomials { rows }
    }

    /// C(n, k). Panics if out of the precomputed range; returns 0 for
    /// `k > n`.
    #[inline]
    pub fn c(&self, n: usize, k: usize) -> f64 {
        if k > n {
            0.0
        } else {
            self.rows[n][k]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Cx, b: Cx) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn field_ops() {
        let a = Cx::new(1.0, 2.0);
        let b = Cx::new(3.0, -1.0);
        assert!(close(a + b, Cx::new(4.0, 1.0)));
        assert!(close(a * b, Cx::new(5.0, 5.0)));
        assert!(close(a * b / b, a));
        assert!(close(a.recip() * a, Cx::ONE));
        assert!(close(-a + a, Cx::ZERO));
    }

    #[test]
    fn conj_and_abs() {
        let a = Cx::new(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.conj(), Cx::new(3.0, -4.0));
        assert_eq!((a * a.conj()).re, 25.0);
    }

    #[test]
    fn ln_of_e() {
        let e = Cx::real(std::f64::consts::E);
        assert!(close(e.ln(), Cx::ONE));
        // ln(-1) = i*pi on the principal branch.
        assert!(close(
            Cx::real(-1.0).ln(),
            Cx::new(0.0, std::f64::consts::PI)
        ));
    }

    #[test]
    fn powers() {
        let i = Cx::new(0.0, 1.0);
        assert!(close(i.powi(2), Cx::real(-1.0)));
        assert!(close(i.powi(4), Cx::ONE));
        assert!(close(Cx::new(2.0, 0.0).powi(10), Cx::real(1024.0)));
        assert!(close(Cx::new(1.5, -0.5).powi(0), Cx::ONE));
    }

    #[test]
    fn binomials_match_pascal() {
        let b = Binomials::new(10);
        assert_eq!(b.c(0, 0), 1.0);
        assert_eq!(b.c(5, 2), 10.0);
        assert_eq!(b.c(10, 5), 252.0);
        assert_eq!(b.c(4, 7), 0.0);
    }

    #[test]
    fn finiteness() {
        assert!(Cx::new(1.0, 1.0).is_finite());
        assert!(!Cx::new(f64::NAN, 0.0).is_finite());
    }
}
