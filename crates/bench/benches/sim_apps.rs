//! End-to-end simulator throughput: full (small-scale) force phases under
//! each variant. Wall time here measures the *simulator and runtime*
//! implementation — regression tracking for the engine that produces all
//! paper-reproduction numbers.

use apps::driver::{run_bh, run_fmm};
use bench::{bh_world_sized, fmm_world_sized, paper_net};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dpa_core::synth::{SynthApp, SynthParams, SynthWorld};
use dpa_core::{run_phase, DpaConfig};

fn bench_synth(c: &mut Criterion) {
    let world = SynthWorld::build(SynthParams {
        nodes: 8,
        lists_per_node: 32,
        list_len: 32,
        remote_fraction: 0.4,
        shared_fraction: 0.5,
        record_bytes: 32,
        work_ns: 500,
        seed: 3,
    });
    let mut g = c.benchmark_group("sim_synth");
    g.sample_size(20);
    for cfg in [DpaConfig::dpa(16), DpaConfig::caching(), DpaConfig::blocking()] {
        g.bench_function(cfg.describe(), |b| {
            b.iter(|| {
                let r = run_phase(
                    8,
                    paper_net(),
                    cfg.clone(),
                    |i| SynthApp::new(world.clone(), i, 500),
                    |_, _| {},
                );
                black_box(r.makespan())
            })
        });
    }
    g.finish();
}

fn bench_bh_phase(c: &mut Criterion) {
    let world = bh_world_sized(2048, 8);
    let mut g = c.benchmark_group("sim_bh_2048_p8");
    g.sample_size(10);
    for cfg in [DpaConfig::dpa(50), DpaConfig::caching()] {
        g.bench_function(cfg.describe(), |b| {
            b.iter(|| black_box(run_bh(&world, cfg.clone(), paper_net()).makespan_ns))
        });
    }
    g.finish();
}

fn bench_fmm_phase(c: &mut Criterion) {
    let world = fmm_world_sized(4096, 12, 8);
    let mut g = c.benchmark_group("sim_fmm_4096_p8");
    g.sample_size(10);
    for cfg in [DpaConfig::dpa(50), DpaConfig::caching()] {
        g.bench_function(cfg.describe(), |b| {
            b.iter(|| black_box(run_fmm(&world, cfg.clone(), paper_net()).makespan_ns))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_synth, bench_bh_phase, bench_fmm_phase);
criterion_main!(benches);
