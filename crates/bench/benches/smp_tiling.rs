//! Real-threads tiling ablation on the host CPU.
//!
//! The paper's discussion notes that DPA's thread reordering "is also
//! applicable to cache optimizations" (cf. Philbin et al.): running the
//! threads that touch the same object consecutively turns scattered
//! accesses into cache-resident ones. This bench demonstrates that effect
//! with *real* parallel threads (std scoped threads): a task soup
//! over a large object array is executed in scattered order vs
//! pointer-aligned (tiled) order. The tiled schedule is the memory-access
//! pattern DPA's runtime produces when it releases all threads aligned
//! under an arrived object in one batch.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One "object": a cache-line-plus of payload.
#[derive(Clone)]
struct Obj {
    payload: [u64; 16], // 128 bytes
}

const OBJECTS: usize = 1 << 16; // 64K objects × 128 B = 8 MiB (beyond L2)
const TASKS_PER_OBJ: usize = 8;
const THREADS: usize = 4;

fn make_world() -> Vec<Obj> {
    (0..OBJECTS)
        .map(|i| Obj {
            payload: [i as u64; 16],
        })
        .collect()
}

/// Tasks as (object index, salt).
fn make_tasks() -> Vec<(u32, u64)> {
    let mut tasks = Vec::with_capacity(OBJECTS * TASKS_PER_OBJ);
    for obj in 0..OBJECTS as u32 {
        for t in 0..TASKS_PER_OBJ as u64 {
            tasks.push((obj, t));
        }
    }
    tasks
}

fn run_tasks(world: &[Obj], tasks: &[(u32, u64)]) -> u64 {
    // Static partition across real threads; each runs its slice in order.
    let chunk = tasks.len().div_ceil(THREADS);
    let mut total = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = tasks
            .chunks(chunk)
            .map(|slice| {
                s.spawn(move || {
                    let mut acc = 0u64;
                    for &(obj, salt) in slice {
                        let o = &world[obj as usize];
                        let mut h = salt;
                        for &w in &o.payload {
                            h = h.wrapping_mul(0x100000001B3).wrapping_add(w);
                        }
                        acc = acc.wrapping_add(h);
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            total = total.wrapping_add(h.join().unwrap());
        }
    });
    total
}

fn bench_tiling(c: &mut Criterion) {
    let world = make_world();
    let tiled = make_tasks(); // already grouped by object: the DPA order
    let scattered = {
        let mut t = make_tasks();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        t.shuffle(&mut rng);
        t
    };

    let mut g = c.benchmark_group("smp_tiling");
    g.throughput(Throughput::Elements((OBJECTS * TASKS_PER_OBJ) as u64));
    g.sample_size(10);
    g.bench_function("aligned_tiled_order", |b| {
        b.iter_batched(
            || (),
            |_| black_box(run_tasks(&world, &tiled)),
            BatchSize::PerIteration,
        )
    });
    g.bench_function("scattered_order", |b| {
        b.iter_batched(
            || (),
            |_| black_box(run_tasks(&world, &scattered)),
            BatchSize::PerIteration,
        )
    });
    g.finish();

    // Sanity: identical results either way (order-independent reduction).
    assert_eq!(run_tasks(&world, &tiled), run_tasks(&world, &scattered));
}

criterion_group!(benches, bench_tiling);
criterion_main!(benches);
