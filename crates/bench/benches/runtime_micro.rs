//! Microbenchmarks of the DPA runtime's core data structures: the
//! pointer→threads mapping M, the outstanding-request table D, the
//! coalescing buffers, packed global pointers, and the baseline software
//! cache. These are the per-access costs the cost model charges; the
//! numbers here are real host-side wall times (regression tracking).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dpa_core::{PendingRequests, PointerMap};
use fastmsg::Coalescer;
use global_heap::{GPtr, ObjClass, SoftCache};

fn ptrs(n: usize) -> Vec<GPtr> {
    (0..n)
        .map(|i| GPtr::new((i % 61) as u16, ObjClass((i % 3) as u8), (i / 3) as u64))
        .collect()
}

fn bench_pointer_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("pointer_map");
    let ps = ptrs(4096);
    g.throughput(Throughput::Elements(4096));
    g.bench_function("align_release_4096", |b| {
        b.iter(|| {
            let mut m: PointerMap<u32> = PointerMap::new();
            for (i, &p) in ps.iter().enumerate() {
                black_box(m.align(p, i as u32));
            }
            let mut released = 0;
            for &p in &ps {
                released += m.release(p).len();
            }
            black_box(released)
        })
    });
    g.bench_function("align_dense_sharing", |b| {
        // 64 distinct pointers, 4096 threads: the tiling-friendly shape.
        let dense = ptrs(64);
        b.iter(|| {
            let mut m: PointerMap<u32> = PointerMap::new();
            for i in 0..4096u32 {
                m.align(dense[(i % 64) as usize], i);
            }
            let mut total = 0;
            for &p in &dense {
                total += m.release(p).len();
            }
            black_box(total)
        })
    });
    g.finish();
}

fn bench_pending(c: &mut Criterion) {
    let ps = ptrs(4096);
    let mut g = c.benchmark_group("pending_requests");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("insert_complete_4096", |b| {
        b.iter(|| {
            let mut d = PendingRequests::new();
            for &p in &ps {
                black_box(d.insert(p));
            }
            for &p in &ps {
                black_box(d.complete(p));
            }
        })
    });
    g.finish();
}

fn bench_coalescer(c: &mut Criterion) {
    let ps = ptrs(4096);
    let mut g = c.benchmark_group("coalescer");
    g.throughput(Throughput::Elements(4096));
    for window in [1usize, 8, 32, 128] {
        g.bench_function(format!("push_drain_w{window}"), |b| {
            b.iter(|| {
                let mut co: Coalescer<GPtr> = Coalescer::new(64, window);
                let mut batches = 0;
                for &p in &ps {
                    if co.push(p.node(), p).is_some() {
                        batches += 1;
                    }
                }
                batches += co.drain_all().len();
                black_box(batches)
            })
        });
    }
    g.finish();
}

fn bench_gptr(c: &mut Criterion) {
    let mut g = c.benchmark_group("gptr");
    g.throughput(Throughput::Elements(1));
    g.bench_function("pack_unpack", |b| {
        b.iter(|| {
            let p = GPtr::new(black_box(17), ObjClass(2), black_box(123456));
            black_box((p.node(), p.class(), p.index()))
        })
    });
    g.finish();
}

fn bench_soft_cache(c: &mut Criterion) {
    let ps = ptrs(4096);
    let mut g = c.benchmark_group("soft_cache");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("probe_fill_4096", |b| {
        b.iter(|| {
            let mut cache = SoftCache::new(None);
            for &p in &ps {
                if !cache.probe(p) {
                    cache.fill(p, 96);
                }
            }
            // Second pass: all hits.
            let mut hits = 0;
            for &p in &ps {
                if cache.probe(p) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("probe_bounded_evicting", |b| {
        b.iter(|| {
            let mut cache = SoftCache::new(Some(256));
            for &p in &ps {
                if !cache.probe(p) {
                    cache.fill(p, 96);
                }
            }
            black_box(cache.stats().evictions)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_pointer_map,
    bench_pending,
    bench_coalescer,
    bench_gptr,
    bench_soft_cache
);
criterion_main!(benches);
