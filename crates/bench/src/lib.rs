//! # bench — experiment harness regenerating the paper's tables & figures
//!
//! One binary per artifact (see `DESIGN.md`'s experiment index):
//!
//! | binary | artifact |
//! |---|---|
//! | `table1_exec_times` | Table 1: DPA(50) vs Caching execution times, P = 1..64 |
//! | `fig_breakdown` | breakdown figure: idle/overhead/local per optimization level |
//! | `fig_stripsize` | strip-size figure: sensitivity on 16 nodes |
//! | `table_thread_stats` | thread-statistics table: threads / requests / memory |
//! | `fig_scaling` | speedup curves, naive blocking, placement ablation |
//! | `fig_crossover` | extension: scheme crossovers vs remote/shared fraction |
//! | `fig_clustered` | extension: non-uniform inputs, uniform vs adaptive FMM |
//! | `fig_cache` | extension: bounded-cache (FIFO/LRU) baseline ablation |
//! | `trace_phase` | extension: per-node Gantt timeline (Chrome/Perfetto JSON) |
//! | `calibrate`, `diag_*` | calibration & diagnostic dumps |
//!
//! Shared here: paper-scale workload builders, row formatting, and JSON
//! result dumping (consumed when updating `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dst;
pub mod service;

use apps::bh_dist::{BhCost, BhWorld};
use apps::fmm_dist::{FmmCost, FmmWorld};
use nbody::bh::BhParams;
use nbody::cx::Cx;
use nbody::distrib::{plummer, uniform_square};
use nbody::fmm::FmmParams;
use sim_net::{NetConfig, RunStats};
use std::sync::Arc;

/// The paper's Barnes-Hut problem size.
pub const PAPER_BH_BODIES: usize = 16_384;
/// The paper's FMM problem size.
pub const PAPER_FMM_PARTICLES: usize = 32_768;
/// The paper's FMM term count.
pub const PAPER_FMM_TERMS: usize = 29;
/// Octree leaf capacity for the paper-scale Barnes-Hut worlds.
pub const BH_LEAF_CAP: usize = 1;
/// The paper times 4 Barnes-Hut steps; we time one force phase and scale.
pub const PAPER_BH_STEPS: u64 = 4;

/// Standard seed for the paper-scale worlds.
pub const SEED: u64 = 1997;

/// Build the paper-scale Barnes-Hut world for `nodes`.
pub fn paper_bh_world(nodes: u16) -> Arc<BhWorld> {
    BhWorld::build(
        plummer(PAPER_BH_BODIES, SEED),
        nodes,
        BH_LEAF_CAP,
        BhParams::default(),
        BhCost::default(),
    )
}

/// Build a scaled Barnes-Hut world (for quick runs / tests).
pub fn bh_world_sized(bodies: usize, nodes: u16) -> Arc<BhWorld> {
    BhWorld::build(
        plummer(bodies, SEED),
        nodes,
        BH_LEAF_CAP,
        BhParams::default(),
        BhCost::default(),
    )
}

/// Build the paper-scale FMM world for `nodes`.
pub fn paper_fmm_world(nodes: u16) -> Arc<FmmWorld> {
    fmm_world_sized(PAPER_FMM_PARTICLES, PAPER_FMM_TERMS, nodes)
}

/// Build a scaled FMM world.
pub fn fmm_world_sized(particles: usize, terms: usize, nodes: u16) -> Arc<FmmWorld> {
    let bodies = uniform_square(particles, SEED);
    let zs: Vec<Cx> = bodies.iter().map(|b| Cx::new(b.pos.x, b.pos.y)).collect();
    let qs: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
    let levels = nbody::quadtree::QuadTree::level_for(particles, 16);
    FmmWorld::build(
        zs,
        qs,
        nodes,
        FmmParams { terms, levels },
        FmmCost::default(),
    )
}

/// The T3D-like network in effect for all experiments.
pub fn paper_net() -> NetConfig {
    NetConfig::default()
}

/// One experiment data point, dumped as JSON for EXPERIMENTS.md.
#[derive(Clone, Debug)]
pub struct ExpPoint {
    /// Experiment id (e.g. "table1").
    pub experiment: String,
    /// Application ("bh" / "fmm" / "synth").
    pub app: String,
    /// Configuration label.
    pub config: String,
    /// Node count.
    pub nodes: u16,
    /// Simulated execution time, seconds.
    pub seconds: f64,
    /// Mean per-node breakdown (local, overhead, idle) in seconds.
    pub breakdown: (f64, f64, f64),
    /// Total messages sent.
    pub msgs: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Extra key/value metrics.
    pub extra: Vec<(String, f64)>,
}

impl ExpPoint {
    /// Build a point from a run's stats.
    pub fn new(
        experiment: &str,
        app: &str,
        config: &str,
        nodes: u16,
        makespan_ns: u64,
        stats: &RunStats,
    ) -> ExpPoint {
        let (l, o, i) = stats.mean_breakdown();
        ExpPoint {
            experiment: experiment.to_string(),
            app: app.to_string(),
            config: config.to_string(),
            nodes,
            seconds: makespan_ns as f64 / 1e9,
            breakdown: (l / 1e9, o / 1e9, i / 1e9),
            msgs: stats.total_msgs(),
            bytes: stats.total_bytes(),
            extra: Vec::new(),
        }
    }

    /// Attach an extra metric.
    pub fn with(mut self, key: &str, value: f64) -> ExpPoint {
        self.extra.push((key.to_string(), value));
        self
    }
}

/// Minimal JSON emission (no external dependency in this offline build).
pub mod json {
    /// Escape a string for inclusion in a JSON document (adds quotes).
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Format an `f64` as a JSON number (non-finite values become `null`).
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }
}

impl ExpPoint {
    /// Render this point as a JSON object.
    pub fn to_json(&self) -> String {
        let extra: Vec<String> = self
            .extra
            .iter()
            .map(|(k, v)| format!("[{}, {}]", json::string(k), json::number(*v)))
            .collect();
        format!(
            "{{\"experiment\": {}, \"app\": {}, \"config\": {}, \"nodes\": {}, \
             \"seconds\": {}, \"breakdown\": [{}, {}, {}], \"msgs\": {}, \"bytes\": {}, \
             \"extra\": [{}]}}",
            json::string(&self.experiment),
            json::string(&self.app),
            json::string(&self.config),
            self.nodes,
            json::number(self.seconds),
            json::number(self.breakdown.0),
            json::number(self.breakdown.1),
            json::number(self.breakdown.2),
            self.msgs,
            self.bytes,
            extra.join(", "),
        )
    }
}

/// Write experiment points as pretty JSON under `results/`.
pub fn dump_json(name: &str, points: &[ExpPoint]) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        let rows: Vec<String> = points.iter().map(|p| format!("  {}", p.to_json())).collect();
        let s = format!("[\n{}\n]\n", rows.join(",\n"));
        let _ = std::fs::write(&path, s);
        eprintln!("[wrote {}]", path.display());
    }
}

/// Format seconds like the paper's tables (two decimals).
pub fn fmt_secs(ns: u64) -> String {
    format!("{:8.2}", ns as f64 / 1e9)
}

/// Render a row of a breakdown bar as percentages.
pub fn breakdown_pct(stats: &RunStats) -> (f64, f64, f64) {
    let (l, o, i) = stats.mean_breakdown();
    let t = (l + o + i).max(1.0);
    (100.0 * l / t, 100.0 * o / t, 100.0 * i / t)
}

/// Parse `--quick` style flags: returns true if the flag is present.
pub fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

/// Render a local/overhead/idle split as a fixed-width ASCII bar —
/// `█` local, `▒` overhead, `·` idle — the textual form of the paper's
/// breakdown figure.
pub fn ascii_bar(local: f64, overhead: f64, idle: f64, width: usize) -> String {
    let total = (local + overhead + idle).max(1e-12);
    let mut l = ((local / total) * width as f64).round() as usize;
    let mut o = ((overhead / total) * width as f64).round() as usize;
    l = l.min(width);
    o = o.min(width - l);
    let i = width - l - o;
    format!("{}{}{}", "█".repeat(l), "▒".repeat(o), "·".repeat(i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worlds_build_at_small_scale() {
        let bh = bh_world_sized(500, 4);
        assert_eq!(bh.bodies.len(), 500);
        let fmm = fmm_world_sized(400, 8, 4);
        assert_eq!(fmm.solver.zs.len(), 400);
    }

    #[test]
    fn fmt_secs_matches_paper_style() {
        assert_eq!(fmt_secs(118_020_000_000).trim(), "118.02");
        assert_eq!(fmt_secs(2_630_000_000).trim(), "2.63");
    }

    #[test]
    fn ascii_bar_partitions_width() {
        let b = ascii_bar(60.0, 20.0, 20.0, 20);
        assert_eq!(b.chars().count(), 20);
        assert_eq!(b.chars().filter(|&c| c == '█').count(), 12);
        assert_eq!(b.chars().filter(|&c| c == '▒').count(), 4);
        assert_eq!(b.chars().filter(|&c| c == '·').count(), 4);
        // Degenerate inputs stay in-bounds.
        assert_eq!(ascii_bar(0.0, 0.0, 0.0, 10).chars().count(), 10);
        assert_eq!(ascii_bar(1.0, 0.0, 0.0, 10), "█".repeat(10));
    }

    #[test]
    fn exp_point_records_breakdown() {
        let stats = RunStats::default();
        let p = ExpPoint::new("t", "bh", "DPA", 4, 1_500_000_000, &stats).with("x", 2.0);
        assert_eq!(p.seconds, 1.5);
        assert_eq!(p.extra[0].1, 2.0);
    }

    #[test]
    fn exp_point_json_is_well_formed() {
        let stats = RunStats::default();
        let p = ExpPoint::new("t\"1", "bh", "DPA", 4, 1_500_000_000, &stats).with("x", 2.0);
        let j = p.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"experiment\": \"t\\\"1\""));
        assert!(j.contains("\"seconds\": 1.5"));
        assert!(j.contains("[\"x\", 2]"));
        assert_eq!(json::number(f64::NAN), "null");
        assert_eq!(json::string("a\nb"), "\"a\\nb\"");
    }
}
