//! Deterministic-simulation-testing machinery shared by the `dst` binary
//! and the committed-corpus regression tests.
//!
//! Every run is a pure function of `(workload, schedule seed, fault plan)`,
//! so any failure is replayable bit-for-bit. This module owns the pieces
//! the sweep and the replayers both need: the pre-built worlds, the digest
//! comparison rules, the per-run invariant checks, and the corpus case
//! file format (`workload = ... / seed = ... / plan = ...`).

use apps::bh_dist::{BhApp, BhWorld};
use apps::fmm_dist::{FmmEvalApp, FmmM2lApp, FmmWorld};
use apps::graph_dist::{GraphApp, GraphParams, GraphWorld};
use apps::relax::{RelaxApp, RelaxWorld};
use apps::setops_dist::{SetopsApp, SetopsParams, SetopsWorld};
use crate::{bh_world_sized, fmm_world_sized};
use dpa_core::invariant::{check_completed, check_conservation, NodeSnapshot};
use dpa_core::synth::{SynthApp, SynthParams, SynthWorld};
use dpa_core::{
    run_phase_differential, run_phase_dst, run_phase_migrating, DiffPlan, DpaConfig, DstOptions,
};
use nbody::fmm::Local;
use sim_net::{FaultPlan, NetConfig, NodePause, RunReport};
use std::collections::HashMap;
use std::sync::Arc;

/// Extra per-delivery jitter used whenever a schedule seed is set, ns.
pub const JITTER_NS: u64 = 2_000;
/// Relative tolerance for floating-point digests across schedules (the
/// reduction order differs, so bits may not).
pub const FP_RTOL: f64 = 1e-9;
/// Every fault-plan name the sweep explores.
pub const ALL_PLANS: &[&str] = &["none", "drop", "dup", "delay", "pause"];
/// The CI-sized subset of fault plans.
pub const SMOKE_PLANS: &[&str] = &["none", "drop"];
/// Every workload name the sweep explores. The `-mig` workloads run the
/// same apps multi-phase with locality-driven object migration enabled
/// (epoch affinity, departs, forwards, the boundary pass). The `-adapt`
/// workloads run under the adaptive strip controller
/// ([`dpa_core::stripctl`]) with bounds tight enough that every node
/// crosses several retune boundaries; `bh-adapt` is additionally
/// multi-phase so the controllers carry across barriers. The `-diff`
/// workloads run multi-timestep with **differential re-alignment**
/// ([`run_phase_differential`]): tables and cached arrivals carry across
/// barriers, patched by boundary deltas; `bh-diff` additionally enables
/// migration so delta routing composes with re-homing. The skew-adversarial
/// family: `graph` is semi-naive transitive closure over a mutable
/// power-law graph, run differentially — structural edge rewires advance
/// object generations at every barrier, so the carried hub entries are
/// invalidated by *topology* changes, not a value-change schedule;
/// `graph-mig` runs the same closure multi-phase with migration chasing
/// the hot hub (many consumers, no dominant one); `setops` is the
/// batch-parallel ordered-set workload with power-law-hot range queries.
/// The `-repl` workloads run under **read-mostly replication**
/// ([`DpaConfig::dpa_replicating`]): the hot hub is promoted at a phase
/// boundary, broadcast to its consumer set, and every fault-plan hazard
/// (dropped broadcast, duplicated broadcast, delayed delta) must leave
/// the digests bit-identical or produce a diagnosable stall — never a
/// stale read.
pub const WORKLOADS: &[&str] = &[
    "synth-dpa",
    "synth-caching",
    "bh",
    "fmm",
    "relax",
    "synth-mig",
    "bh-mig",
    "synth-adapt",
    "bh-adapt",
    "synth-diff",
    "bh-diff",
    "graph",
    "graph-mig",
    "graph-repl",
    "bh-repl",
    "setops",
];
/// Adaptive strip bounds for the `-adapt` workloads (deliberately tight:
/// the small DST worlds must still cross retune boundaries).
pub const ADAPT_BOUNDS: (usize, usize) = (2, 64);
/// Phases per migration workload run (tables carry across boundaries).
pub const MIG_PHASES: usize = 3;
/// Timesteps per differential workload run — enough boundaries that a
/// carried entry can go stale, be invalidated, and be carried again.
pub const DIFF_PHASES: usize = 4;

/// The change schedule shared by every `-diff` run: ~15% of objects mutate
/// per boundary, which exercises both the invalidation path and the
/// carried-entry fast path in every phase.
pub fn diff_plan() -> DiffPlan {
    DiffPlan {
        seed: 0xD1FF_F00D,
        change_permille: 150,
        phase: 0,
    }
}
/// Where failing cases are recorded, relative to the repository root.
pub const CORPUS_DIR: &str = "tests/dst_corpus";

// ---------------------------------------------------------------- digests

/// A workload's result, in comparable form.
#[derive(Clone, Debug)]
pub enum Digest {
    /// Integer checksums: must be bit-identical across schedules.
    Ints(Vec<u64>),
    /// Floating-point results: compared with [`FP_RTOL`].
    Floats(Vec<f64>),
}

impl Digest {
    /// `None` if equivalent, else a description of the first mismatch.
    pub fn diff(&self, other: &Digest) -> Option<String> {
        match (self, other) {
            (Digest::Ints(a), Digest::Ints(b)) => {
                if a.len() != b.len() {
                    return Some(format!("digest length {} vs {}", a.len(), b.len()));
                }
                a.iter().zip(b).position(|(x, y)| x != y).map(|i| {
                    format!("checksum[{i}]: {:#x} vs {:#x} (must be bit-identical)", a[i], b[i])
                })
            }
            (Digest::Floats(a), Digest::Floats(b)) => {
                if a.len() != b.len() {
                    return Some(format!("digest length {} vs {}", a.len(), b.len()));
                }
                a.iter().zip(b).position(|(x, y)| {
                    let scale = x.abs().max(y.abs()).max(1e-300);
                    (x - y).abs() / scale > FP_RTOL
                }).map(|i| format!("value[{i}]: {} vs {} (rtol {FP_RTOL})", a[i], b[i]))
            }
            _ => Some("digest kind mismatch".to_string()),
        }
    }
}

// ---------------------------------------------------------------- workloads

/// Pre-built worlds (deterministic; shared by every run).
pub struct Worlds {
    /// Synthetic pointer-chasing lists.
    pub synth: Arc<SynthWorld>,
    /// Small distributed Barnes-Hut instance.
    pub bh: Arc<BhWorld>,
    /// Small distributed FMM instance.
    pub fmm: Arc<FmmWorld>,
    /// Small graph-relaxation instance.
    pub relax: Arc<RelaxWorld>,
    /// Small power-law transitive-closure instance (hot hub on node 0).
    pub graph: Arc<GraphWorld>,
    /// Small distributed ordered-set instance (hot buckets on node 0).
    pub setops: Arc<SetopsWorld>,
}

impl Worlds {
    /// Build the standard DST worlds.
    pub fn build() -> Worlds {
        Worlds {
            synth: SynthWorld::build(SynthParams {
                nodes: 4,
                lists_per_node: 8,
                list_len: 14,
                remote_fraction: 0.5,
                shared_fraction: 0.4,
                ..SynthParams::default()
            }),
            bh: bh_world_sized(192, 4),
            fmm: fmm_world_sized(256, 8, 4),
            relax: RelaxWorld::build(96, 4, 4, 0.5, 0xDE7),
            graph: GraphWorld::build(GraphParams {
                n: 96,
                seed: 0x06EA_9D57,
                ..GraphParams::default()
            }),
            setops: SetopsWorld::build(SetopsParams {
                universe: 2048,
                ops_per_node: 32,
                seed: 0x05E7_0D57,
                ..SetopsParams::default()
            }),
        }
    }
}

/// Everything the checkers need from one run.
pub struct Outcome {
    /// Whether every node reached quiescence.
    pub completed: bool,
    /// Packets lost to fault injection.
    pub dropped: u64,
    /// The workload's comparable result.
    pub digest: Digest,
    /// Per-node runtime-state snapshots.
    pub snaps: Vec<NodeSnapshot>,
    /// Stall diagnoses ("" when none).
    pub stalls: String,
    /// Simulator events processed (summed over phases) — what the run
    /// service bills to the tenant's event budget.
    pub events: u64,
    /// `true` when (any phase of) the run was stopped by the
    /// [`DstOptions::max_events`] guard rather than reaching quiescence.
    pub budget_exhausted: bool,
    /// Simulated makespan in nanoseconds (summed over phases).
    pub makespan_ns: u64,
}

/// Every observable bit of an [`Outcome`], in comparable form — shared by
/// the engine- and queue-equivalence suites. Floating-point digests are
/// rendered by *bit pattern*, not tolerance: two configurations claiming
/// bit-identity must produce the same schedule, hence the same reduction
/// order, hence the same bits.
pub fn fingerprint(o: &Outcome) -> (bool, u64, String, String, String) {
    let digest = match &o.digest {
        Digest::Ints(v) => format!("ints:{v:x?}"),
        Digest::Floats(v) => {
            let bits: Vec<u64> = v.iter().map(|f| f.to_bits()).collect();
            format!("floats:{bits:x?}")
        }
    };
    (
        o.completed,
        o.dropped,
        digest,
        format!("{:?}", o.snaps),
        o.stalls.clone(),
    )
}

/// Network config for a run: jitter only when the schedule is perturbed.
pub fn net_for(opts: &DstOptions) -> NetConfig {
    NetConfig {
        jitter_ns: if opts.schedule_seed.is_some() { JITTER_NS } else { 0 },
        ..NetConfig::default()
    }
}

/// Collapse a multi-phase migration run into one [`Outcome`]. Snapshots of
/// all phases are concatenated — the invariant checkers accept repeated
/// per-node snapshots (carried tables make the same adoption visible in
/// every later phase).
fn mig_outcome(
    reports: Vec<RunReport>,
    snap_sets: Vec<Vec<NodeSnapshot>>,
    digest: Digest,
) -> Outcome {
    let stalls = reports
        .iter()
        .map(|r| r.stall_summary())
        .filter(|s| !s.is_empty())
        .collect::<Vec<_>>()
        .join("; ");
    Outcome {
        completed: reports.iter().all(|r| r.completed),
        dropped: reports.iter().map(|r| r.stats.dropped_packets).sum(),
        digest,
        snaps: snap_sets.into_iter().flatten().collect(),
        stalls,
        events: reports.iter().map(|r| r.events_processed).sum(),
        budget_exhausted: reports.iter().any(|r| r.budget_exhausted),
        makespan_ns: reports.iter().map(|r| r.makespan().as_ns()).sum(),
    }
}

/// [`Outcome`] of a single-phase run.
fn one_outcome(report: RunReport, snaps: Vec<NodeSnapshot>, digest: Digest) -> Outcome {
    Outcome {
        completed: report.completed,
        dropped: report.stats.dropped_packets,
        digest,
        stalls: report.stall_summary(),
        snaps,
        events: report.events_processed,
        budget_exhausted: report.budget_exhausted,
        makespan_ns: report.makespan().as_ns(),
    }
}

fn merge(
    report: &RunReport,
    mut snaps: Vec<NodeSnapshot>,
    extra: (RunReport, Vec<NodeSnapshot>),
    digest: Digest,
) -> Outcome {
    let (r2, s2) = extra;
    snaps.extend(s2);
    let stalls = [report.stall_summary(), r2.stall_summary()]
        .iter()
        .filter(|s| !s.is_empty())
        .cloned()
        .collect::<Vec<_>>()
        .join("; ");
    Outcome {
        completed: report.completed && r2.completed,
        dropped: report.stats.dropped_packets + r2.stats.dropped_packets,
        digest,
        snaps,
        stalls,
        events: report.events_processed + r2.events_processed,
        budget_exhausted: report.budget_exhausted || r2.budget_exhausted,
        makespan_ns: report.makespan().as_ns() + r2.makespan().as_ns(),
    }
}

/// Execute one `(workload, options)` run and collect its outcome.
///
/// Panics on an unknown workload name; use [`WORKLOADS`] to validate.
pub fn run_one(w: &Worlds, workload: &str, opts: &DstOptions) -> Outcome {
    run_one_mode(w, workload, opts, true)
}

/// [`run_one`] with the execution mode of the `-diff` workloads pinned:
/// `differential = true` drives them through [`run_phase_differential`]
/// (the default, and what the sweep exercises); `false` runs the *same
/// multi-timestep workload* from scratch every phase via
/// [`run_phase_migrating`] — the comparator the equivalence suite holds
/// the differential digests bit-identical to. The flag is ignored for
/// every other workload.
pub fn run_one_mode(w: &Worlds, workload: &str, opts: &DstOptions, differential: bool) -> Outcome {
    let net = net_for(opts);
    match workload {
        "synth-diff" => {
            let world = w.synth.clone();
            let nodes = world.nodes;
            let plan = diff_plan();
            let mut sums = vec![0u64; DIFF_PHASES * nodes as usize];
            let mk = |ph: usize, i: u16| {
                SynthApp::new_diff(world.clone(), i, 500, plan.at_phase(ph as u32))
            };
            let collect = |ph: usize, i: u16, app: &SynthApp| {
                sums[ph * nodes as usize + i as usize] = app.sum;
            };
            let (reports, snap_sets, _) = if differential {
                run_phase_differential(
                    nodes,
                    net,
                    DpaConfig::dpa_differential(4),
                    opts,
                    DIFF_PHASES,
                    mk,
                    collect,
                )
            } else {
                run_phase_migrating(nodes, net, DpaConfig::dpa(4), opts, DIFF_PHASES, mk, collect)
            };
            mig_outcome(reports, snap_sets, Digest::Ints(sums))
        }
        "bh-diff" => {
            let world = w.bh.clone();
            let nodes = world.nodes;
            let plan = diff_plan();
            let mut hashes = vec![0u64; DIFF_PHASES * nodes as usize];
            let mk = |ph: usize, i: u16| BhApp::new_diff(world.clone(), i, plan.at_phase(ph as u32));
            let collect = |ph: usize, i: u16, app: &BhApp| {
                hashes[ph * nodes as usize + i as usize] = app.interaction_hash;
            };
            // Differential composes with re-homing: same migration knobs as
            // `dpa_migrating`, plus the differential barrier protocol.
            let (reports, snap_sets, _) = if differential {
                let cfg = DpaConfig {
                    migration_epoch_ns: DpaConfig::dpa_migrating(8).migration_epoch_ns,
                    ..DpaConfig::dpa_differential(8)
                };
                run_phase_differential(nodes, net, cfg, opts, DIFF_PHASES, mk, collect)
            } else {
                run_phase_migrating(
                    nodes,
                    net,
                    DpaConfig::dpa_migrating(8),
                    opts,
                    DIFF_PHASES,
                    mk,
                    collect,
                )
            };
            mig_outcome(reports, snap_sets, Digest::Ints(hashes))
        }
        "graph" => {
            // Transitive closure with *structural* deltas: edge rewires at
            // every barrier advance vertex generations, so the carried hub
            // entries go stale from topology changes — the differential
            // protocol must invalidate them or the closure checksum (which
            // folds the generation actually read) diverges.
            let world = w.graph.clone();
            let nodes = world.params.nodes;
            let mut sums = vec![0u64; 2 * DIFF_PHASES * nodes as usize];
            let mk = |ph: usize, i: u16| GraphApp::new(world.clone(), i, ph as u32);
            let collect = |ph: usize, i: u16, app: &GraphApp| {
                let at = 2 * (ph * nodes as usize + i as usize);
                sums[at] = app.sum;
                sums[at + 1] = app.reached;
            };
            let (reports, snap_sets, _) = if differential {
                run_phase_differential(
                    nodes,
                    net,
                    DpaConfig::dpa_differential(8),
                    opts,
                    DIFF_PHASES,
                    mk,
                    collect,
                )
            } else {
                run_phase_migrating(nodes, net, DpaConfig::dpa(8), opts, DIFF_PHASES, mk, collect)
            };
            mig_outcome(reports, snap_sets, Digest::Ints(sums))
        }
        "graph-repl" => {
            // The closure under read-mostly replication: the hub crosses
            // the promotion bar at the first boundary (every non-owner
            // consumes it, none dominates), so later phases read it from
            // local replicas. A dropped broadcast must degrade to a demand
            // fetch or a delta-gate stall; a duplicated one must dedup on
            // `(sender, seq)` — either way the checksums cannot move.
            let world = w.graph.clone();
            let nodes = world.params.nodes;
            let mut sums = vec![0u64; 2 * DIFF_PHASES * nodes as usize];
            let mk = |ph: usize, i: u16| GraphApp::new(world.clone(), i, ph as u32);
            let collect = |ph: usize, i: u16, app: &GraphApp| {
                let at = 2 * (ph * nodes as usize + i as usize);
                sums[at] = app.sum;
                sums[at + 1] = app.reached;
            };
            let (reports, snap_sets, _) = if differential {
                run_phase_differential(
                    nodes,
                    net,
                    DpaConfig::dpa_replicating(8),
                    opts,
                    DIFF_PHASES,
                    mk,
                    collect,
                )
            } else {
                run_phase_migrating(nodes, net, DpaConfig::dpa(8), opts, DIFF_PHASES, mk, collect)
            };
            mig_outcome(reports, snap_sets, Digest::Ints(sums))
        }
        "bh-repl" => {
            // Barnes-Hut under replication: the octree root and the hot
            // upper-level cells are the replication candidates, and the
            // value-change schedule (not topology) advances generations —
            // the complementary staleness source to `graph-repl`.
            let world = w.bh.clone();
            let nodes = world.nodes;
            let plan = diff_plan();
            let mut hashes = vec![0u64; DIFF_PHASES * nodes as usize];
            let mk = |ph: usize, i: u16| BhApp::new_diff(world.clone(), i, plan.at_phase(ph as u32));
            let collect = |ph: usize, i: u16, app: &BhApp| {
                hashes[ph * nodes as usize + i as usize] = app.interaction_hash;
            };
            let (reports, snap_sets, _) = if differential {
                run_phase_differential(
                    nodes,
                    net,
                    DpaConfig::dpa_replicating(8),
                    opts,
                    DIFF_PHASES,
                    mk,
                    collect,
                )
            } else {
                run_phase_migrating(nodes, net, DpaConfig::dpa(8), opts, DIFF_PHASES, mk, collect)
            };
            mig_outcome(reports, snap_sets, Digest::Ints(hashes))
        }
        "graph-mig" => {
            // The closure under dominant-consumer migration: the hub has
            // *many* consumers and no dominant one, so the affinity pass
            // faces its adversarial case (any pick strands the rest on the
            // forwarding path).
            let world = w.graph.clone();
            let nodes = world.params.nodes;
            let mut sums = vec![0u64; 2 * MIG_PHASES * nodes as usize];
            let (reports, snap_sets, _) = run_phase_migrating(
                nodes,
                net,
                DpaConfig::dpa_migrating(8),
                opts,
                MIG_PHASES,
                |ph, i| GraphApp::new(world.clone(), i, ph as u32),
                |ph, i, app: &GraphApp| {
                    let at = 2 * (ph * nodes as usize + i as usize);
                    sums[at] = app.sum;
                    sums[at + 1] = app.reached;
                },
            );
            mig_outcome(reports, snap_sets, Digest::Ints(sums))
        }
        "setops" => {
            // Mixed insert/delete/range batches; range probes are
            // power-law-hot toward node 0's buckets, and the mutations
            // ride the remote-reduction path (exactly-once under dup).
            let world = w.setops.clone();
            let nodes = world.params.nodes;
            let mut sums = vec![0u64; 3 * nodes as usize];
            let (report, snaps) = run_phase_dst(
                nodes,
                net,
                DpaConfig::dpa(8),
                opts,
                |i| SetopsApp::new(world.clone(), i),
                |i, app: &SetopsApp| {
                    let at = 3 * i as usize;
                    sums[at] = app.range_sum;
                    sums[at + 1] = app.final_digest();
                    sums[at + 2] = app.applied;
                },
            );
            one_outcome(report, snaps, Digest::Ints(sums))
        }
        "synth-dpa" | "synth-caching" => {
            let cfg = if workload == "synth-dpa" {
                DpaConfig::dpa(4)
            } else {
                DpaConfig::caching()
            };
            let world = w.synth.clone();
            let mut sums = vec![0u64; world.nodes as usize];
            let (report, snaps) = run_phase_dst(
                world.nodes,
                net,
                cfg,
                opts,
                |i| SynthApp::new(world.clone(), i, 500),
                |i, app: &SynthApp| sums[i as usize] = app.sum,
            );
            one_outcome(report, snaps, Digest::Ints(sums))
        }
        "bh" => {
            let world = w.bh.clone();
            let n = world.bodies.len();
            let mut accel = vec![0.0f64; 3 * n];
            let (report, snaps) = run_phase_dst(
                world.nodes,
                net,
                DpaConfig::dpa(8),
                opts,
                |i| BhApp::new(world.clone(), i),
                |i, app: &BhApp| {
                    let base = world.splits[i as usize];
                    for (off, a) in app.accel.iter().enumerate() {
                        let at = 3 * (base + off);
                        accel[at] = a.x;
                        accel[at + 1] = a.y;
                        accel[at + 2] = a.z;
                    }
                },
            );
            one_outcome(report, snaps, Digest::Floats(accel))
        }
        "fmm" => {
            let world = w.fmm.clone();
            // Sub-phase 1: M2L gather.
            let mut partials: Vec<HashMap<u32, Local>> =
                (0..world.nodes).map(|_| HashMap::new()).collect();
            let (r1, s1) = run_phase_dst(
                world.nodes,
                net.clone(),
                DpaConfig::dpa(8),
                opts,
                |i| FmmM2lApp::new(world.clone(), i),
                |i, app: &FmmM2lApp| partials[i as usize] = app.locals.clone(),
            );
            if !r1.completed {
                // Phase 2 input is incomplete; report the phase-1 stall.
                return one_outcome(r1, s1, Digest::Floats(Vec::new()));
            }
            // Sub-phase 2: downward + evaluation.
            let n = world.solver.zs.len();
            let mut fields = vec![0.0f64; 2 * n];
            let mut partials_iter = partials.into_iter();
            let extra = run_phase_dst(
                world.nodes,
                net,
                DpaConfig::dpa(8),
                opts,
                |i| {
                    let part = partials_iter.next().expect("one partial per node");
                    FmmEvalApp::new(world.clone(), i, part)
                },
                |_, app: &FmmEvalApp| {
                    for (i, f) in app.fields.iter().enumerate() {
                        if f.norm2() != 0.0 {
                            fields[2 * i] += f.re;
                            fields[2 * i + 1] += f.im;
                        }
                    }
                },
            );
            merge(&r1, s1, extra, Digest::Floats(fields))
        }
        "relax" => {
            let world = w.relax.clone();
            let n = world.vertices.len();
            let mut next = vec![0.0f64; n];
            let (report, snaps) = run_phase_dst(
                world.nodes,
                net,
                DpaConfig::dpa(8),
                opts,
                |i| RelaxApp::new(world.clone(), i),
                |i, app: &RelaxApp| {
                    for v in world.range(i) {
                        next[v] = app.next[v];
                    }
                },
            );
            one_outcome(report, snaps, Digest::Floats(next))
        }
        "synth-mig" => {
            let world = w.synth.clone();
            let nodes = world.nodes;
            let mut sums = vec![0u64; MIG_PHASES * nodes as usize];
            let (reports, snap_sets, _) = run_phase_migrating(
                nodes,
                net,
                DpaConfig::dpa_migrating(4),
                opts,
                MIG_PHASES,
                |_, i| SynthApp::new(world.clone(), i, 500),
                |ph, i, app: &SynthApp| sums[ph * nodes as usize + i as usize] = app.sum,
            );
            mig_outcome(reports, snap_sets, Digest::Ints(sums))
        }
        "synth-adapt" => {
            let world = w.synth.clone();
            let cfg = DpaConfig::dpa_adaptive(ADAPT_BOUNDS.0, ADAPT_BOUNDS.1);
            let mut sums = vec![0u64; world.nodes as usize];
            let (report, snaps) = run_phase_dst(
                world.nodes,
                net,
                cfg,
                opts,
                |i| SynthApp::new(world.clone(), i, 500),
                |i, app: &SynthApp| sums[i as usize] = app.sum,
            );
            one_outcome(report, snaps, Digest::Ints(sums))
        }
        "bh-adapt" => {
            let world = w.bh.clone();
            let nodes = world.nodes;
            let cfg = DpaConfig::dpa_adaptive(ADAPT_BOUNDS.0, ADAPT_BOUNDS.1);
            let mut hashes = vec![0u64; MIG_PHASES * nodes as usize];
            let (reports, snap_sets, _) = run_phase_migrating(
                nodes,
                net,
                cfg,
                opts,
                MIG_PHASES,
                |_, i| BhApp::new(world.clone(), i),
                |ph, i, app: &BhApp| {
                    hashes[ph * nodes as usize + i as usize] = app.interaction_hash;
                },
            );
            mig_outcome(reports, snap_sets, Digest::Ints(hashes))
        }
        "bh-mig" => {
            let world = w.bh.clone();
            let nodes = world.nodes;
            let mut hashes = vec![0u64; MIG_PHASES * nodes as usize];
            let (reports, snap_sets, _) = run_phase_migrating(
                nodes,
                net,
                DpaConfig::dpa_migrating(8),
                opts,
                MIG_PHASES,
                |_, i| BhApp::new(world.clone(), i),
                |ph, i, app: &BhApp| {
                    hashes[ph * nodes as usize + i as usize] = app.interaction_hash;
                },
            );
            mig_outcome(reports, snap_sets, Digest::Ints(hashes))
        }
        other => panic!("unknown workload {other:?}"),
    }
}

// ---------------------------------------------------------------- plans

/// Build the named fault plan, derived deterministically from `seed`.
///
/// Panics on an unknown plan name; use [`ALL_PLANS`] to validate.
pub fn plan_for(name: &str, seed: u64) -> FaultPlan {
    let fs = seed ^ 0xFA17;
    match name {
        "none" => FaultPlan::none(),
        "drop" => FaultPlan::drop(fs, 0.02),
        "dup" => FaultPlan::duplicate(fs, 0.10),
        "delay" => FaultPlan::delay(fs, 0.30, 50_000),
        "pause" => {
            // Freeze two (seed-chosen) nodes in staggered windows: lossless,
            // but deliveries bunch up at the window edges and replay in a
            // burst — the adversarial schedule for epoch-driven migration.
            FaultPlan {
                pauses: vec![
                    NodePause {
                        node: (seed % 4) as u16,
                        from_ns: 25_000,
                        until_ns: 175_000,
                    },
                    NodePause {
                        node: ((seed >> 2) % 4) as u16,
                        from_ns: 210_000,
                        until_ns: 330_000,
                    },
                ],
                ..FaultPlan::default()
            }
        }
        other => panic!("unknown plan {other:?}"),
    }
}

/// Map a sweep seed to a schedule-perturbation seed.
pub fn schedule_seed(seed: u64) -> u64 {
    0x5EED ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Check one perturbed run against its baseline; returns violation strings.
pub fn check_run(plan_name: &str, baseline: &Digest, out: &Outcome) -> Vec<String> {
    let lossy = plan_name == "drop";
    let mut violations = Vec::new();
    if out.completed {
        for v in check_completed(&out.snaps, lossy) {
            violations.push(v.to_string());
        }
        // A completed run that dropped nothing must agree with the
        // baseline; with packets actually lost, only fire-and-forget
        // updates can be missing (anything else would have stalled), so
        // the digest legitimately differs and conservation (checked
        // above) is the oracle instead.
        if out.dropped == 0 {
            if let Some(d) = baseline.diff(&out.digest) {
                violations.push(format!("result diverged from baseline: {d}"));
            }
        }
    } else {
        for v in check_conservation(&out.snaps) {
            violations.push(v.to_string());
        }
        if !lossy {
            violations.push(format!(
                "stalled under lossless plan '{plan_name}': {}",
                out.stalls
            ));
        } else if out.stalls.is_empty() {
            violations.push("stalled without a stall diagnosis".to_string());
        }
    }
    violations
}

// ---------------------------------------------------------------- accounting

/// Machine-wide (request, reply, update) aggregation factors — wire
/// entries per message on each path — computed from run snapshots. A path
/// that sent no messages reports 0.
pub fn agg_factors(snaps: &[NodeSnapshot]) -> (f64, f64, f64) {
    let ratio = |entries: u64, msgs: u64| {
        if msgs == 0 { 0.0 } else { entries as f64 / msgs as f64 }
    };
    let sum = |f: &dyn Fn(&NodeSnapshot) -> u64| snaps.iter().map(f).sum::<u64>();
    (
        ratio(sum(&|s| s.req_sent), sum(&|s| s.request_msgs)),
        ratio(sum(&|s| s.reply_sent), sum(&|s| s.reply_msgs)),
        ratio(sum(&|s| s.upd_sent), sum(&|s| s.update_msgs)),
    )
}

// ---------------------------------------------------------------- corpus

/// Record a failing case as a replayable corpus file; returns its path.
pub fn corpus_write(workload: &str, seed: u64, plan: &str, violations: &[String]) -> String {
    let _ = std::fs::create_dir_all(CORPUS_DIR);
    let path = format!("{CORPUS_DIR}/{workload}-s{seed}-{plan}.case");
    let mut body = String::new();
    body.push_str("# dst failing case — replay with:\n");
    body.push_str(&format!(
        "#   cargo run --release -p bench --bin dst -- --replay {path}\n"
    ));
    body.push_str(&format!("workload = {workload}\nseed = {seed}\nplan = {plan}\n"));
    for v in violations {
        body.push_str(&format!("# violation: {v}\n"));
    }
    let _ = std::fs::write(&path, body);
    path
}

/// Re-run one recorded corpus case.
///
/// Returns 0 when the case no longer reproduces, 1 when it still violates
/// an invariant, 2 on a malformed case file. Honors `DPA_SIM_THREADS`
/// (via [`DstOptions::default`]); use [`replay_with_threads`] to pin the
/// engine explicitly.
pub fn replay(path: &str) -> i32 {
    replay_with_threads(path, sim_net::env_threads())
}

/// [`replay`] with an explicit simulator thread count — the DST smoke lane
/// for the parallel engine replays every committed corpus case with
/// `threads > 1` and must reach the same verdict as the sequential replay.
pub fn replay_with_threads(path: &str, threads: usize) -> i32 {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read corpus case {path}: {e}");
            return 2;
        }
    };
    let mut fields: HashMap<String, String> = HashMap::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            fields.insert(k.trim().to_string(), v.trim().to_string());
        }
    }
    let Some(workload) = fields.get("workload") else {
        eprintln!("error: {path}: missing `workload = ...` line");
        return 2;
    };
    let seed: u64 = match fields.get("seed").map(|s| s.parse()) {
        Some(Ok(s)) => s,
        Some(Err(e)) => {
            eprintln!("error: {path}: bad seed: {e}");
            return 2;
        }
        None => {
            eprintln!("error: {path}: missing `seed = ...` line");
            return 2;
        }
    };
    // `workload = service` cases replay the run-service scheduler model
    // instead of a simulator run: the case names a scenario (a canned
    // (config, load profile) pair) plus the seed. Scheduler decisions are
    // engine-independent, so the threads knob is ignored here.
    if workload == "service" {
        let Some(name) = fields.get("scenario") else {
            eprintln!("error: {path}: missing `scenario = ...` line for a service case");
            return 2;
        };
        println!("replaying service scenario={name} seed={seed}");
        return match dpa_serve::replay_scenario(name, seed) {
            Err(e) => {
                eprintln!("error: {path}: {e}");
                2
            }
            Ok(v) if v.is_empty() => {
                println!("  no violations — case no longer reproduces");
                0
            }
            Ok(v) => {
                for violation in &v {
                    println!("  VIOLATION: {violation}");
                }
                1
            }
        };
    }
    if !WORKLOADS.contains(&workload.as_str()) {
        eprintln!("error: {path}: unknown workload {workload:?} (expected one of {WORKLOADS:?})");
        return 2;
    }
    let Some(plan) = fields.get("plan") else {
        eprintln!("error: {path}: missing `plan = ...` line");
        return 2;
    };
    if !ALL_PLANS.contains(&plan.as_str()) {
        eprintln!("error: {path}: unknown plan {plan:?} (expected one of {ALL_PLANS:?})");
        return 2;
    }

    println!("replaying {workload} seed={seed} plan={plan} threads={threads}");
    let w = Worlds::build();
    let baseline = run_one(
        &w,
        workload,
        &DstOptions {
            threads,
            ..DstOptions::default()
        },
    );
    let opts = DstOptions {
        schedule_seed: Some(schedule_seed(seed)),
        faults: plan_for(plan, seed),
        threads,
        ..DstOptions::default()
    };
    let out = run_one(&w, workload, &opts);
    println!(
        "  completed={} dropped={} stalls=[{}]",
        out.completed, out.dropped, out.stalls
    );
    let violations = check_run(plan, &baseline.digest, &out);
    if violations.is_empty() {
        println!("  no violations — case no longer reproduces");
        0
    } else {
        for v in &violations {
            println!("  VIOLATION: {v}");
        }
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_rules() {
        let a = Digest::Ints(vec![1, 2]);
        assert!(a.diff(&Digest::Ints(vec![1, 2])).is_none());
        assert!(a.diff(&Digest::Ints(vec![1, 3])).is_some());
        assert!(a.diff(&Digest::Floats(vec![1.0])).is_some());
        let f = Digest::Floats(vec![1.0]);
        assert!(f.diff(&Digest::Floats(vec![1.0 + 1e-12])).is_none());
        assert!(f.diff(&Digest::Floats(vec![1.0 + 1e-6])).is_some());
    }

    #[test]
    fn agg_factors_total_across_nodes() {
        let a = NodeSnapshot {
            req_sent: 30,
            request_msgs: 5,
            reply_sent: 12,
            reply_msgs: 4,
            ..NodeSnapshot::default()
        };
        let b = NodeSnapshot {
            req_sent: 10,
            request_msgs: 5,
            reply_sent: 4,
            reply_msgs: 4,
            ..NodeSnapshot::default()
        };
        let (req, reply, upd) = agg_factors(&[a, b]);
        assert!((req - 4.0).abs() < 1e-12);
        assert!((reply - 2.0).abs() < 1e-12);
        assert_eq!(upd, 0.0);
    }

    #[test]
    fn schedule_seed_is_injective_on_small_range() {
        let seeds: std::collections::HashSet<u64> = (0..64).map(schedule_seed).collect();
        assert_eq!(seeds.len(), 64);
    }
}
