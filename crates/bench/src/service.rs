//! Glue between the run service (`dpa-serve`) and the DST harness: the
//! [`DstJobRunner`] executes a service job as a real simulator run via
//! [`crate::dst::run_one`], and audits every completed run with the full
//! invariant-oracle battery ([`crate::dst::check_run`]) against a cached
//! per-workload baseline. The DST corpus is thereby both the service's
//! traffic source and its correctness oracle.

use crate::dst::{check_run, plan_for, run_one, schedule_seed, Digest, Worlds};
use dpa_core::DstOptions;
use dpa_serve::{JobReport, JobRunner, JobSpec};
use std::collections::HashMap;
use std::sync::Mutex;

/// A [`JobRunner`] that executes jobs as DST workload runs.
///
/// Each job's `(workload, seed, plan)` maps exactly onto the DST sweep's
/// axes; the per-job event budget becomes [`DstOptions::max_events`], so
/// a runaway run stops with a structured `budget_exhausted` stall the
/// service reaps. Baseline digests (canonical schedule, no faults) are
/// computed once per workload and cached, so oracle checks cost one extra
/// run per distinct workload, not per job.
///
/// Panics on an unknown workload or plan name — callers validate against
/// [`crate::dst::WORKLOADS`] / [`crate::dst::ALL_PLANS`] at the edge.
pub struct DstJobRunner {
    worlds: Worlds,
    baselines: Mutex<HashMap<String, Digest>>,
}

impl DstJobRunner {
    /// Build the standard DST worlds and an empty baseline cache.
    pub fn new() -> DstJobRunner {
        DstJobRunner {
            worlds: Worlds::build(),
            baselines: Mutex::new(HashMap::new()),
        }
    }

    /// The workload's canonical-schedule fault-free digest, cached.
    fn baseline(&self, workload: &str) -> Digest {
        if let Some(d) = self.baselines.lock().expect("baseline cache").get(workload) {
            return d.clone();
        }
        // Computed outside the lock: concurrent misses on the same
        // workload waste a run but never deadlock a shard.
        let out = run_one(
            &self.worlds,
            workload,
            &DstOptions {
                threads: 1,
                ..DstOptions::default()
            },
        );
        self.baselines
            .lock()
            .expect("baseline cache")
            .entry(workload.to_string())
            .or_insert(out.digest)
            .clone()
    }
}

impl Default for DstJobRunner {
    fn default() -> Self {
        DstJobRunner::new()
    }
}

impl JobRunner for DstJobRunner {
    fn run(&self, spec: &JobSpec, event_budget: u64, wall_budget_ns: Option<u64>) -> JobReport {
        // The tenant's remaining wall budget becomes a hard deadline the
        // multi-phase drivers check at every phase boundary: a run that
        // outlives it finishes the phase in flight, then stops with the
        // same structured `budget_exhausted` stall as an event-budget
        // reap — the shard comes back, the overrun is billed.
        let wall_deadline = wall_budget_ns
            .map(|ns| std::time::Instant::now() + std::time::Duration::from_nanos(ns));
        let opts = DstOptions {
            schedule_seed: Some(schedule_seed(spec.seed)),
            faults: plan_for(&spec.plan, spec.seed),
            threads: 1,
            max_events: event_budget,
            wall_deadline,
            ..DstOptions::default()
        };
        let out = run_one(&self.worlds, &spec.workload, &opts);
        // A reaped run was stopped mid-flight: its state is legitimately
        // incomplete, so the oracles are not evaluated — the structured
        // budget_exhausted flag is the report.
        let violations = if out.budget_exhausted {
            0
        } else {
            let baseline = self.baseline(&spec.workload);
            check_run(&spec.plan, &baseline, &out).len() as u64
        };
        let sum = |f: &dyn Fn(&dpa_core::NodeSnapshot) -> u64| out.snaps.iter().map(f).sum::<u64>();
        JobReport {
            completed: out.completed,
            budget_exhausted: out.budget_exhausted,
            sim_events: out.events,
            sim_makespan_ns: out.makespan_ns,
            request_msgs: sum(&|s| s.request_msgs),
            reply_msgs: sum(&|s| s.reply_msgs),
            update_msgs: sum(&|s| s.update_msgs),
            violations,
            // Filled in by the pool from the shard's clock.
            wall_ns: 0,
            stall: out.stalls,
        }
    }
}
