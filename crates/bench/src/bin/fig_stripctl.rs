//! **Adaptive-strip figure** — the per-node k-bound feedback controller
//! ([`dpa_core::stripctl`]) against the fixed-strip sweep, on 16 nodes.
//!
//! The fixed sweep (`fig_stripsize`) shows the paper's strip-size tension:
//! small strips expose round trips, large strips bloat suspended-thread
//! state, and the best value differs per app (BH ≈ 50, FMM ≈ 300).
//! The controller is supposed to dissolve that tension — land within a
//! few percent of the best hand-picked strip on *both* apps with one
//! configuration, while keeping thread state bounded.
//!
//! Verdicts checked (enforced with a non-zero exit in full runs, printed
//! only under `--smoke` / `--quick` where tiny problems make timing and
//! peak-state comparisons meaningless):
//!
//! 1. adaptive time ≤ best fixed time × 1.02, per app;
//! 2. adaptive peak aligned-thread state ≤ 2 × the strip-50 peak;
//! 3. interaction checksums bit-identical across every run (always
//!    enforced — correctness does not get a smoke exemption).
//!
//! Run with `--quick` for a reduced problem size, or `--smoke` for a
//! seconds-scale CI sanity pass.

use apps::driver::{merge_stats, run_bh, run_fmm};
use bench::*;
use dpa_core::DpaConfig;
use sim_net::RunStats;

/// One measured configuration of one app.
struct Row {
    label: String,
    makespan_ns: u64,
    peak_threads: u64,
    hash: u64,
    /// `Some` for the adaptive row: (retunes, final strip).
    adaptive: Option<(u64, u64)>,
}

impl Row {
    fn new(label: &str, makespan_ns: u64, stats: &RunStats, hash: u64) -> Row {
        let adaptive = if stats.user_total("strip_retunes") > 0
            || stats.user_max("strip_final") > 0
        {
            Some((
                stats.user_total("strip_retunes"),
                stats.user_max("strip_final"),
            ))
        } else {
            None
        };
        Row {
            label: label.to_string(),
            makespan_ns,
            peak_threads: stats.user_max("peak_aligned_threads"),
            hash,
            adaptive,
        }
    }

    fn print(&self) {
        let tail = match self.adaptive {
            Some((retunes, fin)) => format!("  retunes {retunes}, final strip {fin}"),
            None => String::new(),
        };
        println!(
            "  {:<16} {:>8} s   peak aligned threads {:>6}   hash {:016x}{}",
            self.label,
            fmt_secs(self.makespan_ns).trim(),
            self.peak_threads,
            self.hash,
            tail,
        );
    }
}

/// Check the three verdicts for one app's rows. The last row is the
/// adaptive one; `strip50_peak` anchors the state bound. Returns the
/// number of violations (timing/state only counted when `enforce`).
fn verdicts(app: &str, rows: &[Row], strip50_peak: u64, enforce: bool) -> u32 {
    let adaptive = rows.last().expect("adaptive row present");
    let best_fixed = rows[..rows.len() - 1]
        .iter()
        .min_by_key(|r| r.makespan_ns)
        .expect("at least one fixed strip");
    let mut violations = 0;

    let identical = rows.iter().all(|r| r.hash == rows[0].hash);
    println!(
        "  [{}] checksums identical across {} runs: {}",
        if identical { "PASS" } else { "FAIL" },
        rows.len(),
        identical,
    );
    if !identical {
        violations += 1;
    }

    let limit_ns = (best_fixed.makespan_ns as f64 * 1.02) as u64;
    let time_ok = adaptive.makespan_ns <= limit_ns;
    println!(
        "  [{}] {app} adaptive {} s vs best fixed ({}) {} s (limit +2%)",
        verdict_tag(time_ok, enforce),
        fmt_secs(adaptive.makespan_ns).trim(),
        best_fixed.label,
        fmt_secs(best_fixed.makespan_ns).trim(),
    );
    if enforce && !time_ok {
        violations += 1;
    }

    let state_ok = adaptive.peak_threads <= 2 * strip50_peak.max(1);
    println!(
        "  [{}] {app} adaptive peak threads {} vs 2 x strip-50 peak {}",
        verdict_tag(state_ok, enforce),
        adaptive.peak_threads,
        2 * strip50_peak.max(1),
    );
    if enforce && !state_ok {
        violations += 1;
    }
    violations
}

fn verdict_tag(ok: bool, enforce: bool) -> &'static str {
    match (ok, enforce) {
        (true, _) => "PASS",
        (false, true) => "FAIL",
        (false, false) => "info",
    }
}

fn main() {
    let quick = has_flag("--quick");
    let smoke = has_flag("--smoke");
    let (bh_n, fmm_n, fmm_p) = if smoke {
        (512, 1_024, 8)
    } else if quick {
        (2_048, 4_096, 12)
    } else {
        (PAPER_BH_BODIES, PAPER_FMM_PARTICLES, PAPER_FMM_TERMS)
    };
    let p: u16 = 16;
    let fixed: &[usize] = if smoke || quick {
        &[1, 50, 300]
    } else {
        &[1, 10, 50, 100, 300, 1000]
    };
    let enforce = !(smoke || quick);
    let adaptive_cfg = DpaConfig::dpa_adaptive(8, 512);
    let mut points = Vec::new();
    let mut violations = 0;

    println!("== Adaptive-strip figure (P = {p}) ==");

    println!("\n-- BARNES-HUT ({bh_n} bodies) --");
    let w = bh_world_sized(bh_n, p);
    let mut rows = Vec::new();
    for &s in fixed {
        let r = run_bh(&w, DpaConfig::dpa(s), paper_net());
        rows.push(Row::new(
            &format!("strip {s}"),
            r.makespan_ns,
            &r.stats,
            r.interaction_hash,
        ));
        rows.last().unwrap().print();
        points.push(
            ExpPoint::new(
                "fig_stripctl",
                "bh",
                &format!("strip={s}"),
                p,
                r.makespan_ns,
                &r.stats,
            )
            .with("strip", s as f64)
            .with(
                "peak_aligned_threads",
                r.stats.user_max("peak_aligned_threads") as f64,
            ),
        );
    }
    let strip50_peak = rows
        .iter()
        .find(|r| r.label == "strip 50")
        .map(|r| r.peak_threads)
        .expect("strip 50 in the fixed sweep");
    let r = run_bh(&w, adaptive_cfg.clone(), paper_net());
    rows.push(Row::new(
        "adaptive",
        r.makespan_ns,
        &r.stats,
        r.interaction_hash,
    ));
    rows.last().unwrap().print();
    points.push(
        ExpPoint::new("fig_stripctl", "bh", "adaptive", p, r.makespan_ns, &r.stats)
            .with(
                "peak_aligned_threads",
                r.stats.user_max("peak_aligned_threads") as f64,
            )
            .with("strip_final", r.stats.user_max("strip_final") as f64)
            .with("strip_retunes", r.stats.user_total("strip_retunes") as f64),
    );
    violations += verdicts("bh", &rows, strip50_peak, enforce);

    println!("\n-- FMM ({fmm_n} particles, {fmm_p} terms) --");
    let w = fmm_world_sized(fmm_n, fmm_p, p);
    let mut rows = Vec::new();
    for &s in fixed {
        let r = run_fmm(&w, DpaConfig::dpa(s), paper_net());
        let merged = merge_stats(&r.m2l_stats, &r.eval_stats);
        rows.push(Row::new(
            &format!("strip {s}"),
            r.makespan_ns,
            &merged,
            r.interaction_hash,
        ));
        rows.last().unwrap().print();
        points.push(
            ExpPoint::new(
                "fig_stripctl",
                "fmm",
                &format!("strip={s}"),
                p,
                r.makespan_ns,
                &merged,
            )
            .with("strip", s as f64)
            .with(
                "peak_aligned_threads",
                merged.user_max("peak_aligned_threads") as f64,
            ),
        );
    }
    let strip50_peak = rows
        .iter()
        .find(|r| r.label == "strip 50")
        .map(|r| r.peak_threads)
        .expect("strip 50 in the fixed sweep");
    let r = run_fmm(&w, adaptive_cfg, paper_net());
    let merged = merge_stats(&r.m2l_stats, &r.eval_stats);
    // Merging sums per-node counters, which would double-count the final
    // strip gauge; report the max over the two sub-phases instead.
    let strip_final = r
        .m2l_stats
        .user_max("strip_final")
        .max(r.eval_stats.user_max("strip_final"));
    let mut row = Row::new("adaptive", r.makespan_ns, &merged, r.interaction_hash);
    if let Some((retunes, _)) = row.adaptive {
        row.adaptive = Some((retunes, strip_final));
    }
    rows.push(row);
    rows.last().unwrap().print();
    points.push(
        ExpPoint::new("fig_stripctl", "fmm", "adaptive", p, r.makespan_ns, &merged)
            .with(
                "peak_aligned_threads",
                merged.user_max("peak_aligned_threads") as f64,
            )
            .with("strip_final", strip_final as f64)
            .with("strip_retunes", merged.user_total("strip_retunes") as f64),
    );
    violations += verdicts("fmm", &rows, strip50_peak, enforce);

    dump_json("fig_stripctl", &points);
    if violations > 0 {
        eprintln!("fig_stripctl: {violations} verdict(s) failed");
        std::process::exit(1);
    }
    println!("\nall verdicts passed");
}
