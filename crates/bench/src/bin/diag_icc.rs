//! Diagnostic: dump the compiled thread structure of a Mini-ICC kernel.
//!
//! Pass a source path as the first argument, or omit it to dump the
//! built-in Barnes-Hut potential kernel.

const DEFAULT_KERNEL: &str = "
struct Cell {
  mass: float; cx: float; cy: float; cz: float; size: float; nb: int;
  c0: Cell*; c1: Cell*; c2: Cell*; c3: Cell*;
  c4: Cell*; c5: Cell*; c6: Cell*; c7: Cell*;
}
fn pot(c: Cell*, px: float, py: float, pz: float) -> float {
  if (c == null) { return 0.0; }
  let dx: float = c->cx - px;
  let dy: float = c->cy - py;
  let dz: float = c->cz - pz;
  let d2: float = dx*dx + dy*dy + dz*dz + 0.0025;
  if (c->size * c->size < d2) {
    return c->mass / sqrt(d2);
  }
  if (c->nb <= 1) {
    return c->mass / sqrt(d2);
  }
  let a0: float = 0.0;
  let a1: float = 0.0;
  let a2: float = 0.0;
  let a3: float = 0.0;
  let a4: float = 0.0;
  let a5: float = 0.0;
  let a6: float = 0.0;
  let a7: float = 0.0;
  conc {
    a0 = pot(c->c0, px, py, pz);
    a1 = pot(c->c1, px, py, pz);
    a2 = pot(c->c2, px, py, pz);
    a3 = pot(c->c3, px, py, pz);
    a4 = pot(c->c4, px, py, pz);
    a5 = pot(c->c5, px, py, pz);
    a6 = pot(c->c6, px, py, pz);
    a7 = pot(c->c7, px, py, pz);
  }
  return a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7;
}";

fn main() {
    let src = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}")),
        None => DEFAULT_KERNEL.to_string(),
    };
    match dpa_compiler::compile_source(&src) {
        Ok(p) => {
            println!("{}", p.dump());
            for st in &p.stats {
                println!(
                    "fn {}: {} templates, {} demand sites, {} fork sites, {} call sites",
                    st.name, st.templates, st.demand_sites, st.fork_sites, st.call_sites
                );
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
