//! **bench_wallclock** — wall-clock throughput of the simulator itself,
//! sequential engine vs the conservative-window parallel engine.
//!
//! Everything else in `bench/` reports *simulated* time (the paper's
//! quantity). This binary times the *simulator*: for Barnes-Hut and FMM
//! force phases at P = 16 and P = 64, it runs the identical workload on
//! `Machine::run()` (threads = 1) and `Machine::run_parallel(k)` for
//! k ∈ {2, 4, 8}, and reports host wall-clock, events/second, and speedup
//! over the sequential engine. Each parallel run's `RunReport` and
//! interaction checksum are asserted bit-identical to the sequential
//! baseline, so the speedup table is also an equivalence check at scale.
//!
//! Results go to `results/BENCH_wallclock.json` together with
//! `host_cpus` (`std::thread::available_parallelism`): parallel-engine
//! speedup is only physically possible when the host grants more than
//! one core, so readers must interpret the table against that field.
//!
//! Run with `--quick` for a reduced problem size.

use apps::bh_dist::BhApp;
use apps::fmm_dist::{FmmEvalApp, FmmM2lApp};
use nbody::fmm::Local;
use bench::*;
use dpa_core::{run_phase_dst, DpaConfig, DstOptions};
use sim_net::RunReport;
use std::collections::HashMap;
use std::time::Instant;

/// Thread counts to sweep; 1 selects the sequential engine.
const THREADS: &[usize] = &[1, 2, 4, 8];

/// One timed run: the phase report(s), an order-independent interaction
/// checksum, and the host wall-clock the simulator consumed.
struct Timed {
    reports: Vec<RunReport>,
    checksum: u64,
    wall: f64,
}

fn opts(threads: usize) -> DstOptions {
    DstOptions {
        threads,
        ..DstOptions::default()
    }
}

/// Time one Barnes-Hut force phase at `nodes` under `threads`.
fn time_bh(bodies: usize, nodes: u16, threads: usize) -> Timed {
    let world = bh_world_sized(bodies, nodes);
    let mut checksum = 0u64;
    let start = Instant::now();
    let (report, _) = run_phase_dst(
        nodes,
        paper_net(),
        DpaConfig::dpa(50),
        &opts(threads),
        |i| BhApp::new(world.clone(), i),
        |_, app: &BhApp| checksum = checksum.wrapping_add(app.interaction_hash),
    );
    let wall = start.elapsed().as_secs_f64();
    assert!(report.completed, "BH phase stalled");
    Timed {
        reports: vec![report],
        checksum,
        wall,
    }
}

/// Time one FMM force phase (M2L sub-phase, barrier, downward + eval) at
/// `nodes` under `threads`. Both sub-phases run on the selected engine.
fn time_fmm(particles: usize, terms: usize, nodes: u16, threads: usize) -> Timed {
    let world = fmm_world_sized(particles, terms, nodes);
    let mut checksum = 0u64;
    let mut partials: Vec<HashMap<u32, Local>> = (0..nodes).map(|_| HashMap::new()).collect();
    let start = Instant::now();
    let (r1, _) = run_phase_dst(
        nodes,
        paper_net(),
        DpaConfig::dpa(50),
        &opts(threads),
        |i| FmmM2lApp::new(world.clone(), i),
        |i, app: &FmmM2lApp| {
            partials[i as usize] = app.locals.clone();
            checksum = checksum.wrapping_add(app.interaction_hash);
        },
    );
    assert!(r1.completed, "FMM M2L sub-phase stalled");
    let mut partials_iter = partials.into_iter();
    let (r2, _) = run_phase_dst(
        nodes,
        paper_net(),
        DpaConfig::dpa(50),
        &opts(threads),
        |i| {
            let part = partials_iter.next().expect("one partial per node");
            FmmEvalApp::new(world.clone(), i, part)
        },
        |_, app: &FmmEvalApp| checksum = checksum.wrapping_add(app.interaction_hash),
    );
    let wall = start.elapsed().as_secs_f64();
    assert!(r2.completed, "FMM eval sub-phase stalled");
    Timed {
        reports: vec![r1, r2],
        checksum,
        wall,
    }
}

fn main() {
    let quick = has_flag("--quick");
    let (bh_n, fmm_n, fmm_p) = if quick {
        (2_048, 4_096, 12)
    } else {
        (PAPER_BH_BODIES, PAPER_FMM_PARTICLES, PAPER_FMM_TERMS)
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("== Simulator wall-clock: sequential vs conservative-window parallel ==");
    println!(
        "host cpus: {host_cpus} | BH {bh_n} bodies | FMM {fmm_n} particles, {fmm_p} terms\n"
    );

    let mut points = Vec::new();
    type TimedRun<'a> = &'a dyn Fn(u16, usize) -> Timed;
    let apps: &[(&str, TimedRun)] = &[
        ("bh", &|p, k| time_bh(bh_n, p, k)),
        ("fmm", &|p, k| time_fmm(fmm_n, fmm_p, p, k)),
    ];
    for (app, run) in apps {
        for &p in &[16u16, 64] {
            println!("{app} P={p}:  threads    wall_s      events     ev/s   speedup  identical");
            let mut base: Option<Timed> = None;
            for &k in THREADS {
                let t = run(p, k);
                let events: u64 = t.reports.iter().map(|r| r.events_processed).sum();
                let evps = events as f64 / t.wall.max(1e-9);
                let (speedup, identical) = match &base {
                    None => (1.0, true),
                    Some(b) => (
                        b.wall / t.wall.max(1e-9),
                        b.reports == t.reports && b.checksum == t.checksum,
                    ),
                };
                assert!(
                    identical,
                    "{app} P={p}: parallel engine (k={k}) diverged from sequential"
                );
                println!(
                    "           {k:>7} {:>9.3} {events:>11} {evps:>8.0} {speedup:>8.2}x  {identical}",
                    t.wall
                );
                let makespan: u64 = t.reports.iter().map(|r| r.makespan().as_ns()).sum();
                points.push(
                    ExpPoint::new(
                        "bench_wallclock",
                        app,
                        &format!("threads-{k}"),
                        p,
                        makespan,
                        &t.reports[0].stats,
                    )
                    .with("threads", k as f64)
                    .with("wall_s", t.wall)
                    .with("events", events as f64)
                    .with("events_per_sec", evps)
                    .with("speedup_vs_seq", speedup)
                    .with("host_cpus", host_cpus as f64)
                    .with("quick", if quick { 1.0 } else { 0.0 }),
                );
                if k == 1 {
                    base = Some(t);
                }
            }
            println!();
        }
    }
    println!(
        "All parallel runs bit-identical to sequential. NOTE: speedup > 1 \
         requires host_cpus > 1 (this host: {host_cpus})."
    );
    dump_json("BENCH_wallclock", &points);
}
