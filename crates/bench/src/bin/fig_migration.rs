//! Migration ablation: repeated clustered Barnes-Hut force phases on 16
//! nodes with *scattered* (placement-hostile) cell ownership, run with
//! locality-driven object migration ON vs OFF.
//!
//! Within a single phase the arrival set already deduplicates fetches, so
//! migration's win is cross-phase: the affinity accumulated in phase `i`
//! re-homes hot cells to their dominant consumer before phase `i+1`, which
//! then finds them local and sends fewer request messages. The figure
//! therefore compares request traffic over phases 2..P (the first phase is
//! the warm-up that pays for the signal) and checks the runs compute
//! bit-identical integer interaction checksums — migration must move data,
//! never results.
//!
//! Usage:
//!   cargo run --release -p bench --bin fig_migration            # 4096 bodies
//!   cargo run --release -p bench --bin fig_migration -- --quick # 1024 bodies
//!
//! Exits nonzero if the steady-state request-message reduction falls below
//! the 20% acceptance floor.

use apps::bh_dist::{BhApp, BhCost, BhWorld, OwnerPolicy};
use bench::{dump_json, has_flag, ExpPoint, SEED};
use dpa_core::invariant::{check_completed, NodeSnapshot};
use dpa_core::{run_phase_migrating, DpaConfig, DstOptions};
use nbody::bh::BhParams;
use nbody::distrib::plummer;
use sim_net::NetConfig;
use std::sync::Arc;

const NODES: u16 = 16;
const PHASES: usize = 4;
const STRIP: usize = 8;
/// Acceptance floor: steady-state request-message reduction.
const TARGET: f64 = 0.20;

struct Run {
    /// Per-phase machine-wide request messages.
    req_msgs: Vec<u64>,
    /// Per-phase machine-wide request entries on the wire.
    req_sent: Vec<u64>,
    /// Per-(phase, node) interaction checksums.
    hashes: Vec<u64>,
    /// Simulated time summed over phases, ns.
    total_ns: u64,
}

fn run(world: &Arc<BhWorld>, cfg: DpaConfig, label: &str) -> Run {
    let mut hashes = vec![0u64; PHASES * NODES as usize];
    let (reports, snap_sets, _) = run_phase_migrating(
        NODES,
        NetConfig::default(),
        cfg,
        &DstOptions::default(),
        PHASES,
        |_, i| BhApp::new(world.clone(), i),
        |ph, i, app: &BhApp| hashes[ph * NODES as usize + i as usize] = app.interaction_hash,
    );
    let mut req_msgs = Vec::with_capacity(PHASES);
    let mut req_sent = Vec::with_capacity(PHASES);
    for (ph, (r, snaps)) in reports.iter().zip(&snap_sets).enumerate() {
        assert!(
            r.completed,
            "{label} phase {ph} stalled: {}",
            r.stall_summary()
        );
        let violations = check_completed(snaps, false);
        assert!(
            violations.is_empty(),
            "{label} phase {ph} violates invariants: {}",
            violations[0]
        );
        req_msgs.push(snaps.iter().map(|s: &NodeSnapshot| s.request_msgs).sum());
        req_sent.push(snaps.iter().map(|s: &NodeSnapshot| s.req_sent).sum());
    }
    Run {
        req_msgs,
        req_sent,
        hashes,
        total_ns: reports.iter().map(|r| r.makespan().as_ns()).sum(),
    }
}

fn main() {
    let bodies = if has_flag("--quick") { 1024 } else { 4096 };
    // Scatter ownership: the allocator-hostile placement where dynamic
    // data-side alignment has the most to recover.
    let world = BhWorld::build_with_policy(
        plummer(bodies, SEED),
        NODES,
        4,
        BhParams::default(),
        BhCost::default(),
        OwnerPolicy::Scatter,
    );

    let on_cfg = DpaConfig {
        migration_threshold: 2,
        migration_budget: 1 << 20,
        ..DpaConfig::dpa_migrating(STRIP)
    };
    let off = run(&world, DpaConfig::dpa(STRIP), "migration-off");
    let on = run(&world, on_cfg, "migration-on");

    assert_eq!(
        off.hashes, on.hashes,
        "interaction checksums must be bit-identical with migration on/off"
    );

    println!("fig_migration: clustered BH, {bodies} bodies, {NODES} nodes, scatter placement");
    println!("{:>6} {:>14} {:>14} {:>10}", "phase", "req msgs OFF", "req msgs ON", "saved");
    for ph in 0..PHASES {
        let o = off.req_msgs[ph];
        let n = on.req_msgs[ph];
        let saved = if o == 0 { 0.0 } else { 100.0 * (o as f64 - n as f64) / o as f64 };
        println!("{ph:>6} {o:>14} {n:>14} {saved:>9.1}%");
    }

    // Steady state: everything after the warm-up phase.
    let steady_off: u64 = off.req_msgs[1..].iter().sum();
    let steady_on: u64 = on.req_msgs[1..].iter().sum();
    let reduction = (steady_off as f64 - steady_on as f64) / steady_off as f64;
    let entries_off: u64 = off.req_sent[1..].iter().sum();
    let entries_on: u64 = on.req_sent[1..].iter().sum();
    println!(
        "steady-state (phases 1..{PHASES}): request msgs {steady_off} -> {steady_on} \
         ({:.1}% reduction), request entries {entries_off} -> {entries_on}",
        100.0 * reduction
    );
    println!(
        "simulated time: off {:.3}s  on {:.3}s",
        off.total_ns as f64 / 1e9,
        on.total_ns as f64 / 1e9
    );

    let points = vec![
        ExpPoint {
            experiment: "fig_migration".into(),
            app: "bh".into(),
            config: "migration-off".into(),
            nodes: NODES,
            seconds: off.total_ns as f64 / 1e9,
            breakdown: (0.0, 0.0, 0.0),
            msgs: off.req_msgs.iter().sum(),
            bytes: 0,
            extra: vec![("steady_req_msgs".into(), steady_off as f64)],
        },
        ExpPoint {
            experiment: "fig_migration".into(),
            app: "bh".into(),
            config: "migration-on".into(),
            nodes: NODES,
            seconds: on.total_ns as f64 / 1e9,
            breakdown: (0.0, 0.0, 0.0),
            msgs: on.req_msgs.iter().sum(),
            bytes: 0,
            extra: vec![
                ("steady_req_msgs".into(), steady_on as f64),
                ("steady_reduction".into(), reduction),
            ],
        },
    ];
    dump_json("fig_migration", &points);

    if reduction < TARGET {
        eprintln!(
            "FAIL: steady-state reduction {:.1}% below the {:.0}% floor",
            100.0 * reduction,
            100.0 * TARGET
        );
        std::process::exit(1);
    }
    println!(
        "PASS: steady-state request-message reduction {:.1}% >= {:.0}%",
        100.0 * reduction,
        100.0 * TARGET
    );
}
