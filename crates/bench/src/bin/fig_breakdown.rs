//! **Breakdown figure** — total computation time split into idle time,
//! communication overhead, and local computation, with the speedup atop
//! each bar, across the communication-optimization ladder:
//!
//! * `Base` — DPA threads + tiling only: requests sent one batch per
//!   quiescence, each round trip exposed;
//! * `+Pipeline` — requests issued eagerly, transfers overlap local work;
//! * `+Pipe+Agg` — full DPA: pipelining plus per-destination aggregation.
//!
//! Expected shape (the paper's figure): Base bars dominated by idle time;
//! pipelining converts idle into overlap; aggregation then shrinks the
//! communication-overhead band; speedups rise along the ladder.
//!
//! Run with `--quick` for a reduced problem size, or `--smoke` for a
//! CI-sized sanity run (tiny worlds, P ∈ {4, 16}).

use apps::driver::{merge_stats, run_bh, run_fmm};
use bench::*;
use dpa_core::DpaConfig;
use sim_net::RunStats;

/// Attach the per-path aggregation factors (wire entries per message on
/// the request, reply, and update paths) to an experiment point.
fn with_agg_factors(pt: ExpPoint, s: &RunStats) -> ExpPoint {
    pt.with("req_agg_factor", s.user_ratio("request_entries", "request_msgs"))
        .with("reply_agg_factor", s.user_ratio("reply_entries", "reply_msgs"))
        .with("upd_agg_factor", s.user_ratio("update_entries", "update_msgs"))
}

fn main() {
    let quick = has_flag("--quick");
    let smoke = has_flag("--smoke");
    let (bh_n, fmm_n, fmm_p) = if smoke {
        (512, 1_024, 8)
    } else if quick {
        (2_048, 4_096, 12)
    } else {
        (PAPER_BH_BODIES, PAPER_FMM_PARTICLES, PAPER_FMM_TERMS)
    };
    let procs: &[u16] = if quick || smoke { &[4, 16] } else { &[4, 16, 64] };
    let ladder = [
        ("Base     ", DpaConfig::dpa_base(50)),
        ("+Pipeline", DpaConfig::dpa_pipeline(50)),
        ("+Pipe+Agg", DpaConfig::dpa(50)),
    ];
    let mut points = Vec::new();

    println!("== Breakdown figure: local / comm-overhead / idle (% of bar), speedup on top ==");

    println!("\n-- BARNES-HUT ({bh_n} bodies) --");
    let bh_seq = {
        let w = bh_world_sized(bh_n, 1);
        run_bh(&w, DpaConfig::sequential(), paper_net()).makespan_ns
    };
    for &p in procs {
        let w = bh_world_sized(bh_n, p);
        println!("P = {p}:");
        for (label, cfg) in &ladder {
            let r = run_bh(&w, cfg.clone(), paper_net());
            let (l, o, i) = breakdown_pct(&r.stats);
            let speedup = bh_seq as f64 / r.makespan_ns as f64;
            println!(
                "  {label}  {:>8} s  |{}| {l:4.1}/{o:4.1}/{i:4.1}%  speedup {speedup:5.1}x  msgs {}",
                fmt_secs(r.makespan_ns).trim(),
                ascii_bar(l, o, i, 30),
                r.stats.total_msgs()
            );
            points.push(with_agg_factors(
                ExpPoint::new("fig_breakdown", "bh", label.trim(), p, r.makespan_ns, &r.stats)
                    .with("speedup", speedup),
                &r.stats,
            ));
        }
    }

    println!("\n-- FMM ({fmm_n} particles, {fmm_p} terms) --");
    let fmm_seq = {
        let w = fmm_world_sized(fmm_n, fmm_p, 1);
        run_fmm(&w, DpaConfig::sequential(), paper_net()).makespan_ns
    };
    for &p in procs {
        let w = fmm_world_sized(fmm_n, fmm_p, p);
        println!("P = {p}:");
        for (label, cfg) in &ladder {
            let r = run_fmm(&w, cfg.clone(), paper_net());
            let merged = merge_stats(&r.m2l_stats, &r.eval_stats);
            let (l, o, i) = breakdown_pct(&merged);
            let speedup = fmm_seq as f64 / r.makespan_ns as f64;
            println!(
                "  {label}  {:>8} s  |{}| {l:4.1}/{o:4.1}/{i:4.1}%  speedup {speedup:5.1}x  msgs {}",
                fmt_secs(r.makespan_ns).trim(),
                ascii_bar(l, o, i, 30),
                merged.total_msgs()
            );
            points.push(with_agg_factors(
                ExpPoint::new("fig_breakdown", "fmm", label.trim(), p, r.makespan_ns, &merged)
                    .with("speedup", speedup),
                &merged,
            ));
        }
    }

    dump_json("fig_breakdown", &points);
}
