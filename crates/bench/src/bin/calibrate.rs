//! Calibration diagnostics: dump the raw counters behind the cost model so
//! the defaults can be tuned against the paper's observed ratios
//! (single-node DPA ≈ +20.6% over sequential, caching ≈ +17.7%; DPA ahead
//! of caching by 7–22% at P ≥ 2).

use apps::driver::{merge_stats, run_bh, run_fmm};
use bench::*;
use dpa_core::DpaConfig;

fn main() {
    let quick = has_flag("--quick");
    let bh_n = if quick { 4_096 } else { PAPER_BH_BODIES };
    let fmm_n = if quick { 8_192 } else { PAPER_FMM_PARTICLES };
    let fmm_p = if quick { 16 } else { PAPER_FMM_TERMS };

    println!("=== BH {bh_n} bodies ===");
    let seq = {
        let w = bh_world_sized(bh_n, 1);
        let r = run_bh(&w, DpaConfig::sequential(), paper_net());
        println!(
            "seq: {} s  visits={} cell_int={} body_int={}",
            fmt_secs(r.makespan_ns),
            r.stats.user_total("threads_created"),
            r.cell_interactions,
            r.body_interactions
        );
        r.makespan_ns
    };
    for p in [1u16, 2, 16, 64] {
        let w = bh_world_sized(bh_n, p);
        for cfg in [DpaConfig::dpa(50), DpaConfig::caching()] {
            let label = cfg.describe();
            let r = run_bh(&w, cfg, paper_net());
            let s = &r.stats;
            let (l, o, i) = breakdown_pct(s);
            println!(
                "P={p:<3} {label:<38} {} s ({:+5.1}% vs seq/P) msgs={} misses={} probes={} threads={} \
                 local/ovh/idle = {l:.1}/{o:.1}/{i:.1}%",
                fmt_secs(r.makespan_ns),
                100.0 * (r.makespan_ns as f64 * p as f64 / seq as f64 - 1.0),
                s.total_msgs(),
                s.user_total("cache_misses").max(s.user_total("requests_issued")),
                s.user_total("cache_probes"),
                s.user_total("threads_created"),
            );
        }
    }

    println!("=== FMM {fmm_n} particles, {fmm_p} terms ===");
    let fseq = {
        let w = fmm_world_sized(fmm_n, fmm_p, 1);
        let r = run_fmm(&w, DpaConfig::sequential(), paper_net());
        println!(
            "seq: {} s  m2l={} p2p_pairs={}",
            fmt_secs(r.makespan_ns),
            r.m2l_count,
            r.p2p_pairs
        );
        r.makespan_ns
    };
    for p in [1u16, 2, 16, 64] {
        let w = fmm_world_sized(fmm_n, fmm_p, p);
        for cfg in [DpaConfig::dpa(50), DpaConfig::caching()] {
            let label = cfg.describe();
            let r = run_fmm(&w, cfg, paper_net());
            let s = merge_stats(&r.m2l_stats, &r.eval_stats);
            let (l, o, i) = breakdown_pct(&s);
            println!(
                "P={p:<3} {label:<38} {} s ({:+5.1}% vs seq/P) msgs={} misses={} probes={} threads={} \
                 local/ovh/idle = {l:.1}/{o:.1}/{i:.1}%",
                fmt_secs(r.makespan_ns),
                100.0 * (r.makespan_ns as f64 * p as f64 / fseq as f64 - 1.0),
                s.total_msgs(),
                s.user_total("cache_misses").max(s.user_total("requests_issued")),
                s.user_total("cache_probes"),
                s.user_total("threads_created"),
            );
        }
    }
}
