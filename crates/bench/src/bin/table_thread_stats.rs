//! **Thread-statistics table** — the paper tabulates, per application:
//! static thread counts (from the compiler), the maximum number of
//! outstanding (aligned) threads, maximum outstanding requests, and the
//! memory DPA trades for latency tolerance (saved thread state + renamed
//! objects). This binary regenerates all of those from runtime counters,
//! plus the static template counts of the bundled Mini-ICC kernels.
//!
//! Run with `--quick` for a reduced problem size.

use apps::driver::{merge_stats, run_bh, run_fmm};
use bench::*;
use dpa_compiler::compile_source;
use dpa_core::DpaConfig;
use sim_net::RunStats;

fn print_runtime_rows(app: &str, strip: usize, s: &RunStats, points: &mut Vec<ExpPoint>, p: u16, ns: u64) {
    let row = |k: &str, v: u64| println!("    {k:<28} {v:>12}");
    println!("  {app} (strip {strip}, P = {p}):");
    row("threads created", s.user_total("threads_created"));
    row("threads aligned (total)", s.user_total("threads_aligned"));
    row("max aligned threads/node", s.user_max("peak_aligned_threads"));
    row("max map keys/node", s.user_max("peak_map_keys"));
    row("max outstanding reqs/node", s.user_max("peak_pending_requests"));
    row("requests issued", s.user_total("requests_issued"));
    row("request messages", s.user_total("request_msgs"));
    row("reply messages", s.user_total("reply_msgs"));
    row("thread-state peak bytes/node", s.user_max("thread_state_peak_bytes"));
    row("renamed peak bytes/node", s.user_max("renamed_peak_bytes"));
    let req_agg = s.user_ratio("request_entries", "request_msgs");
    let reply_agg = s.user_ratio("reply_entries", "reply_msgs");
    let upd_agg = s.user_ratio("update_entries", "update_msgs");
    println!("    {:<28} {req_agg:>12.2}", "request agg factor");
    println!("    {:<28} {reply_agg:>12.2}", "reply agg factor");
    println!("    {:<28} {upd_agg:>12.2}", "update agg factor");
    points.push(
        ExpPoint::new("table_thread_stats", app, &format!("strip={strip}"), p, ns, s)
            .with("peak_aligned", s.user_max("peak_aligned_threads") as f64)
            .with("peak_pending", s.user_max("peak_pending_requests") as f64)
            .with("req_agg_factor", req_agg)
            .with("reply_agg_factor", reply_agg)
            .with("upd_agg_factor", upd_agg),
    );
}

fn main() {
    let quick = has_flag("--quick");
    let (bh_n, fmm_n, fmm_p) = if quick {
        (2_048, 4_096, 12)
    } else {
        (PAPER_BH_BODIES, PAPER_FMM_PARTICLES, PAPER_FMM_TERMS)
    };
    let p: u16 = 16;
    let mut points = Vec::new();

    println!("== Thread statistics (runtime) ==");
    for strip in [50usize, 300] {
        let w = bh_world_sized(bh_n, p);
        let r = run_bh(&w, DpaConfig::dpa(strip), paper_net());
        print_runtime_rows("Barnes-Hut", strip, &r.stats, &mut points, p, r.makespan_ns);

        let w = fmm_world_sized(fmm_n, fmm_p, p);
        let r = run_fmm(&w, DpaConfig::dpa(strip), paper_net());
        let merged = merge_stats(&r.m2l_stats, &r.eval_stats);
        print_runtime_rows("FMM", strip, &merged, &mut points, p, r.makespan_ns);
    }

    println!("\n== Static thread structure (compiler) ==");
    let kernels = [
        (
            "treewalk",
            "struct T { l: T*; r: T*; v: int; }
             fn sum(t: T*) -> int {
               if (t == null) { return 0; }
               let a: int = 0;
               let b: int = 0;
               conc { a = sum(t->l); b = sum(t->r); }
               return a + b + t->v;
             }",
        ),
        (
            "listsum",
            "struct Node { val: int; next: Node*; }
             fn lsum(n: Node*) -> int {
               let acc: int = 0;
               while (n != null) {
                 acc = acc + n->val;
                 n = n->next;
               }
               return acc;
             }",
        ),
        (
            "bh_kernel",
            "struct Cell { mass: float; cx: float; cy: float; cz: float;
                           size: float; c0: Cell*; c1: Cell*; }
             fn force(c: Cell*, px: float, py: float, pz: float) -> float {
               if (c == null) { return 0.0; }
               let dx: float = c->cx - px;
               let dy: float = c->cy - py;
               let dz: float = c->cz - pz;
               let d2: float = dx*dx + dy*dy + dz*dz + 0.01;
               if (c->size * c->size < d2) {
                 return c->mass / d2;
               }
               let a: float = 0.0;
               let b: float = 0.0;
               conc {
                 a = force(c->c0, px, py, pz);
                 b = force(c->c1, px, py, pz);
               }
               return a + b;
             }",
        ),
    ];
    println!(
        "  {:<12} {:>10} {:>14} {:>12} {:>12}",
        "kernel", "templates", "demand sites", "fork sites", "call sites"
    );
    for (name, src) in kernels {
        let prog = compile_source(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        for st in &prog.stats {
            println!(
                "  {:<12} {:>10} {:>14} {:>12} {:>12}",
                format!("{name}/{}", st.name),
                st.templates,
                st.demand_sites,
                st.fork_sites,
                st.call_sites
            );
        }
    }

    dump_json("table_thread_stats", &points);
}
