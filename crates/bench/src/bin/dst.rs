//! Deterministic-simulation-testing sweep over the DPA runtime.
//!
//! FoundationDB-style testing for the simulator: every run is a pure
//! function of `(workload, schedule seed, fault plan)`, so any failure is
//! replayable bit-for-bit. The sweep explores
//!
//! * **schedules** — seeded tie-break permutation of equal-time events plus
//!   bounded message-delay jitter (`Machine::perturb_schedule`);
//! * **faults** — probabilistic drop / duplicate / delay plans plus
//!   scheduled node pauses (`sim_net::FaultPlan`), decided per-channel so
//!   a message's fate is independent of the interleaving;
//!
//! and checks, per run,
//!
//! * the runtime-state invariants of `dpa_core::invariant` (M/D drained,
//!   request/reply/update conservation, at-most-once reductions);
//! * result equivalence against the unperturbed baseline — bit-identical
//!   for the integer synth checksum, tight-tolerance for floating-point
//!   forces (reduction order varies across schedules);
//! * stall accountability: a run that fails to complete must carry a
//!   diagnosis naming the stuck node and its pending requests, and only
//!   plans that can lose packets may stall at all.
//!
//! The shared machinery (worlds, digests, checkers, corpus format) lives
//! in `bench::dst` so `cargo test` can replay every committed corpus case.
//! Failing cases are written to `tests/dst_corpus/` as replayable case
//! files; a JSON sweep report (with per-path aggregation factors) lands in
//! `results/dst_report.json`.
//!
//! Workloads cover the single-phase variants (synth DPA/caching, BH, FMM,
//! relax), the migration-enabled multi-phase variants (`synth-mig`,
//! `bh-mig`, driven through `run_phase_migrating`), and the adaptive-strip
//! variants (`synth-adapt`, `bh-adapt`, driven by the `dpa_core::stripctl`
//! feedback controller with tight bounds so retunes actually fire), so the
//! object-migration protocol — affinity, depart/adopt, forwards, orphans —
//! and the strip controller — bounded schedules, deterministic retunes,
//! cross-phase carry — are explored under every fault plan. The
//! differential variants (`synth-diff`, `bh-diff`, `graph`) run
//! `run_phase_differential` against a from-scratch comparator, and the
//! skew-adversarial family (`graph`, `graph-mig`, `setops`) puts a
//! power-law hot hub with multi-MTU records and structural phase deltas —
//! plus ordered-set batches on the reduction path — under the same
//! oracles, including per-hot-key reply conservation.
//!
//! Usage:
//!   cargo run --release -p bench --bin dst            # 32 seeds x 5 plans
//!   cargo run --release -p bench --bin dst -- --quick # 8 seeds x 5 plans
//!   cargo run --release -p bench --bin dst -- --smoke # 8 seeds x 2 plans (CI)
//!   cargo run --release -p bench --bin dst -- --replay tests/dst_corpus/<case>

use bench::dst::{
    agg_factors, check_run, corpus_write, plan_for, replay, run_one, schedule_seed, Worlds,
    ALL_PLANS, SMOKE_PLANS, WORKLOADS,
};
use bench::{has_flag, json};
use dpa_core::invariant::{check_completed, check_conservation, NodeSnapshot};
use dpa_core::synth::SynthApp;
use dpa_core::{run_phase_dst, DpaConfig, DstOptions};
use sim_net::{FaultPlan, NetConfig};

// ---------------------------------------------------------------- demo

/// Deliberately lose a reply and show the deadlock detector naming the
/// stuck request. Returns a violation description if the detector failed.
fn demo_lost_reply(w: &Worlds) -> Option<String> {
    // Count the baseline's messages; the last one is a reply (requests
    // precede the replies that finish the phase), so dropping message #m
    // downward finds a lost-reply stall within a try or two.
    let baseline = {
        let world = w.synth.clone();
        let (report, _) = run_phase_dst(
            world.nodes,
            NetConfig::default(),
            DpaConfig::dpa(4),
            &DstOptions::default(),
            |i| SynthApp::new(world.clone(), i, 500),
            |_, _| {},
        );
        report
    };
    let total = baseline.stats.total_msgs();
    println!("\nlost-reply demo: baseline sends {total} messages");
    for n in (1..=total).rev() {
        let world = w.synth.clone();
        let opts = DstOptions {
            schedule_seed: None,
            faults: FaultPlan::drop_nth(n),
            ..DstOptions::default()
        };
        let (report, snaps) = run_phase_dst(
            world.nodes,
            NetConfig::default(),
            DpaConfig::dpa(4),
            &opts,
            |i| SynthApp::new(world.clone(), i, 500),
            |_, _| {},
        );
        if report.completed {
            continue;
        }
        println!("  dropping message #{n}/{total} stalls the phase; diagnosis:");
        for s in &report.stalls {
            println!("    {s}");
        }
        let named = report
            .stalls
            .iter()
            .any(|s| s.detail.as_deref().is_some_and(|d| d.contains("stuck on [GPtr(")));
        if !named {
            return Some(
                "lost-reply stall did not name the stuck pending request".to_string(),
            );
        }
        let conserved = check_conservation(&snaps);
        if !conserved.is_empty() {
            return Some(format!("conservation broken in stalled run: {}", conserved[0]));
        }
        return None;
    }
    Some("no single-message drop stalled the synth phase".to_string())
}

// ---------------------------------------------------------------- sweep

struct PlanRow {
    workload: String,
    plan: String,
    runs: u64,
    completed: u64,
    stalled: u64,
    violations: u64,
    /// Per-path aggregation factors over every snapshot in this row.
    agg: (f64, f64, f64),
}

const USAGE: &str = "usage: dst [--smoke | --quick | --workload <names> | --replay <case-file>]
  (default)          sweep 32 seeds x {none, drop, dup, delay} over every workload
  --quick            8 seeds x all 4 fault plans
  --smoke            8 seeds x {none, drop} (CI-sized)
  --workload <names> restrict the sweep to a comma-separated workload subset
  --replay <path>    re-run one recorded corpus case; exit 1 if it reproduces";

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = argv.iter().position(|a| a == "--replay") {
        let Some(path) = argv.get(pos + 1) else {
            eprintln!("error: --replay needs a corpus case path\n{USAGE}");
            std::process::exit(2);
        };
        std::process::exit(replay(path));
    }
    let mut workloads: Vec<&str> = WORKLOADS.to_vec();
    if let Some(pos) = argv.iter().position(|a| a == "--workload") {
        let Some(names) = argv.get(pos + 1).cloned() else {
            eprintln!("error: --workload needs a comma-separated name list\n{USAGE}");
            std::process::exit(2);
        };
        workloads = Vec::new();
        for name in names.split(',') {
            match WORKLOADS.iter().find(|&&w| w == name.trim()) {
                Some(&w) => workloads.push(w),
                None => {
                    eprintln!(
                        "error: unknown workload {name:?} (expected one of {WORKLOADS:?})"
                    );
                    std::process::exit(2);
                }
            }
        }
        argv.drain(pos..=pos + 1);
    }
    if let Some(bad) = argv.iter().find(|a| !matches!(a.as_str(), "--smoke" | "--quick")) {
        eprintln!("error: unknown argument {bad:?}\n{USAGE}");
        std::process::exit(2);
    }

    let smoke = has_flag("--smoke");
    let quick = has_flag("--quick") || smoke;
    let seeds: u64 = if quick { 8 } else { 32 };
    let plans = if smoke { SMOKE_PLANS } else { ALL_PLANS };

    let w = Worlds::build();
    let mut rows: Vec<PlanRow> = Vec::new();
    let mut failures: Vec<(String, u64, String, Vec<String>)> = Vec::new();

    for &workload in &workloads {
        let baseline = run_one(&w, workload, &DstOptions::default());
        assert!(
            baseline.completed,
            "{workload}: baseline run failed to complete: {}",
            baseline.stalls
        );
        let base_violations = check_completed(&baseline.snaps, false);
        assert!(
            base_violations.is_empty(),
            "{workload}: baseline violates invariants: {}",
            base_violations[0]
        );

        for &plan_name in plans {
            let mut row = PlanRow {
                workload: workload.to_string(),
                plan: plan_name.to_string(),
                runs: 0,
                completed: 0,
                stalled: 0,
                violations: 0,
                agg: (0.0, 0.0, 0.0),
            };
            let mut row_snaps: Vec<NodeSnapshot> = Vec::new();
            for seed in 0..seeds {
                let opts = DstOptions {
                    schedule_seed: Some(schedule_seed(seed)),
                    faults: plan_for(plan_name, seed),
                    ..DstOptions::default()
                };
                let out = run_one(&w, workload, &opts);
                row.runs += 1;
                if out.completed {
                    row.completed += 1;
                } else {
                    row.stalled += 1;
                }
                let violations = check_run(plan_name, &baseline.digest, &out);
                if !violations.is_empty() {
                    row.violations += violations.len() as u64;
                    let path = corpus_write(workload, seed, plan_name, &violations);
                    eprintln!("  [corpus case written: {path}]");
                    failures.push((workload.to_string(), seed, plan_name.to_string(), violations));
                }
                row_snaps.extend(out.snaps);
            }
            row.agg = agg_factors(&row_snaps);
            println!(
                "{:14} {:6} runs {:3}  completed {:3}  stalled {:3}  violations {}  \
                 agg req/reply/upd {:.2}/{:.2}/{:.2}",
                row.workload, row.plan, row.runs, row.completed, row.stalled, row.violations,
                row.agg.0, row.agg.1, row.agg.2
            );
            rows.push(row);
        }
    }

    let demo_failure = demo_lost_reply(&w);

    // JSON report.
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let body: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "  {{\"workload\": {}, \"plan\": {}, \"seeds\": {}, \"runs\": {}, \
                     \"completed\": {}, \"stalled\": {}, \"violations\": {}, \
                     \"req_agg_factor\": {}, \"reply_agg_factor\": {}, \"upd_agg_factor\": {}}}",
                    json::string(&r.workload),
                    json::string(&r.plan),
                    seeds,
                    r.runs,
                    r.completed,
                    r.stalled,
                    r.violations,
                    json::number(r.agg.0),
                    json::number(r.agg.1),
                    json::number(r.agg.2)
                )
            })
            .collect();
        let path = dir.join("dst_report.json");
        let _ = std::fs::write(&path, format!("[\n{}\n]\n", body.join(",\n")));
        eprintln!("[wrote {}]", path.display());
    }

    let total_runs: u64 = rows.iter().map(|r| r.runs).sum();
    let total_violations: u64 = rows.iter().map(|r| r.violations).sum();
    println!(
        "\nswept {} workloads x {} plans x {seeds} seeds = {total_runs} runs; {total_violations} violations",
        workloads.len(),
        plans.len()
    );

    let mut exit = 0;
    for (workload, seed, plan, violations) in &failures {
        eprintln!("FAIL {workload} seed={seed} plan={plan}:");
        for v in violations {
            eprintln!("  {v}");
        }
        exit = 1;
    }
    if let Some(d) = demo_failure {
        eprintln!("FAIL lost-reply demo: {d}");
        exit = 1;
    } else {
        println!("lost-reply demo: stall detected and diagnosed (no hang)");
    }
    std::process::exit(exit);
}
