//! Deterministic-simulation-testing sweep over the DPA runtime.
//!
//! FoundationDB-style testing for the simulator: every run is a pure
//! function of `(workload, schedule seed, fault plan)`, so any failure is
//! replayable bit-for-bit. The sweep explores
//!
//! * **schedules** — seeded tie-break permutation of equal-time events plus
//!   bounded message-delay jitter (`Machine::perturb_schedule`);
//! * **faults** — probabilistic drop / duplicate / delay plans
//!   (`sim_net::FaultPlan`), decided per-channel so a message's fate is
//!   independent of the interleaving;
//!
//! and checks, per run,
//!
//! * the runtime-state invariants of `dpa_core::invariant` (M/D drained,
//!   request/reply/update conservation, at-most-once reductions);
//! * result equivalence against the unperturbed baseline — bit-identical
//!   for the integer synth checksum, tight-tolerance for floating-point
//!   forces (reduction order varies across schedules);
//! * stall accountability: a run that fails to complete must carry a
//!   diagnosis naming the stuck node and its pending requests, and only
//!   plans that can lose packets may stall at all.
//!
//! Failing cases are written to `tests/dst_corpus/` as replayable case
//! files; a JSON sweep report lands in `results/dst_report.json`.
//!
//! Usage:
//!   cargo run --release -p bench --bin dst            # 32 seeds x 4 plans
//!   cargo run --release -p bench --bin dst -- --quick # 8 seeds x 4 plans
//!   cargo run --release -p bench --bin dst -- --smoke # 8 seeds x 2 plans (CI)
//!   cargo run --release -p bench --bin dst -- --replay tests/dst_corpus/<case>

use apps::bh_dist::{BhApp, BhWorld};
use apps::fmm_dist::{FmmEvalApp, FmmM2lApp, FmmWorld};
use apps::relax::{RelaxApp, RelaxWorld};
use bench::{bh_world_sized, fmm_world_sized, has_flag, json};
use dpa_core::invariant::{check_completed, check_conservation, NodeSnapshot};
use dpa_core::synth::{SynthApp, SynthParams, SynthWorld};
use dpa_core::{run_phase_dst, DpaConfig, DstOptions};
use nbody::fmm::Local;
use sim_net::{FaultPlan, NetConfig, RunReport};
use std::collections::HashMap;
use std::sync::Arc;

/// Extra per-delivery jitter used whenever a schedule seed is set, ns.
const JITTER_NS: u64 = 2_000;
/// Relative tolerance for floating-point digests across schedules (the
/// reduction order differs, so bits may not).
const FP_RTOL: f64 = 1e-9;

// ---------------------------------------------------------------- digests

/// A workload's result, in comparable form.
#[derive(Clone, Debug)]
enum Digest {
    /// Integer checksums: must be bit-identical across schedules.
    Ints(Vec<u64>),
    /// Floating-point results: compared with `FP_RTOL`.
    Floats(Vec<f64>),
}

impl Digest {
    /// `None` if equivalent, else a description of the first mismatch.
    fn diff(&self, other: &Digest) -> Option<String> {
        match (self, other) {
            (Digest::Ints(a), Digest::Ints(b)) => {
                if a.len() != b.len() {
                    return Some(format!("digest length {} vs {}", a.len(), b.len()));
                }
                a.iter().zip(b).position(|(x, y)| x != y).map(|i| {
                    format!("checksum[{i}]: {:#x} vs {:#x} (must be bit-identical)", a[i], b[i])
                })
            }
            (Digest::Floats(a), Digest::Floats(b)) => {
                if a.len() != b.len() {
                    return Some(format!("digest length {} vs {}", a.len(), b.len()));
                }
                a.iter().zip(b).position(|(x, y)| {
                    let scale = x.abs().max(y.abs()).max(1e-300);
                    (x - y).abs() / scale > FP_RTOL
                }).map(|i| format!("value[{i}]: {} vs {} (rtol {FP_RTOL})", a[i], b[i]))
            }
            _ => Some("digest kind mismatch".to_string()),
        }
    }
}

// ---------------------------------------------------------------- workloads

/// Pre-built worlds (deterministic; shared by every run).
struct Worlds {
    synth: Arc<SynthWorld>,
    bh: Arc<BhWorld>,
    fmm: Arc<FmmWorld>,
    relax: Arc<RelaxWorld>,
}

impl Worlds {
    fn build() -> Worlds {
        Worlds {
            synth: SynthWorld::build(SynthParams {
                nodes: 4,
                lists_per_node: 8,
                list_len: 14,
                remote_fraction: 0.5,
                shared_fraction: 0.4,
                ..SynthParams::default()
            }),
            bh: bh_world_sized(192, 4),
            fmm: fmm_world_sized(256, 8, 4),
            relax: RelaxWorld::build(96, 4, 4, 0.5, 0xDE7),
        }
    }
}

/// Everything the checkers need from one run.
struct Outcome {
    completed: bool,
    dropped: u64,
    digest: Digest,
    snaps: Vec<NodeSnapshot>,
    stalls: String,
}

fn net_for(opts: &DstOptions) -> NetConfig {
    NetConfig {
        jitter_ns: if opts.schedule_seed.is_some() { JITTER_NS } else { 0 },
        ..NetConfig::default()
    }
}

fn merge(report: &RunReport, mut snaps: Vec<NodeSnapshot>, extra: (RunReport, Vec<NodeSnapshot>))
    -> (bool, u64, Vec<NodeSnapshot>, String)
{
    let (r2, s2) = extra;
    snaps.extend(s2);
    let stalls = [report.stall_summary(), r2.stall_summary()]
        .iter()
        .filter(|s| !s.is_empty())
        .cloned()
        .collect::<Vec<_>>()
        .join("; ");
    (
        report.completed && r2.completed,
        report.stats.dropped_packets + r2.stats.dropped_packets,
        snaps,
        stalls,
    )
}

fn run_one(w: &Worlds, workload: &str, opts: &DstOptions) -> Outcome {
    let net = net_for(opts);
    match workload {
        "synth-dpa" | "synth-caching" => {
            let cfg = if workload == "synth-dpa" {
                DpaConfig::dpa(4)
            } else {
                DpaConfig::caching()
            };
            let world = w.synth.clone();
            let mut sums = vec![0u64; world.nodes as usize];
            let (report, snaps) = run_phase_dst(
                world.nodes,
                net,
                cfg,
                opts,
                |i| SynthApp::new(world.clone(), i, 500),
                |i, app: &SynthApp| sums[i as usize] = app.sum,
            );
            Outcome {
                completed: report.completed,
                dropped: report.stats.dropped_packets,
                digest: Digest::Ints(sums),
                stalls: report.stall_summary(),
                snaps,
            }
        }
        "bh" => {
            let world = w.bh.clone();
            let n = world.bodies.len();
            let mut accel = vec![0.0f64; 3 * n];
            let (report, snaps) = run_phase_dst(
                world.nodes,
                net,
                DpaConfig::dpa(8),
                opts,
                |i| BhApp::new(world.clone(), i),
                |i, app: &BhApp| {
                    let base = world.splits[i as usize];
                    for (off, a) in app.accel.iter().enumerate() {
                        let at = 3 * (base + off);
                        accel[at] = a.x;
                        accel[at + 1] = a.y;
                        accel[at + 2] = a.z;
                    }
                },
            );
            Outcome {
                completed: report.completed,
                dropped: report.stats.dropped_packets,
                digest: Digest::Floats(accel),
                stalls: report.stall_summary(),
                snaps,
            }
        }
        "fmm" => {
            let world = w.fmm.clone();
            // Sub-phase 1: M2L gather.
            let mut partials: Vec<HashMap<u32, Local>> =
                (0..world.nodes).map(|_| HashMap::new()).collect();
            let (r1, s1) = run_phase_dst(
                world.nodes,
                net.clone(),
                DpaConfig::dpa(8),
                opts,
                |i| FmmM2lApp::new(world.clone(), i),
                |i, app: &FmmM2lApp| partials[i as usize] = app.locals.clone(),
            );
            if !r1.completed {
                // Phase 2 input is incomplete; report the phase-1 stall.
                return Outcome {
                    completed: false,
                    dropped: r1.stats.dropped_packets,
                    digest: Digest::Floats(Vec::new()),
                    stalls: r1.stall_summary(),
                    snaps: s1,
                };
            }
            // Sub-phase 2: downward + evaluation.
            let n = world.solver.zs.len();
            let mut fields = vec![0.0f64; 2 * n];
            let mut partials_iter = partials.into_iter();
            let extra = run_phase_dst(
                world.nodes,
                net,
                DpaConfig::dpa(8),
                opts,
                |i| {
                    let part = partials_iter.next().expect("one partial per node");
                    FmmEvalApp::new(world.clone(), i, part)
                },
                |_, app: &FmmEvalApp| {
                    for (i, f) in app.fields.iter().enumerate() {
                        if f.norm2() != 0.0 {
                            fields[2 * i] += f.re;
                            fields[2 * i + 1] += f.im;
                        }
                    }
                },
            );
            let (completed, dropped, snaps, stalls) = merge(&r1, s1, extra);
            Outcome {
                completed,
                dropped,
                digest: Digest::Floats(fields),
                snaps,
                stalls,
            }
        }
        "relax" => {
            let world = w.relax.clone();
            let n = world.vertices.len();
            let mut next = vec![0.0f64; n];
            let (report, snaps) = run_phase_dst(
                world.nodes,
                net,
                DpaConfig::dpa(8),
                opts,
                |i| RelaxApp::new(world.clone(), i),
                |i, app: &RelaxApp| {
                    for v in world.range(i) {
                        next[v] = app.next[v];
                    }
                },
            );
            Outcome {
                completed: report.completed,
                dropped: report.stats.dropped_packets,
                digest: Digest::Floats(next),
                stalls: report.stall_summary(),
                snaps,
            }
        }
        other => panic!("unknown workload {other:?}"),
    }
}

// ---------------------------------------------------------------- plans

const ALL_PLANS: &[&str] = &["none", "drop", "dup", "delay"];
const SMOKE_PLANS: &[&str] = &["none", "drop"];
const WORKLOADS: &[&str] = &["synth-dpa", "synth-caching", "bh", "fmm", "relax"];

fn plan_for(name: &str, seed: u64) -> FaultPlan {
    let fs = seed ^ 0xFA17;
    match name {
        "none" => FaultPlan::none(),
        "drop" => FaultPlan::drop(fs, 0.02),
        "dup" => FaultPlan::duplicate(fs, 0.10),
        "delay" => FaultPlan::delay(fs, 0.30, 50_000),
        other => panic!("unknown plan {other:?}"),
    }
}

fn schedule_seed(seed: u64) -> u64 {
    0x5EED ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Check one perturbed run against its baseline; returns violation strings.
fn check_run(plan_name: &str, baseline: &Digest, out: &Outcome) -> Vec<String> {
    let lossy = plan_name == "drop";
    let mut violations = Vec::new();
    if out.completed {
        for v in check_completed(&out.snaps, lossy) {
            violations.push(v.to_string());
        }
        // A completed run that dropped nothing must agree with the
        // baseline; with packets actually lost, only fire-and-forget
        // updates can be missing (anything else would have stalled), so
        // the digest legitimately differs and conservation (checked
        // above) is the oracle instead.
        if out.dropped == 0 {
            if let Some(d) = baseline.diff(&out.digest) {
                violations.push(format!("result diverged from baseline: {d}"));
            }
        }
    } else {
        for v in check_conservation(&out.snaps) {
            violations.push(v.to_string());
        }
        if !lossy {
            violations.push(format!(
                "stalled under lossless plan '{plan_name}': {}",
                out.stalls
            ));
        } else if out.stalls.is_empty() {
            violations.push("stalled without a stall diagnosis".to_string());
        }
    }
    violations
}

// ---------------------------------------------------------------- corpus

const CORPUS_DIR: &str = "tests/dst_corpus";

fn corpus_write(workload: &str, seed: u64, plan: &str, violations: &[String]) -> String {
    let _ = std::fs::create_dir_all(CORPUS_DIR);
    let path = format!("{CORPUS_DIR}/{workload}-s{seed}-{plan}.case");
    let mut body = String::new();
    body.push_str("# dst failing case — replay with:\n");
    body.push_str(&format!(
        "#   cargo run --release -p bench --bin dst -- --replay {path}\n"
    ));
    body.push_str(&format!("workload = {workload}\nseed = {seed}\nplan = {plan}\n"));
    for v in violations {
        body.push_str(&format!("# violation: {v}\n"));
    }
    let _ = std::fs::write(&path, body);
    path
}

fn replay(path: &str) -> i32 {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read corpus case {path}: {e}");
            return 2;
        }
    };
    let mut fields: HashMap<String, String> = HashMap::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            fields.insert(k.trim().to_string(), v.trim().to_string());
        }
    }
    let Some(workload) = fields.get("workload") else {
        eprintln!("error: {path}: missing `workload = ...` line");
        return 2;
    };
    if !WORKLOADS.contains(&workload.as_str()) {
        eprintln!("error: {path}: unknown workload {workload:?} (expected one of {WORKLOADS:?})");
        return 2;
    }
    let seed: u64 = match fields.get("seed").map(|s| s.parse()) {
        Some(Ok(s)) => s,
        Some(Err(e)) => {
            eprintln!("error: {path}: bad seed: {e}");
            return 2;
        }
        None => {
            eprintln!("error: {path}: missing `seed = ...` line");
            return 2;
        }
    };
    let Some(plan) = fields.get("plan") else {
        eprintln!("error: {path}: missing `plan = ...` line");
        return 2;
    };
    if !ALL_PLANS.contains(&plan.as_str()) {
        eprintln!("error: {path}: unknown plan {plan:?} (expected one of {ALL_PLANS:?})");
        return 2;
    }

    println!("replaying {workload} seed={seed} plan={plan}");
    let w = Worlds::build();
    let baseline = run_one(&w, workload, &DstOptions::default());
    let opts = DstOptions {
        schedule_seed: Some(schedule_seed(seed)),
        faults: plan_for(plan, seed),
    };
    let out = run_one(&w, workload, &opts);
    println!(
        "  completed={} dropped={} stalls=[{}]",
        out.completed, out.dropped, out.stalls
    );
    let violations = check_run(plan, &baseline.digest, &out);
    if violations.is_empty() {
        println!("  no violations — case no longer reproduces");
        0
    } else {
        for v in &violations {
            println!("  VIOLATION: {v}");
        }
        1
    }
}

// ---------------------------------------------------------------- demo

/// Deliberately lose a reply and show the deadlock detector naming the
/// stuck request. Returns a violation description if the detector failed.
fn demo_lost_reply(w: &Worlds) -> Option<String> {
    // Count the baseline's messages; the last one is a reply (requests
    // precede the replies that finish the phase), so dropping message #m
    // downward finds a lost-reply stall within a try or two.
    let baseline = {
        let world = w.synth.clone();
        let (report, _) = run_phase_dst(
            world.nodes,
            NetConfig::default(),
            DpaConfig::dpa(4),
            &DstOptions::default(),
            |i| SynthApp::new(world.clone(), i, 500),
            |_, _| {},
        );
        report
    };
    let total = baseline.stats.total_msgs();
    println!("\nlost-reply demo: baseline sends {total} messages");
    for n in (1..=total).rev() {
        let world = w.synth.clone();
        let opts = DstOptions {
            schedule_seed: None,
            faults: FaultPlan::drop_nth(n),
        };
        let (report, snaps) = run_phase_dst(
            world.nodes,
            NetConfig::default(),
            DpaConfig::dpa(4),
            &opts,
            |i| SynthApp::new(world.clone(), i, 500),
            |_, _| {},
        );
        if report.completed {
            continue;
        }
        println!("  dropping message #{n}/{total} stalls the phase; diagnosis:");
        for s in &report.stalls {
            println!("    {s}");
        }
        let named = report
            .stalls
            .iter()
            .any(|s| s.detail.as_deref().is_some_and(|d| d.contains("stuck on [GPtr(")));
        if !named {
            return Some(
                "lost-reply stall did not name the stuck pending request".to_string(),
            );
        }
        let conserved = check_conservation(&snaps);
        if !conserved.is_empty() {
            return Some(format!("conservation broken in stalled run: {}", conserved[0]));
        }
        return None;
    }
    Some("no single-message drop stalled the synth phase".to_string())
}

// ---------------------------------------------------------------- sweep

struct PlanRow {
    workload: String,
    plan: String,
    runs: u64,
    completed: u64,
    stalled: u64,
    violations: u64,
}

const USAGE: &str = "usage: dst [--smoke | --quick | --replay <case-file>]
  (default)        sweep 32 seeds x {none, drop, dup, delay} over every workload
  --quick          8 seeds x all 4 fault plans
  --smoke          8 seeds x {none, drop} (CI-sized)
  --replay <path>  re-run one recorded corpus case; exit 1 if it reproduces";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = argv.iter().position(|a| a == "--replay") {
        let Some(path) = argv.get(pos + 1) else {
            eprintln!("error: --replay needs a corpus case path\n{USAGE}");
            std::process::exit(2);
        };
        std::process::exit(replay(path));
    }
    if let Some(bad) = argv.iter().find(|a| !matches!(a.as_str(), "--smoke" | "--quick")) {
        eprintln!("error: unknown argument {bad:?}\n{USAGE}");
        std::process::exit(2);
    }

    let smoke = has_flag("--smoke");
    let quick = has_flag("--quick") || smoke;
    let seeds: u64 = if quick { 8 } else { 32 };
    let plans = if smoke { SMOKE_PLANS } else { ALL_PLANS };

    let w = Worlds::build();
    let mut rows: Vec<PlanRow> = Vec::new();
    let mut failures: Vec<(String, u64, String, Vec<String>)> = Vec::new();

    for &workload in WORKLOADS {
        let baseline = run_one(&w, workload, &DstOptions::default());
        assert!(
            baseline.completed,
            "{workload}: baseline run failed to complete: {}",
            baseline.stalls
        );
        let base_violations = check_completed(&baseline.snaps, false);
        assert!(
            base_violations.is_empty(),
            "{workload}: baseline violates invariants: {}",
            base_violations[0]
        );

        for &plan_name in plans {
            let mut row = PlanRow {
                workload: workload.to_string(),
                plan: plan_name.to_string(),
                runs: 0,
                completed: 0,
                stalled: 0,
                violations: 0,
            };
            for seed in 0..seeds {
                let opts = DstOptions {
                    schedule_seed: Some(schedule_seed(seed)),
                    faults: plan_for(plan_name, seed),
                };
                let out = run_one(&w, workload, &opts);
                row.runs += 1;
                if out.completed {
                    row.completed += 1;
                } else {
                    row.stalled += 1;
                }
                let violations = check_run(plan_name, &baseline.digest, &out);
                if !violations.is_empty() {
                    row.violations += violations.len() as u64;
                    let path = corpus_write(workload, seed, plan_name, &violations);
                    eprintln!("  [corpus case written: {path}]");
                    failures.push((workload.to_string(), seed, plan_name.to_string(), violations));
                }
            }
            println!(
                "{:14} {:6} runs {:3}  completed {:3}  stalled {:3}  violations {}",
                row.workload, row.plan, row.runs, row.completed, row.stalled, row.violations
            );
            rows.push(row);
        }
    }

    let demo_failure = demo_lost_reply(&w);

    // JSON report.
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let body: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "  {{\"workload\": {}, \"plan\": {}, \"seeds\": {}, \"runs\": {}, \
                     \"completed\": {}, \"stalled\": {}, \"violations\": {}}}",
                    json::string(&r.workload),
                    json::string(&r.plan),
                    seeds,
                    r.runs,
                    r.completed,
                    r.stalled,
                    r.violations
                )
            })
            .collect();
        let path = dir.join("dst_report.json");
        let _ = std::fs::write(&path, format!("[\n{}\n]\n", body.join(",\n")));
        eprintln!("[wrote {}]", path.display());
    }

    let total_runs: u64 = rows.iter().map(|r| r.runs).sum();
    let total_violations: u64 = rows.iter().map(|r| r.violations).sum();
    println!(
        "\nswept {} workloads x {} plans x {seeds} seeds = {total_runs} runs; {total_violations} violations",
        WORKLOADS.len(),
        plans.len()
    );

    let mut exit = 0;
    for (workload, seed, plan, violations) in &failures {
        eprintln!("FAIL {workload} seed={seed} plan={plan}:");
        for v in violations {
            eprintln!("  {v}");
        }
        exit = 1;
    }
    if let Some(d) = demo_failure {
        eprintln!("FAIL lost-reply demo: {d}");
        exit = 1;
    } else {
        println!("lost-reply demo: stall detected and diagnosed (no hang)");
    }
    std::process::exit(exit);
}
