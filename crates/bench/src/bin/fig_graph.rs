//! Hot-hub crossover figure: skew exponent x migration threshold x
//! reply-aggregation window x alignment mode over the pointer-chasing
//! graph workload.
//!
//! The graph family (`apps::graph_dist`) is skew-adversarial by
//! construction: edge targets follow a power law, so one vertex becomes a
//! hub that every node's closure traversal hits. This figure sweeps the
//! skew exponent and, at each skew, races the two communication knobs the
//! paper treats as unconditional wins:
//!
//! * **migration threshold** — eager locality-driven migration
//!   (`threshold = 1`, short epochs) against a conservative threshold and
//!   against no migration at all. A hub has *no* dominant consumer: every
//!   node is a heavy requester, so an eager owner ships the hub to whoever
//!   asked last and the object ping-pongs, paying shipment and forwarding
//!   overhead for locality that never materializes.
//! * **reply-aggregation window** — a wide window with a lazy flush
//!   deadline against a modest window and against no aggregation. Wide
//!   windows help exactly when fan-out is high and steady; on the skewed
//!   tail the window never fills and every reply waits out the deadline.
//!
//! Both knobs must be shown *losing* somewhere on the hot-hub axis
//! (simulated time, same bit-identical checksums) — the crossover. The
//! `repl` lane is the answer to the loss: **read-mostly replication**
//! promotes the hub at the first phase boundary, broadcasts it to the
//! consumer set, and every later phase reads it locally. Its gate runs
//! the other way: at skew >= 1.5 the hub's request+reply traffic must be
//! *down at least 5x* against the best non-differential lane (full
//! sweep; strictly down in the reduced sweeps), and at every skew the
//! replicating lane must not cost simulated time against plain DPA and
//! must hold its message count within 10% of it (the allowance for the
//! final per-phase affinity reports) — the win can't be bought by
//! regressing the uniform regime. The `diff`
//! lane (differential, no replication) is recorded for the before/after
//! table (EXPERIMENTS.md X12) but sits outside the gate's baseline: it
//! already avoids re-fetching a hub whose generation didn't move, which
//! is exactly the coattail the gate must not ride.
//!
//! Usage:
//!   cargo run --release -p bench --bin fig_graph            # full sweep
//!   cargo run --release -p bench --bin fig_graph -- --quick # 3 skews
//!   cargo run --release -p bench --bin fig_graph -- --smoke # 2 skews (CI)
//!
//! Exits nonzero if checksums diverge across configs, no adversarial
//! regime (migration or aggregation losing at skew >= 1.5) is observed,
//! or the replication gate fails.

use apps::graph_dist::{GraphApp, GraphParams, GraphWorld};
use bench::{dump_json, has_flag, ExpPoint};
use dpa_core::invariant::check_completed;
use dpa_core::{run_phase_differential, run_phase_migrating, DpaConfig, DstOptions};
use sim_net::NetConfig;
use std::sync::Arc;

const NODES: u16 = 8;
const STRIP: usize = 8;
/// The hot-hub regime: a crossover only counts if it happens here.
const HOT_SKEW: f64 = 1.5;
/// Replication's win bar on hub request+reply traffic (full sweep).
const REPL_WIN_FACTOR: u64 = 5;

/// One (skew, config) cell: total simulated time over all phases, total
/// messages, hub-pointer request+reply messages, replica broadcast
/// messages, and the per-(phase, node) closure checksums.
struct Cell {
    ns: u64,
    msgs: u64,
    hub_msgs: u64,
    repl_msgs: u64,
    sums: Vec<(u64, u64)>,
}

fn run_cell(
    world: &Arc<GraphWorld>,
    phases: usize,
    cfg: DpaConfig,
    differential: bool,
    label: &str,
) -> Cell {
    let mut sums = vec![(0u64, 0u64); phases * NODES as usize];
    let mk = |ph: usize, i: u16| GraphApp::new(world.clone(), i, ph as u32);
    let collect = |ph: usize, i: u16, app: &GraphApp| {
        sums[ph * NODES as usize + i as usize] = (app.sum, app.reached);
    };
    let (reports, snap_sets, _) = if differential {
        run_phase_differential(
            NODES,
            NetConfig::default(),
            cfg,
            &DstOptions::default(),
            phases,
            mk,
            collect,
        )
    } else {
        run_phase_migrating(
            NODES,
            NetConfig::default(),
            cfg,
            &DstOptions::default(),
            phases,
            mk,
            collect,
        )
    };
    let hub = world.vptr(0).bits();
    let mut ns = 0u64;
    let mut msgs = 0u64;
    let mut hub_entries = 0u64;
    let mut repl_msgs = 0u64;
    for (ph, (r, snaps)) in reports.iter().zip(&snap_sets).enumerate() {
        assert!(
            r.completed,
            "{label} phase {ph} stalled: {}",
            r.stall_summary()
        );
        let violations = check_completed(snaps, false);
        assert!(
            violations.is_empty(),
            "{label} phase {ph} violates invariants: {}",
            violations[0]
        );
        ns += r.makespan().as_ns();
        msgs += r.stats.total_msgs();
        for s in snaps {
            // Owner-side demand traffic for the hub pointer: each pushed
            // reply entry answered one request, so request+reply = 2x.
            // Migration moves the accounting with the owner; summing over
            // every node covers re-homed phases.
            hub_entries += s
                .reply_hot
                .iter()
                .filter(|&&(p, _, _)| p == hub)
                .map(|&(_, pushed, _)| pushed)
                .sum::<u64>();
            repl_msgs += s.repl_entries_sent;
        }
    }
    Cell {
        ns,
        msgs,
        hub_msgs: 2 * hub_entries,
        repl_msgs,
        sums,
    }
}

/// The config lanes of one skew column. The first lane is the reference
/// everything else is compared against (plain DPA, default window); the
/// first five are the from-scratch lanes the replication gate uses as
/// its baseline.
fn lanes() -> Vec<(&'static str, DpaConfig, bool)> {
    vec![
        ("dpa-w32", DpaConfig::dpa(STRIP), false),
        (
            "agg-w1",
            DpaConfig {
                reply_agg_window: 1,
                ..DpaConfig::dpa(STRIP)
            },
            false,
        ),
        (
            "agg-w256",
            DpaConfig {
                reply_agg_window: 256,
                reply_flush_deadline_ns: 200_000,
                ..DpaConfig::dpa(STRIP)
            },
            false,
        ),
        (
            "mig-t1",
            DpaConfig {
                migration_threshold: 1,
                migration_epoch_ns: 10_000,
                ..DpaConfig::dpa_migrating(STRIP)
            },
            false,
        ),
        (
            "mig-t8",
            DpaConfig {
                migration_threshold: 8,
                ..DpaConfig::dpa_migrating(STRIP)
            },
            false,
        ),
        ("diff", DpaConfig::dpa_differential(STRIP), true),
        ("repl", DpaConfig::dpa_replicating(STRIP), true),
    ]
}

/// The lanes replication must beat: every non-differential lane (the
/// PR-9 state of the art on this figure).
const SCRATCH_LANES: &[&str] = &["dpa-w32", "agg-w1", "agg-w256", "mig-t1", "mig-t8"];

fn main() {
    let (n, phases, root_stride, skews): (usize, usize, usize, &[f64]) = if has_flag("--smoke") {
        (96, 2, 4, &[0.4, 2.0])
    } else if has_flag("--quick") {
        (160, 3, 3, &[0.4, 1.6, 2.4])
    } else {
        (256, 6, 2, &[0.0, 0.8, 1.6, 2.4])
    };
    let full = !has_flag("--smoke") && !has_flag("--quick");

    println!(
        "fig_graph: transitive closure, n={n}, {NODES} nodes, {phases} phases, \
         skew x {{migration threshold, reply-agg window, alignment mode}}"
    );
    println!(
        "{:>6} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}   verdicts",
        "skew", "dpa-w32 ms", "agg-w1 ms", "agg-w256 ms", "mig-t1 ms", "mig-t8 ms", "diff ms",
        "repl ms"
    );

    let mut points: Vec<ExpPoint> = Vec::new();
    let mut adversarial: Vec<String> = Vec::new();
    let mut repl_wins: Vec<String> = Vec::new();
    let mut repl_fails: Vec<String> = Vec::new();
    for &skew in skews {
        let world = GraphWorld::build(GraphParams {
            n,
            nodes: NODES,
            skew,
            phases: phases as u32,
            root_stride,
            ..GraphParams::default()
        });
        let mut cells: Vec<(&str, Cell)> = Vec::new();
        for (label, cfg, differential) in lanes() {
            let cell = run_cell(&world, phases, cfg, differential, label);
            cells.push((label, cell));
        }
        // Correctness bar: every knob setting computes the same closure.
        for (label, cell) in &cells[1..] {
            assert_eq!(
                cell.sums, cells[0].1.sums,
                "skew {skew}: {label} checksums diverged from {}",
                cells[0].0
            );
        }
        let cell_of = |want: &str| &cells.iter().find(|(l, _)| *l == want).unwrap().1;
        let ns_of = |want: &str| cell_of(want).ns;
        // A knob "loses" when turning it on costs simulated time against
        // its own off/modest setting on the same world.
        let mut losers: Vec<String> = Vec::new();
        if ns_of("mig-t1") > ns_of("dpa-w32") {
            losers.push("mig-t1".into());
        }
        if ns_of("mig-t8") > ns_of("dpa-w32") {
            losers.push("mig-t8".into());
        }
        if ns_of("agg-w256") > ns_of("agg-w1") {
            losers.push("agg-w256".into());
        }
        // Replication's gates. Hub traffic: best (lowest) from-scratch
        // lane vs the repl lane, full sweep demands a >= 5x cut at hot
        // skews, the reduced sweeps a strict one. Uniform regime: the
        // repl lane must not send more total messages than plain DPA at
        // *any* skew — deltas and broadcasts have to pay for themselves.
        let repl = cell_of("repl");
        let best_scratch_hub = SCRATCH_LANES
            .iter()
            .map(|l| cell_of(l).hub_msgs)
            .min()
            .expect("scratch lanes exist");
        let mut verdicts: Vec<String> = losers.clone();
        if skew >= HOT_SKEW {
            let win = if full {
                repl.hub_msgs * REPL_WIN_FACTOR <= best_scratch_hub
            } else {
                repl.hub_msgs < best_scratch_hub
            };
            let note = format!(
                "skew {skew:.1}: hub req+reply {} -> {} ({} bcast entries)",
                best_scratch_hub, repl.hub_msgs, repl.repl_msgs
            );
            if win {
                repl_wins.push(note);
                verdicts.push("repl-wins".into());
            } else {
                repl_fails.push(note);
            }
        }
        // Uniform no-regression, both axes: the repl lane must not cost
        // simulated time against plain DPA at any skew, and its message
        // count stays within 10% of plain DPA — the slack covers the one
        // final affinity report per node per phase that feeds the
        // promotion policy, and nothing else.
        let dpa = cell_of("dpa-w32");
        if repl.ns > dpa.ns {
            repl_fails.push(format!(
                "skew {skew:.1}: repl took {:.3} ms vs dpa-w32 {:.3} — uniform time regression",
                repl.ns as f64 / 1e6,
                dpa.ns as f64 / 1e6
            ));
        }
        if repl.msgs * 10 > dpa.msgs * 11 {
            repl_fails.push(format!(
                "skew {skew:.1}: repl sent {} total msgs vs dpa-w32 {} — over the 10% \
                 affinity-report allowance",
                repl.msgs, dpa.msgs
            ));
        }
        println!(
            "{skew:>6.1} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>11.3} {:>11.3}   {}",
            ns_of("dpa-w32") as f64 / 1e6,
            ns_of("agg-w1") as f64 / 1e6,
            ns_of("agg-w256") as f64 / 1e6,
            ns_of("mig-t1") as f64 / 1e6,
            ns_of("mig-t8") as f64 / 1e6,
            ns_of("diff") as f64 / 1e6,
            ns_of("repl") as f64 / 1e6,
            if verdicts.is_empty() {
                "-".to_string()
            } else {
                verdicts.join(",")
            }
        );
        if skew >= HOT_SKEW {
            for l in &losers {
                adversarial.push(format!("skew {skew:.1}: {l}"));
            }
        }
        for (label, cell) in &cells {
            let lost = losers.iter().any(|l| l == label);
            points.push(ExpPoint {
                experiment: "fig_graph".into(),
                app: "graph".into(),
                config: format!("skew{skew:.1}-{label}"),
                nodes: NODES,
                seconds: cell.ns as f64 / 1e9,
                breakdown: (0.0, 0.0, 0.0),
                msgs: cell.msgs,
                bytes: 0,
                extra: vec![
                    ("skew".into(), skew),
                    ("loses".into(), if lost { 1.0 } else { 0.0 }),
                    ("hub_msgs".into(), cell.hub_msgs as f64),
                    ("repl_bcast_entries".into(), cell.repl_msgs as f64),
                ],
            });
        }
    }
    dump_json("fig_graph", &points);

    let mut failed = false;
    if adversarial.is_empty() {
        eprintln!(
            "FAIL: no adversarial regime recorded — neither eager migration nor wide \
             reply aggregation lost at skew >= {HOT_SKEW}; the crossover figure has no crossover"
        );
        failed = true;
    }
    if repl_wins.is_empty() {
        eprintln!(
            "FAIL: replication never won on the hot-hub axis — no skew >= {HOT_SKEW} \
             cut hub request+reply traffic against the best from-scratch lane"
        );
        failed = true;
    }
    for f in &repl_fails {
        eprintln!("FAIL: {f}");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "PASS: adversarial regimes on the hot-hub axis: {}",
        adversarial.join("; ")
    );
    println!("PASS: replication wins: {}", repl_wins.join("; "));
}
