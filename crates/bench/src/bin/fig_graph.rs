//! Hot-hub crossover figure: skew exponent x migration threshold x
//! reply-aggregation window over the pointer-chasing graph workload.
//!
//! The graph family (`apps::graph_dist`) is skew-adversarial by
//! construction: edge targets follow a power law, so one vertex becomes a
//! hub that every node's closure traversal hits. This figure sweeps the
//! skew exponent and, at each skew, races the two communication knobs the
//! paper treats as unconditional wins:
//!
//! * **migration threshold** — eager locality-driven migration
//!   (`threshold = 1`, short epochs) against a conservative threshold and
//!   against no migration at all. A hub has *no* dominant consumer: every
//!   node is a heavy requester, so an eager owner ships the hub to whoever
//!   asked last and the object ping-pongs, paying shipment and forwarding
//!   overhead for locality that never materializes.
//! * **reply-aggregation window** — a wide window with a lazy flush
//!   deadline against a modest window and against no aggregation. Wide
//!   windows help exactly when fan-out is high and steady; on the skewed
//!   tail the window never fills and every reply waits out the deadline.
//!
//! The point of the figure is the *crossover*: both knobs must be shown
//! losing somewhere on the hot-hub axis (simulated time, same bit-identical
//! checksums), not just winning on their home turf. The final gate asserts
//! an adversarial regime was actually recorded — if tuning ever makes every
//! knob win everywhere, this binary fails and the figure is honest again.
//!
//! Usage:
//!   cargo run --release -p bench --bin fig_graph            # full sweep
//!   cargo run --release -p bench --bin fig_graph -- --quick # 3 skews
//!   cargo run --release -p bench --bin fig_graph -- --smoke # 2 skews (CI)
//!
//! Exits nonzero if checksums diverge across configs or no adversarial
//! regime (migration or aggregation losing at skew >= 1.5) is observed.

use apps::graph_dist::{GraphApp, GraphParams, GraphWorld};
use bench::{dump_json, has_flag, ExpPoint};
use dpa_core::invariant::check_completed;
use dpa_core::{run_phase_migrating, DpaConfig, DstOptions};
use sim_net::NetConfig;
use std::sync::Arc;

const NODES: u16 = 8;
const STRIP: usize = 8;
/// The hot-hub regime: a crossover only counts if it happens here.
const HOT_SKEW: f64 = 1.5;

/// One (skew, config) cell: total simulated time over all phases, total
/// messages, and the per-(phase, node) closure checksums.
struct Cell {
    ns: u64,
    msgs: u64,
    sums: Vec<(u64, u64)>,
}

fn run_cell(world: &Arc<GraphWorld>, phases: usize, cfg: DpaConfig, label: &str) -> Cell {
    let mut sums = vec![(0u64, 0u64); phases * NODES as usize];
    let mk = |ph: usize, i: u16| GraphApp::new(world.clone(), i, ph as u32);
    let collect = |ph: usize, i: u16, app: &GraphApp| {
        sums[ph * NODES as usize + i as usize] = (app.sum, app.reached);
    };
    let (reports, snap_sets, _) = run_phase_migrating(
        NODES,
        NetConfig::default(),
        cfg,
        &DstOptions::default(),
        phases,
        mk,
        collect,
    );
    let mut ns = 0u64;
    let mut msgs = 0u64;
    for (ph, (r, snaps)) in reports.iter().zip(&snap_sets).enumerate() {
        assert!(
            r.completed,
            "{label} phase {ph} stalled: {}",
            r.stall_summary()
        );
        let violations = check_completed(snaps, false);
        assert!(
            violations.is_empty(),
            "{label} phase {ph} violates invariants: {}",
            violations[0]
        );
        ns += r.makespan().as_ns();
        msgs += r.stats.total_msgs();
    }
    Cell { ns, msgs, sums }
}

/// The config lanes of one skew column. The first lane is the reference
/// everything else is compared against (plain DPA, default window).
fn lanes() -> Vec<(&'static str, DpaConfig)> {
    vec![
        ("dpa-w32", DpaConfig::dpa(STRIP)),
        (
            "agg-w1",
            DpaConfig {
                reply_agg_window: 1,
                ..DpaConfig::dpa(STRIP)
            },
        ),
        (
            "agg-w256",
            DpaConfig {
                reply_agg_window: 256,
                reply_flush_deadline_ns: 200_000,
                ..DpaConfig::dpa(STRIP)
            },
        ),
        (
            "mig-t1",
            DpaConfig {
                migration_threshold: 1,
                migration_epoch_ns: 10_000,
                ..DpaConfig::dpa_migrating(STRIP)
            },
        ),
        (
            "mig-t8",
            DpaConfig {
                migration_threshold: 8,
                ..DpaConfig::dpa_migrating(STRIP)
            },
        ),
    ]
}

fn main() {
    let (n, phases, root_stride, skews): (usize, usize, usize, &[f64]) = if has_flag("--smoke") {
        (96, 2, 4, &[0.4, 2.0])
    } else if has_flag("--quick") {
        (160, 3, 3, &[0.4, 1.6, 2.4])
    } else {
        (256, 4, 2, &[0.0, 0.8, 1.6, 2.4])
    };

    println!(
        "fig_graph: transitive closure, n={n}, {NODES} nodes, {phases} phases, \
         skew x {{migration threshold, reply-agg window}}"
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12}   losers",
        "skew", "dpa-w32 ms", "agg-w1 ms", "agg-w256 ms", "mig-t1 ms", "mig-t8 ms"
    );

    let mut points: Vec<ExpPoint> = Vec::new();
    let mut adversarial: Vec<String> = Vec::new();
    for &skew in skews {
        let world = GraphWorld::build(GraphParams {
            n,
            nodes: NODES,
            skew,
            phases: phases as u32,
            root_stride,
            ..GraphParams::default()
        });
        let mut cells: Vec<(&str, Cell)> = Vec::new();
        for (label, cfg) in lanes() {
            let cell = run_cell(&world, phases, cfg, label);
            cells.push((label, cell));
        }
        // Correctness bar: every knob setting computes the same closure.
        for (label, cell) in &cells[1..] {
            assert_eq!(
                cell.sums, cells[0].1.sums,
                "skew {skew}: {label} checksums diverged from {}",
                cells[0].0
            );
        }
        let ns_of = |want: &str| cells.iter().find(|(l, _)| *l == want).unwrap().1.ns;
        // A knob "loses" when turning it on costs simulated time against
        // its own off/modest setting on the same world.
        let mut losers: Vec<String> = Vec::new();
        if ns_of("mig-t1") > ns_of("dpa-w32") {
            losers.push("mig-t1".into());
        }
        if ns_of("mig-t8") > ns_of("dpa-w32") {
            losers.push("mig-t8".into());
        }
        if ns_of("agg-w256") > ns_of("agg-w1") {
            losers.push("agg-w256".into());
        }
        println!(
            "{skew:>6.1} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3}   {}",
            ns_of("dpa-w32") as f64 / 1e6,
            ns_of("agg-w1") as f64 / 1e6,
            ns_of("agg-w256") as f64 / 1e6,
            ns_of("mig-t1") as f64 / 1e6,
            ns_of("mig-t8") as f64 / 1e6,
            if losers.is_empty() {
                "-".to_string()
            } else {
                losers.join(",")
            }
        );
        if skew >= HOT_SKEW {
            for l in &losers {
                adversarial.push(format!("skew {skew:.1}: {l}"));
            }
        }
        for (label, cell) in &cells {
            let lost = losers.iter().any(|l| l == label);
            points.push(ExpPoint {
                experiment: "fig_graph".into(),
                app: "graph".into(),
                config: format!("skew{skew:.1}-{label}"),
                nodes: NODES,
                seconds: cell.ns as f64 / 1e9,
                breakdown: (0.0, 0.0, 0.0),
                msgs: cell.msgs,
                bytes: 0,
                extra: vec![
                    ("skew".into(), skew),
                    ("loses".into(), if lost { 1.0 } else { 0.0 }),
                ],
            });
        }
    }
    dump_json("fig_graph", &points);

    if adversarial.is_empty() {
        eprintln!(
            "FAIL: no adversarial regime recorded — neither eager migration nor wide \
             reply aggregation lost at skew >= {HOT_SKEW}; the crossover figure has no crossover"
        );
        std::process::exit(1);
    }
    println!(
        "PASS: adversarial regimes on the hot-hub axis: {}",
        adversarial.join("; ")
    );
}
