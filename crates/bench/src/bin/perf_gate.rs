//! **perf_gate** — deterministic hot-path cost gates for CI.
//!
//! The registry being unreachable in this build, this is a self-contained
//! stand-in for an `iai_callgrind`-style instruction-count harness: the
//! gated metric is **allocator traffic** (calls into the global allocator
//! and bytes requested), counted by a wrapping `#[global_allocator]`.
//! Unlike wall clock, allocator traffic is bit-deterministic for these
//! fixed workloads — every bench is run twice and the two counts asserted
//! identical — so a >3% change is a real code-path change, not noise.
//! Wall time is reported alongside for context but never gated.
//!
//! Benches cover the hot paths this crate's event engine lives on:
//!
//! * `event_dispatch_wheel` / `event_dispatch_heap` — push/pop a
//!   near-monotone event stream (with far-future spikes) through the
//!   timing wheel and through the shadow binary heap;
//! * `pointer_map_align_release` — M-mapping align bursts drained with
//!   `release_into` (the steady-state should recycle every buffer);
//! * `pending_insert_drain` — D-table insert/complete/iterate cycles;
//! * `synth_dpa_end_to_end` — a full DST synth run on the wheel, gating
//!   the whole simulator + runtime allocation budget per run.
//!
//! Usage:
//!
//! ```sh
//! cargo run --release -p bench --bin perf_gate            # run + check
//! cargo run --release -p bench --bin perf_gate -- --bless # rewrite baseline
//! ```
//!
//! The default mode compares against `results/PERF_GATE.json` and exits
//! nonzero when a gated metric regressed by more than [`GATE_RTOL`];
//! an improvement beyond the tolerance also fails, with a hint to
//! re-bless, so the committed baseline always reflects reality.

use bench::has_flag;
use dpa_core::synth::{SynthApp, SynthParams, SynthWorld};
use dpa_core::{run_phase_dst, DpaConfig, DstOptions, PendingRequests, PointerMap};
use global_heap::{GPtr, ObjClass};
use sim_net::{EventKey, NetConfig, QueueKind, Rng, TimingWheel, WheelItem};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// Relative tolerance on the gated metrics (3%).
const GATE_RTOL: f64 = 0.03;
/// Committed baseline, relative to the repository root.
const BASELINE: &str = "results/PERF_GATE.json";

// ------------------------------------------------------ counting allocator

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// Counts every call into the system allocator. Calls, not live bytes:
/// the gate is on how often the hot paths touch the allocator at all.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(layout.size() as u64, Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES.fetch_add(new_size as u64, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------- benches

#[derive(Clone, Debug, PartialEq)]
struct Sample {
    name: String,
    allocs: u64,
    alloc_bytes: u64,
    wall_ns: u64,
}

/// Run `f` under the counters. Runs twice and asserts the gated counts
/// are identical — the determinism that makes a 3% gate meaningful.
fn measure(name: &str, mut f: impl FnMut()) -> Sample {
    let mut gated: Option<(u64, u64)> = None;
    let mut wall_ns = 0u64;
    for round in 0..2 {
        let (a0, b0) = (ALLOCS.load(Relaxed), BYTES.load(Relaxed));
        let start = Instant::now();
        f();
        wall_ns = start.elapsed().as_nanos() as u64;
        let counts = (ALLOCS.load(Relaxed) - a0, BYTES.load(Relaxed) - b0);
        match gated {
            None => gated = Some(counts),
            Some(prev) => assert_eq!(
                prev, counts,
                "{name}: allocator traffic differed between rounds (round {round}) — \
                 the workload is not deterministic and cannot be gated"
            ),
        }
    }
    let (allocs, alloc_bytes) = gated.expect("two rounds ran");
    Sample {
        name: name.to_string(),
        allocs,
        alloc_bytes,
        wall_ns,
    }
}

/// Event payload sized like the simulator's: key plus a small body.
struct Ev {
    key: EventKey,
    _payload: [u64; 4],
}

impl WheelItem for Ev {
    fn key(&self) -> EventKey {
        self.key
    }
}

/// Shared synthetic stream driver over any queue `Q`.
fn drive_queue<Q>(
    q: &mut Q,
    ops: usize,
    push: impl Fn(&mut Q, EventKey),
    pop: impl Fn(&mut Q) -> bool,
) {
    let mut rng = Rng::new(0x9_A7E);
    let mut t = 0u64;
    let mut seq = 0u64;
    for _ in 0..ops {
        if rng.chance(0.45) {
            pop(q);
        } else {
            t += rng.below(4_000);
            let time = if rng.chance(0.02) {
                t + 10_000_000 + rng.below(50_000_000)
            } else {
                t
            };
            seq += 1;
            push(
                q,
                EventKey {
                    time,
                    tie: rng.below(1 << 32),
                    src: rng.below(16) as u16,
                    seq,
                },
            );
        }
    }
    while pop(q) {}
}

const QUEUE_OPS: usize = 200_000;

fn event_dispatch_wheel() -> Sample {
    measure("event_dispatch_wheel", || {
        let mut q: TimingWheel<Ev> = TimingWheel::new();
        drive_queue(
            &mut q,
            QUEUE_OPS,
            |q, key| q.push(Ev { key, _payload: [0; 4] }),
            |q| q.pop().is_some(),
        );
        assert!(q.is_empty());
    })
}

fn event_dispatch_heap() -> Sample {
    measure("event_dispatch_heap", || {
        let mut q: BinaryHeap<Reverse<EventKey>> = BinaryHeap::new();
        drive_queue(&mut q, QUEUE_OPS, |q, key| q.push(Reverse(key)), |q| {
            q.pop().is_some()
        });
        assert!(q.is_empty());
    })
}

fn pointer_map_align_release() -> Sample {
    measure("pointer_map_align_release", || {
        let mut m: PointerMap<u64> = PointerMap::new();
        let mut stack: Vec<u64> = Vec::new();
        let mut rng = Rng::new(0x000A_110C);
        let mut drained = 0u64;
        for op in 0..200_000u64 {
            let ptr = GPtr::new(rng.below(16) as u16, ObjClass(0), rng.below(96));
            if rng.chance(0.3) {
                m.release_into(ptr, &mut stack);
                drained += stack.len() as u64;
                stack.clear();
            } else {
                m.align(ptr, op);
                // The lookup the runtime performs per demand.
                std::hint::black_box(m.waiters(ptr));
            }
        }
        std::hint::black_box(drained);
    })
}

fn pending_insert_drain() -> Sample {
    measure("pending_insert_drain", || {
        let mut d = PendingRequests::new();
        let mut rng = Rng::new(0xD_7AB);
        let mut live_sum = 0u64;
        for _ in 0..200_000u64 {
            let ptr = GPtr::new(rng.below(16) as u16, ObjClass(0), rng.below(96));
            if rng.chance(0.45) {
                d.complete(ptr);
            } else {
                d.insert(ptr);
            }
        }
        live_sum += d.iter().count() as u64;
        std::hint::black_box(live_sum);
    })
}

fn synth_dpa_end_to_end() -> Sample {
    let world = SynthWorld::build(SynthParams {
        nodes: 4,
        lists_per_node: 16,
        list_len: 20,
        remote_fraction: 0.5,
        shared_fraction: 0.4,
        ..SynthParams::default()
    });
    measure("synth_dpa_end_to_end", || {
        let opts = DstOptions {
            threads: 1,
            queue: QueueKind::Wheel,
            ..DstOptions::default()
        };
        let mut sums = vec![0u64; 4];
        let (report, _) = run_phase_dst(
            4,
            NetConfig::default(),
            DpaConfig::dpa(8),
            &opts,
            |i| SynthApp::new(world.clone(), i, 500),
            |i, app: &SynthApp| sums[i as usize] = app.sum,
        );
        assert!(report.completed, "synth phase stalled");
        std::hint::black_box(sums);
    })
}

// ---------------------------------------------------------------- baseline

fn render(samples: &[Sample]) -> String {
    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "  {{\"bench\": \"{}\", \"allocs\": {}, \"alloc_bytes\": {}, \"wall_ns\": {}}}",
                s.name, s.allocs, s.alloc_bytes, s.wall_ns
            )
        })
        .collect();
    format!("[\n{}\n]\n", rows.join(",\n"))
}

/// Pull `"key": <digits>` out of one baseline row.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let at = line.find(&tag)? + tag.len();
    let digits: String = line[at..].chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn load_baseline(path: &str) -> Option<Vec<Sample>> {
    let body = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    for line in body.lines() {
        let Some(at) = line.find("\"bench\": \"") else { continue };
        let rest = &line[at + "\"bench\": \"".len()..];
        let name = rest[..rest.find('"')?].to_string();
        out.push(Sample {
            name,
            allocs: field_u64(line, "allocs")?,
            alloc_bytes: field_u64(line, "alloc_bytes")?,
            wall_ns: field_u64(line, "wall_ns")?,
        });
    }
    (!out.is_empty()).then_some(out)
}

/// Compare one gated metric; returns a violation line when out of band.
fn gate(name: &str, metric: &str, base: u64, got: u64) -> Option<String> {
    let b = base as f64;
    let g = got as f64;
    let rel = (g - b) / b.max(1.0);
    if rel > GATE_RTOL {
        Some(format!(
            "{name}.{metric} regressed {:+.1}%: {base} -> {got} (gate ±{:.0}%)",
            100.0 * rel,
            100.0 * GATE_RTOL
        ))
    } else if rel < -GATE_RTOL {
        Some(format!(
            "{name}.{metric} improved {:+.1}%: {base} -> {got} — re-run with --bless \
             to lock in the new baseline",
            100.0 * rel
        ))
    } else {
        None
    }
}

fn main() {
    let bless = has_flag("--bless");
    let samples = vec![
        event_dispatch_wheel(),
        event_dispatch_heap(),
        pointer_map_align_release(),
        pending_insert_drain(),
        synth_dpa_end_to_end(),
    ];
    println!("== perf_gate: allocator-traffic gates (±{:.0}%) ==", 100.0 * GATE_RTOL);
    for s in &samples {
        println!(
            "  {:<28} allocs {:>9}  bytes {:>12}  wall {:>8.3} ms",
            s.name,
            s.allocs,
            s.alloc_bytes,
            s.wall_ns as f64 / 1e6
        );
    }
    if bless {
        std::fs::create_dir_all("results").expect("create results/");
        std::fs::write(BASELINE, render(&samples)).expect("write baseline");
        println!("[blessed {BASELINE}]");
        return;
    }
    let Some(baseline) = load_baseline(BASELINE) else {
        eprintln!("error: no baseline at {BASELINE}; run with --bless to create it");
        std::process::exit(2);
    };
    let mut violations = Vec::new();
    for s in &samples {
        match baseline.iter().find(|b| b.name == s.name) {
            None => violations.push(format!("{}: not in baseline — re-bless", s.name)),
            Some(b) => {
                violations.extend(gate(&s.name, "allocs", b.allocs, s.allocs));
                violations.extend(gate(&s.name, "alloc_bytes", b.alloc_bytes, s.alloc_bytes));
            }
        }
    }
    for b in &baseline {
        if !samples.iter().any(|s| s.name == b.name) {
            violations.push(format!("{}: in baseline but no longer measured", b.name));
        }
    }
    if violations.is_empty() {
        println!("all {} benches within ±{:.0}% of baseline", samples.len(), 100.0 * GATE_RTOL);
    } else {
        for v in &violations {
            eprintln!("GATE: {v}");
        }
        std::process::exit(1);
    }
}
