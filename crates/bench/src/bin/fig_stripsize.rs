//! **Strip-size figure** — sensitivity of DPA to the k-bounded strip size
//! of the top-level concurrent loop, on 16 nodes (the paper runs FMM with
//! strip size 300 on 16 nodes and Barnes-Hut with strip 50).
//!
//! Expected shape: tiny strips leave no concurrency to overlap or
//! aggregate (round trips exposed at every window stall); performance
//! improves steeply to a plateau; very large strips sag mildly as the
//! runtime's working set of suspended threads outgrows fast storage
//! (thread-state memory is the documented cost of DPA).
//!
//! Run with `--quick` for a reduced problem size.

use apps::driver::{merge_stats, run_bh, run_fmm};
use bench::*;
use dpa_core::DpaConfig;

fn main() {
    let quick = has_flag("--quick");
    let (bh_n, fmm_n, fmm_p) = if quick {
        (2_048, 4_096, 12)
    } else {
        (PAPER_BH_BODIES, PAPER_FMM_PARTICLES, PAPER_FMM_TERMS)
    };
    let p: u16 = 16;
    let strips: &[usize] = &[1, 4, 10, 50, 100, 300, 1000, 4000];
    let mut points = Vec::new();

    println!("== Strip-size figure (P = {p}) ==");

    println!("\n-- BARNES-HUT ({bh_n} bodies) --");
    let w = bh_world_sized(bh_n, p);
    for &s in strips {
        let r = run_bh(&w, DpaConfig::dpa(s), paper_net());
        let (l, o, i) = breakdown_pct(&r.stats);
        println!(
            "  strip {s:>5}: {:>8} s   local {l:5.1}% ovh {o:5.1}% idle {i:5.1}%  peak aligned threads {}",
            fmt_secs(r.makespan_ns).trim(),
            r.stats.user_max("peak_aligned_threads"),
        );
        points.push(
            ExpPoint::new("fig_stripsize", "bh", &format!("strip={s}"), p, r.makespan_ns, &r.stats)
                .with("strip", s as f64)
                .with(
                    "peak_aligned_threads",
                    r.stats.user_max("peak_aligned_threads") as f64,
                ),
        );
    }

    println!("\n-- FMM ({fmm_n} particles, {fmm_p} terms) --");
    let w = fmm_world_sized(fmm_n, fmm_p, p);
    for &s in strips {
        let r = run_fmm(&w, DpaConfig::dpa(s), paper_net());
        let merged = merge_stats(&r.m2l_stats, &r.eval_stats);
        let (l, o, i) = breakdown_pct(&merged);
        println!(
            "  strip {s:>5}: {:>8} s   local {l:5.1}% ovh {o:5.1}% idle {i:5.1}%  peak aligned threads {}",
            fmt_secs(r.makespan_ns).trim(),
            merged.user_max("peak_aligned_threads"),
        );
        points.push(
            ExpPoint::new("fig_stripsize", "fmm", &format!("strip={s}"), p, r.makespan_ns, &merged)
                .with("strip", s as f64)
                .with(
                    "peak_aligned_threads",
                    merged.user_max("peak_aligned_threads") as f64,
                ),
        );
    }

    dump_json("fig_stripsize", &points);
}
