//! **Scaling figure** — speedup curves for DPA, the caching baseline, and
//! the naive blocking baseline, plus the ownership-policy ablation.
//!
//! The paper's headline claims: Barnes-Hut speedup "over 42" on 64 nodes
//! (relative to 1-node DPA) and FMM 54-fold on 64 nodes. Blocking (no
//! reuse, no overlap) collapses — the motivating gap of the introduction.
//!
//! The ablation re-runs Barnes-Hut with *scattered* (hash-random) cell
//! placement: remote reads balloon (+~60%), the caching baseline pays for
//! it, and DPA barely moves — dynamic alignment makes performance robust
//! to data placement, which is the paper's thesis. (An idealized
//! CM-region placement ties exactly with the builder placement in miss
//! count: whenever a cell's owner is one of its visitors, total misses
//! are Σ(visitors−1) independent of which visitor owns it.)
//!
//! Run with `--quick` for a reduced problem size.

use apps::bh_dist::{BhCost, BhWorld, OwnerPolicy};
use apps::driver::{run_bh, run_fmm};
use bench::*;
use dpa_core::DpaConfig;
use nbody::bh::BhParams;
use nbody::distrib::plummer;

fn main() {
    let quick = has_flag("--quick");
    let (bh_n, fmm_n, fmm_p) = if quick {
        (2_048, 4_096, 12)
    } else {
        (PAPER_BH_BODIES, PAPER_FMM_PARTICLES, PAPER_FMM_TERMS)
    };
    let procs: &[u16] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let mut points = Vec::new();

    println!("== Scaling figure: speedup vs sequential ==");

    println!("\n-- BARNES-HUT ({bh_n} bodies) --");
    let bh_seq = {
        let w = bh_world_sized(bh_n, 1);
        run_bh(&w, DpaConfig::sequential(), paper_net()).makespan_ns
    };
    println!(
        "  {:<22}{}",
        "config \\ P",
        procs.iter().map(|p| format!("{p:>8}")).collect::<String>()
    );
    for (label, cfg) in [
        ("DPA (50)", DpaConfig::dpa(50)),
        ("Caching", DpaConfig::caching()),
        ("Blocking", DpaConfig::blocking()),
    ] {
        let mut row = format!("  {label:<22}");
        for &p in procs {
            let w = bh_world_sized(bh_n, p);
            let r = run_bh(&w, cfg.clone(), paper_net());
            let speedup = bh_seq as f64 / r.makespan_ns as f64;
            row.push_str(&format!("{speedup:8.1}"));
            points.push(
                ExpPoint::new("fig_scaling", "bh", label, p, r.makespan_ns, &r.stats)
                    .with("speedup", speedup),
            );
        }
        println!("{row}");
    }

    // Ownership-policy ablation at full DPA.
    for (label, cfg, policy) in [
        ("DPA/scatter cells", DpaConfig::dpa(50), OwnerPolicy::Scatter),
        ("Caching/scatter cells", DpaConfig::caching(), OwnerPolicy::Scatter),
    ] {
        let mut row = format!("  {label:<22}");
        for &p in procs {
            let w = BhWorld::build_with_policy(
                plummer(bh_n, SEED),
                p,
                BH_LEAF_CAP,
                BhParams::default(),
                BhCost::default(),
                policy,
            );
            let r = run_bh(&w, cfg.clone(), paper_net());
            let speedup = bh_seq as f64 / r.makespan_ns as f64;
            row.push_str(&format!("{speedup:8.1}"));
            points.push(
                ExpPoint::new("fig_scaling", "bh", label, p, r.makespan_ns, &r.stats)
                    .with("speedup", speedup),
            );
        }
        println!("{row}");
    }

    println!("\n-- FMM ({fmm_n} particles, {fmm_p} terms) --");
    let fmm_seq = {
        let w = fmm_world_sized(fmm_n, fmm_p, 1);
        run_fmm(&w, DpaConfig::sequential(), paper_net()).makespan_ns
    };
    println!(
        "  {:<22}{}",
        "config \\ P",
        procs.iter().map(|p| format!("{p:>8}")).collect::<String>()
    );
    for (label, cfg) in [
        ("DPA (50)", DpaConfig::dpa(50)),
        ("Caching", DpaConfig::caching()),
        ("Blocking", DpaConfig::blocking()),
    ] {
        let mut row = format!("  {label:<22}");
        for &p in procs {
            let w = fmm_world_sized(fmm_n, fmm_p, p);
            let r = run_fmm(&w, cfg.clone(), paper_net());
            let speedup = fmm_seq as f64 / r.makespan_ns as f64;
            row.push_str(&format!("{speedup:8.1}"));
            let merged = apps::driver::merge_stats(&r.m2l_stats, &r.eval_stats);
            points.push(
                ExpPoint::new("fig_scaling", "fmm", label, p, r.makespan_ns, &merged)
                    .with("speedup", speedup),
            );
        }
        println!("{row}");
    }

    println!(
        "\nPaper reference: BH >42x @64 (vs 1-node DPA), FMM 54x @64 (vs sequential)."
    );
    dump_json("fig_scaling", &points);
}
