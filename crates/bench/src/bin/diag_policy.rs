//! Diagnostic: effect of the cell-ownership policy on remote-read counts
//! and execution time, per variant.

use apps::bh_dist::{BhCost, BhWorld, OwnerPolicy};
use apps::driver::run_bh;
use dpa_core::DpaConfig;
use nbody::bh::BhParams;
use nbody::distrib::plummer;

fn main() {
    for policy in [OwnerPolicy::Builder, OwnerPolicy::CmRegion, OwnerPolicy::Scatter] {
        let w = BhWorld::build_with_policy(plummer(16384, 1997), 16, 1, BhParams::default(), BhCost::default(), policy);
        for cfg in [DpaConfig::dpa(50), DpaConfig::caching()] {
            let r = run_bh(&w, cfg.clone(), sim_net::NetConfig::default());
            println!("{policy:?} {}: {:.3}s misses={}", cfg.describe(), r.makespan_ns as f64/1e9,
                r.stats.user_total("requests_issued").max(r.stats.user_total("cache_misses")));
        }
    }
}
