//! **Cache-capacity ablation** (extension) — how the caching baseline
//! degrades when its cache no longer holds the phase's remote working
//! set, under FIFO vs LRU eviction, while DPA's renamed storage (sized by
//! the strip, not the data) is unaffected.
//!
//! The paper's comparison gives caching an unbounded per-phase cache (its
//! best case). Real software caches are bounded; capacity misses re-expose
//! round trips. This sweep quantifies that cliff on the Barnes-Hut force
//! phase.
//!
//! Run with `--quick` for a reduced problem size.

use apps::driver::run_bh;
use bench::*;
use dpa_core::DpaConfig;
use global_heap::EvictPolicy;

fn main() {
    let quick = has_flag("--quick");
    let bh_n = if quick { 4_096 } else { PAPER_BH_BODIES };
    let p: u16 = 16;
    let world = bh_world_sized(bh_n, p);
    let mut points = Vec::new();

    println!("== Cache-capacity ablation: BH {bh_n} bodies, P = {p} ==");
    let dpa = run_bh(&world, DpaConfig::dpa(50), paper_net());
    println!(
        "  DPA (50) reference: {} s  (renamed storage peak {} KB/node)",
        fmt_secs(dpa.makespan_ns).trim(),
        dpa.stats.user_max("renamed_peak_bytes") / 1024
    );

    println!(
        "  {:<24} {:>10} {:>12} {:>10} {:>10}",
        "caching config", "time", "misses", "evictions", "hit rate"
    );
    for (label, capacity, policy) in [
        ("unbounded (paper)", None, EvictPolicy::Fifo),
        ("8192 FIFO", Some(8192), EvictPolicy::Fifo),
        ("8192 LRU", Some(8192), EvictPolicy::Lru),
        ("2048 FIFO", Some(2048), EvictPolicy::Fifo),
        ("2048 LRU", Some(2048), EvictPolicy::Lru),
        ("512 FIFO", Some(512), EvictPolicy::Fifo),
        ("512 LRU", Some(512), EvictPolicy::Lru),
    ] {
        let cfg = DpaConfig {
            cache_capacity: capacity,
            cache_policy: policy,
            ..DpaConfig::caching()
        };
        let r = run_bh(&world, cfg, paper_net());
        let probes = r.stats.user_total("cache_probes").max(1);
        let hits = r.stats.user_total("cache_hits");
        println!(
            "  {label:<24} {:>8} s {:>12} {:>10} {:>9.1}%",
            fmt_secs(r.makespan_ns).trim(),
            r.stats.user_total("cache_misses"),
            r.stats.user_total("cache_evictions"),
            100.0 * hits as f64 / probes as f64,
        );
        points.push(
            ExpPoint::new("fig_cache", "bh", label, p, r.makespan_ns, &r.stats)
                .with("capacity", capacity.unwrap_or(0) as f64),
        );
    }
    println!(
        "\nDPA holds only the strip's aligned-thread state and fetches each \
         object once per phase; the baseline's capacity misses re-expose \
         full round trips."
    );
    dump_json("fig_cache", &points);
}
