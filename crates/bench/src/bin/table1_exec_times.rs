//! **Table 1** — execution times of DPA (strip 50) vs the software-caching
//! baseline on the Barnes-Hut and FMM force phases, P = 1..64.
//!
//! Paper reference values (seconds, Cray T3D):
//!
//! ```text
//! BARNES-HUT  P:      1      2      4      8     16     32     64
//!   DPA (50)     118.02  61.23  33.05  17.15   8.59   4.48   2.63
//!   Caching      115.15  65.77  38.02  20.21  10.46   5.41   2.90
//! FMM         P:             2      4      8     16     32     64
//!   DPA (50)              7.39   3.80   1.91    ...    ...    ...
//! Sequential: BH 97.84 s (4 steps), FMM 14.46 s.
//! ```
//!
//! We report one force phase (paper times 4 BH steps; BH numbers below are
//! scaled ×4 to compare). Expected *shape*: caching slightly ahead at
//! P = 1 (DPA pays thread creation, caching only hashing), DPA ahead at
//! every P ≥ 2, near-linear DPA scaling to 64 nodes.
//!
//! Run with `--quick` for a reduced problem size.

use apps::driver::{merge_stats, run_bh, run_fmm};
use bench::*;
use dpa_core::DpaConfig;
use sim_net::RunStats;

/// Attach the per-path aggregation factors (wire entries per message on
/// the request, reply, and update paths) to an experiment point.
fn with_agg_factors(pt: ExpPoint, s: &RunStats) -> ExpPoint {
    pt.with("req_agg_factor", s.user_ratio("request_entries", "request_msgs"))
        .with("reply_agg_factor", s.user_ratio("reply_entries", "reply_msgs"))
        .with("upd_agg_factor", s.user_ratio("update_entries", "update_msgs"))
}

fn main() {
    let quick = has_flag("--quick");
    let (bh_n, fmm_n, fmm_p) = if quick {
        (2_048, 4_096, 12)
    } else {
        (PAPER_BH_BODIES, PAPER_FMM_PARTICLES, PAPER_FMM_TERMS)
    };
    let procs: &[u16] = if quick {
        &[1, 2, 4, 8, 16]
    } else {
        &[1, 2, 4, 8, 16, 32, 64]
    };
    let mut points = Vec::new();

    println!("== Table 1: execution times (simulated seconds) ==");
    println!(
        "BH: {bh_n} bodies x{PAPER_BH_STEPS} steps | FMM: {fmm_n} particles, {fmm_p} terms | net {:?}",
        paper_net()
    );

    // Sequential references.
    let bh_seq = {
        let w = bh_world_sized(bh_n, 1);
        let r = run_bh(&w, DpaConfig::sequential(), paper_net());
        r.makespan_ns * PAPER_BH_STEPS
    };
    let fmm_seq = {
        let w = fmm_world_sized(fmm_n, fmm_p, 1);
        let r = run_fmm(&w, DpaConfig::sequential(), paper_net());
        r.makespan_ns
    };
    println!(
        "Sequential: BH {} s (paper 97.84), FMM {} s (paper 14.46)\n",
        fmt_secs(bh_seq).trim(),
        fmt_secs(fmm_seq).trim()
    );

    println!("BARNES-HUT        P {}",
        procs.iter().map(|p| format!("{p:>9}")).collect::<String>());
    for (label, cfg) in [
        ("DPA (50)", DpaConfig::dpa(50)),
        ("Caching ", DpaConfig::caching()),
    ] {
        let mut row = format!("  {label}        ");
        for &p in procs {
            let w = bh_world_sized(bh_n, p);
            let r = run_bh(&w, cfg.clone(), paper_net());
            let ns = r.makespan_ns * PAPER_BH_STEPS;
            row.push_str(&fmt_secs(ns));
            row.push(' ');
            points.push(with_agg_factors(
                ExpPoint::new("table1", "bh", label.trim(), p, ns, &r.stats)
                    .with("speedup_vs_seq", bh_seq as f64 / ns as f64),
                &r.stats,
            ));
        }
        println!("{row}");
    }

    println!("FMM               P {}",
        procs.iter().map(|p| format!("{p:>9}")).collect::<String>());
    for (label, cfg) in [
        ("DPA (50)", DpaConfig::dpa(50)),
        ("Caching ", DpaConfig::caching()),
    ] {
        let mut row = format!("  {label}        ");
        for &p in procs {
            let w = fmm_world_sized(fmm_n, fmm_p, p);
            let r = run_fmm(&w, cfg.clone(), paper_net());
            row.push_str(&fmt_secs(r.makespan_ns));
            row.push(' ');
            let merged = merge_stats(&r.m2l_stats, &r.eval_stats);
            points.push(with_agg_factors(
                ExpPoint::new("table1", "fmm", label.trim(), p, r.makespan_ns, &merged)
                    .with("speedup_vs_seq", fmm_seq as f64 / r.makespan_ns as f64),
                &merged,
            ));
        }
        println!("{row}");
    }

    // Headline speedups (the paper quotes >42x BH, 54x FMM at 64 nodes).
    let last = *procs.last().unwrap();
    let bh_dpa_last = points
        .iter()
        .find(|x| x.app == "bh" && x.config == "DPA (50)" && x.nodes == last)
        .unwrap();
    let bh_dpa_one = points
        .iter()
        .find(|x| x.app == "bh" && x.config == "DPA (50)" && x.nodes == 1)
        .unwrap();
    println!(
        "\nBH DPA speedup @P={last}: {:.1}x vs 1-node DPA (paper: >42x), {:.1}x vs sequential",
        bh_dpa_one.seconds / bh_dpa_last.seconds,
        bh_seq as f64 / 1e9 / bh_dpa_last.seconds,
    );
    let fmm_dpa_last = points
        .iter()
        .find(|x| x.app == "fmm" && x.config == "DPA (50)" && x.nodes == last)
        .unwrap();
    println!(
        "FMM DPA speedup @P={last}: {:.1}x vs sequential (paper: 54x @64)",
        fmm_seq as f64 / 1e9 / fmm_dpa_last.seconds,
    );

    dump_json("table1_exec_times", &points);
}
