//! **Clustered-input study** (extension) — FMM on a non-uniform particle
//! distribution.
//!
//! SPLASH-2's FMM inputs are clustered; clustering concentrates work into
//! few subtrees and stresses the partitioner (subtree grains are
//! indivisible). This sweep compares uniform vs k-cluster inputs at the
//! same size: expect lower speedups for clustered inputs — idle time from
//! grain imbalance — with DPA still ahead of the caching baseline, and
//! imbalance (not communication) dominating the gap to ideal.
//!
//! Run with `--quick` for a reduced problem size.

use apps::afmm_dist::AfmmWorld;
use apps::driver::{merge_stats, run_afmm, run_fmm};
use apps::fmm_dist::{FmmCost, FmmWorld};
use nbody::afmm::AfmmParams;
use bench::*;
use dpa_core::DpaConfig;
use nbody::cx::Cx;
use nbody::distrib::{clustered_square, uniform_square};
use nbody::fmm::FmmParams;
use nbody::quadtree::QuadTree;

fn build(
    particles: usize,
    terms: usize,
    nodes: u16,
    clusters: Option<usize>,
    occupancy_depth: bool,
    grain_extra: u32,
) -> std::sync::Arc<FmmWorld> {
    let bodies = match clusters {
        None => uniform_square(particles, SEED),
        Some(k) => clustered_square(particles, k, SEED),
    };
    let zs: Vec<Cx> = bodies.iter().map(|b| Cx::new(b.pos.x, b.pos.y)).collect();
    let qs: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
    let levels = if occupancy_depth {
        QuadTree::level_for_occupancy(&zs, 48)
    } else {
        QuadTree::level_for(particles, 16)
    };
    FmmWorld::build_with_grain(
        zs,
        qs,
        nodes,
        FmmParams { terms, levels },
        FmmCost::default(),
        grain_extra,
    )
}

fn main() {
    let quick = has_flag("--quick");
    let (n, terms) = if quick { (4_096, 12) } else { (PAPER_FMM_PARTICLES, PAPER_FMM_TERMS) };
    let procs: &[u16] = if quick { &[4, 16] } else { &[4, 16, 64] };
    let mut points = Vec::new();

    println!("== Clustered-input FMM ({n} particles, {terms} terms) ==");
    for (label, clusters, deep, grain) in [
        ("uniform               ", None, false, 0),
        ("8 clusters            ", Some(8), false, 0),
        ("8 clusters, deep      ", Some(8), true, 0),
        ("8 clusters, deep+fine ", Some(8), true, 2),
        ("3 clusters            ", Some(3), false, 0),
        ("3 clusters, deep      ", Some(3), true, 0),
        ("3 clusters, deep+fine ", Some(3), true, 2),
    ] {
        // Sequential reference for this input.
        let seq = {
            let w = build(n, terms, 1, clusters, deep, grain);
            run_fmm(&w, DpaConfig::sequential(), paper_net()).makespan_ns
        };
        println!("\n-- {label} (sequential {} s) --", fmt_secs(seq).trim());
        for &p in procs {
            let w = build(n, terms, p, clusters, deep, grain);
            for cfg in [DpaConfig::dpa(50), DpaConfig::caching()] {
                let r = run_fmm(&w, cfg.clone(), paper_net());
                let merged = merge_stats(&r.m2l_stats, &r.eval_stats);
                let (l, o, i) = breakdown_pct(&merged);
                let speedup = seq as f64 / r.makespan_ns as f64;
                println!(
                    "  P={p:<3} {:<10} {:>8} s  |{}| idle {i:4.1}%  speedup {speedup:5.1}x",
                    cfg.describe().split('(').next().unwrap(),
                    fmt_secs(r.makespan_ns).trim(),
                    ascii_bar(l, o, i, 24),
                );
                points.push(
                    ExpPoint::new(
                        "fig_clustered",
                        "fmm",
                        &format!("{}/{}", label.trim(), cfg.describe()),
                        p,
                        r.makespan_ns,
                        &merged,
                    )
                    .with("speedup", speedup),
                );
            }
        }
    }
    // The adaptive FMM (SPLASH-2's actual algorithm) on the same inputs.
    println!("\n== Adaptive FMM on the same inputs ==");
    for (label, clusters) in [("uniform input   ", None), ("8 clusters      ", Some(8)), ("3 clusters      ", Some(3))] {
        let bodies = match clusters {
            None => uniform_square(n, SEED),
            Some(k) => clustered_square(n, k, SEED),
        };
        let zs: Vec<Cx> = bodies.iter().map(|b| Cx::new(b.pos.x, b.pos.y)).collect();
        let qs: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
        let params = AfmmParams { terms, leaf_cap: 16, max_level: 12 };
        let seq = {
            let w = AfmmWorld::build(zs.clone(), qs.clone(), 1, params, FmmCost::default());
            run_afmm(&w, DpaConfig::sequential(), paper_net()).makespan_ns
        };
        println!("\n-- adaptive, {label} (sequential {} s) --", fmt_secs(seq).trim());
        for &p in procs {
            let w = AfmmWorld::build(zs.clone(), qs.clone(), p, params, FmmCost::default());
            for cfg in [DpaConfig::dpa(50), DpaConfig::caching()] {
                let r = run_afmm(&w, cfg.clone(), paper_net());
                let merged = merge_stats(&r.gather_stats, &r.eval_stats);
                let (l, o, i) = breakdown_pct(&merged);
                let speedup = seq as f64 / r.makespan_ns as f64;
                println!(
                    "  P={p:<3} {:<10} {:>8} s  |{}| idle {i:4.1}%  speedup {speedup:5.1}x",
                    cfg.describe().split('(').next().unwrap(),
                    fmt_secs(r.makespan_ns).trim(),
                    ascii_bar(l, o, i, 24),
                );
                points.push(
                    ExpPoint::new(
                        "fig_clustered",
                        "afmm",
                        &format!("adaptive {}/{}", label.trim(), cfg.describe()),
                        p,
                        r.makespan_ns,
                        &merged,
                    )
                    .with("speedup", speedup),
                );
            }
        }
    }

    dump_json("fig_clustered", &points);
}
