//! **bench_service** — the multi-tenant run service under a DST job mix.
//!
//! Drives a live [`dpa_serve::Service`] (shard pool + pure scheduler)
//! with a seeded stream of DST jobs — mixed workloads, seeds, fault
//! plans, four tenants across both priority lanes — and reports the
//! service-level numbers: per-tenant p50/p99 end-to-end latency and
//! jobs/second, per priority lane, to `results/BENCH_service.json`.
//!
//! Every completed run is audited by the full DST invariant-oracle
//! battery (via [`bench::service::DstJobRunner`]); the binary asserts
//! zero violations and conservation over the decision log, so the bench
//! doubles as an end-to-end correctness check of the service.
//!
//! Run with `--smoke` for the CI-sized profile.

use bench::dst::WORKLOADS;
use bench::service::DstJobRunner;
use bench::{dump_json, has_flag, ExpPoint};
use dpa_serve::{
    check_conservation, check_no_starvation, Admission, JobSpec, Priority, RejectReason,
    SchedConfig, Service, TenantId,
};
use sim_net::{RunStats, Rng};
use std::time::{Duration, Instant};

/// Fault plans the load mixes in (lossless-heavy so most jobs complete).
const MIX_PLANS: &[&str] = &["none", "none", "none", "delay", "dup", "drop"];

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let smoke = has_flag("--smoke");
    let jobs = if smoke { 24 } else { 160 };
    // Smoke keeps to the cheap single-phase workloads (setops rides along
    // so the skew-adversarial family is always in the mix); the full
    // profile mixes every DST workload, multi-phase, differential, and the
    // graph family included.
    let workloads: &[&str] = if smoke {
        &["synth-dpa", "synth-caching", "relax", "setops"]
    } else {
        WORKLOADS
    };
    let cfg = SchedConfig {
        shards: 4,
        queue_cap: 32,
        ..SchedConfig::default()
    };
    let shards = cfg.shards;
    let queue_cap = cfg.queue_cap;
    println!(
        "== Run service: {jobs} DST jobs over {shards} shards ({} profile) ==",
        if smoke { "smoke" } else { "full" }
    );

    let svc = Service::start(cfg.clone(), DstJobRunner::new());
    let mut rng = Rng::new(0xBE4C_5E4F);
    let mut rejected = 0u64;
    let t0 = Instant::now();
    for i in 0..jobs {
        // Natural backpressure: hold submissions while the queues are
        // half full so the bench measures service latency, not a
        // self-inflicted queueing collapse.
        loop {
            let (qi, qb, _) = svc.load();
            if qi + qb < queue_cap / 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let tenant = TenantId(rng.below(4) as u16);
        // Tenants 0/1 skew interactive, 2/3 skew batch.
        let interactive = rng.chance(if tenant.0 < 2 { 0.8 } else { 0.2 });
        let spec = JobSpec {
            tenant,
            priority: if interactive {
                Priority::Interactive
            } else {
                Priority::Batch
            },
            workload: workloads[rng.below(workloads.len() as u64) as usize].to_string(),
            seed: rng.next_u64() % 1_000,
            plan: MIX_PLANS[rng.below(MIX_PLANS.len() as u64) as usize].to_string(),
            event_budget: 0,
        };
        match svc.submit(spec) {
            Admission::Accepted(_) => {}
            Admission::Rejected { reason } => {
                rejected += 1;
                assert!(
                    matches!(reason, RejectReason::QueueFull { .. }),
                    "unexpected shed reason during paced load: {reason:?} (job {i})"
                );
            }
        }
    }
    let report = svc.shutdown();
    let wall = t0.elapsed().as_secs_f64();

    // Correctness gates: conservation and no-starvation over the decision
    // log, and a clean oracle verdict on every completed run.
    let conservation = check_conservation(&report.log);
    assert!(conservation.is_empty(), "conservation: {conservation:?}");
    let starvation = check_no_starvation(&report.log, &cfg);
    assert!(starvation.is_empty(), "no-starvation: {starvation:?}");
    let oracle_violations: u64 = report.jobs.iter().map(|j| j.report.violations).sum();
    assert_eq!(oracle_violations, 0, "invariant oracles flagged completed runs");

    let finished = report.jobs.len() as u64;
    let completed = report.jobs.iter().filter(|j| j.report.completed).count() as u64;
    let jobs_per_sec = finished as f64 / wall.max(1e-9);
    println!(
        "finished {finished} (completed {completed}, shed {rejected}) in {wall:.2}s \
         => {jobs_per_sec:.1} jobs/s\n"
    );
    println!("tenant lane          jobs   p50_ms   p99_ms");

    let mut points = Vec::new();
    for t in 0..4u16 {
        for lane in Priority::ALL {
            let mut lats: Vec<u64> = report
                .jobs
                .iter()
                .filter(|j| j.tenant == TenantId(t) && j.priority == lane)
                .map(|j| j.latency_ns)
                .collect();
            lats.sort_unstable();
            let (p50, p99) = (percentile(&lats, 0.50), percentile(&lats, 0.99));
            println!(
                "  {t}    {:<12} {:>5} {:>8.2} {:>8.2}",
                lane.name(),
                lats.len(),
                p50 as f64 / 1e6,
                p99 as f64 / 1e6,
            );
            points.push(
                ExpPoint::new(
                    "bench_service",
                    "dst-mix",
                    &format!("tenant{t}-{}", lane.name()),
                    shards as u16,
                    (wall * 1e9) as u64,
                    &RunStats::default(),
                )
                .with("jobs", lats.len() as f64)
                .with("p50_latency_ms", p50 as f64 / 1e6)
                .with("p99_latency_ms", p99 as f64 / 1e6)
                .with("jobs_per_sec_total", jobs_per_sec)
                .with("rejected_total", rejected as f64)
                .with("smoke", if smoke { 1.0 } else { 0.0 }),
            );
        }
    }
    println!("\nledger (tenant: completed/reaped/stalled, sim events, msgs):");
    for (t, u) in &report.ledger {
        println!(
            "  {}: {}/{}/{}  {} ev  {} msgs",
            t.0,
            u.completed,
            u.reaped,
            u.stalled,
            u.sim_events,
            u.request_msgs + u.reply_msgs + u.update_msgs,
        );
    }
    dump_json("BENCH_service", &points);
}
