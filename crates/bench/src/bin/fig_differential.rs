//! Differential re-alignment ablation: repeated clustered Barnes-Hut force
//! phases on 16 nodes with *scattered* (placement-hostile) cell ownership,
//! run with differential DPA (patch M across the phase barrier, carry
//! cached copies forward, re-fetch only what changed) vs from-scratch
//! (rebuild the schedule and re-fetch everything every phase).
//!
//! Between timesteps only a small fraction of the tree changes (the
//! [`DiffPlan`] change schedule models ~2% of boundary objects bumping
//! their generation per phase), so from-scratch re-alignment pays the full
//! fetch volume every phase while differential pays it once and then only
//! the delta. The figure compares steady-state phases (everything after
//! the cold phase 0, which both modes pay identically) on simulated time
//! and request traffic, under a communication-bound cost model — a modern
//! node where per-interaction compute is tens of ns, so fetch latency
//! dominates the timestep and the carried cache is worth wall-clock, not
//! just message counts.
//!
//! Correctness bar: the per-(phase, node) interaction checksums — which
//! fold [`DiffPlan::stamp`] at the generation actually read, so any stale
//! carried copy corrupts them — must be bit-identical between the modes.
//!
//! Usage:
//!   cargo run --release -p bench --bin fig_differential            # 4096 bodies
//!   cargo run --release -p bench --bin fig_differential -- --quick # 1024 bodies
//!   cargo run --release -p bench --bin fig_differential -- --smoke # 512, 3 phases
//!
//! Exits nonzero if the steady-state speedup falls below the 1.5x
//! acceptance floor or the checksums diverge.

use apps::bh_dist::{BhApp, BhCost, BhWorld, OwnerPolicy};
use bench::{dump_json, has_flag, ExpPoint, SEED};
use dpa_core::invariant::{check_completed, NodeSnapshot};
use dpa_core::{run_phase_differential, run_phase_migrating, DiffPlan, DpaConfig, DstOptions};
use nbody::bh::BhParams;
use nbody::distrib::plummer;
use sim_net::NetConfig;
use std::sync::Arc;

const NODES: u16 = 16;
const STRIP: usize = 8;
/// ~2% of boundary objects change generation per timestep.
const CHANGE_PERMILLE: u32 = 20;
/// Acceptance floor: steady-state simulated time, from-scratch over
/// differential.
const TARGET: f64 = 1.5;

/// Fetch-dominated "modern node" regime: every CPU-side cost — per-cell
/// compute *and* the runtime's per-operation costs — scaled down ~32x from
/// the T3D calibration (a GHz-class out-of-order core vs the 150 MHz
/// 21064) while the network keeps its T3D-era parameters. That widening
/// communication/computation gap is exactly the regime the paper argues
/// communication optimizations are for: the timestep becomes bound by
/// remote-fetch traffic, so the carried cache shows up in simulated time,
/// not just message counts. (Under the unscaled compute-bound T3D costs
/// the differential win is traffic, not time.)
const COMM_BOUND_COST: BhCost = BhCost {
    visit_ns: 31,
    cell_interact_ns: 162,
    body_interact_ns: 144,
};

/// CostModel::default() divided by 32 (see [`COMM_BOUND_COST`]).
fn modern_runtime_cost() -> dpa_core::CostModel {
    let t3d = dpa_core::CostModel::default();
    dpa_core::CostModel {
        thread_create_ns: t3d.thread_create_ns / 32,
        map_update_ns: t3d.map_update_ns / 32,
        resume_ns: t3d.resume_ns / 32,
        request_entry_ns: t3d.request_entry_ns / 32,
        reply_install_ns: t3d.reply_install_ns / 32,
        owner_lookup_ns: t3d.owner_lookup_ns / 32,
        cache_probe_ns: t3d.cache_probe_ns / 32,
        cache_fill_ns: t3d.cache_fill_ns / 32,
        cache_probe_thrash_step_ns: t3d.cache_probe_thrash_step_ns / 32,
        cache_probe_thrash_cap_ns: t3d.cache_probe_thrash_cap_ns / 32,
        ..t3d
    }
}

struct Run {
    /// Per-phase machine-wide request messages.
    req_msgs: Vec<u64>,
    /// Per-phase machine-wide request entries on the wire.
    req_sent: Vec<u64>,
    /// Per-phase simulated time, ns.
    phase_ns: Vec<u64>,
    /// Per-(phase, node) interaction checksums.
    hashes: Vec<u64>,
}

fn run(world: &Arc<BhWorld>, phases: usize, differential: bool, label: &str) -> Run {
    let plan = DiffPlan {
        seed: SEED,
        change_permille: CHANGE_PERMILLE,
        phase: 0,
    };
    let mut hashes = vec![0u64; phases * NODES as usize];
    let mk = |ph: usize, i: u16| BhApp::new_diff(world.clone(), i, plan.at_phase(ph as u32));
    let collect = |ph: usize, i: u16, app: &BhApp| {
        hashes[ph * NODES as usize + i as usize] = app.interaction_hash;
    };
    let cost = modern_runtime_cost();
    let (reports, snap_sets, _) = if differential {
        let cfg = DpaConfig {
            cost,
            ..DpaConfig::dpa_differential(STRIP)
        };
        run_phase_differential(
            NODES,
            NetConfig::default(),
            cfg,
            &DstOptions::default(),
            phases,
            mk,
            collect,
        )
    } else {
        // Migration off: each phase realigns and refetches from scratch.
        let cfg = DpaConfig {
            cost,
            ..DpaConfig::dpa(STRIP)
        };
        run_phase_migrating(
            NODES,
            NetConfig::default(),
            cfg,
            &DstOptions::default(),
            phases,
            mk,
            collect,
        )
    };
    let mut req_msgs = Vec::with_capacity(phases);
    let mut req_sent = Vec::with_capacity(phases);
    let mut phase_ns = Vec::with_capacity(phases);
    for (ph, (r, snaps)) in reports.iter().zip(&snap_sets).enumerate() {
        assert!(
            r.completed,
            "{label} phase {ph} stalled: {}",
            r.stall_summary()
        );
        let violations = check_completed(snaps, false);
        assert!(
            violations.is_empty(),
            "{label} phase {ph} violates invariants: {}",
            violations[0]
        );
        req_msgs.push(snaps.iter().map(|s: &NodeSnapshot| s.request_msgs).sum());
        req_sent.push(snaps.iter().map(|s: &NodeSnapshot| s.req_sent).sum());
        phase_ns.push(r.makespan().as_ns());
    }
    Run {
        req_msgs,
        req_sent,
        phase_ns,
        hashes,
    }
}

fn main() {
    let (bodies, phases) = if has_flag("--smoke") {
        (512, 3)
    } else if has_flag("--quick") {
        (1024, 4)
    } else {
        (4096, 6)
    };
    // Scatter ownership: the placement-hostile layout where every node's
    // traversal crosses node boundaries constantly — maximum fetch volume
    // for from-scratch, maximum carried-cache value for differential.
    let world = BhWorld::build_with_policy(
        plummer(bodies, SEED),
        NODES,
        4,
        BhParams::default(),
        COMM_BOUND_COST,
        OwnerPolicy::Scatter,
    );

    let scratch = run(&world, phases, false, "from-scratch");
    let diff = run(&world, phases, true, "differential");

    assert_eq!(
        scratch.hashes, diff.hashes,
        "interaction checksums must be bit-identical differential vs from-scratch"
    );

    println!(
        "fig_differential: clustered BH, {bodies} bodies, {NODES} nodes, scatter placement, \
         {:.1}% change/phase",
        CHANGE_PERMILLE as f64 / 10.0
    );
    println!(
        "{:>6} {:>13} {:>13} {:>12} {:>12} {:>8}",
        "phase", "scratch ms", "diff ms", "scratch req", "diff req", "speedup"
    );
    for ph in 0..phases {
        let s = scratch.phase_ns[ph];
        let d = diff.phase_ns[ph];
        println!(
            "{ph:>6} {:>13.3} {:>13.3} {:>12} {:>12} {:>7.2}x",
            s as f64 / 1e6,
            d as f64 / 1e6,
            scratch.req_msgs[ph],
            diff.req_msgs[ph],
            s as f64 / d as f64
        );
    }

    // Steady state: everything after the cold phase, which both modes pay
    // in full (the differential run has no prior state to carry into it).
    let steady_scratch: u64 = scratch.phase_ns[1..].iter().sum();
    let steady_diff: u64 = diff.phase_ns[1..].iter().sum();
    let speedup = steady_scratch as f64 / steady_diff as f64;
    let req_scratch: u64 = scratch.req_msgs[1..].iter().sum();
    let req_diff: u64 = diff.req_msgs[1..].iter().sum();
    let ent_scratch: u64 = scratch.req_sent[1..].iter().sum();
    let ent_diff: u64 = diff.req_sent[1..].iter().sum();
    println!(
        "steady-state (phases 1..{phases}): time {:.3}ms -> {:.3}ms ({speedup:.2}x), \
         request msgs {req_scratch} -> {req_diff}, entries {ent_scratch} -> {ent_diff}",
        steady_scratch as f64 / 1e6,
        steady_diff as f64 / 1e6,
    );

    let points = vec![
        ExpPoint {
            experiment: "fig_differential".into(),
            app: "bh".into(),
            config: "from-scratch".into(),
            nodes: NODES,
            seconds: steady_scratch as f64 / 1e9,
            breakdown: (0.0, 0.0, 0.0),
            msgs: req_scratch,
            bytes: 0,
            extra: vec![("steady_req_entries".into(), ent_scratch as f64)],
        },
        ExpPoint {
            experiment: "fig_differential".into(),
            app: "bh".into(),
            config: "differential".into(),
            nodes: NODES,
            seconds: steady_diff as f64 / 1e9,
            breakdown: (0.0, 0.0, 0.0),
            msgs: req_diff,
            bytes: 0,
            extra: vec![
                ("steady_req_entries".into(), ent_diff as f64),
                ("steady_speedup".into(), speedup),
            ],
        },
    ];
    dump_json("fig_differential", &points);

    if speedup < TARGET {
        eprintln!(
            "FAIL: steady-state speedup {speedup:.2}x below the {TARGET:.1}x floor"
        );
        std::process::exit(1);
    }
    println!("PASS: steady-state differential speedup {speedup:.2}x >= {TARGET:.1}x");
}
