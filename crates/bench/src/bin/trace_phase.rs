//! Export a per-node execution timeline of a force phase as Chrome
//! trace-event JSON (open in `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! The Gantt view is the per-node form of the paper's breakdown figure:
//! colored spans are local work and communication overhead; the gaps are
//! idle time. Comparing `--variant dpa` against `--variant blocking` makes
//! the latency-tolerance story visible span by span.
//!
//! ```sh
//! cargo run --release -p bench --bin trace_phase -- [--variant dpa|base|caching|blocking]
//! ```

use bench::*;
use dpa_core::synth::{SynthApp, SynthParams, SynthWorld};
use dpa_core::{run_phase_traced, DpaConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let variant = args
        .iter()
        .position(|a| a == "--variant")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("dpa");
    let cfg = match variant {
        "dpa" => DpaConfig::dpa(16),
        "base" => DpaConfig::dpa_base(16),
        "caching" => DpaConfig::caching(),
        "blocking" => DpaConfig::blocking(),
        other => panic!("unknown variant `{other}` (dpa|base|caching|blocking)"),
    };

    let nodes = 8u16;
    let world = SynthWorld::build(SynthParams {
        nodes,
        lists_per_node: 48,
        list_len: 40,
        remote_fraction: 0.5,
        shared_fraction: 0.5,
        record_bytes: 32,
        work_ns: 900,
        seed: 0x7ACE,
    });

    let (report, trace) = run_phase_traced(
        nodes,
        paper_net(),
        cfg.clone(),
        |i| SynthApp::new(world.clone(), i, 900),
        |_, _| {},
        1 << 20,
    );
    assert!(report.completed);

    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results/");
    let path = dir.join(format!("trace_{variant}.json"));
    std::fs::write(&path, trace.to_chrome_json()).expect("write trace");
    let (l, o, i) = breakdown_pct(&report.stats);
    println!(
        "{}: makespan {}, {} spans ({} dropped), local/ovh/idle = {l:.1}/{o:.1}/{i:.1}%",
        cfg.describe(),
        report.makespan(),
        trace.spans().len(),
        trace.dropped,
    );
    println!("wrote {} — open in chrome://tracing or ui.perfetto.dev", path.display());
}
