//! **Crossover study** (extension) — where do the schemes cross as the
//! workload's communication intensity varies?
//!
//! The paper's Table 1 shows caching ahead of DPA at P = 1 (no
//! communication: pure overhead comparison) and behind at P ≥ 2. This
//! sweep generalizes that crossover on the synthetic pointer-chasing
//! workload by varying the remote fraction (communication volume) and the
//! shared fraction (reuse): DPA's fixed thread overhead buys latency
//! tolerance that pays off past a small remote fraction; caching needs
//! reuse to beat blocking at all.

use bench::{dump_json, has_flag, paper_net, ExpPoint};
use dpa_core::synth::{SynthApp, SynthParams, SynthWorld};
use dpa_core::{run_phase, DpaConfig};

fn main() {
    let quick = has_flag("--quick");
    let (lists, len) = if quick { (24, 24) } else { (64, 48) };
    let nodes = 16u16;
    let mut points = Vec::new();

    println!("== Crossover: time (ms) vs remote fraction (P = {nodes}, shared = 0.5) ==");
    println!(
        "  {:<8} {:>10} {:>10} {:>10}  winner",
        "remote%", "DPA", "Caching", "Blocking"
    );
    for remote in [0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8] {
        let world = SynthWorld::build(SynthParams {
            nodes,
            lists_per_node: lists,
            list_len: len,
            remote_fraction: remote,
            shared_fraction: 0.5,
            record_bytes: 32,
            work_ns: 900,
            seed: 0xC505,
        });
        let mut time = |cfg: DpaConfig| {
            let label = cfg.describe();
            let r = run_phase(
                nodes,
                paper_net(),
                cfg,
                |i| SynthApp::new(world.clone(), i, 900),
                |_, _| {},
            );
            points.push(
                ExpPoint::new(
                    "fig_crossover",
                    "synth",
                    &label,
                    nodes,
                    r.makespan().as_ns(),
                    &r.stats,
                )
                .with("remote_fraction", remote),
            );
            r.makespan().as_ns() as f64 / 1e6
        };
        let dpa = time(DpaConfig::dpa(16));
        let cache = time(DpaConfig::caching());
        let block = time(DpaConfig::blocking());
        let winner = if dpa <= cache && dpa <= block {
            "DPA"
        } else if cache <= block {
            "Caching"
        } else {
            "Blocking"
        };
        println!("  {:<8.2} {dpa:>10.2} {cache:>10.2} {block:>10.2}  {winner}", remote);
    }

    println!("\n== Crossover: time (ms) vs shared fraction (remote = 0.4) ==");
    println!(
        "  {:<8} {:>10} {:>10} {:>10}  caching vs blocking",
        "shared%", "DPA", "Caching", "Blocking"
    );
    for shared in [0.0, 0.2, 0.4, 0.6, 0.8, 0.95] {
        let world = SynthWorld::build(SynthParams {
            nodes,
            lists_per_node: lists,
            list_len: len,
            remote_fraction: 0.4,
            shared_fraction: shared,
            record_bytes: 32,
            work_ns: 900,
            seed: 0xC506,
        });
        let mut time = |cfg: DpaConfig| {
            let label = cfg.describe();
            let r = run_phase(
                nodes,
                paper_net(),
                cfg,
                |i| SynthApp::new(world.clone(), i, 900),
                |_, _| {},
            );
            points.push(
                ExpPoint::new(
                    "fig_crossover",
                    "synth",
                    &label,
                    nodes,
                    r.makespan().as_ns(),
                    &r.stats,
                )
                .with("shared_fraction", shared),
            );
            r.makespan().as_ns() as f64 / 1e6
        };
        let dpa = time(DpaConfig::dpa(16));
        let cache = time(DpaConfig::caching());
        let block = time(DpaConfig::blocking());
        let rel = if cache < block { "caching ahead" } else { "blocking ahead" };
        println!("  {:<8.2} {dpa:>10.2} {cache:>10.2} {block:>10.2}  {rel}", shared);
    }

    dump_json("fig_crossover", &points);
}
