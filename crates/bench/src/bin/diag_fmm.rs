//! Per-phase, per-node diagnostic for the FMM idle-time investigation.

use apps::driver::run_fmm;
use bench::*;
use dpa_core::DpaConfig;

fn main() {
    let quick = has_flag("--quick");
    let (n, terms) = if quick { (8_192, 16) } else { (PAPER_FMM_PARTICLES, PAPER_FMM_TERMS) };
    for p in [16u16] {
        let w = fmm_world_sized(n, terms, p);
        println!(
            "part_level={} levels={} owned boxes/leaves per node:",
            w.part_level,
            w.solver.params.levels
        );
        for node in 0..p {
            let boxes = w.owned_boxes(node).len();
            let leaves = w.owned_leaves(node).len();
            let parts: usize = w
                .owned_leaves(node)
                .iter()
                .map(|b| w.solver.tree.particles_in(*b).len())
                .sum();
            print!("  n{node}: {boxes}b/{leaves}l/{parts}p");
        }
        println!();
        let r = run_fmm(&w, DpaConfig::dpa(50), paper_net());
        println!(
            "P={p} m2l phase {} s, eval phase {} s",
            fmt_secs(r.m2l_stats.makespan.as_ns()),
            fmt_secs(r.eval_stats.makespan.as_ns())
        );
        for (name, st) in [("m2l", &r.m2l_stats), ("eval", &r.eval_stats)] {
            print!("{name}: local(s) per node:");
            for ns in &st.nodes {
                print!(" {:.3}", ns.local.as_secs_f64());
            }
            println!();
            print!("{name}: idle(s)  per node:");
            for ns in &st.nodes {
                print!(" {:.3}", ns.idle.as_secs_f64());
            }
            println!();
        }
    }
}
