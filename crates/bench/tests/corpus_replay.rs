//! Replay every committed DST corpus case under `cargo test`.
//!
//! The `dst` sweep records failing `(workload, seed, plan)` triples as
//! `.case` files in `tests/dst_corpus/` at the repository root. Once the
//! underlying bug is fixed, the case is kept as a regression: this test
//! auto-discovers every committed file and asserts that none of them
//! reproduces a violation any more (replay exit code 0). A malformed case
//! file (exit code 2) also fails, so corpus rot is caught immediately.

use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/dst_corpus")
}

fn corpus_cases() -> Vec<PathBuf> {
    let dir = corpus_dir();
    let mut cases: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read corpus dir {}: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("readable corpus dir entry").path();
            match path.extension().and_then(|e| e.to_str()) {
                Some("case") => Some(path),
                _ => None,
            }
        })
        .collect();
    cases.sort();
    assert!(
        !cases.is_empty(),
        "no .case files in {} — at least one committed regression case is expected",
        dir.display()
    );
    cases
}

#[test]
fn every_committed_corpus_case_replays_clean() {
    for case in corpus_cases() {
        let path = case.to_string_lossy();
        let code = bench::dst::replay(&path);
        assert_eq!(
            code, 0,
            "corpus case {path} did not replay clean (replay exit code {code}; \
             1 = violation reproduces, 2 = malformed case file)"
        );
    }
}

/// Parallel-engine smoke lane: every committed corpus case must reach the
/// same clean verdict when replayed on the conservative-window engine
/// (`run_parallel` is bit-identical to `run()`, so any divergence here is
/// an engine bug, not a workload regression).
#[test]
fn every_committed_corpus_case_replays_clean_in_parallel() {
    for case in corpus_cases() {
        let path = case.to_string_lossy();
        let code = bench::dst::replay_with_threads(&path, 4);
        assert_eq!(
            code, 0,
            "corpus case {path} diverged on the parallel engine (exit code {code})"
        );
    }
}
