//! Queue equivalence: the timing-wheel event queue must be
//! **bit-identical** to the shadow binary heap it replaced, on every DST
//! workload, under every fault plan.
//!
//! This is the differential-testing half of the wheel's safety case: the
//! heap is retained as [`QueueKind::ShadowHeap`] purely as an oracle, and
//! this suite drives both queues through the full DST surface — schedule
//! perturbation, jitter, drops, duplicates, delays, node pauses (whose
//! long wakeups exercise the wheel's overflow list) — comparing the full
//! observable outcome: completion flag, dropped-packet count, digest
//! (floats by bit pattern), per-node invariant snapshots, and stall
//! diagnoses.
//!
//! The default test runs a CI-sized subset, plus a committed-corpus replay
//! on the wheel. The `#[ignore]`d full matrix — every workload × every
//! fault plan × 8 seeds, 360 wheel-vs-heap comparisons — runs in the
//! nightly lane:
//!
//! ```sh
//! cargo test --release -p bench --test queue_equiv -- --ignored
//! ```

use bench::dst::{
    fingerprint, plan_for, replay, run_one, schedule_seed, Worlds, ALL_PLANS, CORPUS_DIR,
    WORKLOADS,
};
use dpa_core::DstOptions;
use sim_net::QueueKind;

fn opts(plan: &str, seed: u64, queue: QueueKind) -> DstOptions {
    DstOptions {
        schedule_seed: Some(schedule_seed(seed)),
        faults: plan_for(plan, seed),
        threads: 1,
        queue,
        max_events: u64::MAX,
        wall_deadline: None,
    }
}

/// Run `workload` under `plan`/`seed` on the shadow heap and on the wheel,
/// asserting bit-identity. Returns the number of comparisons made (1).
fn check_case(w: &Worlds, workload: &str, plan: &str, seed: u64) -> usize {
    let want = fingerprint(&run_one(w, workload, &opts(plan, seed, QueueKind::ShadowHeap)));
    let got = fingerprint(&run_one(w, workload, &opts(plan, seed, QueueKind::Wheel)));
    assert_eq!(
        got, want,
        "timing wheel diverged from shadow heap: workload={workload} plan={plan} seed={seed}"
    );
    1
}

/// CI-sized subset: every workload × every plan at one seed, plus extra
/// seeds of the two cheapest workloads under the plans that stress the
/// wheel hardest (`delay` reorders within the ring, `pause` forces
/// far-future wakeups through the overflow list).
#[test]
fn queues_bit_identical_smoke() {
    let w = Worlds::build();
    let mut checked = 0;
    for &workload in WORKLOADS {
        for &plan in ALL_PLANS {
            checked += check_case(&w, workload, plan, 1);
        }
    }
    for &workload in &["synth-dpa", "synth-caching"] {
        for &plan in &["delay", "pause"] {
            for seed in 2..6 {
                checked += check_case(&w, workload, plan, seed);
            }
        }
    }
    assert!(checked >= 60, "smoke subset shrank to {checked} comparisons");
}

/// Every committed DST corpus case must still replay cleanly on the wheel
/// (replay uses [`DstOptions::default`], whose queue defaults to the
/// wheel unless `DPA_SIM_QUEUE` overrides it).
#[test]
fn corpus_replays_clean_on_wheel() {
    let dir = match std::fs::read_dir(CORPUS_DIR) {
        Ok(d) => d,
        Err(_) => return, // no corpus committed yet
    };
    for entry in dir {
        let path = entry.expect("readable corpus dir").path();
        if path.extension().is_some_and(|e| e == "case") {
            let path = path.to_str().expect("utf-8 corpus path");
            assert_eq!(replay(path), 0, "corpus case {path} violates on the wheel");
        }
    }
}

/// The full matrix: every workload × every fault plan × 8 seeds. 360
/// wheel-vs-heap comparisons; minutes of work, so nightly-only.
#[test]
#[ignore = "full 360-case matrix; run with --ignored (nightly lane)"]
fn queues_bit_identical_full() {
    let w = Worlds::build();
    let mut checked = 0;
    for &workload in WORKLOADS {
        for &plan in ALL_PLANS {
            for seed in 0..8 {
                checked += check_case(&w, workload, plan, seed);
            }
        }
    }
    assert_eq!(
        checked,
        WORKLOADS.len() * ALL_PLANS.len() * 8,
        "matrix shape changed"
    );
    println!("queue equivalence: {checked} comparisons, all bit-identical");
}
