//! Machine-reuse audit at the service level: a pooled shard runs jobs
//! back-to-back on reused simulator state (`Machine::reset` inside the
//! multi-phase drivers, pooled worlds in [`DstJobRunner`]), so every job
//! report must be bit-identical to the same spec run solo on a fresh
//! runner. Covers the reap path too: an under-budgeted job mid-sequence
//! must not perturb its successors.
//!
//! Honors `DPA_SIM_QUEUE` / `DPA_SIM_THREADS` via [`DstOptions::default`]
//! inside the runner, so CI's heap-queue and threaded lanes re-run the
//! same identity automatically.

use bench::service::DstJobRunner;
use dpa_serve::{
    Admission, JobReport, JobRunner, JobSpec, Priority, SchedConfig, Service, TenantId,
};

/// A mixed back-to-back sequence: single-phase, migrating (multi-phase
/// machine reuse), differential (reset + table carry), a lossy plan, a
/// repeat of an earlier spec, and one under-budgeted job in the middle.
fn sequence() -> Vec<JobSpec> {
    let spec = |workload: &str, seed: u64, plan: &str, event_budget: u64| JobSpec {
        tenant: TenantId(0),
        priority: Priority::Batch,
        workload: workload.to_string(),
        seed,
        plan: plan.to_string(),
        event_budget,
    };
    vec![
        spec("synth-dpa", 3, "none", 0),
        spec("synth-mig", 5, "none", 0),
        spec("synth-dpa", 11, "none", 400), // tiny budget: reaped mid-sequence
        spec("synth-diff", 9, "delay", 0),
        spec("synth-dpa", 3, "none", 0), // exact repeat of the first job
        spec("relax", 2, "dup", 0),
    ]
}

#[test]
fn pooled_shard_reports_match_fresh_runner_bitwise() {
    let cfg = SchedConfig {
        shards: 1,
        queue_cap: 64,
        tenant_outstanding_cap: 1_000,
        ..SchedConfig::default()
    };
    let seq = sequence();
    let svc = Service::start(cfg.clone(), DstJobRunner::new());
    for s in &seq {
        match svc.submit(s.clone()) {
            Admission::Accepted(_) => {}
            Admission::Rejected { reason } => panic!("unexpected shed: {reason:?}"),
        }
    }
    let report = svc.shutdown();
    assert_eq!(report.jobs.len(), seq.len());

    // JobIds are assigned in submission order, so record.job indexes seq.
    for rec in &report.jobs {
        let s = &seq[rec.job.0 as usize];
        let budget = if s.event_budget == 0 {
            cfg.job_event_budget
        } else {
            s.event_budget
        };
        // A fresh runner per job: no pooled worlds, no cached baselines.
        let solo = DstJobRunner::new().run(s, budget, None);
        let pooled = JobReport {
            wall_ns: 0, // wall clock is the one legitimately nondeterministic field
            ..rec.report.clone()
        };
        assert_eq!(
            pooled, solo,
            "job {:?} ({}/{}/seed {}) diverged on the pooled shard",
            rec.job, s.workload, s.plan, s.seed
        );
        if s.event_budget != 0 {
            assert!(pooled.budget_exhausted, "tiny-budget job must be reaped");
        }
    }
}

/// Determinism floor under the pooled worlds: the same runner instance
/// must produce identical reports for repeated runs of a multi-phase
/// (machine-reusing) workload — baseline caching and world sharing are
/// read-only after the first run.
#[test]
fn one_runner_repeats_multiphase_jobs_identically() {
    let runner = DstJobRunner::new();
    for workload in ["synth-mig", "synth-diff", "bh-adapt"] {
        let s = JobSpec {
            tenant: TenantId(1),
            priority: Priority::Interactive,
            workload: workload.to_string(),
            seed: 13,
            plan: "delay".to_string(),
            event_budget: 0,
        };
        let budget = SchedConfig::default().job_event_budget;
        let first = runner.run(&s, budget, None);
        let second = runner.run(&s, budget, None);
        assert_eq!(first, second, "{workload}: repeat run diverged");
        assert_eq!(first.violations, 0, "{workload}: oracle violations");
    }
}
