//! Cross-engine equivalence: `Machine::run_parallel(k)` must be
//! **bit-identical** to `Machine::run()` on every DST workload, under
//! every fault plan, for every thread count.
//!
//! Equality is checked on the full observable outcome: completion flag,
//! dropped-packet count, the workload digest (integer checksums compared
//! exactly, floating-point results compared by *bit pattern* — not
//! tolerance: the engines must produce the same schedule, hence the same
//! reduction order, hence the same bits), the per-node invariant-oracle
//! snapshots, and the stall diagnoses.
//!
//! The default test runs a CI-sized subset. The `#[ignore]`d full sweep —
//! every workload × every fault plan × 8 seeds × k ∈ {2, 4, 8}, 1080
//! engine comparisons — runs in the nightly lane:
//!
//! ```sh
//! cargo test --release -p bench --test engine_equiv -- --ignored
//! ```

use bench::dst::{fingerprint, plan_for, run_one, schedule_seed, Worlds, ALL_PLANS, WORKLOADS};
use dpa_core::DstOptions;

fn opts(plan: &str, seed: u64, threads: usize) -> DstOptions {
    DstOptions {
        schedule_seed: Some(schedule_seed(seed)),
        faults: plan_for(plan, seed),
        threads,
        ..DstOptions::default()
    }
}

/// Run `workload` under `plan`/`seed` sequentially and at each parallel
/// width, asserting bit-identity. Returns the number of comparisons made.
fn check_case(w: &Worlds, workload: &str, plan: &str, seed: u64, widths: &[usize]) -> usize {
    let want = fingerprint(&run_one(w, workload, &opts(plan, seed, 1)));
    for &k in widths {
        let got = fingerprint(&run_one(w, workload, &opts(plan, seed, k)));
        assert_eq!(
            got, want,
            "parallel engine diverged: workload={workload} plan={plan} seed={seed} threads={k}"
        );
    }
    widths.len()
}

/// CI-sized subset: every workload × every plan at one seed with k=2,
/// plus wider fan-outs on the two cheapest workloads.
#[test]
fn engines_bit_identical_smoke() {
    let w = Worlds::build();
    let mut checked = 0;
    for &workload in WORKLOADS {
        for &plan in ALL_PLANS {
            checked += check_case(&w, workload, plan, 1, &[2]);
        }
    }
    for &workload in &["synth-dpa", "synth-caching"] {
        for seed in 0..4 {
            checked += check_case(&w, workload, "delay", seed, &[3, 4, 8]);
        }
    }
    assert!(checked >= 60, "smoke subset shrank to {checked} comparisons");
}

/// The full sweep: every workload × every fault plan × 8 seeds × k ∈
/// {2, 4, 8}. 1080 sequential-vs-parallel comparisons; minutes of work,
/// so nightly-only.
#[test]
#[ignore = "full 1080-case sweep; run with --ignored (nightly lane)"]
fn engines_bit_identical_full() {
    let w = Worlds::build();
    let mut checked = 0;
    for &workload in WORKLOADS {
        for &plan in ALL_PLANS {
            for seed in 0..8 {
                checked += check_case(&w, workload, plan, seed, &[2, 4, 8]);
            }
        }
    }
    assert_eq!(
        checked,
        WORKLOADS.len() * ALL_PLANS.len() * 8 * 3,
        "sweep shape changed"
    );
    println!("engine equivalence: {checked} comparisons, all bit-identical");
}
