//! Overload integration test for the live run service: burst ~10x the
//! pool's queue capacity of mixed DST jobs (fault plans in the mix, plus
//! a deliberately under-budgeted job) at a 2-shard service and assert the
//! ISSUE-8 overload contract:
//!
//! - queue depth stays bounded (every admission records depth <= cap);
//! - overflow submissions shed with structured reasons, never a hang;
//! - every completed run passes the DST invariant-oracle battery;
//! - the budget-exhausted job is reaped and reported, not leaked;
//! - conservation holds over the decision log (no job lost on a shard).

use bench::service::DstJobRunner;
use dpa_serve::{
    check_conservation, check_depth_bound, Admission, JobSpec, Priority, RejectReason,
    SchedConfig, Service, TenantId,
};
use sim_net::Rng;

/// Cheap single-phase workloads keep the burst fast; the full mix runs in
/// `bench_service`.
const WORKLOADS: &[&str] = &["synth-dpa", "synth-caching", "relax"];
/// Lossless-heavy plan mix with real packet loss included.
const PLANS: &[&str] = &["none", "none", "drop", "delay"];

#[test]
fn burst_10x_sheds_structurally_and_leaks_nothing() {
    let cfg = SchedConfig {
        shards: 2,
        queue_cap: 8,
        // Tenant caps out of the way: this test is about queue shedding.
        tenant_outstanding_cap: 10_000,
        ..SchedConfig::default()
    };
    let burst = cfg.queue_cap * 10 * 2; // 10x capacity, both lanes
    let svc = Service::start(cfg.clone(), DstJobRunner::new());
    let mut rng = Rng::new(0x0_4E12_10AD);
    let mut accepted = 0u64;
    let mut shed = 0u64;
    let mut budget_job = None;
    for i in 0..burst {
        let spec = JobSpec {
            tenant: TenantId((i % 3) as u16),
            priority: if i % 2 == 0 {
                Priority::Interactive
            } else {
                Priority::Batch
            },
            workload: WORKLOADS[rng.below(WORKLOADS.len() as u64) as usize].to_string(),
            seed: rng.below(1_000),
            plan: PLANS[rng.below(PLANS.len() as u64) as usize].to_string(),
            // One job mid-burst gets a budget far below any real run, so
            // it must come back reaped (budget_exhausted), not hang a
            // shard or leak.
            event_budget: if i == burst / 2 { 50 } else { 0 },
        };
        match svc.submit(spec) {
            Admission::Accepted(job) => {
                accepted += 1;
                if i == burst / 2 {
                    budget_job = Some(job);
                }
            }
            Admission::Rejected { reason } => {
                shed += 1;
                assert!(
                    matches!(reason, RejectReason::QueueFull { .. }),
                    "burst overflow must shed on queue capacity, got {reason:?}"
                );
                if let RejectReason::QueueFull { depth, cap, .. } = reason {
                    assert!(depth <= cap, "rejected at depth {depth} beyond cap {cap}");
                }
            }
        }
        // The bounded queue can never grow past its cap, mid-burst included.
        let (qi, qb, busy) = svc.load();
        assert!(qi <= cfg.queue_cap && qb <= cfg.queue_cap, "depth {qi}/{qb} over cap");
        assert!(busy <= cfg.shards);
    }
    assert!(shed > 0, "a 10x burst over a 2-shard pool must shed load");
    // The under-budgeted job is usually shed mid-burst (queue full). Make
    // the reap path deterministic: keep resubmitting it as the queue
    // drains until it lands.
    while budget_job.is_none() {
        let spec = JobSpec {
            tenant: TenantId(0),
            priority: Priority::Batch,
            workload: "synth-dpa".to_string(),
            seed: 7,
            plan: "none".to_string(),
            event_budget: 50,
        };
        match svc.submit(spec) {
            Admission::Accepted(job) => {
                accepted += 1;
                budget_job = Some(job);
            }
            Admission::Rejected { .. } => std::thread::sleep(std::time::Duration::from_millis(1)),
        }
    }

    let report = svc.shutdown();
    assert_eq!(report.jobs.len() as u64, accepted, "every accepted job reported");

    // Structured log invariants: conservation and bounded depth.
    let conservation = check_conservation(&report.log);
    assert!(conservation.is_empty(), "{conservation:?}");
    let depth = check_depth_bound(&report.log, &cfg);
    assert!(depth.is_empty(), "{depth:?}");

    // Oracle battery clean on every completed run; stalls only under the
    // lossy plan or the budget guard.
    for j in &report.jobs {
        assert_eq!(
            j.report.violations, 0,
            "job {:?} ({:?}) flagged by the invariant oracles",
            j.job, j.report
        );
        if !j.report.completed && !j.report.budget_exhausted {
            assert!(
                !j.report.stall.is_empty(),
                "job {:?} stalled without a diagnosis",
                j.job
            );
        }
    }

    // The reaped job is reported, billed, and off the pool.
    let job = budget_job.expect("retry loop guarantees admission");
    let j = report
        .jobs
        .iter()
        .find(|j| j.job == job)
        .expect("under-budgeted job reported, not leaked");
    assert!(j.report.budget_exhausted, "50-event budget must exhaust");
    assert!(!j.report.completed);
    let reaped: u64 = report.ledger.iter().map(|(_, u)| u.reaped).sum();
    assert!(reaped >= 1, "ledger must account the reaped job");

    // Nothing left behind: ledger outstanding all zero.
    for (t, u) in &report.ledger {
        assert_eq!(u.outstanding, 0, "tenant {t:?} leaked outstanding jobs");
        assert_eq!(
            u.accepted,
            u.completed + u.reaped + u.stalled,
            "tenant {t:?} accounting does not balance"
        );
    }
}

/// Mid-run wall-budget enforcement: a tenant admitted with a sliver of
/// wall budget left must have its multi-phase run reaped at the next
/// phase boundary — shard reclaimed, overrun billed as `reaped`, nothing
/// leaked — and once the ledger records the overrun, further submissions
/// from that tenant shed at admission with `TenantWallBudget`.
#[test]
fn wall_budget_reaps_mid_run_and_bills_the_overrun() {
    let cfg = SchedConfig {
        shards: 1,
        // One nanosecond of wall budget: admission (spent 0 < 1) lets the
        // first job through, but any real multi-phase run outlives the
        // deadline before its first phase boundary, so the driver's
        // boundary check must reap it deterministically.
        tenant_wall_budget_ns: 1,
        ..SchedConfig::default()
    };
    let svc = Service::start(cfg, DstJobRunner::new());
    let spec = |seed: u64| JobSpec {
        tenant: TenantId(0),
        priority: Priority::Batch,
        // Multi-phase workload with replication on: the reap must compose
        // with broadcast state carried across boundaries, not just the
        // plain differential driver.
        workload: "graph-repl".to_string(),
        seed,
        plan: "none".to_string(),
        event_budget: 0,
    };
    let first = match svc.submit(spec(3)) {
        Admission::Accepted(job) => job,
        Admission::Rejected { reason } => panic!("first job must admit, got {reason:?}"),
    };
    // Keep submitting until the billed overrun vetoes admission. Jobs
    // accepted before the first bill lands are themselves reaped, so the
    // loop terminates as soon as one complete() runs.
    let mut accepted = 1u64;
    let mut vetoed = false;
    for _ in 0..10_000 {
        match svc.submit(spec(accepted)) {
            Admission::Accepted(_) => accepted += 1,
            Admission::Rejected { reason } => {
                if matches!(
                    reason,
                    RejectReason::QueueFull { .. } | RejectReason::TenantOutstanding { .. }
                ) {
                    // Back-pressure, not the veto under test: wait for the
                    // single shard to drain and bill.
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    continue;
                }
                assert!(
                    matches!(reason, RejectReason::TenantWallBudget { .. }),
                    "over-budget tenant must shed on wall budget, got {reason:?}"
                );
                vetoed = true;
                break;
            }
        }
    }
    assert!(vetoed, "billed wall overrun never vetoed admission");

    let report = svc.shutdown();
    let j = report
        .jobs
        .iter()
        .find(|j| j.job == first)
        .expect("reaped job reported, not leaked");
    assert!(j.report.budget_exhausted, "1ns wall budget must reap the run mid-flight");
    assert!(!j.report.completed, "a reaped run is not a completed run");
    assert!(j.report.sim_events > 0, "phase 0 runs before the boundary check can reap");
    assert!(j.report.wall_ns > 0, "the shard's clock bills the overrun");

    // Every accepted job was reaped (none could finish inside 1ns), all
    // billed to the tenant, nothing outstanding.
    let (_, u) = report
        .ledger
        .iter()
        .find(|(t, _)| *t == TenantId(0))
        .expect("tenant 0 has a ledger entry");
    assert_eq!(u.accepted, accepted, "ledger admissions match");
    assert_eq!(u.reaped, accepted, "every admitted job reaped and billed");
    assert_eq!(u.outstanding, 0, "reaped jobs must not leak as outstanding");
    assert!(u.wall_ns > 0, "wall time billed against the budget");
}

/// Degradation before shedding: with the interactive queue held over
/// `degrade_depth`, batch concurrency must shrink toward the floor of 1
/// while interactive admissions continue — observable as the effective
/// `batch_cap` frozen into placements.
#[test]
fn overload_shrinks_batch_concurrency_before_shedding_interactive() {
    use dpa_serve::{run_model, Arrival, LoadProfile};
    let cfg = SchedConfig {
        shards: 4,
        batch_shard_cap: 4,
        degrade_depth: 2,
        queue_cap: 64,
        ..SchedConfig::default()
    };
    // Synthetic stream: a batch warm-up, then an interactive flood.
    let profile = LoadProfile {
        jobs: 300,
        interactive_ratio: 0.9,
        mean_gap_ns: 30_000,
        service_min_ns: 500_000,
        service_max_ns: 2_000_000,
        ..LoadProfile::default()
    };
    let arrivals: Vec<Arrival> = dpa_serve::gen_arrivals(&profile, 0xDE6);
    let run = run_model(&cfg, &arrivals);
    let min_cap = run
        .log
        .iter()
        .filter_map(|e| match e {
            dpa_serve::LogEntry::Place { batch_cap, .. } => Some(*batch_cap),
            _ => None,
        })
        .min()
        .expect("placements exist");
    assert!(
        min_cap < cfg.batch_shard_cap,
        "interactive flood (max depth {}) never degraded batch concurrency",
        run.max_depth[0]
    );
    assert!(min_cap >= 1, "degradation floor is one shard");
}
