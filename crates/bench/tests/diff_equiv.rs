//! Differential-vs-from-scratch equivalence: [`run_phase_differential`]
//! must produce **bit-identical** integer checksums to running the same
//! multi-timestep workload from scratch every phase
//! ([`run_phase_migrating`]), across the DST matrix of schedules and fault
//! plans.
//!
//! This is the correctness bar for differential re-alignment. The `-diff`
//! apps fold [`dpa_core::DiffPlan::stamp`] — a function of the pointer and
//! the *generation actually read* — into their checksums with a wrapping
//! add, so schedule and reduction order cannot change the digest but a
//! stale carried cache entry (a copy whose generation lags the object)
//! must. A differential run that ever reads a stale carry therefore
//! diverges from the from-scratch comparator here, in addition to
//! tripping the `StaleCacheEntry` oracle inside [`check_run`]. The
//! `-repl` workloads extend the same bar to read-mostly replication: a
//! replica installed by a broadcast is just another generation-stamped
//! copy, so a stale replica read diverges here exactly like a stale
//! carry would.
//!
//! Comparison rules per (workload, plan, seed):
//!
//! * the from-scratch run on the **unperturbed** schedule is the ground
//!   truth digest;
//! * the differential run under the perturbed schedule + fault plan is
//!   checked against it with the standard DST rules ([`check_run`]: exact
//!   digests when nothing dropped, conservation + stall-diagnosis oracles
//!   otherwise);
//! * under lossless plans the differential and from-scratch runs of the
//!   *same* perturbed schedule are additionally compared digest-to-digest.
//!
//! The default test runs a CI-sized subset; the `#[ignore]`d sweep — both
//! `-diff` workloads × all 5 fault plans × 8 seeds — is the nightly lane:
//!
//! ```sh
//! cargo test --release -p bench --test diff_equiv -- --ignored
//! ```

use bench::dst::{
    check_run, plan_for, run_one_mode, schedule_seed, Outcome, Worlds, ALL_PLANS, SMOKE_PLANS,
};
use dpa_core::DstOptions;

const DIFF_WORKLOADS: &[&str] = &["synth-diff", "bh-diff", "graph", "graph-repl", "bh-repl"];

fn opts(plan: &str, seed: u64) -> DstOptions {
    DstOptions {
        schedule_seed: Some(schedule_seed(seed)),
        faults: plan_for(plan, seed),
        ..DstOptions::default()
    }
}

fn digest_of(o: &Outcome) -> &bench::dst::Digest {
    &o.digest
}

/// One (workload, plan, seed) cell of the matrix. Returns the number of
/// digest comparisons performed.
fn check_cell(w: &Worlds, workload: &str, plan: &str, seed: u64, truth: &Outcome) -> usize {
    let o = opts(plan, seed);
    let diff = run_one_mode(w, workload, &o, true);
    // Standard DST verdict for the differential run against the
    // from-scratch ground truth: bit-identical digests when nothing was
    // dropped, the invariant oracles otherwise (a dropped PhaseDelta must
    // stall with a diagnosis, never complete with a stale read).
    let violations = check_run(plan, digest_of(truth), &diff);
    assert!(
        violations.is_empty(),
        "differential run violated DST oracles: workload={workload} plan={plan} seed={seed}:\n  {}",
        violations.join("\n  ")
    );
    let mut compared = usize::from(diff.completed && diff.dropped == 0);
    // Lossless plans: the from-scratch run of the *same* perturbed
    // schedule must also complete, and the two digests must agree bit for
    // bit — equivalence of the two drivers, not just schedule-stability
    // of each.
    if plan != "drop" {
        let scratch = run_one_mode(w, workload, &o, false);
        assert!(
            scratch.completed && diff.completed,
            "lossless plan did not complete: workload={workload} plan={plan} seed={seed} \
             (scratch={} diff={}; stalls: [{}] / [{}])",
            scratch.completed,
            diff.completed,
            scratch.stalls,
            diff.stalls
        );
        if let Some(d) = digest_of(&scratch).diff(digest_of(&diff)) {
            panic!(
                "differential digest diverged from from-scratch: \
                 workload={workload} plan={plan} seed={seed}: {d}"
            );
        }
        compared += 1;
    }
    compared
}

/// CI-sized subset: both `-diff` workloads × the smoke plans × 2 seeds,
/// plus the remaining lossless plans at one seed each.
#[test]
fn differential_matches_from_scratch_smoke() {
    let w = Worlds::build();
    let mut compared = 0;
    for &workload in DIFF_WORKLOADS {
        let truth = run_one_mode(&w, workload, &DstOptions::default(), false);
        assert!(truth.completed, "{workload}: ground-truth run stalled");
        for &plan in SMOKE_PLANS {
            for seed in 1..3 {
                compared += check_cell(&w, workload, plan, seed, &truth);
            }
        }
        for &plan in &["dup", "delay", "pause"] {
            compared += check_cell(&w, workload, plan, 1, &truth);
        }
    }
    assert!(compared >= 14, "smoke subset shrank to {compared} comparisons");
}

/// The full matrix: both `-diff` workloads × all 5 fault plans × 8 seeds.
/// Minutes of work, so nightly-only.
#[test]
#[ignore = "full differential equivalence matrix; run with --ignored (nightly lane)"]
fn differential_matches_from_scratch_full() {
    let w = Worlds::build();
    let mut cells = 0;
    for &workload in DIFF_WORKLOADS {
        let truth = run_one_mode(&w, workload, &DstOptions::default(), false);
        assert!(truth.completed, "{workload}: ground-truth run stalled");
        for &plan in ALL_PLANS {
            for seed in 0..8 {
                check_cell(&w, workload, plan, seed, &truth);
                cells += 1;
            }
        }
    }
    assert_eq!(
        cells,
        DIFF_WORKLOADS.len() * ALL_PLANS.len() * 8,
        "sweep shape changed"
    );
    println!("differential equivalence: {cells} cells, all bit-identical");
}
