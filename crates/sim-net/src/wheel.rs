//! Calendar-queue ("timing wheel") event queue specialized to the
//! simulator's near-monotone timestamps.
//!
//! The sequential engine's event queue sees a very particular access
//! pattern: every push happens while handling the most recently popped
//! event, at a timestamp no earlier than that event's time (sends add
//! transit, wakes add a non-negative delay, faults and jitter only add).
//! A comparison-based heap pays `O(log n)` pointer-chasing compares per
//! operation for a generality that pattern never uses. A calendar queue
//! instead hashes each event by time into a ring of buckets and walks the
//! ring forward — `O(1)` amortized per operation, with all storage in flat
//! arrays (the bucket ring is the event arena: bucket vectors are recycled
//! through a [`fastmsg::arena::VecPool`], so steady-state operation never
//! touches the global allocator).
//!
//! # Ordering contract
//!
//! [`TimingWheel::pop`] yields items in exactly ascending
//! [`EventKey`] `(time, tie, src, seq)` order **of the current contents**,
//! i.e. the same order as a `BinaryHeap` keyed by
//! `Reverse((time, tie, src, seq))`. That contract is what the
//! differential suite (`queue_equiv`, the wheel-vs-heap proptests) pins
//! down: the machine's reports must be bit-identical under either queue.
//!
//! Items pushed with a timestamp earlier than the current cursor bucket
//! (possible only for same-bucket stragglers, since the engine never
//! travels back in time) are clamped into the cursor bucket; within a
//! bucket items sort by their *full key*, so the pop order still matches
//! the heap exactly — a heap could not un-pop already-delivered events
//! either.
//!
//! # Far-future events
//!
//! Events beyond the ring's horizon (`WHEEL_SLOTS` buckets ahead of the
//! cursor — pause-fault deferrals, long timers) wait in an overflow
//! min-heap and migrate into the ring as the cursor approaches. The
//! overflow check is one compare against the heap's root per queue
//! operation, and migration pops exactly the items that entered the
//! window. Keeping the overflow ordered matters when a workload's backlog
//! outgrows the ring window: the wheel then degrades gracefully to
//! heap-like `O(log n)` pushes instead of rescanning an unordered list on
//! every pop.

use fastmsg::arena::VecPool;
use std::collections::BinaryHeap;

/// log2 of the bucket width in nanoseconds (buckets span `2^WHEEL_SHIFT` ns).
pub const WHEEL_SHIFT: u32 = 10;

/// Number of buckets in the ring; the in-ring horizon is
/// `WHEEL_SLOTS << WHEEL_SHIFT` ns (~2.1 ms) ahead of the cursor.
pub const WHEEL_SLOTS: usize = 2048;

const SLOT_MASK: u64 = WHEEL_SLOTS as u64 - 1;

/// The total event order: time, then schedule tie-break, then source node,
/// then per-source sequence number. Identical to the sequential engine's
/// historical `BinaryHeap` key, so either queue yields the same schedule.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventKey {
    /// Delivery time in ns.
    pub time: u64,
    /// Seeded tie-break (0 in the default schedule).
    pub tie: u64,
    /// Originating node.
    pub src: u16,
    /// Per-source sequence number — unique per `(src, seq)`, which makes
    /// every key in one machine unique.
    pub seq: u64,
}

/// Anything the wheel can order: an item that knows its [`EventKey`].
pub trait WheelItem {
    /// The item's position in the total event order.
    fn key(&self) -> EventKey;
}

/// Overflow entry ordered as a *min*-heap element: the `Ord` impl is
/// reversed so `BinaryHeap`'s max-root is the earliest key.
struct OverflowItem<T>(T);

impl<T: WheelItem> PartialEq for OverflowItem<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T: WheelItem> Eq for OverflowItem<T> {}
impl<T: WheelItem> PartialOrd for OverflowItem<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: WheelItem> Ord for OverflowItem<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.key().cmp(&self.0.key())
    }
}

struct Bucket<T> {
    /// Absolute bucket index (`time >> WHEEL_SHIFT`, cursor-clamped) of the
    /// items currently stored here; meaningful only when `items` is
    /// nonempty. At most one absolute bucket occupies a slot at a time
    /// because all live items sit within one `WHEEL_SLOTS` window.
    abs: u64,
    /// Whether `items` is sorted (descending by key, so `pop` takes from
    /// the end). Cleared by pushes, restored lazily on the next pop/peek.
    sorted: bool,
    items: Vec<T>,
}

/// A calendar queue yielding items in ascending [`EventKey`] order.
///
/// Generic over [`WheelItem`] so the property tests can model it against a
/// `BinaryHeap` with plain test structs.
pub struct TimingWheel<T> {
    slots: Vec<Bucket<T>>,
    /// Absolute bucket index of the most recent pop/peek position; all
    /// earlier buckets are empty, and every in-ring item lives in
    /// `[cursor, cursor + WHEEL_SLOTS)`.
    cursor: u64,
    /// Items currently stored in the ring (excludes overflow).
    in_ring: usize,
    /// Items beyond the ring horizon, as a min-heap on their keys.
    overflow: BinaryHeap<OverflowItem<T>>,
    /// Recycled storage for bucket vectors.
    pool: VecPool<T>,
}

impl<T: WheelItem> Default for TimingWheel<T> {
    fn default() -> Self {
        TimingWheel::new()
    }
}

impl<T: WheelItem> TimingWheel<T> {
    /// An empty wheel with its cursor at time zero.
    pub fn new() -> TimingWheel<T> {
        TimingWheel {
            slots: (0..WHEEL_SLOTS)
                .map(|_| Bucket {
                    abs: 0,
                    sorted: true,
                    items: Vec::new(),
                })
                .collect(),
            cursor: 0,
            in_ring: 0,
            overflow: BinaryHeap::new(),
            pool: VecPool::new(),
        }
    }

    /// Number of queued items.
    #[inline]
    pub fn len(&self) -> usize {
        self.in_ring + self.overflow.len()
    }

    /// `true` when no items are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queue `item` at its key's time.
    #[inline]
    pub fn push(&mut self, item: T) {
        let t = item.key().time;
        // Clamp stragglers into the cursor bucket: buckets before the
        // cursor are drained and stay empty, and within-bucket order is by
        // full key, so this preserves heap-identical pop order.
        let abs = (t >> WHEEL_SHIFT).max(self.cursor);
        if abs >= self.cursor + WHEEL_SLOTS as u64 {
            self.overflow.push(OverflowItem(item));
        } else {
            self.place(abs, item);
        }
    }

    /// Insert into the ring bucket `abs` (which must be in the window).
    #[inline]
    fn place(&mut self, abs: u64, item: T) {
        let slot = &mut self.slots[(abs & SLOT_MASK) as usize];
        if slot.items.is_empty() {
            if slot.items.capacity() == 0 {
                slot.items = self.pool.take();
            }
            slot.abs = abs;
        } else {
            debug_assert_eq!(slot.abs, abs, "two windows occupy one slot");
        }
        slot.items.push(item);
        slot.sorted = slot.items.len() <= 1;
        self.in_ring += 1;
    }

    /// Remove and return the minimum-key item.
    pub fn pop(&mut self) -> Option<T> {
        let i = self.position()?;
        let bucket = &mut self.slots[i];
        let item = bucket.items.pop().expect("positioned bucket is nonempty");
        self.in_ring -= 1;
        if bucket.items.is_empty() {
            // Retire the bucket's storage to the pool so idle slots hold no
            // capacity and hot capacity keeps circulating.
            self.pool.put(std::mem::take(&mut bucket.items));
        }
        Some(item)
    }

    /// Key of the minimum item without removing it.
    ///
    /// Takes `&mut self` because peeking performs the same lazy
    /// positioning (overflow migration, cursor advance, bucket sort) as
    /// [`pop`](TimingWheel::pop); repeated peeks are `O(1)`.
    pub fn peek_key(&mut self) -> Option<EventKey> {
        let i = self.position()?;
        Some(self.slots[i].items.last().expect("nonempty bucket").key())
    }

    /// Visit every queued item in unspecified order (diagnostics).
    pub fn for_each(&self, mut f: impl FnMut(&T)) {
        for slot in &self.slots {
            for item in &slot.items {
                f(item);
            }
        }
        for item in &self.overflow {
            f(&item.0);
        }
    }

    /// Time of the earliest overflow item (`u64::MAX` when empty).
    #[inline]
    fn overflow_min(&self) -> u64 {
        self.overflow.peek().map_or(u64::MAX, |i| i.0.key().time)
    }

    /// Advance the cursor to the first nonempty bucket (migrating due
    /// overflow items first) and sort it; returns its slot index, or
    /// `None` when the queue is empty.
    fn position(&mut self) -> Option<usize> {
        if self.in_ring == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            // Ring drained: jump straight to the earliest overflow bucket.
            self.cursor = self.overflow_min() >> WHEEL_SHIFT;
            self.migrate_overflow();
        } else if (self.overflow_min() >> WHEEL_SHIFT) < self.cursor + WHEEL_SLOTS as u64 {
            // The root is `u64::MAX` when overflow is empty, so this
            // branch only fires when a far-future item entered the window.
            self.migrate_overflow();
        }
        debug_assert!(self.in_ring > 0);
        let start = self.cursor;
        let mut abs = start;
        loop {
            let i = (abs & SLOT_MASK) as usize;
            if !self.slots[i].items.is_empty() {
                debug_assert_eq!(self.slots[i].abs, abs, "stale bucket in scan window");
                self.cursor = abs;
                let bucket = &mut self.slots[i];
                if !bucket.sorted {
                    // Descending by key: `pop` then takes the minimum from
                    // the end in O(1). Keys are unique (per-source seqs),
                    // so unstable sorting is deterministic.
                    bucket.items.sort_unstable_by_key(|i| std::cmp::Reverse(i.key()));
                    bucket.sorted = true;
                }
                return Some(i);
            }
            abs += 1;
            debug_assert!(
                abs < start + WHEEL_SLOTS as u64,
                "scan ran off the window with {} items in the ring",
                self.in_ring
            );
        }
    }

    /// Empty the wheel and rewind its cursor to time zero, recycling every
    /// bucket's storage through the pool. After `reset` the wheel behaves
    /// exactly like [`TimingWheel::new`] — the only difference is that the
    /// bucket-vector pool keeps its warmed capacity, which is the point:
    /// a shard running back-to-back jobs never rebuilds the ring.
    pub fn reset(&mut self) {
        for slot in &mut self.slots {
            if !slot.items.is_empty() {
                slot.items.clear();
                self.pool.put(std::mem::take(&mut slot.items));
            }
            slot.abs = 0;
            slot.sorted = true;
        }
        self.cursor = 0;
        self.in_ring = 0;
        self.overflow.clear();
    }

    /// Move every overflow item whose bucket entered the window into the
    /// ring. The heap yields items in ascending key order, so this pops
    /// exactly the due prefix — `O(k log n)` for `k` migrated items.
    fn migrate_overflow(&mut self) {
        let end = self.cursor + WHEEL_SLOTS as u64;
        while let Some(top) = self.overflow.peek() {
            let t = top.0.key().time;
            if (t >> WHEEL_SHIFT) >= end {
                break;
            }
            let item = self.overflow.pop().expect("peeked overflow item").0;
            self.place((t >> WHEEL_SHIFT).max(self.cursor), item);
        }
    }
}

/// Which event-queue implementation a machine runs on.
///
/// The wheel is the production queue; the shadow heap is the original
/// `BinaryHeap` kept alive for differential testing (`queue_equiv`,
/// `DPA_SIM_QUEUE=heap` CI runs). Both produce bit-identical schedules.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum QueueKind {
    /// Calendar-queue timing wheel (default).
    #[default]
    Wheel,
    /// The original binary heap, retained as a differential shadow.
    ShadowHeap,
}

/// Queue implementation requested via the `DPA_SIM_QUEUE` environment
/// variable: `heap`/`shadow` selects the shadow heap, anything else (or
/// unset) the timing wheel. Lets CI rerun the whole suite on the shadow
/// queue without code changes.
pub fn env_queue() -> QueueKind {
    match std::env::var("DPA_SIM_QUEUE") {
        Ok(v) if v.trim().eq_ignore_ascii_case("heap") || v.trim().eq_ignore_ascii_case("shadow") => {
            QueueKind::ShadowHeap
        }
        _ => QueueKind::Wheel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    struct Item(EventKey);

    impl WheelItem for Item {
        fn key(&self) -> EventKey {
            self.0
        }
    }

    fn k(time: u64, tie: u64, src: u16, seq: u64) -> Item {
        Item(EventKey {
            time,
            tie,
            src,
            seq,
        })
    }

    #[test]
    fn pops_in_key_order() {
        let mut w: TimingWheel<Item> = TimingWheel::new();
        // Same bucket, distinct keys, inserted out of order.
        w.push(k(500, 1, 0, 0));
        w.push(k(500, 0, 1, 0));
        w.push(k(200, 0, 0, 1));
        w.push(k(500, 0, 0, 2));
        assert_eq!(w.len(), 4);
        let order: Vec<EventKey> = std::iter::from_fn(|| w.pop()).map(|i| i.0).collect();
        let times: Vec<(u64, u64, u16, u64)> =
            order.iter().map(|e| (e.time, e.tie, e.src, e.seq)).collect();
        assert_eq!(
            times,
            vec![(200, 0, 0, 1), (500, 0, 0, 2), (500, 0, 1, 0), (500, 1, 0, 0)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn straggler_in_cursor_bucket_still_sorts_first() {
        let mut w: TimingWheel<Item> = TimingWheel::new();
        w.push(k(5_000, 0, 0, 0));
        assert_eq!(w.pop().unwrap().0.time, 5_000);
        // Cursor is now in bucket 4; a push into an earlier (drained)
        // bucket is clamped but must still pop before later times.
        w.push(k(9_000, 0, 0, 1));
        w.push(k(3_000, 0, 0, 2));
        assert_eq!(w.pop().unwrap().0.time, 3_000);
        assert_eq!(w.pop().unwrap().0.time, 9_000);
    }

    #[test]
    fn far_future_overflow_round_trips() {
        let mut w: TimingWheel<Item> = TimingWheel::new();
        let horizon = (WHEEL_SLOTS as u64) << WHEEL_SHIFT;
        w.push(k(10 * horizon, 0, 0, 0)); // far future: overflow
        w.push(k(100, 0, 0, 1));
        w.push(k(3 * horizon, 0, 0, 2)); // also overflow
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop().unwrap().0.time, 100);
        assert_eq!(w.pop().unwrap().0.time, 3 * horizon);
        assert_eq!(w.pop().unwrap().0.time, 10 * horizon);
        assert!(w.pop().is_none());
    }

    #[test]
    fn peek_matches_pop_and_is_stable() {
        let mut w: TimingWheel<Item> = TimingWheel::new();
        w.push(k(800, 0, 2, 0));
        w.push(k(800, 0, 1, 0));
        let peeked = w.peek_key().unwrap();
        assert_eq!(peeked, w.peek_key().unwrap());
        assert_eq!(peeked, w.pop().unwrap().0);
        assert_eq!(peeked.src, 1);
    }

    #[test]
    fn for_each_visits_ring_and_overflow() {
        let mut w: TimingWheel<Item> = TimingWheel::new();
        let horizon = (WHEEL_SLOTS as u64) << WHEEL_SHIFT;
        w.push(k(1, 0, 0, 0));
        w.push(k(2 * horizon, 0, 0, 1));
        let mut seen = Vec::new();
        w.for_each(|i| seen.push(i.0.seq));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn reset_behaves_like_fresh() {
        let horizon = (WHEEL_SLOTS as u64) << WHEEL_SHIFT;
        let mut w: TimingWheel<Item> = TimingWheel::new();
        // Advance the cursor deep into the ring, leave items in both the
        // ring and the overflow, then reset: the wheel must accept and
        // order a from-zero stream exactly like a fresh wheel.
        w.push(k(5 * horizon / 2, 0, 0, 0));
        assert_eq!(w.pop().unwrap().0.seq, 0);
        w.push(k(3 * horizon, 0, 0, 1)); // lands in ring ahead of cursor
        w.push(k(30 * horizon, 0, 0, 2)); // overflow
        assert_eq!(w.len(), 2);
        w.reset();
        assert!(w.is_empty());
        let mut fresh: TimingWheel<Item> = TimingWheel::new();
        for item in [k(700, 1, 0, 3), k(700, 0, 1, 4), k(10, 0, 0, 5), k(40 * horizon, 0, 0, 6)] {
            w.push(item);
            fresh.push(item);
        }
        loop {
            let (a, b) = (w.pop(), fresh.pop());
            assert_eq!(a.map(|i| i.0), b.map(|i| i.0), "reset wheel diverged from fresh");
            if b.is_none() {
                break;
            }
        }
    }

    #[test]
    fn matches_heap_on_near_monotone_stream() {
        // A deterministic pseudo-random near-monotone workload: pushes at
        // `now + small delta` interleaved with pops, plus occasional
        // far-future spikes — the simulator's actual pattern.
        let mut w: TimingWheel<Item> = TimingWheel::new();
        let mut h: BinaryHeap<Reverse<EventKey>> = BinaryHeap::new();
        let mut x: u64 = 0x1234_5678_9ABC_DEF0;
        let mut next = |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % m
        };
        let mut now = 0u64;
        let mut seq = 0u64;
        for _ in 0..5_000 {
            if next(3) == 0 || w.is_empty() {
                let delta = if next(50) == 0 {
                    // Far-future spike (overflow path).
                    (WHEEL_SLOTS as u64) << (WHEEL_SHIFT + 2)
                } else {
                    next(200_000)
                };
                let item = k(now + delta, next(4), next(3) as u16, seq);
                seq += 1;
                w.push(item);
                h.push(Reverse(item.0));
            } else {
                let a = w.pop().map(|i| i.0);
                let b = h.pop().map(|Reverse(e)| e);
                assert_eq!(a, b, "wheel diverged from heap");
                if let Some(e) = a {
                    now = now.max(e.time);
                }
            }
        }
        while let Some(Reverse(e)) = h.pop() {
            assert_eq!(w.pop().map(|i| i.0), Some(e));
        }
        assert!(w.is_empty());
    }
}
