//! Execution-timeline tracing: per-node busy spans exportable as a Chrome
//! trace (viewable in `chrome://tracing` or Perfetto).
//!
//! When enabled on a [`crate::Machine`], every CPU charge appends (or
//! extends) a span tagged local/overhead, giving the classic per-node
//! Gantt view of a phase — gaps are idle time. This is the visual form of
//! the paper's breakdown figure, per node instead of averaged.

use crate::stats::ChargeKind;
use std::fmt::Write as _;

/// One contiguous busy span on a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Node the span ran on.
    pub node: u16,
    /// Start, ns.
    pub start_ns: u64,
    /// Duration, ns.
    pub dur_ns: u64,
    /// What the CPU was doing.
    pub kind: ChargeKind,
}

/// A bounded trace buffer. Adjacent same-kind charges coalesce into one
/// span, so typical phases stay well under the cap.
#[derive(Clone, Debug)]
pub struct Trace {
    spans: Vec<Span>,
    /// Hard cap; beyond it new spans are dropped (and counted).
    pub capacity: usize,
    /// Spans dropped at the cap.
    pub dropped: u64,
}

impl Trace {
    /// An empty trace holding at most `capacity` spans.
    pub fn new(capacity: usize) -> Trace {
        Trace {
            spans: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Record a charge of `dur_ns` starting at `start_ns` on `node`.
    pub fn record(&mut self, node: u16, start_ns: u64, dur_ns: u64, kind: ChargeKind) {
        if dur_ns == 0 {
            return;
        }
        if let Some(last) = self.spans.last_mut() {
            if last.node == node && last.kind == kind && last.start_ns + last.dur_ns == start_ns
            {
                last.dur_ns += dur_ns;
                return;
            }
        }
        if self.spans.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.spans.push(Span {
            node,
            start_ns,
            dur_ns,
            kind,
        });
    }

    /// The recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Total busy ns recorded for `node` (for cross-checks against stats).
    pub fn busy_ns(&self, node: u16) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.node == node)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// Export as Chrome trace-event JSON (complete events, µs units).
    /// Each simulated node appears as a thread; local work and overhead
    /// are separately-named spans.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, s) in self.spans.iter().enumerate() {
            let name = match s.kind {
                ChargeKind::Local => "local",
                ChargeKind::Overhead => "overhead",
            };
            let _ = write!(
                out,
                "  {{\"name\":\"{name}\",\"cat\":\"sim\",\"ph\":\"X\",\
                 \"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{}}}",
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                s.node
            );
            out.push_str(if i + 1 == self.spans.len() { "\n" } else { ",\n" });
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_same_kind_coalesce() {
        let mut t = Trace::new(16);
        t.record(0, 0, 10, ChargeKind::Local);
        t.record(0, 10, 5, ChargeKind::Local);
        assert_eq!(t.spans().len(), 1);
        assert_eq!(t.spans()[0].dur_ns, 15);
        // Different kind breaks the run.
        t.record(0, 15, 3, ChargeKind::Overhead);
        assert_eq!(t.spans().len(), 2);
        // A gap breaks the run too (idle in between).
        t.record(0, 30, 2, ChargeKind::Overhead);
        assert_eq!(t.spans().len(), 3);
        assert_eq!(t.busy_ns(0), 20);
    }

    #[test]
    fn capacity_drops_not_panics() {
        let mut t = Trace::new(2);
        t.record(0, 0, 1, ChargeKind::Local);
        t.record(1, 0, 1, ChargeKind::Local);
        t.record(2, 0, 1, ChargeKind::Local);
        assert_eq!(t.spans().len(), 2);
        assert_eq!(t.dropped, 1);
    }

    #[test]
    fn zero_duration_ignored() {
        let mut t = Trace::new(4);
        t.record(0, 5, 0, ChargeKind::Local);
        assert!(t.spans().is_empty());
    }

    #[test]
    fn chrome_json_well_formed() {
        let mut t = Trace::new(4);
        t.record(0, 1_000, 2_000, ChargeKind::Local);
        t.record(1, 500, 1_500, ChargeKind::Overhead);
        let j = t.to_chrome_json();
        assert!(j.starts_with('['));
        assert!(j.ends_with(']'));
        assert!(j.contains("\"name\":\"local\""));
        assert!(j.contains("\"name\":\"overhead\""));
        assert!(j.contains("\"tid\":1"));
        assert!(j.contains("\"ts\":1.000"));
        assert_eq!(j.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn empty_trace_is_valid_json() {
        assert_eq!(Trace::new(1).to_chrome_json(), "[\n]");
    }
}
