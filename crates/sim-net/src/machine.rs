//! The discrete-event machine: P nodes, ordered event queues, and two
//! interchangeable simulation loops — the conservative sequential drain
//! and a conservative time-window parallel engine.
//!
//! Each node runs a user-supplied [`Proc`] behavior. Handlers are
//! *non-blocking*: they run to completion, charging simulated CPU time via
//! [`Ctx::charge`] and emitting messages via [`Ctx::send`]. The machine owns
//! the clock of every node; when a node's next event lies in its future the
//! gap is accounted as idle time. Two runs with identical inputs produce
//! identical event orders (ties broken by the `(time, tie, src, seq)` key,
//! with `seq` assigned per *source* node), so all reported times are exactly
//! reproducible.
//!
//! # Parallel execution
//!
//! [`Machine::run_parallel`] shards nodes round-robin across OS threads and
//! executes conservative time windows (Chandy–Misra style): each window
//! computes the global minimum pending event time `T`, then every shard
//! processes its events with `time < T + lookahead` independently, where
//! `lookahead` is the smallest possible source-to-remote-destination delay
//! (`send_overhead + gap·header + latency`). Any message produced by an
//! event at time `t ≥ T` arrives at a *different* node no earlier than
//! `t + lookahead ≥ T + lookahead`, so nothing executed in the window can
//! invalidate it. Self-sends and wake timers (zero transit) stay in the
//! producing shard's own queues and are drained in-window in key order.
//! Cross-shard sends are staged per window and merged by the event key,
//! which is a pure function of shard-local state — so the merged order is
//! independent of worker interleaving and the parallel run is
//! **bit-identical** to [`Machine::run`].

use crate::fault::{FaultAction, FaultInjector, FaultPlan};
use crate::network::{MsgSize, NetConfig};
use crate::stats::{ChargeKind, NodeStats, RunStats};
use crate::time::{Dur, Time};
use crate::trace::Trace;
use crate::wheel::{env_queue, EventKey, QueueKind, TimingWheel, WheelItem};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Identifier of a simulated node (0-based, dense).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Number of worker threads requested via the `DPA_SIM_THREADS` environment
/// variable (1 — i.e. sequential — when unset or unparsable).
pub fn env_threads() -> usize {
    std::env::var("DPA_SIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(1)
}

/// Behavior of one simulated node.
///
/// All handlers receive a [`Ctx`] for charging time and sending messages.
/// Handlers must not block; long-running work is expressed by charging its
/// cost and, if it must wait for data, by recording a continuation and
/// returning (the DPA runtime in `dpa-core` is exactly such a continuation
/// store).
pub trait Proc {
    /// Message type exchanged between nodes.
    type Msg: MsgSize;

    /// Called once at time zero, before any messages flow.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message from `src` is delivered to this node.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, src: NodeId, msg: Self::Msg);

    /// Called when a timer scheduled with [`Ctx::wake_after`] fires.
    fn on_wake(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// `true` when the node has no internal pending work. The run is
    /// `completed` only if every node is quiescent when the event queue
    /// drains; otherwise the report flags a stall (e.g. a dropped reply).
    fn quiescent(&self) -> bool {
        true
    }

    /// Called once after the run, to flush app-level counters into stats.
    fn on_finish(&mut self, stats: &mut NodeStats) {
        let _ = stats;
    }

    /// When the run stalls (`quiescent()` is false after the queue
    /// drains), a human-readable description of *what* this node is
    /// waiting on — e.g. the pending pointers whose replies never came.
    /// Surfaced in [`RunReport::stalls`] so a failed run is actionable.
    fn stall_detail(&self) -> Option<String> {
        None
    }
}

enum EventKind<M> {
    Deliver { msg: M },
    Wake,
}

struct Event<M> {
    time: Time,
    /// Secondary sort key: 0 in the default schedule; a seeded hash of
    /// `(src, seq)` under schedule perturbation, so same-timestamp events
    /// pop in a per-seed pseudorandom permutation.
    tie: u64,
    /// Originating node; part of the total order so that the order is a
    /// pure function of per-source event streams (what lets the parallel
    /// engine merge cross-shard traffic deterministically).
    src: NodeId,
    /// Per-*source* sequence number (ties within a source are FIFO).
    seq: u64,
    dst: NodeId,
    kind: EventKind<M>,
}

impl<M> Event<M> {
    fn key(&self) -> EventKey {
        EventKey {
            time: self.time.0,
            tie: self.tie,
            src: self.src.0,
            seq: self.seq,
        }
    }
}

impl<M> WheelItem for Event<M> {
    fn key(&self) -> EventKey {
        Event::key(self)
    }
}

/// Unique per-event nonce folded into the tie hash: per-source sequence
/// numbers are disambiguated by the source id.
fn event_nonce(src: u16, seq: u64) -> u64 {
    (seq << 16) | src as u64
}

/// SplitMix-style finalizer: the tie-break permutation for one seed.
fn tie_hash(seed: u64, nonce: u64) -> u64 {
    let mut z = seed ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stateless per-send jitter draw: a pure function of the jitter seed and
/// the send's channel + per-source sequence number, so sequential and
/// parallel runs (which route the same sends in the same per-source order)
/// compute identical jitter without sharing an RNG stream.
fn jitter_hash(seed: u64, src: u16, dst: u16, seq: u64) -> u64 {
    tie_hash(
        seed ^ (dst as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
        event_nonce(src, seq),
    )
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed so the max-heap shadow queue pops the minimum key.
        Reverse(self.key()).cmp(&Reverse(other.key()))
    }
}

/// The machine's event queue: the production timing wheel, or the original
/// binary heap kept as a differential-testing shadow (both always compiled;
/// selection is a run-time [`QueueKind`]). The two yield identical pop
/// orders — `queue_equiv` and the wheel proptests enforce it.
enum EventQueue<M> {
    Wheel(TimingWheel<Event<M>>),
    Heap(BinaryHeap<Event<M>>),
}

impl<M> EventQueue<M> {
    fn new(kind: QueueKind) -> EventQueue<M> {
        match kind {
            QueueKind::Wheel => EventQueue::Wheel(TimingWheel::new()),
            QueueKind::ShadowHeap => EventQueue::Heap(BinaryHeap::new()),
        }
    }

    fn kind(&self) -> QueueKind {
        match self {
            EventQueue::Wheel(_) => QueueKind::Wheel,
            EventQueue::Heap(_) => QueueKind::ShadowHeap,
        }
    }

    #[inline]
    fn push(&mut self, ev: Event<M>) {
        match self {
            EventQueue::Wheel(w) => w.push(ev),
            EventQueue::Heap(h) => h.push(ev),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Event<M>> {
        match self {
            EventQueue::Wheel(w) => w.pop(),
            EventQueue::Heap(h) => h.pop(),
        }
    }

    /// Time of the earliest pending event (`&mut` because the wheel
    /// repositions lazily on peek).
    #[inline]
    fn peek_time(&mut self) -> Option<u64> {
        match self {
            EventQueue::Wheel(w) => w.peek_key().map(|k| k.time),
            EventQueue::Heap(h) => h.peek().map(|e| e.time.0),
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            EventQueue::Wheel(w) => w.is_empty(),
            EventQueue::Heap(h) => h.is_empty(),
        }
    }

    /// Drop any leftover events and rewind to the time-zero state,
    /// retaining warmed storage (the wheel's bucket-vector pool).
    fn reset(&mut self) {
        match self {
            EventQueue::Wheel(w) => w.reset(),
            EventQueue::Heap(h) => h.clear(),
        }
    }

    /// Visit every queued event in unspecified order (diagnostics).
    fn for_each(&self, mut f: impl FnMut(&Event<M>)) {
        match self {
            EventQueue::Wheel(w) => w.for_each(f),
            EventQueue::Heap(h) => {
                for ev in h.iter() {
                    f(ev);
                }
            }
        }
    }
}

struct PendingSend<M> {
    dst: NodeId,
    at: Time,
    src: NodeId,
    /// `None` marks a wake timer; `Some` a message delivery.
    msg: Option<M>,
}

/// Per-handler execution context: the node's clock, stats, and outbox.
pub struct Ctx<'a, M> {
    id: NodeId,
    clock: &'a mut Time,
    stats: &'a mut NodeStats,
    net: &'a NetConfig,
    out: &'a mut Vec<PendingSend<M>>,
    trace: &'a mut Option<Trace>,
    nodes: u16,
}

impl<'a, M: MsgSize> Ctx<'a, M> {
    /// The node this handler is running on.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the machine.
    #[inline]
    pub fn num_nodes(&self) -> u16 {
        self.nodes
    }

    /// Current simulated time at this node.
    #[inline]
    pub fn now(&self) -> Time {
        *self.clock
    }

    /// The network cost model in effect.
    #[inline]
    pub fn net(&self) -> &NetConfig {
        self.net
    }

    /// This node's running time accounting. Idle is charged *before* each
    /// event is delivered, so at handler time the breakdown is current —
    /// which is what lets a proc read its own idle/overhead fractions as
    /// live feedback signals (see `dpa_core::stripctl`).
    #[inline]
    pub fn stats(&self) -> &NodeStats {
        self.stats
    }

    /// Advance this node's clock by `d`, accounting it to `kind`.
    #[inline]
    pub fn charge(&mut self, kind: ChargeKind, d: Dur) {
        if let Some(t) = self.trace.as_mut() {
            t.record(self.id.0, self.clock.as_ns(), d.as_ns(), kind);
        }
        *self.clock += d;
        self.stats.charge(kind, d);
    }

    /// Convenience: charge local (useful) computation in ns.
    #[inline]
    pub fn charge_local(&mut self, ns: u64) {
        self.charge(ChargeKind::Local, Dur::from_ns(ns));
    }

    /// Convenience: charge communication overhead in ns.
    #[inline]
    pub fn charge_overhead(&mut self, ns: u64) {
        self.charge(ChargeKind::Overhead, Dur::from_ns(ns));
    }

    /// Bump an app-level counter on this node's stats.
    #[inline]
    pub fn bump(&mut self, name: &'static str, by: u64) {
        self.stats.bump(name, by);
    }

    /// Send `msg` to `dst`. Charges the sender's per-message busy time as
    /// overhead and schedules delivery after the wire transit. A send to
    /// self skips the wire but still pays software overheads (loopback),
    /// matching FM semantics.
    pub fn send(&mut self, dst: NodeId, msg: M) {
        let bytes = msg.size_bytes();
        let busy = self.net.send_busy(bytes);
        self.charge(ChargeKind::Overhead, busy);
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        let at = *self.clock + self.net.transit(dst == self.id);
        self.out.push(PendingSend {
            dst,
            at,
            src: self.id,
            msg: Some(msg),
        });
    }

    /// Schedule a [`Proc::on_wake`] callback `d` from now.
    pub fn wake_after(&mut self, d: Dur) {
        let at = *self.clock + d;
        self.out.push(PendingSend {
            dst: self.id,
            at,
            src: self.id,
            msg: None,
        });
    }
}

/// Diagnostic for one non-quiescent node after the event queue drained.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StallInfo {
    /// The stuck node.
    pub node: NodeId,
    /// Messages this node sent.
    pub msgs_sent: u64,
    /// Messages this node received.
    pub msgs_recv: u64,
    /// Messages destined to this node that fault injection dropped — the
    /// usual culprits for the stall.
    pub undelivered: u64,
    /// The node's own account of what it is waiting on
    /// ([`Proc::stall_detail`]), e.g. the stuck pending pointers.
    pub detail: Option<String>,
}

impl std::fmt::Display for StallInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: sent {} recv {} undelivered-to {}",
            self.node, self.msgs_sent, self.msgs_recv, self.undelivered
        )?;
        if let Some(d) = &self.detail {
            write!(f, " — {d}")?;
        }
        Ok(())
    }
}

/// Result of a complete machine run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Per-node time/traffic accounting (idle already extended to the
    /// global makespan, i.e. barrier semantics).
    pub stats: RunStats,
    /// `true` iff every node reported quiescent when the queue drained
    /// (and the event budget was not exhausted).
    /// `false` indicates a stall, e.g. a reply lost to fault injection.
    pub completed: bool,
    /// One entry per non-quiescent node when `completed` is false
    /// (deadlock detection: the queue drained but work remains).
    pub stalls: Vec<StallInfo>,
    /// Total events delivered over the run (all nodes).
    pub events_processed: u64,
    /// `true` when the run stopped because it hit [`Machine::max_events`]
    /// with events still queued (runaway/livelock guard). The per-node
    /// `stalls` entries then carry queued-event counts in their detail.
    pub budget_exhausted: bool,
}

impl RunReport {
    /// The phase execution time the paper reports (global makespan).
    pub fn makespan(&self) -> Time {
        self.stats.makespan
    }

    /// One-line-per-node description of the stall (empty when completed).
    pub fn stall_summary(&self) -> String {
        self.stalls
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Event routing state: fault decisions, per-source sequence numbers, and
/// schedule-perturbation parameters. The sequential engine owns one; the
/// parallel engine gives each shard its own (per-channel fault streams and
/// per-source seq/jitter draws partition cleanly by source shard, so the
/// shard-local couriers reproduce exactly the sequential courier's output).
#[derive(Clone)]
struct Courier {
    faults: FaultInjector,
    /// Next event sequence number, per *source* node.
    next_seq: Vec<u64>,
    /// `Some(seed)` ⇒ same-timestamp events pop in a seeded permutation.
    schedule_seed: Option<u64>,
    jitter_seed: u64,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
    /// Per-destination count of messages lost to fault injection.
    dropped_to: Vec<u64>,
}

impl Courier {
    fn new(n: usize, plan: FaultPlan) -> Courier {
        Courier {
            faults: FaultInjector::new(plan),
            next_seq: vec![0; n],
            schedule_seed: None,
            jitter_seed: 0xA5A5_5A5A_DEAD_BEEF,
            dropped: 0,
            duplicated: 0,
            delayed: 0,
            dropped_to: vec![0; n],
        }
    }

    fn make_event<M>(&mut self, time: Time, src: NodeId, dst: NodeId, kind: EventKind<M>) -> Event<M> {
        let seq = self.next_seq[src.index()];
        self.next_seq[src.index()] = seq + 1;
        let tie = match self.schedule_seed {
            Some(seed) => tie_hash(seed, event_nonce(src.0, seq)),
            None => 0,
        };
        Event {
            time,
            tie,
            src,
            seq,
            dst,
            kind,
        }
    }

    /// Turn pending sends into events: apply faults, jitter, and pause
    /// deferral, assign per-source sequence numbers, and hand each event to
    /// `push`. Pure shard-local state — both engines produce identical
    /// events for identical per-source send streams.
    fn route<M: MsgSize + Clone>(
        &mut self,
        jitter_ns: u64,
        out: &mut Vec<PendingSend<M>>,
        mut push: impl FnMut(Event<M>),
    ) {
        for p in out.drain(..) {
            let msg = match p.msg {
                Some(m) => m,
                None => {
                    // Wake timers bypass the network: no faults, no jitter.
                    push(self.make_event(p.at, p.src, p.dst, EventKind::Wake));
                    continue;
                }
            };
            let (extra_delay_ns, duplicate) = match self.faults.decide(p.src.0, p.dst.0) {
                FaultAction::Drop => {
                    self.dropped += 1;
                    self.dropped_to[p.dst.index()] += 1;
                    continue;
                }
                FaultAction::Deliver {
                    extra_delay_ns,
                    duplicate,
                } => (extra_delay_ns, duplicate),
            };
            let jitter = if jitter_ns > 0 && p.dst != p.src {
                jitter_hash(self.jitter_seed, p.src.0, p.dst.0, self.next_seq[p.src.index()])
                    % (jitter_ns + 1)
            } else {
                0
            };
            if extra_delay_ns > 0 {
                self.delayed += 1;
            }
            let at_ns = self
                .faults
                .pause_adjust(p.dst.0, p.at.0 + extra_delay_ns + jitter);
            let at = Time(at_ns);
            if duplicate {
                self.duplicated += 1;
                let copy = msg.clone();
                push(self.make_event(at, p.src, p.dst, EventKind::Deliver { msg: copy }));
            }
            push(self.make_event(at, p.src, p.dst, EventKind::Deliver { msg }));
        }
    }
}

/// Deliver one event to its destination proc: account idle up to the event
/// time, charge receive overhead for messages, and run the handler. Shared
/// verbatim by the sequential and parallel engines.
#[allow(clippy::too_many_arguments)]
fn deliver_one<P: Proc>(
    proc_: &mut P,
    ev: Event<P::Msg>,
    clock: &mut Time,
    stats: &mut NodeStats,
    net: &NetConfig,
    nodes: u16,
    out: &mut Vec<PendingSend<P::Msg>>,
    trace: &mut Option<Trace>,
) {
    // Waiting for this event is idle time for the destination node.
    if ev.time > *clock {
        let gap = ev.time - *clock;
        stats.idle += gap;
        *clock = ev.time;
    }
    let mut ctx = Ctx {
        id: ev.dst,
        clock,
        stats,
        net,
        out,
        trace,
        nodes,
    };
    match ev.kind {
        EventKind::Deliver { msg } => {
            let bytes = msg.size_bytes();
            ctx.stats.msgs_recv += 1;
            ctx.stats.bytes_recv += bytes as u64;
            let busy = ctx.net.recv_busy(bytes);
            ctx.charge(ChargeKind::Overhead, busy);
            proc_.on_message(&mut ctx, ev.src, msg);
        }
        EventKind::Wake => proc_.on_wake(&mut ctx),
    }
}

/// A P-node discrete-event machine running `P::Msg` traffic over `net`.
pub struct Machine<P: Proc> {
    procs: Vec<P>,
    net: NetConfig,
    clocks: Vec<Time>,
    stats: Vec<NodeStats>,
    queue: EventQueue<P::Msg>,
    courier: Courier,
    trace: Option<Trace>,
    /// Hard cap on processed events; when hit, the run stops and reports a
    /// structured budget-exhausted stall (see [`RunReport::budget_exhausted`]).
    pub max_events: u64,
}

impl<P: Proc> Machine<P> {
    /// Build a machine from one `Proc` per node.
    pub fn new(procs: Vec<P>, net: NetConfig) -> Machine<P> {
        let n = procs.len();
        assert!(n > 0 && n <= u16::MAX as usize, "node count {n}");
        // The legacy `NetConfig::drop_every` knob maps onto a fault plan.
        let plan = FaultPlan {
            drop_every: net.drop_every,
            ..FaultPlan::default()
        };
        Machine {
            procs,
            net,
            clocks: vec![Time::ZERO; n],
            stats: vec![NodeStats::default(); n],
            queue: EventQueue::new(env_queue()),
            courier: Courier::new(n, plan),
            trace: None,
            max_events: u64::MAX,
        }
    }

    /// Install a fault plan (replaces any legacy `drop_every` mapping).
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.courier.faults = FaultInjector::new(plan);
    }

    /// Rewind this machine for another run with fresh procs, recycling the
    /// warmed event-queue storage (the timing wheel's bucket pool) instead
    /// of rebuilding it — the shard-pool / multi-phase reuse path.
    ///
    /// After `reset` the machine is observationally identical to
    /// `Machine::new(procs, net)` with the current fault *plan*
    /// re-installed: clocks and stats rewind to zero, per-source sequence
    /// numbers restart, fault RNG streams restart from the plan seed,
    /// schedule perturbation is cleared (re-apply [`perturb_schedule`]
    /// if wanted), tracing is disabled, and `max_events` returns to
    /// unlimited. Any events left queued by an abandoned (budget-
    /// exhausted) run are discarded. The regression suites hold reset
    /// runs bit-identical to fresh-machine runs under both queue kinds.
    ///
    /// [`perturb_schedule`]: Machine::perturb_schedule
    pub fn reset(&mut self, procs: Vec<P>) {
        let n = procs.len();
        assert!(n > 0 && n <= u16::MAX as usize, "node count {n}");
        let plan = self.courier.faults.plan().clone();
        self.procs = procs;
        self.clocks = vec![Time::ZERO; n];
        self.stats = vec![NodeStats::default(); n];
        self.queue.reset();
        self.courier = Courier::new(n, plan);
        self.trace = None;
        self.max_events = u64::MAX;
    }

    /// Select the event-queue implementation (wheel vs shadow heap). The
    /// default comes from [`env_queue`]; differential tests call this to
    /// pin each run's queue explicitly. Must be called before `run`.
    pub fn set_queue_kind(&mut self, kind: QueueKind) {
        debug_assert!(self.queue.is_empty(), "set_queue_kind on a started machine");
        if self.queue.kind() != kind {
            self.queue = EventQueue::new(kind);
        }
    }

    /// The event-queue implementation this machine runs on.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// Enable seeded schedule perturbation: events with equal timestamps
    /// pop in a per-`seed` pseudorandom permutation instead of FIFO order,
    /// and when `net.jitter_ns > 0` remote deliveries also get a seeded
    /// jitter in `[0, jitter_ns]`. Each seed yields one deterministic,
    /// exactly-replayable alternative schedule.
    pub fn perturb_schedule(&mut self, seed: u64) {
        self.courier.schedule_seed = Some(seed);
        self.courier.jitter_seed = seed ^ 0xA5A5_5A5A_DEAD_BEEF;
    }

    /// Record per-node busy spans during the run (see [`crate::trace`]).
    /// `capacity` bounds the span count; adjacent charges coalesce.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// Take the recorded trace after [`Machine::run`].
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.procs.len()
    }

    /// Immutable access to a node's behavior (for post-run inspection).
    pub fn proc(&self, id: NodeId) -> &P {
        &self.procs[id.index()]
    }

    /// Mutable access to a node's behavior — for post-run state hand-off,
    /// e.g. carrying a migration table into the next phase's machine.
    pub fn proc_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.procs[id.index()]
    }

    /// Assemble the report after either engine has drained (or abandoned)
    /// the event state. `pending[i]` counts events still queued for node
    /// `i` when the budget ran out.
    fn finalize(
        &mut self,
        events_processed: u64,
        budget_exhausted: bool,
        pending: &[u64],
    ) -> RunReport {
        let n = self.procs.len();
        let completed = !budget_exhausted && self.procs.iter().all(|p| p.quiescent());
        let makespan = self.clocks.iter().copied().max().unwrap_or(Time::ZERO);

        // Barrier semantics: every node waits for the slowest one, so
        // trailing time up to the makespan is idle.
        for i in 0..n {
            if makespan > self.clocks[i] {
                self.stats[i].idle += makespan - self.clocks[i];
                self.clocks[i] = makespan;
            }
            self.procs[i].on_finish(&mut self.stats[i]);
        }

        // Deadlock detection: the queue drained, yet some node still has
        // pending work — or the event budget cut the run short. Name the
        // culprits instead of a bare `false`.
        let mut stalls = Vec::new();
        if !completed {
            for (i, p) in self.procs.iter().enumerate() {
                let queued = pending.get(i).copied().unwrap_or(0);
                if !p.quiescent() || queued > 0 {
                    let mut detail = p.stall_detail();
                    if budget_exhausted {
                        let note = format!(
                            "event budget exhausted after {events_processed} events \
                             ({queued} still queued here)"
                        );
                        detail = Some(match detail {
                            Some(d) => format!("{note}; {d}"),
                            None => note,
                        });
                    }
                    stalls.push(StallInfo {
                        node: NodeId(i as u16),
                        msgs_sent: self.stats[i].msgs_sent,
                        msgs_recv: self.stats[i].msgs_recv,
                        undelivered: self.courier.dropped_to[i],
                        detail,
                    });
                }
            }
        }

        RunReport {
            stats: RunStats {
                nodes: std::mem::take(&mut self.stats),
                makespan,
                dropped_packets: self.courier.dropped,
                duplicated_packets: self.courier.duplicated,
                delayed_packets: self.courier.delayed,
            },
            completed,
            stalls,
            events_processed,
            budget_exhausted,
        }
    }
}

impl<P: Proc> Machine<P>
where
    P::Msg: Clone,
{
    /// Run to completion: start every node, then drain the event queue.
    /// Consumes the machine's event state; call [`Machine::reset`] with
    /// fresh procs to run the machine again.
    pub fn run(&mut self) -> RunReport {
        let n = self.procs.len();
        let mut out: Vec<PendingSend<P::Msg>> = Vec::new();
        let jitter_ns = self.net.jitter_ns;

        for i in 0..n {
            let mut ctx = Ctx {
                id: NodeId(i as u16),
                clock: &mut self.clocks[i],
                stats: &mut self.stats[i],
                net: &self.net,
                out: &mut out,
                trace: &mut self.trace,
                nodes: n as u16,
            };
            self.procs[i].on_start(&mut ctx);
            let queue = &mut self.queue;
            self.courier.route(jitter_ns, &mut out, |ev| queue.push(ev));
        }

        let mut events_processed: u64 = 0;
        let mut budget_exhausted = false;
        while let Some(ev) = self.queue.pop() {
            if events_processed == self.max_events {
                // Runaway guard: stop before the budget-busting event and
                // report a structured stall instead of aborting the process.
                self.queue.push(ev);
                budget_exhausted = true;
                break;
            }
            events_processed += 1;
            let i = ev.dst.index();
            deliver_one(
                &mut self.procs[i],
                ev,
                &mut self.clocks[i],
                &mut self.stats[i],
                &self.net,
                n as u16,
                &mut out,
                &mut self.trace,
            );
            let queue = &mut self.queue;
            self.courier.route(jitter_ns, &mut out, |ev| queue.push(ev));
        }

        let mut pending = vec![0u64; n];
        if budget_exhausted {
            self.queue.for_each(|ev| pending[ev.dst.index()] += 1);
        }
        self.finalize(events_processed, budget_exhausted, &pending)
    }
}

// ------------------------------------------------------------------ parallel

/// A reusable spin barrier for the window loop. Spins briefly then yields
/// (the simulation is frequently run on hosts with fewer cores than
/// workers, where pure spinning would serialize pathologically), and
/// supports poisoning so a panicking worker releases — and fails — its
/// peers instead of deadlocking the scope.
struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    fn new(total: usize) -> SpinBarrier {
        SpinBarrier {
            total,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::SeqCst);
        let arrived = self.count.fetch_add(1, Ordering::SeqCst) + 1;
        if arrived == self.total {
            self.count.store(0, Ordering::SeqCst);
            self.generation.store(generation.wrapping_add(1), Ordering::SeqCst);
        } else {
            let mut spins: u32 = 0;
            while self.generation.load(Ordering::SeqCst) == generation {
                if self.poisoned.load(Ordering::SeqCst) {
                    panic!("parallel worker panicked");
                }
                spins = spins.saturating_add(1);
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
        if self.poisoned.load(Ordering::SeqCst) {
            panic!("parallel worker panicked");
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        // Release any current waiters so they observe the poison.
        self.generation.fetch_add(1, Ordering::SeqCst);
    }
}

/// Poisons the barrier if the owning worker unwinds, so sibling workers
/// fail fast instead of spinning forever on a barrier that will never fill.
struct PoisonOnPanic<'a>(&'a SpinBarrier);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// One worker's slice of the machine: the procs, clocks, stats, and event
/// queues of the nodes it owns (round-robin: shard `s` of `S` owns global
/// node `j·S + s` as its local node `j`), plus a shard-local [`Courier`].
struct Shard<P: Proc> {
    procs: Vec<P>,
    clocks: Vec<Time>,
    stats: Vec<NodeStats>,
    queues: Vec<EventQueue<P::Msg>>,
    courier: Courier,
    events: u64,
}

/// Route the outbox into shard-local queues (own nodes) or per-destination-
/// shard staging buffers (cross-shard, flushed at the window boundary).
fn route_sharded<M: MsgSize + Clone>(
    courier: &mut Courier,
    jitter_ns: u64,
    out: &mut Vec<PendingSend<M>>,
    s: usize,
    nshards: usize,
    queues: &mut [EventQueue<M>],
    outgoing: &mut [Vec<Event<M>>],
) {
    courier.route(jitter_ns, out, |ev| {
        let d = ev.dst.index();
        if d % nshards == s {
            queues[d / nshards].push(ev);
        } else {
            outgoing[d % nshards].push(ev);
        }
    });
}

fn flush_outgoing<M>(outgoing: &mut [Vec<Event<M>>], inboxes: &[Mutex<Vec<Event<M>>>]) {
    for (d, staged) in outgoing.iter_mut().enumerate() {
        if !staged.is_empty() {
            inboxes[d].lock().expect("sibling worker panicked").append(staged);
        }
    }
}

/// The per-worker window loop. Two barriers per window: one after every
/// shard has published the min time of its pending events (so all agree on
/// the horizon), one after every shard has flushed its cross-shard sends
/// (so the next window's drain sees them all).
#[allow(clippy::too_many_arguments)]
fn run_shard<P: Proc>(
    shard: &mut Shard<P>,
    s: usize,
    nshards: usize,
    n: u16,
    net: &NetConfig,
    lookahead: u64,
    inboxes: &[Mutex<Vec<Event<P::Msg>>>],
    mins: &[AtomicU64],
    barrier: &SpinBarrier,
) where
    P::Msg: MsgSize + Clone,
{
    let _guard = PoisonOnPanic(barrier);
    let jitter_ns = net.jitter_ns;
    let mut out: Vec<PendingSend<P::Msg>> = Vec::new();
    let mut outgoing: Vec<Vec<Event<P::Msg>>> = (0..nshards).map(|_| Vec::new()).collect();
    // The parallel engine never traces (callers needing a trace run
    // sequentially); a local no-op slot satisfies `Ctx`.
    let mut trace: Option<Trace> = None;
    let local = shard.procs.len();

    for j in 0..local {
        let gid = NodeId((j * nshards + s) as u16);
        let mut ctx = Ctx {
            id: gid,
            clock: &mut shard.clocks[j],
            stats: &mut shard.stats[j],
            net,
            out: &mut out,
            trace: &mut trace,
            nodes: n,
        };
        shard.procs[j].on_start(&mut ctx);
        route_sharded(
            &mut shard.courier,
            jitter_ns,
            &mut out,
            s,
            nshards,
            &mut shard.queues,
            &mut outgoing,
        );
    }
    flush_outgoing(&mut outgoing, inboxes);
    barrier.wait();

    loop {
        // Merge what other shards sent us last window, then publish our
        // earliest pending event time.
        {
            let mut inbox = inboxes[s].lock().expect("sibling worker panicked");
            for ev in inbox.drain(..) {
                shard.queues[ev.dst.index() / nshards].push(ev);
            }
        }
        let local_min = shard
            .queues
            .iter_mut()
            .filter_map(|q| q.peek_time())
            .min()
            .unwrap_or(u64::MAX);
        mins[s].store(local_min, Ordering::SeqCst);
        barrier.wait();

        let t_min = mins
            .iter()
            .map(|m| m.load(Ordering::SeqCst))
            .min()
            .unwrap_or(u64::MAX);
        if t_min == u64::MAX {
            break; // No events anywhere: every shard sees this and exits.
        }
        let horizon = t_min.saturating_add(lookahead);

        // Execute this window: everything strictly below the horizon is
        // safe. Handlers may push new events into their *own* node's queue
        // (self-sends/wakes, zero transit) below the horizon — those drain
        // here too, in key order; any event for a different node lands at
        // `≥ time + lookahead ≥ horizon` and waits for the next window.
        for j in 0..local {
            while shard.queues[j].peek_time().is_some_and(|t| t < horizon) {
                let ev = shard.queues[j].pop().expect("peeked event");
                shard.events += 1;
                deliver_one(
                    &mut shard.procs[j],
                    ev,
                    &mut shard.clocks[j],
                    &mut shard.stats[j],
                    net,
                    n,
                    &mut out,
                    &mut trace,
                );
                route_sharded(
                    &mut shard.courier,
                    jitter_ns,
                    &mut out,
                    s,
                    nshards,
                    &mut shard.queues,
                    &mut outgoing,
                );
            }
        }
        flush_outgoing(&mut outgoing, inboxes);
        barrier.wait();
    }
}

impl<P: Proc + Send> Machine<P>
where
    P::Msg: Clone + Send,
{
    /// `run()` when `threads <= 1`, otherwise [`Machine::run_parallel`].
    pub fn run_threads(&mut self, threads: usize) -> RunReport {
        if threads > 1 {
            self.run_parallel(threads)
        } else {
            self.run()
        }
    }

    /// `true` when the parallel engine can reproduce the sequential run
    /// bit-for-bit for this configuration. The remaining cases fall back:
    /// tracing (span order is a sequential notion), a zero-latency network
    /// (no lookahead, no safe window), an event budget (the cut-off point
    /// is schedule-dependent), and the legacy global-counter faults
    /// `drop_nth` / `drop_every` (their "n-th message of the *run*" is
    /// defined by the sequential send interleaving).
    fn parallel_supported(&self) -> bool {
        let plan = self.courier.faults.plan();
        self.procs.len() > 1
            && self.trace.is_none()
            && self.max_events == u64::MAX
            && self.net.latency_ns > 0
            && plan.drop_nth.is_none()
            && plan.drop_every.is_none()
    }

    /// Run with `threads` workers under the conservative time-window
    /// engine. Produces a [`RunReport`] bit-identical to [`Machine::run`];
    /// configurations the windowed engine cannot reproduce exactly (see
    /// `parallel_supported`) silently run sequentially instead.
    pub fn run_parallel(&mut self, threads: usize) -> RunReport {
        let n = self.procs.len();
        let nshards = threads.min(n);
        if nshards <= 1 || !self.parallel_supported() {
            return self.run();
        }
        debug_assert!(self.queue.is_empty(), "run_parallel on a consumed machine");

        // The soonest an event at time `t` can affect another node:
        // `send_busy(0) + latency` later (payloads/faults/jitter only add).
        let lookahead = self.net.latency_ns
            + self.net.send_overhead_ns
            + self.net.gap_ns_per_byte * self.net.header_bytes as u64;

        // Deal nodes round-robin: global `i` → shard `i % S`, local slot
        // `i / S`. Each shard's courier claims the machine plan; per-source
        // seq counters and per-channel fault streams partition by source.
        let mut shards: Vec<Shard<P>> = (0..nshards)
            .map(|_| Shard {
                procs: Vec::new(),
                clocks: Vec::new(),
                stats: Vec::new(),
                queues: Vec::new(),
                courier: self.courier.clone(),
                events: 0,
            })
            .collect();
        let queue_kind = self.queue.kind();
        for (i, p) in self.procs.drain(..).enumerate() {
            let sh = &mut shards[i % nshards];
            sh.procs.push(p);
            sh.clocks.push(Time::ZERO);
            sh.stats.push(NodeStats::default());
            sh.queues.push(EventQueue::new(queue_kind));
        }

        let inboxes: Vec<Mutex<Vec<Event<P::Msg>>>> =
            (0..nshards).map(|_| Mutex::new(Vec::new())).collect();
        let mins: Vec<AtomicU64> = (0..nshards).map(|_| AtomicU64::new(u64::MAX)).collect();
        let barrier = SpinBarrier::new(nshards);
        let net = self.net.clone();

        std::thread::scope(|scope| {
            let (first, rest) = shards.split_first_mut().expect("nshards >= 2");
            for (k, shard) in rest.iter_mut().enumerate() {
                let s = k + 1;
                let (net, inboxes, mins, barrier) = (&net, &inboxes, &mins, &barrier);
                scope.spawn(move || {
                    run_shard(shard, s, nshards, n as u16, net, lookahead, inboxes, mins, barrier);
                });
            }
            run_shard(first, 0, nshards, n as u16, &net, lookahead, &inboxes, &mins, &barrier);
        });

        // Reassemble machine order and merge the couriers' counters.
        let mut events_processed = 0u64;
        let mut procs: Vec<Option<P>> = (0..n).map(|_| None).collect();
        for (s, shard) in shards.into_iter().enumerate() {
            events_processed += shard.events;
            for (j, p) in shard.procs.into_iter().enumerate() {
                let gid = j * nshards + s;
                procs[gid] = Some(p);
                self.clocks[gid] = shard.clocks[j];
                self.stats[gid] = shard.stats[j].clone();
            }
            self.courier.dropped += shard.courier.dropped;
            self.courier.duplicated += shard.courier.duplicated;
            self.courier.delayed += shard.courier.delayed;
            for (i, d) in shard.courier.dropped_to.iter().enumerate() {
                self.courier.dropped_to[i] += d;
            }
        }
        self.procs = procs.into_iter().map(|p| p.expect("every node reassembled")).collect();

        self.finalize(events_processed, false, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial ping-pong proc: node 0 sends `k` pings to node 1, which
    /// echoes each one back.
    struct PingPong {
        to_send: u32,
        received: u32,
        expect: u32,
    }

    impl Proc for PingPong {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            for i in 0..self.to_send {
                ctx.send(NodeId(1), i as u64);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, src: NodeId, msg: u64) {
            self.received += 1;
            if ctx.me() == NodeId(1) {
                ctx.send(src, msg + 1000);
            }
        }

        fn quiescent(&self) -> bool {
            self.received == self.expect
        }
    }

    fn pingpong_machine(k: u32, net: NetConfig) -> Machine<PingPong> {
        Machine::new(
            vec![
                PingPong {
                    to_send: k,
                    received: 0,
                    expect: k,
                },
                PingPong {
                    to_send: 0,
                    received: 0,
                    expect: k,
                },
            ],
            net,
        )
    }

    #[test]
    fn pingpong_completes() {
        let mut m = pingpong_machine(5, NetConfig::default());
        let r = m.run();
        assert!(r.completed);
        assert_eq!(r.stats.total_msgs(), 10);
        assert_eq!(r.events_processed, 10);
        assert!(!r.budget_exhausted);
        assert!(r.makespan().as_ns() > 0);
    }

    #[test]
    fn deterministic_makespan() {
        let a = pingpong_machine(7, NetConfig::default()).run();
        let b = pingpong_machine(7, NetConfig::default()).run();
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.stats.nodes[0].idle, b.stats.nodes[0].idle);
        assert_eq!(a, b, "reports are bitwise identical across runs");
    }

    #[test]
    fn idle_accounted_while_waiting() {
        let mut m = pingpong_machine(1, NetConfig::default());
        let r = m.run();
        // Node 0 sends, then idles until the echo returns.
        assert!(r.stats.nodes[0].idle.as_ns() > 0);
    }

    #[test]
    fn barrier_extends_idle_to_makespan() {
        let mut m = pingpong_machine(3, NetConfig::default());
        let r = m.run();
        for s in &r.stats.nodes {
            assert_eq!(s.total(), r.makespan() - Time::ZERO + Dur::ZERO);
        }
    }

    #[test]
    fn fault_injection_drops_and_flags() {
        let net = NetConfig {
            drop_every: Some(2),
            ..NetConfig::default()
        };
        let mut m = pingpong_machine(4, net);
        let r = m.run();
        assert!(!r.completed, "dropped replies must flag a stall");
        assert!(r.stats.dropped_packets > 0);
    }

    #[test]
    fn free_network_zero_overhead() {
        let mut m = pingpong_machine(2, NetConfig::free());
        let r = m.run();
        assert!(r.completed);
        assert_eq!(r.stats.nodes[0].overhead.as_ns(), 0);
        assert_eq!(r.makespan().as_ns(), 0);
    }

    /// Timer wakes fire in order and count as idle while waiting.
    struct Sleeper {
        fired: Vec<u64>,
    }

    impl Proc for Sleeper {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.wake_after(Dur::from_us(10));
            ctx.wake_after(Dur::from_us(5));
        }

        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _src: NodeId, _msg: ()) {}

        fn on_wake(&mut self, ctx: &mut Ctx<'_, ()>) {
            self.fired.push(ctx.now().as_ns());
        }
    }

    #[test]
    fn wakes_fire_in_time_order() {
        let mut m = Machine::new(vec![Sleeper { fired: vec![] }], NetConfig::default());
        let r = m.run();
        assert!(r.completed);
        assert_eq!(m.proc(NodeId(0)).fired, vec![5_000, 10_000]);
        assert_eq!(r.stats.nodes[0].idle.as_ns(), 10_000);
    }

    #[test]
    fn trace_spans_account_all_busy_time() {
        let mut m = pingpong_machine(4, NetConfig::default());
        m.enable_tracing(1 << 16);
        let r = m.run();
        let trace = m.take_trace().expect("tracing enabled");
        assert_eq!(trace.dropped, 0);
        for (i, ns) in r.stats.nodes.iter().enumerate() {
            let busy = ns.local.as_ns() + ns.overhead.as_ns();
            assert_eq!(trace.busy_ns(i as u16), busy, "node {i}");
        }
        // Spans are per-node time-ordered and non-overlapping.
        for n in 0..2u16 {
            let mut end = 0;
            for s in trace.spans().iter().filter(|s| s.node == n) {
                assert!(s.start_ns >= end, "overlap on node {n}");
                end = s.start_ns + s.dur_ns;
            }
        }
    }

    #[test]
    fn stall_report_names_stuck_nodes() {
        let net = NetConfig {
            drop_every: Some(2),
            ..NetConfig::default()
        };
        let mut m = pingpong_machine(4, net);
        let r = m.run();
        assert!(!r.completed);
        assert!(!r.stalls.is_empty(), "stall must carry diagnostics");
        for s in &r.stalls {
            assert!(s.undelivered > 0, "stuck node should see dropped traffic");
        }
        assert!(r.stall_summary().contains("undelivered-to"));
        // A completed run carries no stall entries.
        let ok = pingpong_machine(4, NetConfig::default()).run();
        assert!(ok.completed && ok.stalls.is_empty());
    }

    #[test]
    fn perturbed_schedules_are_deterministic_per_seed() {
        let run = |seed: Option<u64>| {
            let mut m = pingpong_machine(8, NetConfig::default());
            if let Some(s) = seed {
                m.perturb_schedule(s);
            }
            let r = m.run();
            assert!(r.completed);
            (r.makespan(), m.proc(NodeId(0)).received)
        };
        // Same seed ⇒ identical run; results identical across schedules.
        assert_eq!(run(Some(7)), run(Some(7)));
        assert_eq!(run(None).1, run(Some(7)).1);
        assert_eq!(run(Some(1)).1, run(Some(2)).1);
    }

    #[test]
    fn jitter_changes_timing_not_results() {
        let run = |seed: u64, jitter: u64| {
            let mut m = pingpong_machine(6, NetConfig {
                jitter_ns: jitter,
                ..NetConfig::default()
            });
            m.perturb_schedule(seed);
            let r = m.run();
            assert!(r.completed, "jitter must not lose messages");
            (r.makespan(), m.proc(NodeId(0)).received)
        };
        let base = run(3, 0);
        let mut saw_different_makespan = false;
        for seed in 0..8 {
            let j = run(seed, 20_000);
            assert_eq!(j.1, base.1, "received count is schedule-invariant");
            if j.0 != base.0 {
                saw_different_makespan = true;
            }
        }
        assert!(saw_different_makespan, "jitter should move the makespan");
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let mut m = pingpong_machine(5, NetConfig::default());
        m.set_faults(FaultPlan::duplicate(11, 1.0));
        let r = m.run();
        // Every ping and every echo is doubled: node 0 sees 2× echoes and
        // node 1 re-echoes each duplicated ping.
        assert_eq!(r.stats.duplicated_packets, r.stats.total_msgs());
        assert!(m.proc(NodeId(0)).received > 5);
    }

    #[test]
    fn delay_fault_slows_but_completes() {
        let base = pingpong_machine(5, NetConfig::default()).run();
        let mut m = pingpong_machine(5, NetConfig::default());
        m.set_faults(FaultPlan::delay(13, 1.0, 1_000_000));
        let r = m.run();
        assert!(r.completed);
        assert!(r.stats.delayed_packets > 0);
        assert!(r.makespan() > base.makespan());
    }

    #[test]
    fn drop_nth_kills_exactly_one_message() {
        let mut m = pingpong_machine(5, NetConfig::default());
        m.set_faults(FaultPlan::drop_nth(2));
        let r = m.run();
        assert!(!r.completed);
        assert_eq!(r.stats.dropped_packets, 1);
        assert_eq!(r.stalls.len(), 2, "both sides wait on the lost ping");
    }

    #[test]
    fn node_pause_defers_delivery() {
        let mut m = pingpong_machine(1, NetConfig::default());
        m.set_faults(FaultPlan {
            pauses: vec![crate::fault::NodePause {
                node: 1,
                from_ns: 0,
                until_ns: 5_000_000,
            }],
            ..FaultPlan::default()
        });
        let r = m.run();
        assert!(r.completed);
        assert!(
            r.makespan().as_ns() >= 5_000_000,
            "ping waits out the pause window"
        );
    }

    /// Echoes forever between two nodes (runaway-guard fodder).
    struct Echo;
    impl Proc for Echo {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == NodeId(0) {
                ctx.send(NodeId(1), 0);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, src: NodeId, msg: u64) {
            ctx.send(src, msg + 1);
        }
        fn quiescent(&self) -> bool {
            true // The livelock is entirely in flight, not in node state.
        }
    }

    #[test]
    fn runaway_guard_reports_structured_stall() {
        let mut m = Machine::new(vec![Echo, Echo], NetConfig::default());
        m.max_events = 100;
        let r = m.run();
        assert!(!r.completed, "budget exhaustion is not completion");
        assert!(r.budget_exhausted);
        assert_eq!(r.events_processed, 100);
        assert!(!r.stalls.is_empty(), "budget stall must carry diagnostics");
        let detail = r.stalls[0].detail.as_deref().unwrap_or("");
        assert!(
            detail.contains("event budget exhausted after 100 events"),
            "got detail: {detail}"
        );
        assert!(detail.contains("still queued here"), "got detail: {detail}");
    }

    #[test]
    fn budget_equal_to_event_count_still_completes() {
        // 10 events total (5 pings + 5 echoes): a budget of exactly 10
        // must not trip the guard.
        let mut m = pingpong_machine(5, NetConfig::default());
        m.max_events = 10;
        let r = m.run();
        assert!(r.completed);
        assert!(!r.budget_exhausted);
        assert_eq!(r.events_processed, 10);
    }

    // ------------------------------------------------------- parallel engine

    /// All-to-all with replies and a timer: node `i` sends one request to
    /// every other node; each request is echoed; every node also schedules
    /// a wake. Exercises cross-shard traffic, self-queues, and ties.
    struct AllToAll {
        me: u16,
        received: u32,
        expect: u32,
        woke: bool,
        checksum: u64,
    }

    impl Proc for AllToAll {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            let n = ctx.num_nodes();
            ctx.wake_after(Dur::from_us(3));
            for d in 0..n {
                if d != self.me {
                    ctx.send(NodeId(d), (self.me as u64) << 8 | d as u64);
                }
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, src: NodeId, msg: u64) {
            self.received += 1;
            self.checksum = self
                .checksum
                .wrapping_mul(0x100_0000_01B3)
                .wrapping_add(msg ^ (src.0 as u64) << 32);
            ctx.charge_local(500);
            if msg < 1 << 16 {
                ctx.send(src, msg | 1 << 20);
            }
        }

        fn on_wake(&mut self, _ctx: &mut Ctx<'_, u64>) {
            self.woke = true;
        }

        fn quiescent(&self) -> bool {
            self.woke && self.received == self.expect
        }
    }

    fn all_to_all(n: u16) -> Machine<AllToAll> {
        Machine::new(
            (0..n)
                .map(|me| AllToAll {
                    me,
                    received: 0,
                    expect: 2 * (n as u32 - 1),
                    woke: false,
                    checksum: 0,
                })
                .collect(),
            NetConfig::default(),
        )
    }

    fn checksums(m: &Machine<AllToAll>) -> Vec<u64> {
        (0..m.num_nodes() as u16)
            .map(|i| m.proc(NodeId(i)).checksum)
            .collect()
    }

    #[test]
    fn parallel_bit_identical_to_sequential() {
        let n = 9;
        let mut base = all_to_all(n);
        let want = base.run();
        let want_sums = checksums(&base);
        assert!(want.completed);
        for k in [2usize, 3, 4, 8] {
            let mut m = all_to_all(n);
            let got = m.run_parallel(k);
            assert_eq!(got, want, "run_parallel({k}) diverged");
            assert_eq!(checksums(&m), want_sums, "checksums diverged at k={k}");
        }
    }

    #[test]
    fn parallel_bit_identical_under_perturbation_and_faults() {
        let build = |seed: u64| {
            let mut m = all_to_all(8);
            m.net.jitter_ns = 2_000;
            m.set_faults(FaultPlan {
                seed,
                dup_p: 0.2,
                delay_p: 0.3,
                delay_max_ns: 50_000,
                ..FaultPlan::default()
            });
            m.perturb_schedule(seed);
            m
        };
        for seed in 0..6 {
            let want = build(seed).run();
            for k in [2usize, 4] {
                let got = build(seed).run_parallel(k);
                assert_eq!(got, want, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn run_threads_one_is_sequential() {
        let want = all_to_all(5).run();
        let got = all_to_all(5).run_threads(1);
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_falls_back_when_unsupported() {
        // Zero latency: no lookahead, must fall back (and still be right).
        let mut m = pingpong_machine(3, NetConfig::free());
        let want = pingpong_machine(3, NetConfig::free()).run();
        assert_eq!(m.run_parallel(4), want);
        // Global-counter faults: ditto.
        let mk = || {
            let mut m = all_to_all(6);
            m.set_faults(FaultPlan::drop_nth(4));
            m
        };
        let want = mk().run();
        assert_eq!(mk().run_parallel(4), want);
        // Event budget: ditto.
        let mk = || {
            let mut m = Machine::new(vec![Echo, Echo], NetConfig::default());
            m.max_events = 64;
            m
        };
        let want = mk().run();
        let got = mk().run_parallel(2);
        assert_eq!(got, want);
        assert!(got.budget_exhausted);
    }

    #[test]
    fn parallel_more_threads_than_nodes_clamps() {
        let want = all_to_all(3).run();
        let got = all_to_all(3).run_parallel(16);
        assert_eq!(got, want);
    }

    #[test]
    fn shadow_heap_bit_identical_to_wheel() {
        // Same machine, both queue implementations, with ties, jitter,
        // faults, and schedule perturbation in play: reports and app state
        // must match exactly.
        let build = |kind: QueueKind, seed: u64| {
            let mut m = all_to_all(7);
            m.net.jitter_ns = 3_000;
            m.set_faults(FaultPlan {
                seed,
                dup_p: 0.25,
                delay_p: 0.25,
                delay_max_ns: 40_000,
                ..FaultPlan::default()
            });
            m.perturb_schedule(seed);
            m.set_queue_kind(kind);
            m
        };
        for seed in 0..4 {
            let mut a = build(QueueKind::Wheel, seed);
            let mut b = build(QueueKind::ShadowHeap, seed);
            assert_eq!(a.run(), b.run(), "queues diverged at seed {seed}");
            assert_eq!(checksums(&a), checksums(&b));
        }
    }

    #[test]
    fn pause_fault_exercises_wheel_overflow() {
        // A multi-millisecond pause pushes deliveries far beyond the
        // wheel's in-ring horizon: the overflow path must reproduce the
        // shadow heap exactly.
        let build = |kind: QueueKind| {
            let mut m = pingpong_machine(3, NetConfig::default());
            m.set_faults(FaultPlan {
                pauses: vec![crate::fault::NodePause {
                    node: 1,
                    from_ns: 0,
                    until_ns: 50_000_000,
                }],
                ..FaultPlan::default()
            });
            m.set_queue_kind(kind);
            m
        };
        let a = build(QueueKind::Wheel).run();
        let b = build(QueueKind::ShadowHeap).run();
        assert_eq!(a, b);
        assert!(a.completed && a.makespan().as_ns() >= 50_000_000);
    }

    // ------------------------------------------------------------- reset

    /// Configure an all-to-all machine with jitter, probabilistic faults,
    /// and a perturbed schedule — the adversarial reuse case.
    fn arm(m: &mut Machine<AllToAll>, seed: u64) {
        m.net.jitter_ns = 2_500;
        m.set_faults(FaultPlan {
            seed,
            dup_p: 0.2,
            delay_p: 0.25,
            delay_max_ns: 30_000,
            ..FaultPlan::default()
        });
        m.perturb_schedule(seed);
    }

    fn a2a_procs(n: u16) -> Vec<AllToAll> {
        (0..n)
            .map(|me| AllToAll {
                me,
                received: 0,
                expect: 2 * (n as u32 - 1),
                woke: false,
                checksum: 0,
            })
            .collect()
    }

    #[test]
    fn reset_runs_bit_identical_to_fresh() {
        for kind in [QueueKind::Wheel, QueueKind::ShadowHeap] {
            // Fresh baselines for two different jobs.
            let mut f1 = all_to_all(7);
            f1.set_queue_kind(kind);
            arm(&mut f1, 11);
            let want1 = f1.run();
            let mut f2 = all_to_all(5);
            f2.set_queue_kind(kind);
            arm(&mut f2, 23);
            let want2 = f2.run();

            // One machine running both jobs back-to-back via reset.
            let mut m = all_to_all(7);
            m.set_queue_kind(kind);
            arm(&mut m, 11);
            let got1 = m.run();
            assert_eq!(got1, want1, "first run diverged ({kind:?})");
            assert_eq!(checksums(&m), checksums(&f1));
            m.reset(a2a_procs(5));
            arm(&mut m, 23);
            let got2 = m.run();
            assert_eq!(got2, want2, "reset run diverged from fresh ({kind:?})");
            assert_eq!(checksums(&m), checksums(&f2));
        }
    }

    #[test]
    fn reset_discards_abandoned_events() {
        // A budget-exhausted run leaves events queued; reset must discard
        // them and the next job must match a fresh machine exactly.
        let mut m = Machine::new(vec![Echo, Echo], NetConfig::default());
        m.max_events = 50;
        let r = m.run();
        assert!(r.budget_exhausted);
        m.reset(vec![Echo, Echo]);
        // max_events rewound to unlimited: the echo pair would livelock, so
        // give it a budget again and confirm the guard still works.
        m.max_events = 60;
        let r2 = m.run();
        let mut fresh = Machine::new(vec![Echo, Echo], NetConfig::default());
        fresh.max_events = 60;
        assert_eq!(r2, fresh.run(), "post-reset run diverged from fresh");
    }

    #[test]
    fn reset_after_parallel_run_matches_fresh() {
        let mut fresh = all_to_all(6);
        let want = fresh.run();
        let mut m = all_to_all(6);
        let _ = m.run_parallel(3);
        m.reset(a2a_procs(6));
        assert_eq!(m.run(), want, "reset after parallel run diverged");
        assert_eq!(checksums(&m), checksums(&fresh));
    }

    #[test]
    fn env_threads_parses() {
        // Unset (or earlier-cleared) variable defaults to sequential. Avoid
        // mutating the process environment in-test: just exercise parse paths
        // indirectly via the default.
        assert!(env_threads() >= 1);
    }
}
