//! The discrete-event machine: P nodes, an ordered event queue, and the
//! conservative sequential simulation loop.
//!
//! Each node runs a user-supplied [`Proc`] behavior. Handlers are
//! *non-blocking*: they run to completion, charging simulated CPU time via
//! [`Ctx::charge`] and emitting messages via [`Ctx::send`]. The machine owns
//! the clock of every node; when a node's next event lies in its future the
//! gap is accounted as idle time. Two runs with identical inputs produce
//! identical event orders (ties broken by sequence number), so all reported
//! times are exactly reproducible.

use crate::fault::{FaultAction, FaultInjector, FaultPlan};
use crate::network::{MsgSize, NetConfig};
use crate::rng::Rng;
use crate::stats::{ChargeKind, NodeStats, RunStats};
use crate::time::{Dur, Time};
use crate::trace::Trace;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Identifier of a simulated node (0-based, dense).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Behavior of one simulated node.
///
/// All handlers receive a [`Ctx`] for charging time and sending messages.
/// Handlers must not block; long-running work is expressed by charging its
/// cost and, if it must wait for data, by recording a continuation and
/// returning (the DPA runtime in `dpa-core` is exactly such a continuation
/// store).
pub trait Proc {
    /// Message type exchanged between nodes.
    type Msg: MsgSize;

    /// Called once at time zero, before any messages flow.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message from `src` is delivered to this node.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, src: NodeId, msg: Self::Msg);

    /// Called when a timer scheduled with [`Ctx::wake_after`] fires.
    fn on_wake(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// `true` when the node has no internal pending work. The run is
    /// `completed` only if every node is quiescent when the event queue
    /// drains; otherwise the report flags a stall (e.g. a dropped reply).
    fn quiescent(&self) -> bool {
        true
    }

    /// Called once after the run, to flush app-level counters into stats.
    fn on_finish(&mut self, stats: &mut NodeStats) {
        let _ = stats;
    }

    /// When the run stalls (`quiescent()` is false after the queue
    /// drains), a human-readable description of *what* this node is
    /// waiting on — e.g. the pending pointers whose replies never came.
    /// Surfaced in [`RunReport::stalls`] so a failed run is actionable.
    fn stall_detail(&self) -> Option<String> {
        None
    }
}

enum EventKind<M> {
    Deliver { src: NodeId, msg: M },
    Wake,
}

struct Event<M> {
    time: Time,
    /// Secondary sort key: 0 in the default schedule (FIFO among ties via
    /// `seq`); a seeded hash of `seq` under schedule perturbation, so
    /// same-timestamp events pop in a per-seed pseudorandom permutation.
    tie: u64,
    seq: u64,
    dst: NodeId,
    kind: EventKind<M>,
}

impl<M> Event<M> {
    fn key(&self) -> Reverse<(u64, u64, u64)> {
        Reverse((self.time.0, self.tie, self.seq))
    }
}

/// SplitMix-style finalizer: the tie-break permutation for one seed.
fn tie_hash(seed: u64, seq: u64) -> u64 {
    let mut z = seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

struct PendingSend<M> {
    dst: NodeId,
    at: Time,
    src: NodeId,
    /// `None` marks a wake timer; `Some` a message delivery.
    msg: Option<M>,
}

/// Per-handler execution context: the node's clock, stats, and outbox.
pub struct Ctx<'a, M> {
    id: NodeId,
    clock: &'a mut Time,
    stats: &'a mut NodeStats,
    net: &'a NetConfig,
    out: &'a mut Vec<PendingSend<M>>,
    trace: &'a mut Option<Trace>,
    nodes: u16,
}

impl<'a, M: MsgSize> Ctx<'a, M> {
    /// The node this handler is running on.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the machine.
    #[inline]
    pub fn num_nodes(&self) -> u16 {
        self.nodes
    }

    /// Current simulated time at this node.
    #[inline]
    pub fn now(&self) -> Time {
        *self.clock
    }

    /// The network cost model in effect.
    #[inline]
    pub fn net(&self) -> &NetConfig {
        self.net
    }

    /// This node's running time accounting. Idle is charged *before* each
    /// event is delivered, so at handler time the breakdown is current —
    /// which is what lets a proc read its own idle/overhead fractions as
    /// live feedback signals (see `dpa_core::stripctl`).
    #[inline]
    pub fn stats(&self) -> &NodeStats {
        self.stats
    }

    /// Advance this node's clock by `d`, accounting it to `kind`.
    #[inline]
    pub fn charge(&mut self, kind: ChargeKind, d: Dur) {
        if let Some(t) = self.trace.as_mut() {
            t.record(self.id.0, self.clock.as_ns(), d.as_ns(), kind);
        }
        *self.clock += d;
        self.stats.charge(kind, d);
    }

    /// Convenience: charge local (useful) computation in ns.
    #[inline]
    pub fn charge_local(&mut self, ns: u64) {
        self.charge(ChargeKind::Local, Dur::from_ns(ns));
    }

    /// Convenience: charge communication overhead in ns.
    #[inline]
    pub fn charge_overhead(&mut self, ns: u64) {
        self.charge(ChargeKind::Overhead, Dur::from_ns(ns));
    }

    /// Bump an app-level counter on this node's stats.
    #[inline]
    pub fn bump(&mut self, name: &'static str, by: u64) {
        self.stats.bump(name, by);
    }

    /// Send `msg` to `dst`. Charges the sender's per-message busy time as
    /// overhead and schedules delivery after the wire transit. A send to
    /// self skips the wire but still pays software overheads (loopback),
    /// matching FM semantics.
    pub fn send(&mut self, dst: NodeId, msg: M) {
        let bytes = msg.size_bytes();
        let busy = self.net.send_busy(bytes);
        self.charge(ChargeKind::Overhead, busy);
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += bytes as u64;
        let at = *self.clock + self.net.transit(dst == self.id);
        self.out.push(PendingSend {
            dst,
            at,
            src: self.id,
            msg: Some(msg),
        });
    }

    /// Schedule a [`Proc::on_wake`] callback `d` from now.
    pub fn wake_after(&mut self, d: Dur) {
        let at = *self.clock + d;
        self.out.push(PendingSend {
            dst: self.id,
            at,
            src: self.id,
            msg: None,
        });
    }
}

/// Diagnostic for one non-quiescent node after the event queue drained.
#[derive(Clone, Debug)]
pub struct StallInfo {
    /// The stuck node.
    pub node: NodeId,
    /// Messages this node sent.
    pub msgs_sent: u64,
    /// Messages this node received.
    pub msgs_recv: u64,
    /// Messages destined to this node that fault injection dropped — the
    /// usual culprits for the stall.
    pub undelivered: u64,
    /// The node's own account of what it is waiting on
    /// ([`Proc::stall_detail`]), e.g. the stuck pending pointers.
    pub detail: Option<String>,
}

impl std::fmt::Display for StallInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: sent {} recv {} undelivered-to {}",
            self.node, self.msgs_sent, self.msgs_recv, self.undelivered
        )?;
        if let Some(d) = &self.detail {
            write!(f, " — {d}")?;
        }
        Ok(())
    }
}

/// Result of a complete machine run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Per-node time/traffic accounting (idle already extended to the
    /// global makespan, i.e. barrier semantics).
    pub stats: RunStats,
    /// `true` iff every node reported quiescent when the queue drained.
    /// `false` indicates a stall, e.g. a reply lost to fault injection.
    pub completed: bool,
    /// One entry per non-quiescent node when `completed` is false
    /// (deadlock detection: the queue drained but work remains).
    pub stalls: Vec<StallInfo>,
}

impl RunReport {
    /// The phase execution time the paper reports (global makespan).
    pub fn makespan(&self) -> Time {
        self.stats.makespan
    }

    /// One-line-per-node description of the stall (empty when completed).
    pub fn stall_summary(&self) -> String {
        self.stalls
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// A P-node discrete-event machine running `P::Msg` traffic over `net`.
pub struct Machine<P: Proc> {
    procs: Vec<P>,
    net: NetConfig,
    clocks: Vec<Time>,
    stats: Vec<NodeStats>,
    queue: BinaryHeap<Event<P::Msg>>,
    next_seq: u64,
    faults: FaultInjector,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
    /// Per-destination count of messages lost to fault injection.
    dropped_to: Vec<u64>,
    /// `Some(seed)` ⇒ same-timestamp events pop in a seeded permutation.
    schedule_seed: Option<u64>,
    jitter_rng: Rng,
    trace: Option<Trace>,
    /// Hard cap on processed events; exceeded => panic (runaway guard).
    pub max_events: u64,
}

impl<P: Proc> Machine<P> {
    /// Build a machine from one `Proc` per node.
    pub fn new(procs: Vec<P>, net: NetConfig) -> Machine<P> {
        let n = procs.len();
        assert!(n > 0 && n <= u16::MAX as usize, "node count {n}");
        // The legacy `NetConfig::drop_every` knob maps onto a fault plan.
        let plan = FaultPlan {
            drop_every: net.drop_every,
            ..FaultPlan::default()
        };
        Machine {
            procs,
            net,
            clocks: vec![Time::ZERO; n],
            stats: vec![NodeStats::default(); n],
            queue: BinaryHeap::new(),
            next_seq: 0,
            faults: FaultInjector::new(plan),
            dropped: 0,
            duplicated: 0,
            delayed: 0,
            dropped_to: vec![0; n],
            schedule_seed: None,
            jitter_rng: Rng::new(0),
            trace: None,
            max_events: u64::MAX,
        }
    }

    /// Install a fault plan (replaces any legacy `drop_every` mapping).
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = FaultInjector::new(plan);
    }

    /// Enable seeded schedule perturbation: events with equal timestamps
    /// pop in a per-`seed` pseudorandom permutation instead of FIFO order,
    /// and when `net.jitter_ns > 0` remote deliveries also get a seeded
    /// jitter in `[0, jitter_ns]`. Each seed yields one deterministic,
    /// exactly-replayable alternative schedule.
    pub fn perturb_schedule(&mut self, seed: u64) {
        self.schedule_seed = Some(seed);
        self.jitter_rng = Rng::new(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    }

    /// Record per-node busy spans during the run (see [`crate::trace`]).
    /// `capacity` bounds the span count; adjacent charges coalesce.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// Take the recorded trace after [`Machine::run`].
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.procs.len()
    }

    /// Immutable access to a node's behavior (for post-run inspection).
    pub fn proc(&self, id: NodeId) -> &P {
        &self.procs[id.index()]
    }

    /// Mutable access to a node's behavior — for post-run state hand-off,
    /// e.g. carrying a migration table into the next phase's machine.
    pub fn proc_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.procs[id.index()]
    }

    fn push_event(&mut self, time: Time, dst: NodeId, kind: EventKind<P::Msg>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let tie = match self.schedule_seed {
            Some(seed) => tie_hash(seed, seq),
            None => 0,
        };
        self.queue.push(Event {
            time,
            tie,
            seq,
            dst,
            kind,
        });
    }
}

impl<P: Proc> Machine<P>
where
    P::Msg: Clone,
{
    fn flush_outbox(&mut self, out: &mut Vec<PendingSend<P::Msg>>) {
        for p in out.drain(..) {
            let msg = match p.msg {
                Some(m) => m,
                None => {
                    // Wake timers bypass the network: no faults, no jitter.
                    self.push_event(p.at, p.dst, EventKind::Wake);
                    continue;
                }
            };
            let (extra_delay_ns, duplicate) = match self.faults.decide(p.src.0, p.dst.0) {
                FaultAction::Drop => {
                    self.dropped += 1;
                    self.dropped_to[p.dst.index()] += 1;
                    continue;
                }
                FaultAction::Deliver {
                    extra_delay_ns,
                    duplicate,
                } => (extra_delay_ns, duplicate),
            };
            let jitter_ns = if self.net.jitter_ns > 0 && p.dst != p.src {
                self.jitter_rng.below(self.net.jitter_ns + 1)
            } else {
                0
            };
            if extra_delay_ns > 0 {
                self.delayed += 1;
            }
            let at_ns = self
                .faults
                .pause_adjust(p.dst.0, p.at.0 + extra_delay_ns + jitter_ns);
            let at = Time(at_ns);
            if duplicate {
                self.duplicated += 1;
                self.push_event(
                    at,
                    p.dst,
                    EventKind::Deliver {
                        src: p.src,
                        msg: msg.clone(),
                    },
                );
            }
            self.push_event(at, p.dst, EventKind::Deliver { src: p.src, msg });
        }
    }

    /// Run to completion: start every node, then drain the event queue.
    /// Consumes the machine's event state; may be called once.
    pub fn run(&mut self) -> RunReport {
        let n = self.procs.len();
        let mut out: Vec<PendingSend<P::Msg>> = Vec::new();

        for i in 0..n {
            let mut ctx = Ctx {
                id: NodeId(i as u16),
                clock: &mut self.clocks[i],
                stats: &mut self.stats[i],
                net: &self.net,
                out: &mut out,
                trace: &mut self.trace,
                nodes: n as u16,
            };
            self.procs[i].on_start(&mut ctx);
            self.flush_outbox(&mut out);
        }

        let mut events_processed: u64 = 0;
        while let Some(ev) = self.queue.pop() {
            events_processed += 1;
            assert!(
                events_processed <= self.max_events,
                "event budget exceeded ({events_processed}); likely livelock"
            );
            let i = ev.dst.index();
            // Waiting for this event is idle time for the destination node.
            if ev.time > self.clocks[i] {
                let gap = ev.time - self.clocks[i];
                self.stats[i].idle += gap;
                self.clocks[i] = ev.time;
            }
            let mut ctx = Ctx {
                id: ev.dst,
                clock: &mut self.clocks[i],
                stats: &mut self.stats[i],
                net: &self.net,
                out: &mut out,
                trace: &mut self.trace,
                nodes: n as u16,
            };
            match ev.kind {
                EventKind::Deliver { src, msg } => {
                    let bytes = msg.size_bytes();
                    ctx.stats.msgs_recv += 1;
                    ctx.stats.bytes_recv += bytes as u64;
                    let busy = ctx.net.recv_busy(bytes);
                    ctx.charge(ChargeKind::Overhead, busy);
                    self.procs[i].on_message(&mut ctx, src, msg);
                }
                EventKind::Wake => self.procs[i].on_wake(&mut ctx),
            }
            self.flush_outbox(&mut out);
        }

        let completed = self.procs.iter().all(|p| p.quiescent());
        let makespan = self.clocks.iter().copied().max().unwrap_or(Time::ZERO);

        // Barrier semantics: every node waits for the slowest one, so
        // trailing time up to the makespan is idle.
        for i in 0..n {
            if makespan > self.clocks[i] {
                self.stats[i].idle += makespan - self.clocks[i];
                self.clocks[i] = makespan;
            }
            self.procs[i].on_finish(&mut self.stats[i]);
        }

        // Deadlock detection: the queue drained, yet some node still has
        // pending work. Name the culprits instead of a bare `false`.
        let mut stalls = Vec::new();
        if !completed {
            for (i, p) in self.procs.iter().enumerate() {
                if !p.quiescent() {
                    stalls.push(StallInfo {
                        node: NodeId(i as u16),
                        msgs_sent: self.stats[i].msgs_sent,
                        msgs_recv: self.stats[i].msgs_recv,
                        undelivered: self.dropped_to[i],
                        detail: p.stall_detail(),
                    });
                }
            }
        }

        RunReport {
            stats: RunStats {
                nodes: std::mem::take(&mut self.stats),
                makespan,
                dropped_packets: self.dropped,
                duplicated_packets: self.duplicated,
                delayed_packets: self.delayed,
            },
            completed,
            stalls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial ping-pong proc: node 0 sends `k` pings to node 1, which
    /// echoes each one back.
    struct PingPong {
        to_send: u32,
        received: u32,
        expect: u32,
    }

    impl Proc for PingPong {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            for i in 0..self.to_send {
                ctx.send(NodeId(1), i as u64);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, src: NodeId, msg: u64) {
            self.received += 1;
            if ctx.me() == NodeId(1) {
                ctx.send(src, msg + 1000);
            }
        }

        fn quiescent(&self) -> bool {
            self.received == self.expect
        }
    }

    fn pingpong_machine(k: u32, net: NetConfig) -> Machine<PingPong> {
        Machine::new(
            vec![
                PingPong {
                    to_send: k,
                    received: 0,
                    expect: k,
                },
                PingPong {
                    to_send: 0,
                    received: 0,
                    expect: k,
                },
            ],
            net,
        )
    }

    #[test]
    fn pingpong_completes() {
        let mut m = pingpong_machine(5, NetConfig::default());
        let r = m.run();
        assert!(r.completed);
        assert_eq!(r.stats.total_msgs(), 10);
        assert!(r.makespan().as_ns() > 0);
    }

    #[test]
    fn deterministic_makespan() {
        let a = pingpong_machine(7, NetConfig::default()).run();
        let b = pingpong_machine(7, NetConfig::default()).run();
        assert_eq!(a.makespan(), b.makespan());
        assert_eq!(a.stats.nodes[0].idle, b.stats.nodes[0].idle);
    }

    #[test]
    fn idle_accounted_while_waiting() {
        let mut m = pingpong_machine(1, NetConfig::default());
        let r = m.run();
        // Node 0 sends, then idles until the echo returns.
        assert!(r.stats.nodes[0].idle.as_ns() > 0);
    }

    #[test]
    fn barrier_extends_idle_to_makespan() {
        let mut m = pingpong_machine(3, NetConfig::default());
        let r = m.run();
        for s in &r.stats.nodes {
            assert_eq!(s.total(), r.makespan() - Time::ZERO + Dur::ZERO);
        }
    }

    #[test]
    fn fault_injection_drops_and_flags() {
        let net = NetConfig {
            drop_every: Some(2),
            ..NetConfig::default()
        };
        let mut m = pingpong_machine(4, net);
        let r = m.run();
        assert!(!r.completed, "dropped replies must flag a stall");
        assert!(r.stats.dropped_packets > 0);
    }

    #[test]
    fn free_network_zero_overhead() {
        let mut m = pingpong_machine(2, NetConfig::free());
        let r = m.run();
        assert!(r.completed);
        assert_eq!(r.stats.nodes[0].overhead.as_ns(), 0);
        assert_eq!(r.makespan().as_ns(), 0);
    }

    /// Timer wakes fire in order and count as idle while waiting.
    struct Sleeper {
        fired: Vec<u64>,
    }

    impl Proc for Sleeper {
        type Msg = ();

        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.wake_after(Dur::from_us(10));
            ctx.wake_after(Dur::from_us(5));
        }

        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _src: NodeId, _msg: ()) {}

        fn on_wake(&mut self, ctx: &mut Ctx<'_, ()>) {
            self.fired.push(ctx.now().as_ns());
        }
    }

    #[test]
    fn wakes_fire_in_time_order() {
        let mut m = Machine::new(vec![Sleeper { fired: vec![] }], NetConfig::default());
        let r = m.run();
        assert!(r.completed);
        assert_eq!(m.proc(NodeId(0)).fired, vec![5_000, 10_000]);
        assert_eq!(r.stats.nodes[0].idle.as_ns(), 10_000);
    }

    #[test]
    fn trace_spans_account_all_busy_time() {
        let mut m = pingpong_machine(4, NetConfig::default());
        m.enable_tracing(1 << 16);
        let r = m.run();
        let trace = m.take_trace().expect("tracing enabled");
        assert_eq!(trace.dropped, 0);
        for (i, ns) in r.stats.nodes.iter().enumerate() {
            let busy = ns.local.as_ns() + ns.overhead.as_ns();
            assert_eq!(trace.busy_ns(i as u16), busy, "node {i}");
        }
        // Spans are per-node time-ordered and non-overlapping.
        for n in 0..2u16 {
            let mut end = 0;
            for s in trace.spans().iter().filter(|s| s.node == n) {
                assert!(s.start_ns >= end, "overlap on node {n}");
                end = s.start_ns + s.dur_ns;
            }
        }
    }

    #[test]
    fn stall_report_names_stuck_nodes() {
        let net = NetConfig {
            drop_every: Some(2),
            ..NetConfig::default()
        };
        let mut m = pingpong_machine(4, net);
        let r = m.run();
        assert!(!r.completed);
        assert!(!r.stalls.is_empty(), "stall must carry diagnostics");
        for s in &r.stalls {
            assert!(s.undelivered > 0, "stuck node should see dropped traffic");
        }
        assert!(r.stall_summary().contains("undelivered-to"));
        // A completed run carries no stall entries.
        let ok = pingpong_machine(4, NetConfig::default()).run();
        assert!(ok.completed && ok.stalls.is_empty());
    }

    #[test]
    fn perturbed_schedules_are_deterministic_per_seed() {
        let run = |seed: Option<u64>| {
            let mut m = pingpong_machine(8, NetConfig::default());
            if let Some(s) = seed {
                m.perturb_schedule(s);
            }
            let r = m.run();
            assert!(r.completed);
            (r.makespan(), m.proc(NodeId(0)).received)
        };
        // Same seed ⇒ identical run; results identical across schedules.
        assert_eq!(run(Some(7)), run(Some(7)));
        assert_eq!(run(None).1, run(Some(7)).1);
        assert_eq!(run(Some(1)).1, run(Some(2)).1);
    }

    #[test]
    fn jitter_changes_timing_not_results() {
        let run = |seed: u64, jitter: u64| {
            let mut m = pingpong_machine(6, NetConfig {
                jitter_ns: jitter,
                ..NetConfig::default()
            });
            m.perturb_schedule(seed);
            let r = m.run();
            assert!(r.completed, "jitter must not lose messages");
            (r.makespan(), m.proc(NodeId(0)).received)
        };
        let base = run(3, 0);
        let mut saw_different_makespan = false;
        for seed in 0..8 {
            let j = run(seed, 20_000);
            assert_eq!(j.1, base.1, "received count is schedule-invariant");
            if j.0 != base.0 {
                saw_different_makespan = true;
            }
        }
        assert!(saw_different_makespan, "jitter should move the makespan");
    }

    #[test]
    fn duplicate_fault_delivers_twice() {
        let mut m = pingpong_machine(5, NetConfig::default());
        m.set_faults(FaultPlan::duplicate(11, 1.0));
        let r = m.run();
        // Every ping and every echo is doubled: node 0 sees 2× echoes and
        // node 1 re-echoes each duplicated ping.
        assert_eq!(r.stats.duplicated_packets, r.stats.total_msgs());
        assert!(m.proc(NodeId(0)).received > 5);
    }

    #[test]
    fn delay_fault_slows_but_completes() {
        let base = pingpong_machine(5, NetConfig::default()).run();
        let mut m = pingpong_machine(5, NetConfig::default());
        m.set_faults(FaultPlan::delay(13, 1.0, 1_000_000));
        let r = m.run();
        assert!(r.completed);
        assert!(r.stats.delayed_packets > 0);
        assert!(r.makespan() > base.makespan());
    }

    #[test]
    fn drop_nth_kills_exactly_one_message() {
        let mut m = pingpong_machine(5, NetConfig::default());
        m.set_faults(FaultPlan::drop_nth(2));
        let r = m.run();
        assert!(!r.completed);
        assert_eq!(r.stats.dropped_packets, 1);
        assert_eq!(r.stalls.len(), 2, "both sides wait on the lost ping");
    }

    #[test]
    fn node_pause_defers_delivery() {
        let mut m = pingpong_machine(1, NetConfig::default());
        m.set_faults(FaultPlan {
            pauses: vec![crate::fault::NodePause {
                node: 1,
                from_ns: 0,
                until_ns: 5_000_000,
            }],
            ..FaultPlan::default()
        });
        let r = m.run();
        assert!(r.completed);
        assert!(
            r.makespan().as_ns() >= 5_000_000,
            "ping waits out the pause window"
        );
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn runaway_guard_trips() {
        /// Echoes forever between two nodes.
        struct Echo;
        impl Proc for Echo {
            type Msg = u64;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                if ctx.me() == NodeId(0) {
                    ctx.send(NodeId(1), 0);
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, src: NodeId, msg: u64) {
                ctx.send(src, msg + 1);
            }
        }
        let mut m = Machine::new(vec![Echo, Echo], NetConfig::default());
        m.max_events = 100;
        m.run();
    }
}
