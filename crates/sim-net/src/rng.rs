//! A small, dependency-free deterministic RNG (SplitMix64 + xoshiro256**).
//!
//! The simulator must be bit-for-bit reproducible, so we avoid any global or
//! OS-seeded randomness. This generator is used for workload generation
//! inside the simulator (e.g. fault injection schedules); applications use
//! the `rand` crate at a higher level for initial condition generation.

/// Deterministic 64-bit generator (xoshiro256** seeded via SplitMix64).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A value uniform in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A value uniform in `[0.0, 1.0)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fork a statistically-independent child stream (for per-node RNGs).
    pub fn fork(&mut self, tag: u64) -> Rng {
        Rng::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let v = r.below(13);
            assert!(v < 13);
        }
    }

    #[test]
    fn below_roughly_uniform() {
        let mut r = Rng::new(99);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.below(8) as usize] += 1;
        }
        for &c in &counts {
            // each bucket expects 10_000; allow generous slack
            assert!((8_500..11_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn forks_are_independent() {
        let mut parent = Rng::new(5);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
