//! Simulated time, measured in integer nanoseconds.
//!
//! All scheduling decisions in the simulator are made in terms of [`Time`]
//! (an absolute instant) and [`Dur`] (a span). Using integers keeps the
//! simulation exactly deterministic across runs and platforms: two runs with
//! the same seed and configuration produce bit-identical event orders.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute simulated instant, in nanoseconds since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);

    /// Nanoseconds since the start of the run.
    #[inline]
    pub fn as_ns(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// A zero-length span.
    pub const ZERO: Dur = Dur(0);

    /// Construct a span from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Dur {
        Dur(ns)
    }

    /// Construct a span from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Construct a span from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// The span in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> u64 {
        self.0
    }

    /// The span in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scale the span by an integer factor, saturating on overflow.
    #[inline]
    pub fn scaled(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, d: Dur) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, other: Dur) -> Dur {
        Dur(self.0.saturating_add(other.0))
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, other: Dur) {
        self.0 = self.0.saturating_add(other.0);
    }
}

impl Sub for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, other: Time) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&Time(self.0), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_since() {
        let t = Time::ZERO + Dur::from_us(3);
        assert_eq!(t.as_ns(), 3_000);
        assert_eq!(t.since(Time(1_000)).as_ns(), 2_000);
        // saturating: "since a future instant" is zero, not underflow
        assert_eq!(Time(5).since(Time(10)).as_ns(), 0);
    }

    #[test]
    fn ordering() {
        assert!(Time(1) < Time(2));
        assert_eq!(Time(7).max(Time(3)), Time(7));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Time(500)), "500ns");
        assert_eq!(format!("{}", Time(1_500)), "1.500us");
        assert_eq!(format!("{}", Time(2_500_000)), "2.500ms");
        assert_eq!(format!("{}", Time(3_000_000_000)), "3.000s");
    }

    #[test]
    fn dur_scaling_saturates() {
        assert_eq!(Dur(10).scaled(3).as_ns(), 30);
        assert_eq!(Dur(u64::MAX).scaled(2).as_ns(), u64::MAX);
    }

    #[test]
    fn sub_time_saturates() {
        assert_eq!((Time(10) - Time(4)).as_ns(), 6);
        assert_eq!((Time(4) - Time(10)).as_ns(), 0);
    }
}
