//! Per-node time and traffic accounting.
//!
//! The paper's breakdown figures split total execution time into *local
//! computation*, *communication overhead*, and *idle time*; those three
//! buckets are first-class here and every charge made through
//! [`crate::machine::Ctx`] lands in exactly one of them.

use crate::time::{Dur, Time};
use std::collections::BTreeMap;

/// Which bucket a CPU charge belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChargeKind {
    /// Useful application work (force interactions, tree walk decisions...).
    Local,
    /// Communication software overhead (send/receive handlers, cache
    /// hashing, runtime bookkeeping attributable to communication).
    Overhead,
}

/// Accumulated statistics for a single simulated node.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Time spent in useful local computation.
    pub local: Dur,
    /// Time spent in communication/runtime overhead.
    pub overhead: Dur,
    /// Time spent idle, waiting for messages (includes trailing idle up to
    /// the global finish time once the run is finalized).
    pub idle: Dur,
    /// Messages sent by this node.
    pub msgs_sent: u64,
    /// Payload bytes sent by this node.
    pub bytes_sent: u64,
    /// Messages received by this node.
    pub msgs_recv: u64,
    /// Payload bytes received by this node.
    pub bytes_recv: u64,
    /// Application-defined counters, flushed in `Proc::on_finish`.
    pub user: BTreeMap<&'static str, u64>,
}

impl NodeStats {
    /// Total accounted busy+idle time.
    pub fn total(&self) -> Dur {
        self.local + self.overhead + self.idle
    }

    /// Record a CPU charge.
    #[inline]
    pub fn charge(&mut self, kind: ChargeKind, d: Dur) {
        match kind {
            ChargeKind::Local => self.local += d,
            ChargeKind::Overhead => self.overhead += d,
        }
    }

    /// Bump (or create) a user counter.
    #[inline]
    pub fn bump(&mut self, name: &'static str, by: u64) {
        *self.user.entry(name).or_insert(0) += by;
    }

    /// Fraction of total time that was idle (0 if nothing recorded).
    pub fn idle_fraction(&self) -> f64 {
        let t = self.total().as_ns();
        if t == 0 {
            0.0
        } else {
            self.idle.as_ns() as f64 / t as f64
        }
    }
}

/// Aggregate view over every node in a run; produced by
/// [`crate::machine::Machine::run`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// One entry per node.
    pub nodes: Vec<NodeStats>,
    /// Global finish time (the makespan the paper reports as execution
    /// time of the phase).
    pub makespan: Time,
    /// Packets dropped by fault injection.
    pub dropped_packets: u64,
    /// Packets delivered twice by fault injection.
    pub duplicated_packets: u64,
    /// Packets given extra delay by fault injection (excludes schedule
    /// jitter, which perturbs every remote delivery).
    pub delayed_packets: u64,
}

impl RunStats {
    /// Sum of a per-node extractor across all nodes.
    pub fn sum<F: Fn(&NodeStats) -> u64>(&self, f: F) -> u64 {
        self.nodes.iter().map(f).sum()
    }

    /// Mean local / overhead / idle durations across nodes, in ns.
    pub fn mean_breakdown(&self) -> (f64, f64, f64) {
        let n = self.nodes.len().max(1) as f64;
        let l = self.sum(|s| s.local.as_ns()) as f64 / n;
        let o = self.sum(|s| s.overhead.as_ns()) as f64 / n;
        let i = self.sum(|s| s.idle.as_ns()) as f64 / n;
        (l, o, i)
    }

    /// Total messages sent in the run.
    pub fn total_msgs(&self) -> u64 {
        self.sum(|s| s.msgs_sent)
    }

    /// Total payload bytes sent in the run.
    pub fn total_bytes(&self) -> u64 {
        self.sum(|s| s.bytes_sent)
    }

    /// Sum of a user counter across nodes (0 when absent everywhere).
    pub fn user_total(&self, name: &str) -> u64 {
        self.nodes
            .iter()
            .map(|s| s.user.get(name).copied().unwrap_or(0))
            .sum()
    }

    /// Machine-wide ratio of two user counters (e.g. an aggregation
    /// factor: entries sent over messages sent). 0 when the denominator
    /// never fired.
    pub fn user_ratio(&self, numerator: &str, denominator: &str) -> f64 {
        let d = self.user_total(denominator);
        if d == 0 {
            0.0
        } else {
            self.user_total(numerator) as f64 / d as f64
        }
    }

    /// Max of a user counter across nodes (0 when absent everywhere).
    pub fn user_max(&self, name: &str) -> u64 {
        self.nodes
            .iter()
            .map(|s| s.user.get(name).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_buckets() {
        let mut s = NodeStats::default();
        s.charge(ChargeKind::Local, Dur::from_ns(10));
        s.charge(ChargeKind::Overhead, Dur::from_ns(5));
        s.idle += Dur::from_ns(85);
        assert_eq!(s.total().as_ns(), 100);
        assert!((s.idle_fraction() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn user_counters() {
        let mut s = NodeStats::default();
        s.bump("probes", 3);
        s.bump("probes", 4);
        assert_eq!(s.user["probes"], 7);
    }

    #[test]
    fn run_aggregation() {
        let mut a = NodeStats {
            msgs_sent: 3,
            ..NodeStats::default()
        };
        a.bump("x", 1);
        let mut b = NodeStats {
            msgs_sent: 5,
            ..NodeStats::default()
        };
        b.bump("x", 9);
        let run = RunStats {
            nodes: vec![a, b],
            makespan: Time(100),
            ..RunStats::default()
        };
        assert_eq!(run.total_msgs(), 8);
        assert_eq!(run.user_total("x"), 10);
        assert_eq!(run.user_max("x"), 9);
        assert_eq!(run.user_total("absent"), 0);
    }

    #[test]
    fn user_ratio_totals_across_nodes() {
        let mut a = NodeStats::default();
        a.bump("entries", 30);
        a.bump("msgs", 5);
        let mut b = NodeStats::default();
        b.bump("entries", 10);
        b.bump("msgs", 5);
        let run = RunStats {
            nodes: vec![a, b],
            ..RunStats::default()
        };
        assert!((run.user_ratio("entries", "msgs") - 4.0).abs() < 1e-12);
        assert_eq!(run.user_ratio("entries", "absent"), 0.0);
    }

    #[test]
    fn idle_fraction_empty_is_zero() {
        assert_eq!(NodeStats::default().idle_fraction(), 0.0);
    }
}
