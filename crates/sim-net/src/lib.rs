//! # sim-net — deterministic distributed-machine simulator
//!
//! A discrete-event simulator of a distributed-memory multiprocessor in the
//! mold of the Cray T3D used by the DPA paper (Zhang & Chien, PPoPP'97):
//! `P` nodes, each a scalar CPU with private memory, connected by an
//! interconnect modeled with LogGP-style costs (per-message send/receive
//! software overheads, wire latency, per-byte gap).
//!
//! The simulator substitutes for the paper's physical 64-node T3D: the
//! effects DPA exploits — latency tolerance by overlap, per-message-overhead
//! amortization by aggregation, data reuse by thread tiling — are functions
//! of this cost model and of scheduling order, not of physical torus
//! geometry, so the *shapes* of the paper's results (who wins, by what
//! factor, where crossovers fall) are reproducible on one host, exactly and
//! deterministically.
//!
//! ## Layering
//!
//! * [`time`] — integer-nanosecond clocks.
//! * [`network`] — the LogGP cost model ([`network::NetConfig`]).
//! * [`wheel`] — the calendar-queue event queue (plus the shadow heap).
//! * [`machine`] — event queue, per-node clocks, [`machine::Proc`] behaviors.
//! * [`stats`] — local / overhead / idle breakdown per node, user counters.
//! * [`rng`] — dependency-free deterministic RNG for fault schedules.
//! * [`fault`] — fault plans (drop / duplicate / delay / pause) with
//!   per-channel decision streams, reproducible independent of schedule.
//!
//! Higher layers: `fastmsg` (active messages + aggregation), `global-heap`
//! (PGAS object store), `dpa-core` (the paper's runtime), `apps`
//! (Barnes-Hut and FMM force phases).
//!
//! ## Example
//!
//! ```
//! use sim_net::{Machine, NetConfig, NodeId, Proc, Ctx};
//!
//! struct Hello { got: bool }
//! impl Proc for Hello {
//!     type Msg = u64;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
//!         if ctx.me() == NodeId(0) { ctx.send(NodeId(1), 42); }
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _src: NodeId, msg: u64) {
//!         assert_eq!(msg, 42);
//!         ctx.charge_local(1_000); // pretend to compute for 1us
//!         self.got = true;
//!     }
//! }
//!
//! let mut m = Machine::new(vec![Hello { got: false }, Hello { got: false }],
//!                          NetConfig::default());
//! let report = m.run();
//! assert!(report.completed);
//! assert!(report.makespan().as_ns() > 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod machine;
pub mod network;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;
pub mod wheel;

pub use fault::{FaultAction, FaultInjector, FaultPlan, NodePause};
pub use machine::{env_threads, Ctx, Machine, NodeId, Proc, RunReport, StallInfo};
pub use wheel::{env_queue, EventKey, QueueKind, TimingWheel, WheelItem};
pub use network::{MsgSize, NetConfig};
pub use rng::Rng;
pub use stats::{ChargeKind, NodeStats, RunStats};
pub use time::{Dur, Time};
pub use trace::{Span, Trace};
