//! LogGP-style network cost model.
//!
//! The Cray T3D evaluation in the paper runs over Illinois Fast Messages
//! (FM), whose cost is dominated by *software* per-message overhead at the
//! sender and receiver, a small wire latency, and a per-byte streaming cost.
//! We model exactly those four parameters (the LogGP model):
//!
//! * `send_overhead` (`o_s`) — CPU time the sender spends injecting a message,
//! * `recv_overhead` (`o_r`) — CPU time the receiver spends in the handler,
//! * `latency` (`L`)         — wire/switch time, overlappable with compute,
//! * `gap_per_byte` (`G`)    — inverse bandwidth for the message body.
//!
//! Message *aggregation* wins precisely because `o_s + o_r` is paid per
//! message while `G` is paid per byte: batching k small requests into one
//! packet replaces `k·(o_s+o_r)` with `o_s+o_r + (k·payload)·G`.

use crate::time::Dur;

/// Cost-model parameters for the simulated interconnect.
///
/// Defaults approximate a Cray T3D running Illinois Fast Messages
/// (mid-1990s: ~few-microsecond short-message cost, ~125 MB/s streaming).
#[derive(Clone, Debug, PartialEq)]
pub struct NetConfig {
    /// Per-message CPU overhead at the sender, ns.
    pub send_overhead_ns: u64,
    /// Per-message CPU overhead at the receiver (handler dispatch), ns.
    pub recv_overhead_ns: u64,
    /// Wire latency between any pair of distinct nodes, ns.
    pub latency_ns: u64,
    /// Streaming cost per payload byte, ns (8 ns/B = 125 MB/s).
    pub gap_ns_per_byte: u64,
    /// Fixed header bytes charged to every packet on the wire.
    pub header_bytes: u32,
    /// If `Some(k)`, drop every k-th packet (fault injection; the run
    /// report's `stats.dropped_packets` counts the losses). Legacy shortcut
    /// for `FaultPlan { drop_every, .. }` — see `sim_net::fault`.
    pub drop_every: Option<u64>,
    /// Maximum extra per-message wire jitter, ns. When nonzero, every
    /// remote delivery is delayed by a seeded uniform draw in
    /// `[0, jitter_ns]` (schedule perturbation for DST; the draw stream is
    /// controlled by `Machine::perturb_schedule`).
    pub jitter_ns: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            send_overhead_ns: 5_000,
            recv_overhead_ns: 7_000,
            latency_ns: 1_000,
            gap_ns_per_byte: 8,
            header_bytes: 16,
            drop_every: None,
            jitter_ns: 0,
        }
    }
}

impl NetConfig {
    /// An idealized zero-cost network (useful in unit tests that only care
    /// about logical message delivery).
    pub fn free() -> NetConfig {
        NetConfig {
            send_overhead_ns: 0,
            recv_overhead_ns: 0,
            latency_ns: 0,
            gap_ns_per_byte: 0,
            header_bytes: 0,
            drop_every: None,
            jitter_ns: 0,
        }
    }

    /// Sender-side CPU occupancy for a message with `payload` bytes.
    ///
    /// The sender streams the whole packet through its network interface, so
    /// the per-byte gap is charged to the sending CPU (as FM does: the
    /// processor copies the message into the network FIFO).
    pub fn send_busy(&self, payload: u32) -> Dur {
        Dur::from_ns(
            self.send_overhead_ns
                + self.gap_ns_per_byte * (payload as u64 + self.header_bytes as u64),
        )
    }

    /// Receiver-side CPU occupancy to dispatch a message with `payload`
    /// bytes to its handler.
    pub fn recv_busy(&self, payload: u32) -> Dur {
        Dur::from_ns(
            self.recv_overhead_ns
                + self.gap_ns_per_byte * (payload as u64 + self.header_bytes as u64) / 4,
        )
    }

    /// Time from send completion until the first byte is available at the
    /// destination. Local (self) sends skip the wire.
    pub fn transit(&self, local: bool) -> Dur {
        if local {
            Dur::ZERO
        } else {
            Dur::from_ns(self.latency_ns)
        }
    }

    /// Total one-way cost of a message as seen by an observer: send busy +
    /// transit. (Receiver overhead is charged on delivery.)
    pub fn one_way(&self, payload: u32, local: bool) -> Dur {
        self.send_busy(payload) + self.transit(local)
    }

    /// The per-message saving achieved by aggregating `k` requests of
    /// `each` payload bytes into a single packet, in ns. Exposed for tests
    /// and for the analytical crossover checks in the benches.
    pub fn aggregation_saving(&self, k: u32, _each: u32) -> Dur {
        if k <= 1 {
            return Dur::ZERO;
        }
        let per_msg = self.send_overhead_ns
            + self.recv_overhead_ns
            + self.gap_ns_per_byte * self.header_bytes as u64;
        Dur::from_ns(per_msg * (k as u64 - 1))
    }
}

/// Anything that can be sent across the simulated network.
///
/// The payload size drives the per-byte cost; the *contents* travel in a
/// single address space (the force phases we model only read remote data, so
/// no copies are needed for correctness — only for timing).
pub trait MsgSize {
    /// Payload bytes on the wire (excluding the fixed packet header).
    fn size_bytes(&self) -> u32;
}

impl MsgSize for () {
    fn size_bytes(&self) -> u32 {
        0
    }
}

impl MsgSize for u64 {
    fn size_bytes(&self) -> u32 {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_sane() {
        let n = NetConfig::default();
        // A short 8-byte request: ~a dozen microseconds end to end
        // (FM-on-T3D-era software overheads dominate).
        let total = n.one_way(8, false).as_ns() + n.recv_busy(8).as_ns();
        assert!((8_000..25_000).contains(&total), "total {total}");
    }

    #[test]
    fn free_network_is_free() {
        let n = NetConfig::free();
        assert_eq!(n.one_way(1024, false).as_ns(), 0);
        assert_eq!(n.recv_busy(1024).as_ns(), 0);
    }

    #[test]
    fn local_send_skips_wire() {
        let n = NetConfig::default();
        assert_eq!(n.transit(true).as_ns(), 0);
        assert_eq!(n.transit(false).as_ns(), n.latency_ns);
    }

    #[test]
    fn aggregation_saves_per_message_overhead() {
        let n = NetConfig::default();
        let save = n.aggregation_saving(10, 8).as_ns();
        // 9 messages' worth of (o_s + o_r + header bytes) saved.
        let per = n.send_overhead_ns + n.recv_overhead_ns + n.gap_ns_per_byte * 16;
        assert_eq!(save, 9 * per);
        assert_eq!(n.aggregation_saving(1, 8).as_ns(), 0);
    }

    #[test]
    fn bigger_messages_cost_more_to_send() {
        let n = NetConfig::default();
        assert!(n.send_busy(1024) > n.send_busy(8));
    }
}
