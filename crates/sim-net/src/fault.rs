//! Fault plans: reproducible message-level fault injection.
//!
//! Generalizes the original `drop_every` counter into a [`FaultPlan`] of
//! probabilistic drop / duplicate / delay faults plus deterministic
//! "drop exactly the n-th packet" and node-pause windows. Decisions are
//! drawn from *per-channel* RNG streams — one stream per (src, dst) pair,
//! seeded purely from the plan seed and the channel — with a fixed number
//! of draws per message. The fate of "the k-th message from node s to
//! node d" is therefore a pure function of `(plan seed, s, d, k)`,
//! independent of how the global event schedule interleaves channels, so
//! fault scenarios replay exactly even while the schedule is being
//! perturbed (see `Machine::perturb_schedule`).

use crate::rng::Rng;
use std::collections::BTreeMap;

/// A window during which one node stops taking deliveries; messages
/// arriving inside the window are deferred to its end (the node "freezes"
/// rather than losing traffic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodePause {
    /// The paused node.
    pub node: u16,
    /// Window start (inclusive), ns of simulated time.
    pub from_ns: u64,
    /// Window end (exclusive), ns; deliveries inside land here.
    pub until_ns: u64,
}

/// A reproducible fault-injection scenario for one run.
///
/// All probabilities are per network message. Overlapping [`NodePause`]
/// windows for the same node should be merged by the caller.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-channel decision streams.
    pub seed: u64,
    /// Probability a message is silently dropped.
    pub drop_p: f64,
    /// Probability a message is delivered twice (at-least-once delivery).
    pub dup_p: f64,
    /// Probability a message is delayed by an extra uniform amount.
    pub delay_p: f64,
    /// Maximum extra delay, ns (uniform in `[0, delay_max_ns]`).
    pub delay_max_ns: u64,
    /// Drop exactly the n-th network message of the run (1-based, counted
    /// in send order). Deterministic: the targeted loss for deadlock demos.
    pub drop_nth: Option<u64>,
    /// Legacy counter fault: drop every k-th network message.
    pub drop_every: Option<u64>,
    /// Node freeze windows.
    pub pauses: Vec<NodePause>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay_max_ns: 0,
            drop_nth: None,
            drop_every: None,
            pauses: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// The no-fault plan.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Drop each message independently with probability `p`.
    pub fn drop(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_p: p,
            ..FaultPlan::default()
        }
    }

    /// Duplicate each message independently with probability `p`.
    pub fn duplicate(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            seed,
            dup_p: p,
            ..FaultPlan::default()
        }
    }

    /// Delay each message with probability `p` by up to `max_ns` extra.
    pub fn delay(seed: u64, p: f64, max_ns: u64) -> FaultPlan {
        FaultPlan {
            seed,
            delay_p: p,
            delay_max_ns: max_ns,
            ..FaultPlan::default()
        }
    }

    /// Drop exactly the `n`-th network message (1-based).
    pub fn drop_nth(n: u64) -> FaultPlan {
        FaultPlan {
            drop_nth: Some(n),
            ..FaultPlan::default()
        }
    }

    /// `true` when this plan never perturbs anything.
    pub fn is_none(&self) -> bool {
        self.drop_p == 0.0
            && self.dup_p == 0.0
            && self.delay_p == 0.0
            && self.drop_nth.is_none()
            && self.drop_every.is_none()
            && self.pauses.is_empty()
    }

    /// Short human-readable label (used in DST reports).
    pub fn describe(&self) -> String {
        if self.is_none() {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        if self.drop_p > 0.0 {
            parts.push(format!("drop(p={})", self.drop_p));
        }
        if self.dup_p > 0.0 {
            parts.push(format!("dup(p={})", self.dup_p));
        }
        if self.delay_p > 0.0 {
            parts.push(format!("delay(p={},max={}ns)", self.delay_p, self.delay_max_ns));
        }
        if let Some(n) = self.drop_nth {
            parts.push(format!("drop_nth({n})"));
        }
        if let Some(k) = self.drop_every {
            parts.push(format!("drop_every({k})"));
        }
        if !self.pauses.is_empty() {
            parts.push(format!("pauses({})", self.pauses.len()));
        }
        parts.join("+")
    }
}

/// What the injector decided for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver, with an extra delay and possibly a second copy.
    Deliver {
        /// Extra wire delay beyond the cost model, ns.
        extra_delay_ns: u64,
        /// Deliver a second identical copy (same arrival time, later
        /// queue sequence).
        duplicate: bool,
    },
    /// Silently drop the message.
    Drop,
}

/// Stateful executor of a [`FaultPlan`]: owns the per-channel decision
/// streams and the global message counter.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    chans: BTreeMap<(u16, u16), Rng>,
    sent: u64,
    /// Cached at construction: the plan has no probabilistic faults, so
    /// [`FaultInjector::decide`] never needs a per-channel RNG stream.
    no_prob: bool,
    /// Cached at construction: `no_prob` *and* no counter faults either —
    /// every message delivers untouched. This is the hot path of every
    /// fault-free benchmark run, reduced to one branch and a counter bump.
    fast_deliver: bool,
}

fn channel_seed(seed: u64, src: u16, dst: u16) -> u64 {
    // SplitMix-style finalizer over (seed, src, dst).
    let mut z = seed
        ^ (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (dst as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Build an injector for `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let no_prob = plan.drop_p == 0.0 && plan.dup_p == 0.0 && plan.delay_p == 0.0;
        let fast_deliver = no_prob && plan.drop_nth.is_none() && plan.drop_every.is_none();
        FaultInjector {
            plan,
            chans: BTreeMap::new(),
            sent: 0,
            no_prob,
            fast_deliver,
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of the next message on channel `src → dst`.
    ///
    /// Always consumes the same number of channel-RNG draws per message,
    /// so decision k on a channel is schedule-independent.
    pub fn decide(&mut self, src: u16, dst: u16) -> FaultAction {
        self.sent += 1;
        if self.fast_deliver {
            return FaultAction::Deliver {
                extra_delay_ns: 0,
                duplicate: false,
            };
        }
        if self.plan.drop_nth == Some(self.sent) {
            return FaultAction::Drop;
        }
        if let Some(k) = self.plan.drop_every {
            if self.sent.is_multiple_of(k) {
                return FaultAction::Drop;
            }
        }
        if self.no_prob {
            return FaultAction::Deliver {
                extra_delay_ns: 0,
                duplicate: false,
            };
        }
        let seed = self.plan.seed;
        let rng = self
            .chans
            .entry((src, dst))
            .or_insert_with(|| Rng::new(channel_seed(seed, src, dst)));
        // Fixed draw count per message: drop, dup, delay-gate, delay-amount.
        let d_drop = rng.unit_f64();
        let d_dup = rng.unit_f64();
        let d_gate = rng.unit_f64();
        let d_amt = rng.next_u64();
        if d_drop < self.plan.drop_p {
            return FaultAction::Drop;
        }
        let duplicate = d_dup < self.plan.dup_p;
        let extra_delay_ns = if d_gate < self.plan.delay_p && self.plan.delay_max_ns > 0 {
            d_amt % (self.plan.delay_max_ns + 1)
        } else {
            0
        };
        FaultAction::Deliver {
            extra_delay_ns,
            duplicate,
        }
    }

    /// Defer an arrival time out of any pause window covering `dst`.
    pub fn pause_adjust(&self, dst: u16, at_ns: u64) -> u64 {
        let mut at = at_ns;
        for p in &self.plan.pauses {
            if p.node == dst && at >= p.from_ns && at < p.until_ns {
                at = p.until_ns;
            }
        }
        at
    }

    /// Network messages seen so far.
    pub fn messages_seen(&self) -> u64 {
        self.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_transparent() {
        let mut f = FaultInjector::new(FaultPlan::none());
        for _ in 0..100 {
            assert_eq!(
                f.decide(0, 1),
                FaultAction::Deliver {
                    extra_delay_ns: 0,
                    duplicate: false
                }
            );
        }
        assert!(FaultPlan::none().is_none());
        assert_eq!(FaultPlan::none().describe(), "none");
    }

    #[test]
    fn fault_free_fast_path_allocates_no_channel_streams() {
        let mut f = FaultInjector::new(FaultPlan::none());
        for k in 0..1000u16 {
            assert_eq!(
                f.decide(k % 4, (k + 1) % 4),
                FaultAction::Deliver {
                    extra_delay_ns: 0,
                    duplicate: false
                }
            );
        }
        assert!(f.chans.is_empty(), "no RNG streams on the fast path");
        assert_eq!(f.messages_seen(), 1000);
        // Counter-only plans skip RNG setup too but still drop on count.
        let mut g = FaultInjector::new(FaultPlan::drop_nth(3));
        let fates: Vec<_> = (0..4).map(|_| g.decide(0, 1)).collect();
        assert_eq!(fates[2], FaultAction::Drop);
        assert!(g.chans.is_empty());
    }

    #[test]
    fn decisions_are_per_channel_and_schedule_independent() {
        let plan = FaultPlan {
            drop_p: 0.3,
            dup_p: 0.2,
            delay_p: 0.5,
            delay_max_ns: 10_000,
            seed: 42,
            ..FaultPlan::default()
        };
        // Interleaving A: channel (0,1) then (2,3), alternating.
        let mut a = FaultInjector::new(plan.clone());
        let mut a01 = Vec::new();
        for _ in 0..50 {
            a01.push(a.decide(0, 1));
            a.decide(2, 3);
        }
        // Interleaving B: all (2,3) first, then all (0,1).
        let mut b = FaultInjector::new(plan);
        for _ in 0..50 {
            b.decide(2, 3);
        }
        let b01: Vec<_> = (0..50).map(|_| b.decide(0, 1)).collect();
        assert_eq!(a01, b01, "channel decisions must not depend on interleaving");
    }

    #[test]
    fn drop_nth_hits_exactly_one() {
        let mut f = FaultInjector::new(FaultPlan::drop_nth(3));
        let fates: Vec<_> = (0..6).map(|_| f.decide(0, 1)).collect();
        let drops = fates.iter().filter(|a| **a == FaultAction::Drop).count();
        assert_eq!(drops, 1);
        assert_eq!(fates[2], FaultAction::Drop);
    }

    #[test]
    fn drop_every_matches_legacy_counter() {
        let mut f = FaultInjector::new(FaultPlan {
            drop_every: Some(2),
            ..FaultPlan::default()
        });
        let drops = (0..10)
            .filter(|_| f.decide(0, 1) == FaultAction::Drop)
            .count();
        assert_eq!(drops, 5);
    }

    #[test]
    fn delay_bounded() {
        let mut f = FaultInjector::new(FaultPlan::delay(7, 1.0, 500));
        for _ in 0..200 {
            match f.decide(1, 0) {
                FaultAction::Deliver { extra_delay_ns, .. } => {
                    assert!(extra_delay_ns <= 500)
                }
                FaultAction::Drop => panic!("delay plan must not drop"),
            }
        }
    }

    #[test]
    fn pause_defers_into_window_end() {
        let f = FaultInjector::new(FaultPlan {
            pauses: vec![NodePause {
                node: 2,
                from_ns: 100,
                until_ns: 900,
            }],
            ..FaultPlan::default()
        });
        assert_eq!(f.pause_adjust(2, 50), 50);
        assert_eq!(f.pause_adjust(2, 100), 900);
        assert_eq!(f.pause_adjust(2, 899), 900);
        assert_eq!(f.pause_adjust(2, 900), 900);
        assert_eq!(f.pause_adjust(1, 500), 500, "other nodes unaffected");
    }

    #[test]
    fn describe_lists_active_faults() {
        let d = FaultPlan {
            drop_p: 0.1,
            dup_p: 0.2,
            drop_nth: Some(9),
            ..FaultPlan::default()
        }
        .describe();
        assert!(d.contains("drop(p=0.1)") && d.contains("dup(p=0.2)") && d.contains("drop_nth(9)"));
    }
}
