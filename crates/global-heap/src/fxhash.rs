//! A vendored FxHash-style hasher for the heap's hot lookup tables.
//!
//! Every `Demand` emission probes [`crate::ArrivalSet`], every global
//! access under the caching baseline probes [`crate::SoftCache`], and every
//! request under migration resolves its home through
//! [`crate::MigrationTable`] — all keyed by the 8-byte [`crate::GPtr`].
//! The default `std` hasher (SipHash-1-3) is keyed and DoS-resistant,
//! qualities a deterministic simulator does not need but pays for on every
//! probe. This is the classic multiply-rotate word hasher (as used by
//! rustc's `FxHashMap`): a few cycles per word and — unlike `RandomState` —
//! the same function in every process.
//!
//! `dpa-core` re-exports these types as `dpa_core::fxmap`, so the whole
//! runtime shares one definition.
//!
//! Note that *iteration order* of a `HashMap` is still arbitrary under any
//! hasher; code that iterates these maps must keep sorting (as
//! `MigrationTable::pick_migrations` and the snapshot paths do).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by [`FxHasher`]. Construct with `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed by [`FxHasher`]. Construct with `FxHashSet::default()`.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate word hasher (FxHash). Fast, deterministic, not keyed.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(hash_one(&(1u16, 2u16)), hash_one(&(2u16, 1u16)));
    }

    #[test]
    fn byte_tails_do_not_collide_with_padding() {
        // b"ab" vs b"ab\0" must differ despite the zero-padded tail word.
        assert_ne!(hash_one(&b"ab".as_slice()), hash_one(&b"ab\0".as_slice()));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
        let s: FxHashSet<u32> = (0..100).collect();
        assert!(s.contains(&99) && !s.contains(&100));
    }
}
