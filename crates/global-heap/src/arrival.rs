//! The per-node arrival set: which remote objects have been fetched so far
//! in the current phase.
//!
//! DPA renames fetched objects into local storage so every thread that
//! needs an object after its arrival finds it locally — this is the data
//! half of "threads using the same objects execute together". The arrival
//! set models that renamed storage: membership means "a local copy exists
//! and may be read"; byte accounting tracks the memory DPA trades for
//! latency tolerance.
//!
//! With object migration enabled the set gains two more duties: adopted
//! objects are [`preload`](ArrivalSet::preload)ed at phase start (the node
//! holds their payload across phases), and an ownership change can
//! [`invalidate`](ArrivalSet::invalidate) a copy so the next dereference
//! refetches from the object's new home instead of reading stale storage.

use crate::fxhash::FxHashMap;
use crate::gptr::GPtr;
use std::collections::hash_map::Entry;

/// Tracks remote objects that have arrived at one node during a phase.
#[derive(Clone, Debug, Default)]
pub struct ArrivalSet {
    /// `ptr -> (payload bytes held, generation stamp)`. Fx-hashed:
    /// [`contains`](ArrivalSet::contains) runs once per `Demand` emission,
    /// squarely on the simulation hot path. The generation stamp is the
    /// object's version at fetch time; differential (multi-timestep) runs
    /// carry entries across phase barriers and use the stamp to detect —
    /// and invalidate — copies whose object has since changed.
    set: FxHashMap<GPtr, (u32, u32)>,
    bytes: u64,
    peak_bytes: u64,
    inserts: u64,
    invalidations: u64,
}

impl ArrivalSet {
    /// An empty set.
    pub fn new() -> ArrivalSet {
        ArrivalSet::default()
    }

    /// Record the arrival of `ptr` carrying `size` payload bytes.
    /// Returns `false` (and changes nothing) if it was already present —
    /// which indicates a redundant fetch upstream. Single-phase callers
    /// that never version objects stamp generation 0.
    pub fn insert(&mut self, ptr: GPtr, size: u32) -> bool {
        self.insert_gen(ptr, size, 0)
    }

    /// [`insert`](ArrivalSet::insert) with an explicit generation stamp.
    pub fn insert_gen(&mut self, ptr: GPtr, size: u32, gen: u32) -> bool {
        debug_assert!(!ptr.is_null());
        match self.set.entry(ptr) {
            // Keep the first copy's accounting: a duplicate delivery does
            // not grow renamed storage.
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert((size, gen));
                self.inserts += 1;
                self.bytes += size as u64;
                self.peak_bytes = self.peak_bytes.max(self.bytes);
                true
            }
        }
    }

    /// Seed a copy that is *already* held when the phase starts (an object
    /// adopted in an earlier phase). Counts bytes but not `total_inserts`,
    /// so per-phase fetch conservation checks stay meaningful.
    pub fn preload(&mut self, ptr: GPtr, size: u32) {
        self.preload_gen(ptr, size, 0);
    }

    /// [`preload`](ArrivalSet::preload) with an explicit generation stamp
    /// (a differential carry seeds entries with the generation they were
    /// originally fetched at, so a stale carry stays detectable).
    pub fn preload_gen(&mut self, ptr: GPtr, size: u32, gen: u32) {
        debug_assert!(!ptr.is_null());
        if let Entry::Vacant(v) = self.set.entry(ptr) {
            v.insert((size, gen));
            self.bytes += size as u64;
            self.peak_bytes = self.peak_bytes.max(self.bytes);
        }
    }

    /// The generation stamp of the copy held for `ptr`, if any.
    #[inline]
    pub fn generation(&self, ptr: GPtr) -> Option<u32> {
        self.set.get(&ptr).map(|&(_, gen)| gen)
    }

    /// Every held entry as `(ptr, size, generation)`, in dense-hash order.
    /// The differential driver drains this at a phase barrier to build the
    /// next phase's carry; order-sensitive consumers must sort.
    pub fn entries(&self) -> impl Iterator<Item = (GPtr, u32, u32)> + '_ {
        self.set.iter().map(|(&p, &(size, gen))| (p, size, gen))
    }

    /// Drop the copy of `ptr` (ownership changed or the copy went stale).
    /// Returns `true` if a copy was actually held; afterwards
    /// [`contains`](ArrivalSet::contains) is `false` and a later
    /// [`insert`](ArrivalSet::insert) of the same pointer is fresh again.
    pub fn invalidate(&mut self, ptr: GPtr) -> bool {
        match self.set.remove(&ptr) {
            Some((size, _)) => {
                self.bytes -= size as u64;
                self.invalidations += 1;
                true
            }
            None => false,
        }
    }

    /// `true` if `ptr` has arrived (i.e. a local copy is readable).
    #[inline]
    pub fn contains(&self, ptr: GPtr) -> bool {
        self.set.contains_key(&ptr)
    }

    /// Number of distinct objects currently held.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` when nothing has arrived.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Bytes currently held in renamed storage.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// High-water mark of renamed storage over the phase, in bytes. The
    /// paper's thread-statistics table reports this memory cost.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Total distinct arrivals over the phase (survives `clear`).
    pub fn total_inserts(&self) -> u64 {
        self.inserts
    }

    /// Total copies dropped via [`invalidate`](ArrivalSet::invalidate).
    pub fn total_invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Drop all held objects (phase boundary), keeping lifetime counters.
    pub fn clear(&mut self) {
        self.set.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gptr::ObjClass;

    fn p(i: u64) -> GPtr {
        GPtr::new(1, ObjClass(0), i)
    }

    #[test]
    fn insert_and_query() {
        let mut a = ArrivalSet::new();
        assert!(!a.contains(p(1)));
        assert!(a.insert(p(1), 96));
        assert!(a.contains(p(1)));
        assert_eq!(a.len(), 1);
        assert_eq!(a.bytes(), 96);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut a = ArrivalSet::new();
        assert!(a.insert(p(1), 96));
        assert!(!a.insert(p(1), 96));
        assert_eq!(a.bytes(), 96);
        assert_eq!(a.total_inserts(), 1);
    }

    #[test]
    fn peak_survives_clear() {
        let mut a = ArrivalSet::new();
        a.insert(p(1), 100);
        a.insert(p(2), 100);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.bytes(), 0);
        assert_eq!(a.peak_bytes(), 200);
        a.insert(p(3), 50);
        assert_eq!(a.peak_bytes(), 200);
        assert_eq!(a.total_inserts(), 3);
    }

    #[test]
    fn invalidate_drops_copy_and_bytes() {
        let mut a = ArrivalSet::new();
        a.insert(p(1), 96);
        a.insert(p(2), 32);
        assert!(a.invalidate(p(1)));
        assert!(!a.contains(p(1)), "invalidated copy must not be readable");
        assert_eq!(a.bytes(), 32, "bytes of the dropped copy are released");
        assert_eq!(a.len(), 1);
        assert!(!a.invalidate(p(1)), "second invalidate is a no-op");
        assert_eq!(a.total_invalidations(), 1);
    }

    /// Regression: after an ownership change invalidates a copy, a refetch
    /// must be treated as *fresh* — historically a set-based implementation
    /// that only tracked membership would refuse the re-insert and the node
    /// would keep serving the stale (dropped) copy.
    #[test]
    fn stale_read_refetch_is_fresh_after_invalidate() {
        let mut a = ArrivalSet::new();
        assert!(a.insert(p(7), 64));
        assert!(a.invalidate(p(7)));
        assert!(
            a.insert(p(7), 64),
            "refetch after invalidation must be a fresh arrival"
        );
        assert!(a.contains(p(7)));
        assert_eq!(a.bytes(), 64);
        assert_eq!(a.total_inserts(), 2);
    }

    #[test]
    fn generation_stamps_round_trip() {
        let mut a = ArrivalSet::new();
        assert_eq!(a.generation(p(1)), None);
        assert!(a.insert_gen(p(1), 64, 3));
        assert_eq!(a.generation(p(1)), Some(3));
        // A duplicate delivery keeps the first copy's stamp.
        assert!(!a.insert_gen(p(1), 64, 9));
        assert_eq!(a.generation(p(1)), Some(3));
        // Unstamped inserts are generation 0.
        assert!(a.insert(p(2), 32));
        assert_eq!(a.generation(p(2)), Some(0));
        // Preload with a stamp (the differential carry path).
        a.preload_gen(p(3), 16, 7);
        assert_eq!(a.generation(p(3)), Some(7));
        // Entries expose (ptr, size, gen) for the barrier drain.
        let mut got: Vec<_> = a.entries().collect();
        got.sort_by_key(|&(ptr, _, _)| ptr.bits());
        assert_eq!(got, vec![(p(1), 64, 3), (p(2), 32, 0), (p(3), 16, 7)]);
        // Invalidate → refetch re-stamps.
        assert!(a.invalidate(p(1)));
        assert!(a.insert_gen(p(1), 64, 4));
        assert_eq!(a.generation(p(1)), Some(4));
    }

    #[test]
    fn preload_counts_bytes_not_inserts() {
        let mut a = ArrivalSet::new();
        a.preload(p(3), 100);
        assert!(a.contains(p(3)));
        assert_eq!(a.bytes(), 100);
        assert_eq!(a.total_inserts(), 0, "preload is not a phase fetch");
        assert!(!a.insert(p(3), 100), "preloaded copy already satisfies reads");
        a.preload(p(3), 100);
        assert_eq!(a.bytes(), 100, "re-preload is idempotent");
    }
}
