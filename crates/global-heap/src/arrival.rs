//! The per-node arrival set: which remote objects have been fetched so far
//! in the current phase.
//!
//! DPA renames fetched objects into local storage so every thread that
//! needs an object after its arrival finds it locally — this is the data
//! half of "threads using the same objects execute together". The arrival
//! set models that renamed storage: membership means "a local copy exists
//! and may be read"; byte accounting tracks the memory DPA trades for
//! latency tolerance.

use crate::gptr::GPtr;
use std::collections::HashSet;

/// Tracks remote objects that have arrived at one node during a phase.
#[derive(Clone, Debug, Default)]
pub struct ArrivalSet {
    set: HashSet<GPtr>,
    bytes: u64,
    peak_bytes: u64,
    inserts: u64,
}

impl ArrivalSet {
    /// An empty set.
    pub fn new() -> ArrivalSet {
        ArrivalSet::default()
    }

    /// Record the arrival of `ptr` carrying `size` payload bytes.
    /// Returns `false` (and changes nothing) if it was already present —
    /// which indicates a redundant fetch upstream.
    pub fn insert(&mut self, ptr: GPtr, size: u32) -> bool {
        debug_assert!(!ptr.is_null());
        let fresh = self.set.insert(ptr);
        if fresh {
            self.inserts += 1;
            self.bytes += size as u64;
            self.peak_bytes = self.peak_bytes.max(self.bytes);
        }
        fresh
    }

    /// `true` if `ptr` has arrived (i.e. a local copy is readable).
    #[inline]
    pub fn contains(&self, ptr: GPtr) -> bool {
        self.set.contains(&ptr)
    }

    /// Number of distinct objects currently held.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` when nothing has arrived.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Bytes currently held in renamed storage.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// High-water mark of renamed storage over the phase, in bytes. The
    /// paper's thread-statistics table reports this memory cost.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Total distinct arrivals over the phase (survives `clear`).
    pub fn total_inserts(&self) -> u64 {
        self.inserts
    }

    /// Drop all held objects (phase boundary), keeping lifetime counters.
    pub fn clear(&mut self) {
        self.set.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gptr::ObjClass;

    fn p(i: u64) -> GPtr {
        GPtr::new(1, ObjClass(0), i)
    }

    #[test]
    fn insert_and_query() {
        let mut a = ArrivalSet::new();
        assert!(!a.contains(p(1)));
        assert!(a.insert(p(1), 96));
        assert!(a.contains(p(1)));
        assert_eq!(a.len(), 1);
        assert_eq!(a.bytes(), 96);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut a = ArrivalSet::new();
        assert!(a.insert(p(1), 96));
        assert!(!a.insert(p(1), 96));
        assert_eq!(a.bytes(), 96);
        assert_eq!(a.total_inserts(), 1);
    }

    #[test]
    fn peak_survives_clear() {
        let mut a = ArrivalSet::new();
        a.insert(p(1), 100);
        a.insert(p(2), 100);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.bytes(), 0);
        assert_eq!(a.peak_bytes(), 200);
        a.insert(p(3), 50);
        assert_eq!(a.peak_bytes(), 200);
        assert_eq!(a.total_inserts(), 3);
    }
}
