//! Packed global pointers and object-class metadata.
//!
//! A global pointer names an object anywhere in the machine:
//! `(owner node, object class, index within the owner's arena of that
//! class)`. It packs into 8 bytes — the unit both request messages and the
//! runtime's pointer→threads mapping key on.
//!
//! The owner field is the object's *birth* home, fixed for the pointer's
//! lifetime. Locality-driven migration (see [`crate::migrate`]) re-homes
//! objects without rewriting pointers: the birth home keeps a forwarding
//! stub and consumers learn the new home from reply traffic, so
//! [`GPtr::node`] remains the correct *first hop* for any node with no
//! migration knowledge.

use std::fmt;

/// An application-defined object class (e.g. `CELL`, `BODY`, `FMM_NODE`).
///
/// Classes determine transfer sizes via [`ClassTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjClass(pub u8);

/// A packed global pointer: `owner:16 | class:8 | index:40`.
///
/// `GPtr::NULL` is the distinguished null pointer (all-ones), used the way
/// the paper's codes use null child pointers in tree nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GPtr(u64);

impl GPtr {
    /// The null global pointer.
    pub const NULL: GPtr = GPtr(u64::MAX);

    /// Bytes a pointer occupies in a message payload.
    pub const WIRE_BYTES: u32 = 8;

    const INDEX_BITS: u32 = 40;
    const INDEX_MASK: u64 = (1 << Self::INDEX_BITS) - 1;

    /// Construct a pointer to object `index` of `class` owned by `node`.
    #[inline]
    pub fn new(node: u16, class: ObjClass, index: u64) -> GPtr {
        debug_assert!(index < Self::INDEX_MASK, "index {index} overflows GPtr");
        GPtr(((node as u64) << 48) | ((class.0 as u64) << Self::INDEX_BITS) | index)
    }

    /// `true` for the null pointer.
    #[inline]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }

    /// The owning node — the *birth* home baked into the pointer bits. With
    /// migration enabled the current home may differ; resolve through
    /// `migrate::MigrationTable::home_of` before routing a request.
    #[inline]
    pub fn node(self) -> u16 {
        debug_assert!(!self.is_null());
        (self.0 >> 48) as u16
    }

    /// The object class.
    #[inline]
    pub fn class(self) -> ObjClass {
        debug_assert!(!self.is_null());
        ObjClass(((self.0 >> Self::INDEX_BITS) & 0xFF) as u8)
    }

    /// The index within the owner's arena for this class.
    #[inline]
    pub fn index(self) -> u64 {
        debug_assert!(!self.is_null());
        self.0 & Self::INDEX_MASK
    }

    /// The raw packed representation (for hashing / wire encoding).
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Rebuild from a raw packed representation.
    #[inline]
    pub fn from_bits(bits: u64) -> GPtr {
        GPtr(bits)
    }

    /// `true` when the object is owned by `node` (false for null).
    #[inline]
    pub fn is_local_to(self, node: u16) -> bool {
        !self.is_null() && self.node() == node
    }
}

impl fmt::Debug for GPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "GPtr::NULL")
        } else {
            write!(
                f,
                "GPtr(n{}, c{}, #{})",
                self.node(),
                self.class().0,
                self.index()
            )
        }
    }
}

impl fmt::Display for GPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Sizes (and names) of the object classes an application transfers.
///
/// The reply path consults this to compute message payload bytes: an
/// aggregated reply carrying objects `p1..pk` is
/// `Σ size(class(pi)) + k·8` bytes (each object is prefixed by its pointer).
#[derive(Clone, Debug, Default)]
pub struct ClassTable {
    entries: Vec<(&'static str, u32)>,
}

impl ClassTable {
    /// An empty table.
    pub fn new() -> ClassTable {
        ClassTable::default()
    }

    /// Register a class with its transfer size in bytes; returns its id.
    pub fn register(&mut self, name: &'static str, size_bytes: u32) -> ObjClass {
        assert!(self.entries.len() < 256, "at most 256 object classes");
        let id = ObjClass(self.entries.len() as u8);
        self.entries.push((name, size_bytes));
        id
    }

    /// Transfer size of `class` in bytes.
    #[inline]
    pub fn size(&self, class: ObjClass) -> u32 {
        self.entries[class.0 as usize].1
    }

    /// Human-readable class name.
    pub fn name(&self, class: ObjClass) -> &'static str {
        self.entries[class.0 as usize].0
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Payload bytes of a reply carrying each object in `ptrs` (object data
    /// plus an 8-byte pointer tag per object).
    pub fn reply_bytes(&self, ptrs: &[GPtr]) -> u32 {
        ptrs.iter()
            .map(|p| self.size(p.class()) + GPtr::WIRE_BYTES)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let p = GPtr::new(513, ObjClass(7), 123_456_789);
        assert_eq!(p.node(), 513);
        assert_eq!(p.class(), ObjClass(7));
        assert_eq!(p.index(), 123_456_789);
        assert_eq!(GPtr::from_bits(p.bits()), p);
    }

    #[test]
    fn null_is_distinct() {
        let p = GPtr::new(u16::MAX - 1, ObjClass(255), (1 << 40) - 2);
        assert!(!p.is_null());
        assert!(GPtr::NULL.is_null());
        assert_ne!(p, GPtr::NULL);
    }

    #[test]
    fn locality() {
        let p = GPtr::new(3, ObjClass(0), 0);
        assert!(p.is_local_to(3));
        assert!(!p.is_local_to(4));
        assert!(!GPtr::NULL.is_local_to(3));
    }

    #[test]
    fn class_table_sizes() {
        let mut t = ClassTable::new();
        let cell = t.register("cell", 96);
        let body = t.register("body", 48);
        assert_eq!(t.size(cell), 96);
        assert_eq!(t.name(body), "body");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn reply_bytes_accumulate() {
        let mut t = ClassTable::new();
        let cell = t.register("cell", 96);
        let body = t.register("body", 48);
        let ptrs = [
            GPtr::new(0, cell, 1),
            GPtr::new(1, body, 2),
            GPtr::new(2, cell, 3),
        ];
        assert_eq!(t.reply_bytes(&ptrs), 96 + 48 + 96 + 3 * 8);
        assert_eq!(t.reply_bytes(&[]), 0);
    }

    #[test]
    fn ordering_is_total() {
        let a = GPtr::new(0, ObjClass(0), 1);
        let b = GPtr::new(0, ObjClass(0), 2);
        let c = GPtr::new(1, ObjClass(0), 0);
        assert!(a < b && b < c && c < GPtr::NULL);
    }
}
