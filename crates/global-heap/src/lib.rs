//! # global-heap — PGAS-style global object space
//!
//! The paper's applications operate on *global pointer-based data
//! structures*: octree cells and bodies distributed across node memories,
//! referenced by global pointers and read remotely during the force phase.
//! This crate provides that substrate:
//!
//! * [`gptr::GPtr`] — a packed global pointer `(owner node, object class,
//!   index)`, 8 bytes on the wire;
//! * [`gptr::ClassTable`] — per-class object sizes, driving reply byte
//!   counts;
//! * [`arrival::ArrivalSet`] — the per-node set of remote objects fetched so
//!   far in the current phase (DPA's tile buffer / renamed storage);
//! * [`cache::SoftCache`] — the software-caching baseline the paper
//!   compares against: a hashed cache probed on *every* global access, with
//!   blocking misses;
//! * [`migrate::MigrationTable`] — per-node bookkeeping for locality-driven
//!   object migration (adopted objects, forwarding stubs, learned home
//!   overrides, and the affinity counts that drive the policy);
//! * [`replicate::ReplicaDirectory`] — the owner-side directory behind the
//!   read-mostly replication mode: which pointers are multi-homed, to whom,
//!   at which generation, and how write-heavy the current window is.
//!
//! Object *payloads* live in the owning application's typed arenas; since
//! the force phases only read remote data, a "fetch" moves simulated bytes
//! and grants access, without copying host memory. Debug assertions in the
//! applications enforce that no object is read before it has arrived, which
//! keeps the timing model honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod cache;
pub mod fxhash;
pub mod gptr;
pub mod migrate;
pub mod replicate;

pub use arrival::ArrivalSet;
pub use cache::{CacheStats, EvictPolicy, SoftCache};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use gptr::{ClassTable, GPtr, ObjClass};
pub use migrate::{Migration, MigrationTable};
pub use replicate::{ReplicaDirectory, ReplicaEntry};
