//! Owner-side replica directory: the third alignment mode.
//!
//! Caching pulls one copy to one consumer, migration re-homes the object
//! to its dominant consumer — and both lose on a read-mostly hub with
//! *many* consumers and no dominant one (the crossover `fig_graph`
//! records). Replication is the counter: the owner promotes such a
//! pointer to *replicated*, broadcasts a generation-stamped copy to the
//! consumer set, and subsequent remote reads hit the local replica with
//! zero messages. Writes never move: they funnel through the owner
//! (single-writer semantics are untouched), are counted per window, and
//! demote the pointer when the mix stops being read-mostly.
//!
//! The directory itself is pure bookkeeping — which pointers are
//! replicated, to whom, at which generation, and how write-heavy the
//! current window is. The protocol (broadcast, install, invalidation via
//! `PhaseDelta` gating) lives in the runtime; the promotion *policy*
//! (affinity fan-out, read totals, no dominant consumer) lives in the
//! driver, which feeds decisions in here. Every export is sorted so the
//! directory never introduces schedule nondeterminism.

use crate::fxhash::FxHashMap;
use crate::gptr::GPtr;

/// One replicated pointer's bookkeeping at its owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaEntry {
    /// Generation the owner stamps on the next broadcast. Updated by the
    /// driver at each phase boundary (generations are pure functions of
    /// the phase, so owner and consumers always agree on what "current"
    /// means).
    pub gen: u32,
    /// Consumer nodes holding (or about to receive) the replica; sorted,
    /// never contains the owner.
    pub consumers: Vec<u16>,
    /// Writes funneled through the owner in the current window.
    pub writes_in_window: u64,
    /// Whether the next phase start must (re-)broadcast the payload —
    /// set on promotion and whenever the generation moves. A replica
    /// whose generation is unchanged is carried by the consumer and
    /// validated by the differential all-clear, so re-broadcasting it
    /// would be pure waste.
    pub needs_broadcast: bool,
}

/// The owner-side directory of replicated pointers.
#[derive(Debug, Clone, Default)]
pub struct ReplicaDirectory {
    entries: FxHashMap<GPtr, ReplicaEntry>,
    promotions: u64,
    demotions: u64,
}

impl ReplicaDirectory {
    /// Fresh, empty directory.
    pub fn new() -> ReplicaDirectory {
        ReplicaDirectory::default()
    }

    /// Promote `ptr` to replicated at `gen` for `consumers`. Returns
    /// `false` (and changes nothing) if it is already replicated or the
    /// consumer set is empty. The consumer list is sorted and deduped.
    pub fn promote(&mut self, ptr: GPtr, gen: u32, mut consumers: Vec<u16>) -> bool {
        consumers.sort_unstable();
        consumers.dedup();
        debug_assert!(
            !consumers.iter().any(|&c| c == ptr.node()),
            "owner {} in its own consumer set for {ptr}",
            ptr.node()
        );
        if consumers.is_empty() || self.entries.contains_key(&ptr) {
            return false;
        }
        self.entries.insert(
            ptr,
            ReplicaEntry {
                gen,
                consumers,
                writes_in_window: 0,
                needs_broadcast: true,
            },
        );
        self.promotions += 1;
        true
    }

    /// Drop `ptr` from the directory. Returns `true` if it was replicated.
    pub fn demote(&mut self, ptr: GPtr) -> bool {
        let hit = self.entries.remove(&ptr).is_some();
        if hit {
            self.demotions += 1;
        }
        hit
    }

    /// `true` when `ptr` is currently replicated.
    pub fn is_replicated(&self, ptr: GPtr) -> bool {
        self.entries.contains_key(&ptr)
    }

    /// Record one write funneled through the owner; returns the window's
    /// new count when the pointer is replicated, `None` otherwise.
    pub fn note_write(&mut self, ptr: GPtr) -> Option<u64> {
        self.entries.get_mut(&ptr).map(|e| {
            e.writes_in_window += 1;
            e.writes_in_window
        })
    }

    /// Advance `ptr`'s generation; flags a re-broadcast when it moved.
    pub fn set_gen(&mut self, ptr: GPtr, gen: u32) {
        if let Some(e) = self.entries.get_mut(&ptr) {
            if e.gen != gen {
                e.gen = gen;
                e.needs_broadcast = true;
            }
        }
    }

    /// Demote every entry whose window saw more than `threshold` writes
    /// and zero all windows. Returns the demoted pointers, sorted — the
    /// read-mostly contract: a pointer that stops being read-mostly
    /// stops being replicated (and becomes eligible for migration again).
    pub fn end_window(&mut self, threshold: u64) -> Vec<GPtr> {
        let mut demoted: Vec<GPtr> = self
            .entries
            .iter()
            .filter(|(_, e)| e.writes_in_window > threshold)
            .map(|(p, _)| *p)
            .collect();
        demoted.sort_unstable_by_key(|p| p.bits());
        for p in &demoted {
            self.entries.remove(p);
            self.demotions += 1;
        }
        for e in self.entries.values_mut() {
            e.writes_in_window = 0;
        }
        demoted
    }

    /// Take the entries whose payload must go out at the next phase
    /// start: `(ptr, gen, consumers)`, sorted by pointer bits. Clears
    /// each taken entry's `needs_broadcast` flag.
    pub fn take_broadcasts(&mut self) -> Vec<(GPtr, u32, Vec<u16>)> {
        let mut out: Vec<(GPtr, u32, Vec<u16>)> = self
            .entries
            .iter_mut()
            .filter(|(_, e)| e.needs_broadcast)
            .map(|(p, e)| {
                e.needs_broadcast = false;
                (*p, e.gen, e.consumers.clone())
            })
            .collect();
        out.sort_unstable_by_key(|(p, _, _)| p.bits());
        out
    }

    /// All replicated pointers, sorted by bits (the migration pin set).
    pub fn ptrs(&self) -> Vec<GPtr> {
        let mut v: Vec<GPtr> = self.entries.keys().copied().collect();
        v.sort_unstable_by_key(|p| p.bits());
        v
    }

    /// Snapshot export: `(ptr bits, gen)` sorted — what the
    /// `ReplicaCoherence` oracle matches consumer-held replicas against.
    pub fn export(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self
            .entries
            .iter()
            .map(|(p, e)| (p.bits(), e.gen))
            .collect();
        v.sort_unstable();
        v
    }

    /// The entry for `ptr`, if replicated.
    pub fn entry(&self, ptr: GPtr) -> Option<&ReplicaEntry> {
        self.entries.get(&ptr)
    }

    /// Number of replicated pointers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is replicated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime promotion count.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Lifetime demotion count.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gptr::ObjClass;

    fn p(node: u16, idx: u64) -> GPtr {
        GPtr::new(node, ObjClass(0), idx)
    }

    #[test]
    fn promote_sorts_dedups_and_is_idempotent() {
        let mut d = ReplicaDirectory::new();
        assert!(d.promote(p(0, 1), 3, vec![5, 2, 5, 1]));
        assert!(!d.promote(p(0, 1), 4, vec![7]), "second promote is a no-op");
        assert!(!d.promote(p(0, 2), 0, vec![]), "empty consumer set refused");
        let e = d.entry(p(0, 1)).unwrap();
        assert_eq!(e.consumers, vec![1, 2, 5]);
        assert_eq!(e.gen, 3);
        assert!(e.needs_broadcast);
        assert_eq!((d.len(), d.promotions()), (1, 1));
    }

    #[test]
    fn broadcast_flag_follows_generation() {
        let mut d = ReplicaDirectory::new();
        d.promote(p(0, 2), 1, vec![1]);
        d.promote(p(0, 1), 1, vec![2]);
        let b = d.take_broadcasts();
        assert_eq!(b.len(), 2);
        assert!(b[0].0.bits() < b[1].0.bits(), "broadcasts sorted by ptr");
        assert!(d.take_broadcasts().is_empty(), "flags cleared by take");
        // Unchanged generation: still nothing to send.
        d.set_gen(p(0, 1), 1);
        assert!(d.take_broadcasts().is_empty());
        // Moved generation: exactly that entry re-broadcasts.
        d.set_gen(p(0, 1), 2);
        let b = d.take_broadcasts();
        assert_eq!(b, vec![(p(0, 1), 2, vec![2])]);
    }

    #[test]
    fn write_window_demotes_past_threshold() {
        let mut d = ReplicaDirectory::new();
        d.promote(p(0, 1), 0, vec![1, 2]);
        d.promote(p(0, 2), 0, vec![1, 3]);
        assert_eq!(d.note_write(p(0, 1)), Some(1));
        assert_eq!(d.note_write(p(0, 1)), Some(2));
        assert_eq!(d.note_write(p(0, 2)), Some(1));
        assert_eq!(d.note_write(p(0, 9)), None, "unreplicated writes untracked");
        // threshold 1: ptr 1 (2 writes) demotes, ptr 2 (1 write) survives.
        assert_eq!(d.end_window(1), vec![p(0, 1)]);
        assert!(!d.is_replicated(p(0, 1)));
        assert!(d.is_replicated(p(0, 2)));
        assert_eq!(d.entry(p(0, 2)).unwrap().writes_in_window, 0, "window reset");
        assert_eq!(d.demotions(), 1);
        // Explicit demotion also counts.
        assert!(d.demote(p(0, 2)));
        assert!(!d.demote(p(0, 2)));
        assert_eq!(d.demotions(), 2);
        assert!(d.is_empty());
    }

    #[test]
    fn exports_are_sorted() {
        let mut d = ReplicaDirectory::new();
        d.promote(p(0, 7), 4, vec![1]);
        d.promote(p(0, 3), 2, vec![1]);
        assert_eq!(d.export(), vec![(p(0, 3).bits(), 2), (p(0, 7).bits(), 4)]);
        assert_eq!(d.ptrs(), vec![p(0, 3), p(0, 7)]);
    }
}
