//! The software-caching baseline (the scheme DPA is compared against in
//! the paper's Table of execution times).
//!
//! In Olden-style software caching, every dereference of a global pointer —
//! including ones that turn out to be local hits — pays a hash probe; a miss
//! blocks the computation for a full round trip that fetches the object.
//! Reuse happens (later probes hit), but there is no latency overlap and no
//! message aggregation, and the probe cost is paid per access rather than
//! per thread-creation as in DPA. The paper attributes DPA's win over
//! caching to "minimized hashing and better cache performance because of
//! access hoisting"; the cost hooks here expose exactly those knobs.

use crate::fxhash::FxHashMap;
use crate::gptr::GPtr;
use std::collections::hash_map::Entry;
use std::collections::VecDeque;

/// Counters the caching baseline reports per node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Hash probes performed (every global access).
    pub probes: u64,
    /// Probes that found the object cached.
    pub hits: u64,
    /// Probes that required a blocking fetch.
    pub misses: u64,
    /// Entries evicted to respect capacity.
    pub evictions: u64,
    /// Entries dropped because their object changed home (coherence).
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit rate over all probes (0 when no probes).
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.hits as f64 / self.probes as f64
        }
    }
}

/// Eviction policy for a bounded [`SoftCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictPolicy {
    /// Evict the oldest-inserted entry.
    #[default]
    Fifo,
    /// Evict the least-recently-probed entry (recency updated on hits).
    Lru,
}

/// A per-node software cache of remote objects with FIFO or LRU eviction.
///
/// `capacity` bounds the number of cached objects (`None` = unbounded, the
/// common configuration for per-phase caches that are flushed between
/// steps).
#[derive(Clone, Debug)]
pub struct SoftCache {
    /// `ptr -> (size, last-use tick)`. Fx-hashed: the caching baseline
    /// probes this on *every* global access. LRU eviction stays
    /// deterministic because ticks are unique, so the stalest entry is
    /// unique regardless of iteration order.
    map: FxHashMap<GPtr, (u32, u64)>,
    fifo: VecDeque<GPtr>,
    capacity: Option<usize>,
    policy: EvictPolicy,
    tick: u64,
    bytes: u64,
    peak_bytes: u64,
    stats: CacheStats,
}

impl SoftCache {
    /// Create a FIFO cache bounded to `capacity` objects (`None` =
    /// unbounded).
    pub fn new(capacity: Option<usize>) -> SoftCache {
        SoftCache::with_policy(capacity, EvictPolicy::Fifo)
    }

    /// Create a cache with an explicit eviction policy.
    pub fn with_policy(capacity: Option<usize>, policy: EvictPolicy) -> SoftCache {
        SoftCache {
            map: FxHashMap::default(),
            fifo: VecDeque::new(),
            capacity,
            policy,
            tick: 0,
            bytes: 0,
            peak_bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// Probe for `ptr`. Counts the probe; returns `true` on hit. On a miss
    /// the caller must perform the (blocking) fetch and then call
    /// [`SoftCache::fill`].
    pub fn probe(&mut self, ptr: GPtr) -> bool {
        self.stats.probes += 1;
        self.tick += 1;
        if let Some(entry) = self.map.get_mut(&ptr) {
            entry.1 = self.tick;
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// `true` if `ptr` is cached, without counting a probe (used by the
    /// honesty checks; accounting probes go through [`SoftCache::probe`]).
    pub fn contains(&self, ptr: GPtr) -> bool {
        self.map.contains_key(&ptr)
    }

    /// Install `ptr` (with `size` payload bytes) after a miss fetch,
    /// evicting per the configured policy if over capacity.
    pub fn fill(&mut self, ptr: GPtr, size: u32) {
        self.tick += 1;
        match self.map.entry(ptr) {
            Entry::Occupied(_) => return, // concurrent fill; keep first
            Entry::Vacant(v) => {
                v.insert((size, self.tick));
                self.fifo.push_back(ptr);
                self.bytes += size as u64;
                self.peak_bytes = self.peak_bytes.max(self.bytes);
            }
        }
        if let Some(cap) = self.capacity {
            while self.map.len() > cap {
                let victim = match self.policy {
                    EvictPolicy::Fifo => self.fifo.pop_front(),
                    EvictPolicy::Lru => {
                        // Scan for the stalest entry (simple and exact;
                        // bounded caches in the experiments are modest).
                        self.map
                            .iter()
                            .min_by_key(|(_, (_, t))| *t)
                            .map(|(p, _)| *p)
                    }
                };
                match victim {
                    Some(old) => {
                        if let Some((sz, _)) = self.map.remove(&old) {
                            self.bytes -= sz as u64;
                            self.stats.evictions += 1;
                        }
                        if self.policy == EvictPolicy::Lru {
                            if let Some(pos) = self.fifo.iter().position(|&p| p == old) {
                                self.fifo.remove(pos);
                            }
                        }
                    }
                    None => break,
                }
            }
        }
    }

    /// Drop `ptr` from the cache because its object changed home (an
    /// ownership change must not leave a copy that answers probes for the
    /// old home). Returns `true` if a copy was actually cached; afterwards
    /// the next probe misses and the refetch goes to the new home.
    pub fn invalidate(&mut self, ptr: GPtr) -> bool {
        match self.map.remove(&ptr) {
            Some((size, _)) => {
                self.bytes -= size as u64;
                self.stats.invalidations += 1;
                if let Some(pos) = self.fifo.iter().position(|&p| p == ptr) {
                    self.fifo.remove(pos);
                }
                true
            }
            None => false,
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes currently cached.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// High-water mark of cached bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// The eviction policy in effect.
    pub fn policy(&self) -> EvictPolicy {
        self.policy
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Flush contents at a phase boundary (counters survive).
    pub fn clear(&mut self) {
        self.map.clear();
        self.fifo.clear();
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gptr::ObjClass;

    fn p(i: u64) -> GPtr {
        GPtr::new(2, ObjClass(1), i)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = SoftCache::new(None);
        assert!(!c.probe(p(1)));
        c.fill(p(1), 64);
        assert!(c.probe(p(1)));
        let s = c.stats();
        assert_eq!((s.probes, s.hits, s.misses), (2, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_fifo() {
        let mut c = SoftCache::new(Some(2));
        c.fill(p(1), 10);
        c.fill(p(2), 10);
        c.fill(p(3), 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(!c.probe(p(1)), "oldest entry must be evicted");
        assert!(c.probe(p(2)));
        assert!(c.probe(p(3)));
        assert_eq!(c.bytes(), 20);
    }

    #[test]
    fn lru_evicts_stalest_not_oldest() {
        let mut c = SoftCache::with_policy(Some(2), EvictPolicy::Lru);
        c.fill(p(1), 10);
        c.fill(p(2), 10);
        assert!(c.probe(p(1))); // refresh 1: now 2 is stalest
        c.fill(p(3), 10);
        assert!(c.probe(p(1)), "recently-used entry must survive");
        assert!(!c.probe(p(2)), "stalest entry must be evicted");
        assert!(c.probe(p(3)));
    }

    #[test]
    fn double_fill_is_idempotent() {
        let mut c = SoftCache::new(None);
        c.fill(p(1), 10);
        c.fill(p(1), 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 10);
    }

    #[test]
    fn clear_keeps_counters_and_peak() {
        let mut c = SoftCache::new(None);
        c.probe(p(1));
        c.fill(p(1), 100);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.peak_bytes(), 100);
        assert_eq!(c.stats().probes, 1);
    }

    #[test]
    fn empty_hit_rate_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn invalidate_forces_refetch_from_new_home() {
        let mut c = SoftCache::new(Some(4));
        c.fill(p(1), 64);
        c.fill(p(2), 32);
        assert!(c.invalidate(p(1)), "cached copy must be dropped");
        assert!(!c.contains(p(1)));
        assert_eq!(c.bytes(), 32);
        assert!(!c.probe(p(1)), "next probe must miss and refetch");
        assert!(!c.invalidate(p(1)), "second invalidate is a no-op");
        assert_eq!(c.stats().invalidations, 1);
        // The fifo entry is gone too: filling to capacity must not evict
        // based on a ghost of the invalidated pointer.
        c.fill(p(1), 64);
        c.fill(p(3), 8);
        c.fill(p(4), 8);
        c.fill(p(5), 8);
        assert_eq!(c.stats().evictions, 1);
        assert!(!c.contains(p(2)), "oldest live entry is the eviction victim");
        assert!(c.contains(p(1)));
    }
}
