//! Locality-driven object migration: the data-side dual of DPA's
//! thread-side alignment.
//!
//! DPA's M mapping aligns *threads* with the objects they dereference; the
//! dual optimization moves hot *objects* to the node whose threads
//! dereference them most. A [`GPtr`] bakes the birth home into its bits, so
//! re-homing cannot rewrite pointers — instead every node keeps a small
//! [`MigrationTable`] of deviations from the birth mapping:
//!
//! * **adopted** — objects this node now serves (it received the payload in
//!   a `Migrate` message or an inter-phase hand-off);
//! * **departed** — forwarding stubs at the birth home: requests for these
//!   objects are forwarded one hop to the new home. An adopted object is
//!   never migrated again, so a request chases at most one stub;
//! * **overrides** — homes a consumer has *learned* (a reply for `p`
//!   arriving from a node other than `p.node()` reveals the new home), so
//!   later requests skip the forwarding hop;
//! * **affinity** — the owner-side per-`(object, requester)` remote
//!   dereference counts that drive the policy. Requesters sample these
//!   counts from their `PointerMap` (one count per aligned thread, not per
//!   message) and ship them to the believed home in `Affinity` messages.
//!
//! The table is pure bookkeeping — deterministic given the sequence of
//! calls — which is what lets migration runs stay replayable under the DST
//! harness.

use crate::fxhash::{FxHashMap, FxHashSet};
use crate::gptr::GPtr;

/// Per-node migration state: deviations from the birth-home mapping plus
/// the affinity counts that drive the migration policy. All tables are
/// Fx-hashed — `home_of` runs once per request under migration.
#[derive(Clone, Debug, Default)]
pub struct MigrationTable {
    /// Objects this node has adopted and now serves: `ptr -> payload size`.
    adopted: FxHashMap<GPtr, u32>,
    /// Forwarding stubs for objects born here that have moved: `ptr -> new
    /// home`.
    departed: FxHashMap<GPtr, u16>,
    /// Learned re-homings of remote objects: `ptr -> observed home`.
    overrides: FxHashMap<GPtr, u16>,
    /// Owner-side affinity: `(ptr, requester) -> remote dereference count`.
    affinity: FxHashMap<(GPtr, u16), u64>,
    /// Objects pinned against re-homing — the replication directory's
    /// pointers: a replicated object's directory lives at its birth home,
    /// so migrating it would orphan every replica. Demotion unpins (the
    /// driver rebuilds the pin set from the directory each boundary).
    pinned: FxHashSet<GPtr>,
    migrations_in: u64,
    migrations_out: u64,
    overrides_learned: u64,
    affinity_recorded: u64,
}

/// A migration decision: ship `ptr` to `to`, justified by `count` observed
/// remote dereferences from that node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Migration {
    /// The object to move.
    pub ptr: GPtr,
    /// The dominant consumer that becomes the new home.
    pub to: u16,
    /// Remote dereference count that justified the move.
    pub count: u64,
}

impl MigrationTable {
    /// An empty table (everything at its birth home).
    pub fn new() -> MigrationTable {
        MigrationTable::default()
    }

    /// Where node `me` should send requests for `ptr`: itself if it adopted
    /// the object, the stub target if the object departed from here, a
    /// learned override if one exists, else the birth home in the pointer
    /// bits.
    pub fn home_of(&self, ptr: GPtr, me: u16) -> u16 {
        if self.adopted.contains_key(&ptr) {
            return me;
        }
        if let Some(&to) = self.departed.get(&ptr) {
            return to;
        }
        if let Some(&home) = self.overrides.get(&ptr) {
            return home;
        }
        ptr.node()
    }

    /// `true` if this node adopted `ptr` and serves reads for it.
    #[inline]
    pub fn is_adopted(&self, ptr: GPtr) -> bool {
        self.adopted.contains_key(&ptr)
    }

    /// `true` if `ptr` was born here but has been shipped away.
    #[inline]
    pub fn is_departed(&self, ptr: GPtr) -> bool {
        self.departed.contains_key(&ptr)
    }

    /// The forwarding-stub target for a departed object, if any.
    pub fn forward_target(&self, ptr: GPtr) -> Option<u16> {
        self.departed.get(&ptr).copied()
    }

    /// Payload size of an adopted object, if adopted.
    pub fn adopted_size(&self, ptr: GPtr) -> Option<u32> {
        self.adopted.get(&ptr).copied()
    }

    /// Install `ptr` (with `size` payload bytes) as adopted by this node.
    /// Idempotent: returns `false` if it was already adopted (a duplicated
    /// `Migrate` message). An adopted object is never `depart`ed again, so
    /// forwarding chains stay at length ≤ 1.
    pub fn adopt(&mut self, ptr: GPtr, size: u32) -> bool {
        debug_assert!(
            !self.departed.contains_key(&ptr),
            "object adopted at a node it departed from"
        );
        let fresh = self.adopted.insert(ptr, size).is_none();
        if fresh {
            self.migrations_in += 1;
            // The node now *is* the home; any learned override is obsolete.
            self.overrides.remove(&ptr);
            // Drop affinity rows that raced in ahead of the shipment: a
            // consumer that already learned the new home can report here
            // *before* the `Migrate` lands, and `record_affinity`'s
            // adopted-check cannot catch that. Leaving the rows would let a
            // later pick re-migrate an adopted object — a 2-hop chain.
            self.affinity.retain(|(p, _), _| *p != ptr);
        }
        fresh
    }

    /// Install a forwarding stub: `ptr` (born here) now lives at `to`.
    /// Returns `false` if a stub already exists. Drops the object's
    /// affinity rows — it is no longer this node's to give away.
    pub fn depart(&mut self, ptr: GPtr, to: u16) -> bool {
        debug_assert!(
            !self.adopted.contains_key(&ptr),
            "adopted objects are never re-migrated (forwarding chain bound)"
        );
        let fresh = self.departed.insert(ptr, to).is_none();
        if fresh {
            self.migrations_out += 1;
            self.affinity.retain(|(p, _), _| *p != ptr);
        }
        fresh
    }

    /// Record that a reply (or forward) for `ptr` came from `home`,
    /// revealing a re-homing. No-op for the birth home itself or for
    /// objects this node adopted. Returns `true` when the override was new
    /// or changed.
    pub fn learn_override(&mut self, ptr: GPtr, home: u16) -> bool {
        if home == ptr.node() || self.adopted.contains_key(&ptr) {
            return false;
        }
        let changed = self.overrides.insert(ptr, home) != Some(home);
        if changed {
            self.overrides_learned += 1;
        }
        changed
    }

    /// Owner-side: accumulate at node `me` `n` remote dereferences of
    /// `ptr` by node `from`. Only the *birth home* of an object it still
    /// holds accumulates signal — everything else is dropped:
    ///
    /// * objects born elsewhere (`ptr.node() != me`) — a report can reach
    ///   a node that never held the object at all, e.g. a consumer acting
    ///   on a learned override whose `Migrate` shipment was then lost.
    ///   Recording it would let that node "migrate" an object it does not
    ///   have;
    /// * already-departed objects (the stub target gathers its own
    ///   signal);
    /// * *adopted* objects — consumers that learned the new home report
    ///   here, but an adopted object never migrates again
    ///   (forwarding-chain bound), so the signal must not accumulate into
    ///   a pick.
    pub fn record_affinity(&mut self, ptr: GPtr, from: u16, n: u64, me: u16) {
        if n == 0
            || ptr.node() != me
            || self.departed.contains_key(&ptr)
            || self.adopted.contains_key(&ptr)
        {
            return;
        }
        *self.affinity.entry((ptr, from)).or_insert(0) += n;
        self.affinity_recorded += n;
    }

    /// The migration policy: for each object with affinity signal, find its
    /// dominant consumer (highest count, ties to the lowest node id) and
    /// propose a move when the count reaches `threshold`. At most `budget`
    /// proposals are returned, highest counts first; ties break on pointer
    /// bits so the outcome is deterministic regardless of hash-map
    /// iteration order. The caller commits each proposal with
    /// [`MigrationTable::depart`].
    pub fn pick_migrations(&self, threshold: u64, budget: usize) -> Vec<Migration> {
        if budget == 0 || threshold == 0 {
            return Vec::new();
        }
        let mut per_ptr: FxHashMap<GPtr, (u64, u16)> = FxHashMap::default();
        for (&(ptr, from), &count) in &self.affinity {
            let entry = per_ptr.entry(ptr).or_insert((0, u16::MAX));
            if count > entry.0 || (count == entry.0 && from < entry.1) {
                *entry = (count, from);
            }
        }
        let mut picks: Vec<Migration> = per_ptr
            .into_iter()
            .filter(|&(ptr, (count, _))| count >= threshold && !self.pinned.contains(&ptr))
            .map(|(ptr, (count, to))| Migration { ptr, to, count })
            .collect();
        picks.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(a.ptr.bits().cmp(&b.ptr.bits()))
        });
        picks.truncate(budget);
        picks
    }

    /// Replace the pin set: `ptrs` are exempt from [`pick_migrations`]
    /// until the next call. The driver rebuilds this from the replica
    /// directory at every phase boundary, so a demoted pointer is
    /// automatically eligible for migration again.
    ///
    /// [`pick_migrations`]: MigrationTable::pick_migrations
    pub fn set_pins(&mut self, ptrs: &[GPtr]) {
        self.pinned.clear();
        self.pinned.extend(ptrs.iter().copied());
    }

    /// `true` when `ptr` is pinned against re-homing.
    pub fn is_pinned(&self, ptr: GPtr) -> bool {
        self.pinned.contains(&ptr)
    }

    /// Number of pinned objects.
    pub fn pinned_len(&self) -> usize {
        self.pinned.len()
    }

    /// Owner-side affinity rows grouped per object:
    /// `(ptr, [(requester, count)])`, objects sorted by pointer bits, rows
    /// sorted by requester — the fan-out signal the replication promotion
    /// policy reads (a hub shows many requesters, none dominant).
    pub fn affinity_summary(&self) -> Vec<(GPtr, Vec<(u16, u64)>)> {
        let mut per_ptr: FxHashMap<GPtr, Vec<(u16, u64)>> = FxHashMap::default();
        for (&(ptr, from), &count) in &self.affinity {
            per_ptr.entry(ptr).or_default().push((from, count));
        }
        let mut out: Vec<(GPtr, Vec<(u16, u64)>)> = per_ptr.into_iter().collect();
        for (_, rows) in &mut out {
            rows.sort_unstable();
        }
        out.sort_unstable_by_key(|(p, _)| p.bits());
        out
    }

    /// Number of objects adopted here.
    pub fn adopted_len(&self) -> usize {
        self.adopted.len()
    }

    /// Number of forwarding stubs installed here.
    pub fn departed_len(&self) -> usize {
        self.departed.len()
    }

    /// Number of learned home overrides.
    pub fn overrides_len(&self) -> usize {
        self.overrides.len()
    }

    /// Objects adopted here as `(pointer bits, size)`, sorted — for
    /// snapshots and cross-phase hand-off.
    pub fn adopted_entries(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self.adopted.iter().map(|(p, &s)| (p.bits(), s)).collect();
        v.sort_unstable();
        v
    }

    /// Forwarding stubs as `(pointer bits, new home)`, sorted — for the
    /// object-conservation oracle.
    pub fn departed_entries(&self) -> Vec<(u64, u16)> {
        let mut v: Vec<(u64, u16)> = self.departed.iter().map(|(p, &t)| (p.bits(), t)).collect();
        v.sort_unstable();
        v
    }

    /// Total objects ever adopted (`adopt` returning fresh).
    pub fn migrations_in(&self) -> u64 {
        self.migrations_in
    }

    /// Total objects ever departed (`depart` returning fresh).
    pub fn migrations_out(&self) -> u64 {
        self.migrations_out
    }

    /// Total override learn/update events.
    pub fn overrides_learned(&self) -> u64 {
        self.overrides_learned
    }

    /// Total affinity counts recorded at this node (owner side).
    pub fn affinity_recorded(&self) -> u64 {
        self.affinity_recorded
    }

    /// `true` when the table records no deviation from birth homes.
    pub fn is_empty(&self) -> bool {
        self.adopted.is_empty() && self.departed.is_empty() && self.overrides.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gptr::ObjClass;

    fn p(node: u16, i: u64) -> GPtr {
        GPtr::new(node, ObjClass(0), i)
    }

    #[test]
    fn home_defaults_to_birth_node() {
        let t = MigrationTable::new();
        assert_eq!(t.home_of(p(3, 7), 0), 3);
        assert!(t.is_empty());
    }

    #[test]
    fn depart_installs_stub_and_adopt_rehomes() {
        let mut owner = MigrationTable::new();
        let mut consumer = MigrationTable::new();
        let obj = p(0, 42);
        assert!(owner.depart(obj, 2));
        assert!(!owner.depart(obj, 2), "second stub install is a no-op");
        assert_eq!(owner.home_of(obj, 0), 2, "birth home forwards");
        assert_eq!(owner.forward_target(obj), Some(2));

        assert!(consumer.adopt(obj, 96));
        assert!(!consumer.adopt(obj, 96), "duplicate Migrate is idempotent");
        assert_eq!(consumer.home_of(obj, 2), 2, "adoptee serves locally");
        assert_eq!(consumer.adopted_size(obj), Some(96));
        assert_eq!(owner.migrations_out(), 1);
        assert_eq!(consumer.migrations_in(), 1);
    }

    #[test]
    fn affinity_that_outran_the_shipment_cannot_remigrate_the_adoptee() {
        // A consumer that already learned the new home may report affinity
        // there before the Migrate message lands. Those rows must die at
        // adoption, or a later pick would depart an adopted object and
        // build a 2-hop forwarding chain.
        let mut t = MigrationTable::new();
        let obj = p(0, 9);
        t.record_affinity(obj, 3, 10, 0);
        assert!(!t.pick_migrations(2, 8).is_empty(), "signal is live pre-adopt");
        assert!(t.adopt(obj, 64));
        assert!(
            t.pick_migrations(2, 8).is_empty(),
            "adoption must clear raced-in affinity rows"
        );
        t.record_affinity(obj, 3, 10, 0);
        assert!(
            t.pick_migrations(2, 8).is_empty(),
            "post-adoption reports are dropped at record time"
        );
    }

    #[test]
    fn only_the_birth_home_accumulates_signal() {
        // A lost Migrate leaves consumers believing node 2 is home while
        // node 2 never received the object. Reports landing there must not
        // accumulate — node 2 has nothing to give away, and "departing" it
        // would stub an object it does not hold.
        let mut t = MigrationTable::new();
        let obj = p(0, 7);
        t.record_affinity(obj, 3, 50, 2);
        assert!(t.pick_migrations(1, 8).is_empty());
        assert_eq!(t.affinity_recorded(), 0);
    }

    #[test]
    fn override_learned_from_reply_source() {
        let mut t = MigrationTable::new();
        let obj = p(0, 5);
        assert!(!t.learn_override(obj, 0), "birth home is not an override");
        assert!(t.learn_override(obj, 3));
        assert_eq!(t.home_of(obj, 1), 3);
        assert!(!t.learn_override(obj, 3), "same home again is a no-op");
        assert_eq!(t.overrides_learned(), 1);
    }

    #[test]
    fn adoption_clears_stale_override() {
        let mut t = MigrationTable::new();
        let obj = p(0, 5);
        t.learn_override(obj, 3);
        t.adopt(obj, 64);
        assert_eq!(t.home_of(obj, 2), 2);
        assert_eq!(t.overrides_len(), 0);
    }

    #[test]
    fn affinity_drives_dominant_consumer_pick() {
        let mut t = MigrationTable::new();
        let a = p(0, 1);
        let b = p(0, 2);
        t.record_affinity(a, 1, 5, 0);
        t.record_affinity(a, 2, 9, 0);
        t.record_affinity(b, 3, 9, 0);
        t.record_affinity(b, 1, 9, 0); // tie on count: lowest node id wins
        let picks = t.pick_migrations(6, 8);
        assert_eq!(picks.len(), 2);
        assert_eq!(picks[0], Migration { ptr: a, to: 2, count: 9 });
        assert_eq!(picks[1], Migration { ptr: b, to: 1, count: 9 });
    }

    #[test]
    fn threshold_and_budget_bound_the_picks() {
        let mut t = MigrationTable::new();
        for i in 0..10 {
            t.record_affinity(p(0, i), 1, 2 + i, 0);
        }
        assert!(t.pick_migrations(100, 8).is_empty(), "below threshold");
        assert!(t.pick_migrations(0, 8).is_empty(), "threshold 0 = disabled");
        let picks = t.pick_migrations(2, 3);
        assert_eq!(picks.len(), 3, "budget caps the batch");
        assert!(picks[0].count >= picks[1].count && picks[1].count >= picks[2].count);
    }

    #[test]
    fn departed_objects_stop_accumulating_affinity() {
        let mut t = MigrationTable::new();
        let obj = p(0, 9);
        t.record_affinity(obj, 1, 4, 0);
        t.depart(obj, 1);
        t.record_affinity(obj, 2, 50, 0);
        assert!(
            t.pick_migrations(1, 8).is_empty(),
            "a departed object must never be picked again"
        );
    }

    #[test]
    fn adopted_objects_never_accumulate_affinity() {
        // Consumers with learned overrides report affinity straight to the
        // adoptee; that signal must not make the object migrate a second
        // time (the forwarding chain is bounded at one hop).
        let mut t = MigrationTable::new();
        let obj = p(0, 9);
        t.adopt(obj, 64);
        t.record_affinity(obj, 2, 50, 0);
        assert!(t.pick_migrations(1, 8).is_empty());
        assert_eq!(t.affinity_recorded(), 0);
    }

    #[test]
    fn pinned_objects_are_never_picked_until_unpinned() {
        let mut t = MigrationTable::new();
        let hot = p(0, 1);
        let cold = p(0, 2);
        t.record_affinity(hot, 1, 50, 0);
        t.record_affinity(cold, 2, 50, 0);
        t.set_pins(&[hot]);
        assert!(t.is_pinned(hot) && !t.is_pinned(cold));
        let picks = t.pick_migrations(1, 8);
        assert_eq!(picks.len(), 1, "pinned object skipped, signal intact");
        assert_eq!(picks[0].ptr, cold);
        // Demotion: the driver rebuilds the pin set without the pointer,
        // and the accumulated signal immediately re-enables migration.
        t.set_pins(&[]);
        assert_eq!(t.pinned_len(), 0);
        assert_eq!(t.pick_migrations(1, 8).len(), 2);
    }

    #[test]
    fn affinity_summary_groups_and_sorts() {
        let mut t = MigrationTable::new();
        t.record_affinity(p(0, 5), 3, 7, 0);
        t.record_affinity(p(0, 5), 1, 9, 0);
        t.record_affinity(p(0, 2), 2, 4, 0);
        let s = t.affinity_summary();
        assert_eq!(
            s,
            vec![
                (p(0, 2), vec![(2, 4)]),
                (p(0, 5), vec![(1, 9), (3, 7)]),
            ]
        );
    }

    #[test]
    fn snapshot_entries_are_sorted() {
        let mut t = MigrationTable::new();
        t.adopt(p(1, 9), 10);
        t.adopt(p(1, 2), 20);
        t.depart(p(0, 7), 3);
        t.depart(p(0, 1), 2);
        let a = t.adopted_entries();
        let d = t.departed_entries();
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(d.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(t.adopted_len(), 2);
        assert_eq!(t.departed_len(), 2);
    }
}
