//! Allocation-recycling arenas for the messaging hot path.
//!
//! The simulator's inner loop used to round-trip through the global
//! allocator on every event: each work item built a fresh emission buffer,
//! each timing-wheel bucket grew its own storage, each drained batch left
//! its capacity behind. On a host where events are processed at ~1 µs each,
//! a malloc/free pair per event is a measurable fraction of the budget.
//!
//! Two tiny, safe arenas fix that:
//!
//! * [`VecPool`] — a free list of `Vec<T>` buffers. Take a cleared buffer,
//!   fill it, hand it back; the capacity survives and the allocator is
//!   never consulted in steady state.
//! * [`Slab`] — a free-list arena of `T` slots addressed by dense `u32`
//!   ids. Insertion reuses vacated slots, so long-lived tables (the
//!   runtime's SoA pointer tables, queued payloads) stay compact and
//!   pointer-free.
//!
//! Both are plain safe Rust — the win is *reuse*, not unsafe tricks.

/// A recycling pool of `Vec<T>` buffers.
///
/// `take` hands out an empty vector (reusing a returned one's capacity when
/// available); `put` returns a buffer to the pool, clearing it. The pool
/// holds at most [`VecPool::MAX_FREE`] buffers so pathological bursts don't
/// pin memory forever.
#[derive(Debug)]
pub struct VecPool<T> {
    free: Vec<Vec<T>>,
}

impl<T> Default for VecPool<T> {
    fn default() -> Self {
        VecPool::new()
    }
}

/// Cloning yields an *empty* pool: the free list is an allocator cache,
/// not data, so a cloned owner simply warms its own. This is what lets
/// pool-holding structures (the coalescers) keep deriving `Clone` without
/// requiring `T: Clone`.
impl<T> Clone for VecPool<T> {
    fn clone(&self) -> Self {
        VecPool::new()
    }
}

impl<T> VecPool<T> {
    /// Buffers retained when idle; returns beyond this are dropped.
    pub const MAX_FREE: usize = 64;

    /// An empty pool.
    pub fn new() -> VecPool<T> {
        VecPool { free: Vec::new() }
    }

    /// Get an empty buffer, reusing pooled capacity when available.
    #[inline]
    pub fn take(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Return a buffer to the pool. It is cleared here; its capacity is
    /// kept for the next [`take`](VecPool::take) unless the pool is full.
    #[inline]
    pub fn put(&mut self, mut buf: Vec<T>) {
        if self.free.len() < Self::MAX_FREE && buf.capacity() > 0 {
            buf.clear();
            self.free.push(buf);
        }
    }

    /// Number of buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

/// A free-list arena: `T` values in dense `u32`-addressed slots.
///
/// [`insert`](Slab::insert) returns a stable id; [`remove`](Slab::remove)
/// vacates the slot for reuse by a later insert. Ids are only as unique as
/// the caller's discipline — a removed id must not be dereferenced again
/// (debug builds catch it; release builds return `None`).
#[derive(Clone, Debug, Default)]
pub struct Slab<T> {
    entries: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Store `value`, returning its slot id. Reuses vacated slots before
    /// growing.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.entries[id as usize].is_none());
                self.entries[id as usize] = Some(value);
                id
            }
            None => {
                let id = u32::try_from(self.entries.len()).expect("slab overflow");
                self.entries.push(Some(value));
                id
            }
        }
    }

    /// Take the value out of slot `id`, vacating it for reuse.
    pub fn remove(&mut self, id: u32) -> Option<T> {
        let v = self.entries.get_mut(id as usize)?.take();
        if v.is_some() {
            self.free.push(id);
            self.len -= 1;
        }
        v
    }

    /// Borrow the value in slot `id` (`None` if vacated).
    #[inline]
    pub fn get(&self, id: u32) -> Option<&T> {
        self.entries.get(id as usize)?.as_ref()
    }

    /// Mutably borrow the value in slot `id` (`None` if vacated).
    #[inline]
    pub fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        self.entries.get_mut(id as usize)?.as_mut()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total slots ever allocated (occupied + vacant).
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Iterate occupied slots in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|v| (i as u32, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_pool_recycles_capacity() {
        let mut p: VecPool<u64> = VecPool::new();
        let mut v = p.take();
        v.extend(0..100);
        let cap = v.capacity();
        p.put(v);
        assert_eq!(p.idle(), 1);
        let v2 = p.take();
        assert!(v2.is_empty(), "pooled buffers come back cleared");
        assert_eq!(v2.capacity(), cap, "capacity survives the round trip");
        assert_eq!(p.idle(), 0);
    }

    #[test]
    fn vec_pool_drops_empty_and_overflow_buffers() {
        let mut p: VecPool<u8> = VecPool::new();
        p.put(Vec::new()); // zero capacity: not worth pooling
        assert_eq!(p.idle(), 0);
        for _ in 0..(VecPool::<u8>::MAX_FREE + 10) {
            p.put(Vec::with_capacity(4));
        }
        assert_eq!(p.idle(), VecPool::<u8>::MAX_FREE);
    }

    #[test]
    fn slab_insert_get_remove() {
        let mut s: Slab<String> = Slab::new();
        let a = s.insert("a".into());
        let b = s.insert("b".into());
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a).unwrap(), "a");
        assert_eq!(s.remove(a).unwrap(), "a");
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None, "double remove is a no-op");
        assert_eq!(s.len(), 1);
        // The vacated slot is reused before the slab grows.
        let c = s.insert("c".into());
        assert_eq!(c, a);
        assert_eq!(s.capacity(), 2);
        assert_eq!(s.get(b).unwrap(), "b");
    }

    #[test]
    fn slab_iterates_in_id_order() {
        let mut s: Slab<u32> = Slab::new();
        let ids: Vec<u32> = (0..5).map(|i| s.insert(i * 10)).collect();
        s.remove(ids[2]);
        let got: Vec<(u32, u32)> = s.iter().map(|(i, &v)| (i, v)).collect();
        assert_eq!(got, vec![(0, 0), (1, 10), (3, 30), (4, 40)]);
    }
}
