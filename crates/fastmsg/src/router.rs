//! Active-message handler dispatch, in the style of
//! `FM_send(dest, handler, args)`.
//!
//! FM messages name the function that will consume them at the receiver.
//! The statically-compiled layers of this workspace dispatch on plain
//! Rust enums (faster and type-safe); this router is the FM-shaped
//! dynamic alternative for embedders that register handlers at runtime.

use std::fmt;

/// A handler index into a [`Router`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct HandlerId(pub u32);

impl fmt::Display for HandlerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A boxed handler function.
type Handler<S, A> = Box<dyn FnMut(&mut S, A)>;

/// Dispatch table mapping [`HandlerId`]s to boxed handler functions over a
/// shared state `S` and argument type `A`.
pub struct Router<S, A> {
    handlers: Vec<(String, Handler<S, A>)>,
}

impl<S, A> Default for Router<S, A> {
    fn default() -> Self {
        Router::new()
    }
}

impl<S, A> Router<S, A> {
    /// An empty table.
    pub fn new() -> Router<S, A> {
        Router {
            handlers: Vec::new(),
        }
    }

    /// Register `f` under `name`; returns its id. Names need not be unique
    /// (ids are), but duplicate names make `lookup` return the first.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut S, A) + 'static,
    ) -> HandlerId {
        let id = HandlerId(self.handlers.len() as u32);
        self.handlers.push((name.into(), Box::new(f)));
        id
    }

    /// Find a handler id by name.
    pub fn lookup(&self, name: &str) -> Option<HandlerId> {
        self.handlers
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| HandlerId(i as u32))
    }

    /// Invoke handler `id` with `(state, args)`. Panics on a bad id — a bad
    /// id is a bug in message construction, not a runtime condition.
    pub fn dispatch(&mut self, id: HandlerId, state: &mut S, args: A) {
        let (_, f) = &mut self.handlers[id.0 as usize];
        f(state, args);
    }

    /// Number of registered handlers.
    pub fn len(&self) -> usize {
        self.handlers.len()
    }

    /// `true` when no handlers are registered.
    pub fn is_empty(&self) -> bool {
        self.handlers.is_empty()
    }

    /// The name a handler was registered under.
    pub fn name(&self, id: HandlerId) -> &str {
        &self.handlers[id.0 as usize].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_dispatch() {
        let mut r: Router<Vec<u32>, u32> = Router::new();
        let double = r.register("double", |s, a| s.push(a * 2));
        let inc = r.register("inc", |s, a| s.push(a + 1));
        let mut state = Vec::new();
        r.dispatch(double, &mut state, 21);
        r.dispatch(inc, &mut state, 9);
        assert_eq!(state, vec![42, 10]);
    }

    #[test]
    fn lookup_by_name() {
        let mut r: Router<(), ()> = Router::new();
        let a = r.register("a", |_, _| {});
        let b = r.register("b", |_, _| {});
        assert_eq!(r.lookup("a"), Some(a));
        assert_eq!(r.lookup("b"), Some(b));
        assert_eq!(r.lookup("c"), None);
        assert_eq!(r.name(b), "b");
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic]
    fn bad_id_panics() {
        let mut r: Router<(), ()> = Router::new();
        r.dispatch(HandlerId(3), &mut (), ());
    }
}
