//! # fastmsg — Fast-Messages-style messaging layer
//!
//! The paper's implementation runs over Illinois Fast Messages (FM) on the
//! Cray T3D: user-level active messages whose cost is dominated by software
//! per-message overhead. This crate reproduces the pieces of that layer that
//! DPA's *communication scheduling* needs:
//!
//! * [`agg::Coalescer`] — per-destination coalescing buffers that batch many
//!   small requests into one packet (message **aggregation**);
//! * [`packet`] — MTU segmentation for long replies (FM's streamed
//!   messages), so bulk transfers pay per-packet overhead honestly;
//! * [`router::Router`] — a tiny handler-dispatch table in the style of
//!   `FM_send(dest, handler, args)` for dynamically-registered handlers;
//! * [`arena`] — allocation-recycling pools ([`arena::VecPool`],
//!   [`arena::Slab`]) that keep event and payload buffers out of the
//!   global allocator on the simulation hot path.
//!
//! All of it is pure data-structure logic layered on `sim-net`'s cost
//! model; nothing here performs real I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod arena;
pub mod packet;
pub mod router;

pub use agg::{ByteCoalescer, Coalescer, FlushReason};
pub use arena::{Slab, VecPool};
pub use packet::{packets_for, segment_sizes, Mtu};
pub use router::Router;
