//! Per-destination coalescing buffers — the mechanism behind DPA's message
//! aggregation.
//!
//! Every remote request DPA wants to issue is first appended to the buffer
//! for its destination node. A buffer is handed back to the caller (to be
//! sent as a single packet) either when it reaches its capacity
//! ([`FlushReason::Full`]) or when the runtime decides no more local work is
//! available and drains everything ([`FlushReason::Drain`]). The runtime
//! never lets requests sit while the node idles — that would trade overhead
//! for latency — so `Drain` happens at every scheduling quiescence point.
//!
//! ## Flush ordering and the parallel engine
//!
//! Both flush paths emit batches in ascending destination order (the
//! `nonempty` list is kept sorted), and a flush happens *inside* the event
//! handler that triggered it — the resulting packets are stamped and
//! sequenced at that event's timestamp before the handler returns. This
//! matters for `sim_net`'s conservative-window parallel engine: because
//! every send a handler makes is ordered by the per-source sequence counter
//! at emission time, a window boundary can never fall "between" the batches
//! of one drain. The parallel engine therefore observes exactly the
//! sequential engine's flush order, which is one of the invariants behind
//! its bit-identical replay guarantee.

use crate::arena::VecPool;
use std::collections::VecDeque;

/// Why a batch was emitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// The per-destination buffer reached `max_entries`.
    Full,
    /// The runtime drained pending buffers at a quiescence point.
    Drain,
}

/// Per-destination batching of homogeneous items (e.g. object requests).
///
/// `T` is the per-request record (for DPA: a global pointer). The coalescer
/// tracks aggregate statistics so experiments can report achieved
/// aggregation factors.
#[derive(Clone, Debug)]
pub struct Coalescer<T> {
    buffers: Vec<VecDeque<T>>,
    max_entries: usize,
    /// Total items ever pushed.
    pushed: u64,
    /// Total batches ever emitted.
    batches: u64,
    /// Destinations with nonempty buffers (kept sorted for deterministic
    /// drain order).
    nonempty: Vec<u16>,
    /// Recycled batch buffers: every emitted batch is a `Vec` that the
    /// receiver can hand back via [`Coalescer::recycle`], so steady-state
    /// flushes never touch the global allocator.
    pool: VecPool<T>,
}

impl<T> Coalescer<T> {
    /// A coalescer for `nodes` destinations, flushing a destination once it
    /// holds `max_entries` items. `max_entries == 1` disables aggregation
    /// (every push emits immediately), which is how the `+Pipeline`-only
    /// DPA configuration is expressed.
    pub fn new(nodes: usize, max_entries: usize) -> Coalescer<T> {
        assert!(max_entries >= 1, "aggregation window must be >= 1");
        Coalescer {
            buffers: (0..nodes).map(|_| VecDeque::new()).collect(),
            max_entries,
            pushed: 0,
            batches: 0,
            nonempty: Vec::new(),
            pool: VecPool::new(),
        }
    }

    /// Number of destinations.
    pub fn num_nodes(&self) -> usize {
        self.buffers.len()
    }

    /// The configured aggregation window.
    pub fn window(&self) -> usize {
        self.max_entries
    }

    /// Append `item` for `dst`. Returns a full batch if the buffer reached
    /// capacity, which the caller must transmit immediately.
    pub fn push(&mut self, dst: u16, item: T) -> Option<Vec<T>> {
        self.pushed += 1;
        let buf = &mut self.buffers[dst as usize];
        if buf.is_empty() {
            // Maintain sorted order for deterministic drains.
            match self.nonempty.binary_search(&dst) {
                Ok(_) => {}
                Err(pos) => self.nonempty.insert(pos, dst),
            }
        }
        buf.push_back(item);
        if buf.len() >= self.max_entries {
            self.batches += 1;
            let mut batch = self.pool.take();
            batch.extend(self.buffers[dst as usize].drain(..));
            if let Ok(pos) = self.nonempty.binary_search(&dst) {
                self.nonempty.remove(pos);
            }
            Some(batch)
        } else {
            None
        }
    }

    /// Remove and return the pending batch for `dst`, if any.
    pub fn take(&mut self, dst: u16) -> Option<Vec<T>> {
        if self.buffers[dst as usize].is_empty() {
            return None;
        }
        self.batches += 1;
        if let Ok(pos) = self.nonempty.binary_search(&dst) {
            self.nonempty.remove(pos);
        }
        let mut batch = self.pool.take();
        batch.extend(self.buffers[dst as usize].drain(..));
        Some(batch)
    }

    /// The lowest-numbered destination with buffered items, if any.
    pub fn first_nonempty(&self) -> Option<u16> {
        self.nonempty.first().copied()
    }

    /// Drain every nonempty buffer, in ascending destination order.
    pub fn drain_all(&mut self) -> Vec<(u16, Vec<T>)> {
        let dests = std::mem::take(&mut self.nonempty);
        let mut out = Vec::with_capacity(dests.len());
        for dst in dests {
            if !self.buffers[dst as usize].is_empty() {
                self.batches += 1;
                let mut batch = self.pool.take();
                batch.extend(self.buffers[dst as usize].drain(..));
                out.push((dst, batch));
            }
        }
        out
    }

    /// Return a consumed batch's buffer so its capacity feeds a later
    /// flush. Callers that receive a payload `Vec` (or got one back from
    /// [`Coalescer::push`]) hand it here once drained; in steady state the
    /// emit path then never touches the global allocator.
    #[inline]
    pub fn recycle(&mut self, buf: Vec<T>) {
        self.pool.put(buf);
    }

    /// Batch buffers currently idle in the recycling pool.
    pub fn pooled(&self) -> usize {
        self.pool.idle()
    }

    /// Items currently buffered across all destinations.
    pub fn pending(&self) -> usize {
        self.nonempty
            .iter()
            .map(|&d| self.buffers[d as usize].len())
            .sum()
    }

    /// `true` when no destination has buffered items.
    pub fn is_empty(&self) -> bool {
        self.nonempty.is_empty()
    }

    /// Total items pushed over the coalescer's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total batches emitted over the coalescer's lifetime.
    pub fn total_batches(&self) -> u64 {
        self.batches
    }

    /// Mean achieved aggregation factor (items per emitted batch); the
    /// experiments report this per configuration.
    pub fn aggregation_factor(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.pushed - self.pending() as u64) as f64 / self.batches as f64
        }
    }
}

/// Per-destination batching with an **adaptive flush policy**: a batch is
/// emitted when its destination buffer reaches `max_entries` items *or*
/// `byte_budget` payload bytes (MTU occupancy), and destinations whose
/// oldest entry has waited past a caller-supplied deadline can be flushed
/// by [`ByteCoalescer::take_due`]. This drives the owner-side reply
/// scheduler (and the reduction/update path): replies are heavier and more
/// variably sized than 8-byte request pointers, so an entry-count window
/// alone either under-fills or overflows the MTU.
///
/// Time is whatever monotone unit the caller passes to `push`/`take_due`
/// (the simulator passes simulated ns); the coalescer only compares values.
#[derive(Clone, Debug)]
pub struct ByteCoalescer<T> {
    buffers: Vec<VecDeque<T>>,
    /// Payload bytes buffered per destination.
    bytes: Vec<u64>,
    /// Enqueue time of the oldest buffered entry per destination.
    first_at: Vec<u64>,
    byte_budget: u64,
    max_entries: usize,
    pushed: u64,
    pushed_bytes: u64,
    batches: u64,
    nonempty: Vec<u16>,
    /// Recycled batch buffers (see [`ByteCoalescer::recycle`]).
    pool: VecPool<T>,
}

impl<T> ByteCoalescer<T> {
    /// A coalescer for `nodes` destinations flushing at `byte_budget`
    /// payload bytes or `max_entries` items, whichever fills first.
    /// `max_entries == 1` disables aggregation (every push emits
    /// immediately).
    pub fn new(nodes: usize, byte_budget: u64, max_entries: usize) -> ByteCoalescer<T> {
        assert!(max_entries >= 1, "aggregation window must be >= 1");
        assert!(byte_budget >= 1, "byte budget must be >= 1");
        ByteCoalescer {
            buffers: (0..nodes).map(|_| VecDeque::new()).collect(),
            bytes: vec![0; nodes],
            first_at: vec![0; nodes],
            byte_budget,
            max_entries,
            pushed: 0,
            pushed_bytes: 0,
            batches: 0,
            nonempty: Vec::new(),
            pool: VecPool::new(),
        }
    }

    /// The configured entry window.
    pub fn window(&self) -> usize {
        self.max_entries
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> u64 {
        self.byte_budget
    }

    fn mark_nonempty(&mut self, dst: u16) {
        if let Err(pos) = self.nonempty.binary_search(&dst) {
            self.nonempty.insert(pos, dst);
        }
    }

    fn take_inner(&mut self, dst: u16) -> Vec<T> {
        self.batches += 1;
        self.bytes[dst as usize] = 0;
        if let Ok(pos) = self.nonempty.binary_search(&dst) {
            self.nonempty.remove(pos);
        }
        let mut batch = self.pool.take();
        batch.extend(self.buffers[dst as usize].drain(..));
        batch
    }

    /// Append an `item_bytes`-byte `item` for `dst` at time `now`. Returns
    /// the batches this push forces out (usually none, at most two): if the
    /// item would overflow a nonempty buffer past the byte budget, that
    /// buffer is flushed first; the buffer is then flushed again if the
    /// item itself fills it (entry window reached, budget reached, or a
    /// single oversized item — which thus always travels alone).
    pub fn push(&mut self, dst: u16, item: T, item_bytes: u64, now: u64) -> Vec<Vec<T>> {
        self.pushed += 1;
        self.pushed_bytes += item_bytes;
        let mut out = Vec::new();
        let d = dst as usize;
        if !self.buffers[d].is_empty() && self.bytes[d] + item_bytes > self.byte_budget {
            out.push(self.take_inner(dst));
        }
        if self.buffers[d].is_empty() {
            self.first_at[d] = now;
            self.mark_nonempty(dst);
        }
        self.buffers[d].push_back(item);
        self.bytes[d] += item_bytes;
        if self.buffers[d].len() >= self.max_entries || self.bytes[d] >= self.byte_budget {
            out.push(self.take_inner(dst));
        }
        out
    }

    /// Remove and return the pending batch for `dst`, if any.
    pub fn take(&mut self, dst: u16) -> Option<Vec<T>> {
        if self.buffers[dst as usize].is_empty() {
            return None;
        }
        Some(self.take_inner(dst))
    }

    /// Flush every destination whose oldest entry was enqueued at or before
    /// `now - deadline`, in ascending destination order.
    pub fn take_due(&mut self, now: u64, deadline: u64) -> Vec<(u16, Vec<T>)> {
        let due: Vec<u16> = self
            .nonempty
            .iter()
            .copied()
            .filter(|&d| self.first_at[d as usize] + deadline <= now)
            .collect();
        due.into_iter().map(|d| (d, self.take_inner(d))).collect()
    }

    /// Earliest time any currently buffered destination becomes due under
    /// `deadline` (`None` when everything is empty).
    pub fn next_due(&self, deadline: u64) -> Option<u64> {
        self.nonempty
            .iter()
            .map(|&d| self.first_at[d as usize] + deadline)
            .min()
    }

    /// Drain every nonempty buffer, in ascending destination order.
    pub fn drain_all(&mut self) -> Vec<(u16, Vec<T>)> {
        let dests = std::mem::take(&mut self.nonempty);
        let mut out = Vec::with_capacity(dests.len());
        for dst in dests {
            let d = dst as usize;
            if !self.buffers[d].is_empty() {
                self.batches += 1;
                self.bytes[d] = 0;
                let mut batch = self.pool.take();
                batch.extend(self.buffers[d].drain(..));
                out.push((dst, batch));
            }
        }
        out
    }

    /// Return a consumed batch's buffer so its capacity feeds a later
    /// flush (see [`Coalescer::recycle`]).
    #[inline]
    pub fn recycle(&mut self, buf: Vec<T>) {
        self.pool.put(buf);
    }

    /// Batch buffers currently idle in the recycling pool.
    pub fn pooled(&self) -> usize {
        self.pool.idle()
    }

    /// Items currently buffered across all destinations.
    pub fn pending(&self) -> usize {
        self.nonempty
            .iter()
            .map(|&d| self.buffers[d as usize].len())
            .sum()
    }

    /// Payload bytes currently buffered across all destinations.
    pub fn pending_bytes(&self) -> u64 {
        self.nonempty.iter().map(|&d| self.bytes[d as usize]).sum()
    }

    /// `true` when no destination has buffered items.
    pub fn is_empty(&self) -> bool {
        self.nonempty.is_empty()
    }

    /// Total items pushed over the coalescer's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total payload bytes pushed over the coalescer's lifetime.
    pub fn total_pushed_bytes(&self) -> u64 {
        self.pushed_bytes
    }

    /// Total batches emitted over the coalescer's lifetime.
    pub fn total_batches(&self) -> u64 {
        self.batches
    }

    /// Mean achieved aggregation factor (items per emitted batch).
    pub fn aggregation_factor(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.pushed - self.pending() as u64) as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_one_emits_immediately() {
        let mut c: Coalescer<u32> = Coalescer::new(4, 1);
        assert_eq!(c.push(2, 7), Some(vec![7]));
        assert!(c.is_empty());
        assert_eq!(c.aggregation_factor(), 1.0);
    }

    #[test]
    fn fills_at_capacity() {
        let mut c: Coalescer<u32> = Coalescer::new(2, 3);
        assert_eq!(c.push(1, 10), None);
        assert_eq!(c.push(1, 11), None);
        assert_eq!(c.push(1, 12), Some(vec![10, 11, 12]));
        assert!(c.is_empty());
    }

    #[test]
    fn drain_all_is_sorted_and_complete() {
        let mut c: Coalescer<u32> = Coalescer::new(5, 100);
        c.push(3, 30);
        c.push(0, 0);
        c.push(3, 31);
        c.push(4, 40);
        let drained = c.drain_all();
        let dests: Vec<u16> = drained.iter().map(|(d, _)| *d).collect();
        assert_eq!(dests, vec![0, 3, 4]);
        let total: usize = drained.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 4);
        assert!(c.is_empty());
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn take_specific_destination() {
        let mut c: Coalescer<&str> = Coalescer::new(3, 10);
        c.push(1, "a");
        c.push(2, "b");
        assert_eq!(c.take(1), Some(vec!["a"]));
        assert_eq!(c.take(1), None);
        assert_eq!(c.pending(), 1);
    }

    #[test]
    fn aggregation_factor_counts_emitted_only() {
        let mut c: Coalescer<u32> = Coalescer::new(2, 2);
        c.push(0, 1);
        c.push(0, 2); // batch of 2
        c.push(0, 3); // still buffered
        assert_eq!(c.total_batches(), 1);
        assert!((c.aggregation_factor() - 2.0).abs() < 1e-12);
        c.drain_all(); // batch of 1
        assert!((c.aggregation_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "aggregation window")]
    fn zero_window_rejected() {
        let _ = Coalescer::<u32>::new(1, 0);
    }

    #[test]
    fn conservation_under_interleaving() {
        // Items pushed = items emitted + items pending, always.
        let mut c: Coalescer<u64> = Coalescer::new(8, 4);
        let mut emitted = 0usize;
        for i in 0..1000u64 {
            let dst = (i % 7) as u16;
            if let Some(b) = c.push(dst, i) {
                emitted += b.len();
            }
            if i % 97 == 0 {
                emitted += c.drain_all().iter().map(|(_, b)| b.len()).sum::<usize>();
            }
        }
        assert_eq!(emitted + c.pending(), 1000);
    }

    #[test]
    fn byte_budget_flushes_before_overflow() {
        let mut c: ByteCoalescer<u32> = ByteCoalescer::new(2, 100, 64);
        assert!(c.push(0, 1, 40, 0).is_empty());
        assert!(c.push(0, 2, 40, 1).is_empty());
        // 40 + 40 + 40 would overflow 100: the existing pair goes first.
        let out = c.push(0, 3, 40, 2);
        assert_eq!(out, vec![vec![1, 2]]);
        assert_eq!(c.pending(), 1);
        assert_eq!(c.pending_bytes(), 40);
    }

    #[test]
    fn exact_budget_fill_emits() {
        let mut c: ByteCoalescer<u32> = ByteCoalescer::new(1, 80, 64);
        assert!(c.push(0, 1, 40, 0).is_empty());
        assert_eq!(c.push(0, 2, 40, 1), vec![vec![1, 2]]);
        assert!(c.is_empty());
    }

    #[test]
    fn oversized_item_travels_alone() {
        let mut c: ByteCoalescer<u32> = ByteCoalescer::new(2, 100, 64);
        assert!(c.push(1, 7, 30, 0).is_empty());
        // A 500-byte item flushes the 30-byte entry, then itself.
        let out = c.push(1, 8, 500, 1);
        assert_eq!(out, vec![vec![7], vec![8]]);
        assert!(c.is_empty());
        // Oversized into an empty buffer: exactly one singleton batch.
        assert_eq!(c.push(0, 9, 500, 2), vec![vec![9]]);
    }

    #[test]
    fn entry_window_still_applies() {
        let mut c: ByteCoalescer<u32> = ByteCoalescer::new(1, u64::MAX, 3);
        assert!(c.push(0, 1, 8, 0).is_empty());
        assert!(c.push(0, 2, 8, 0).is_empty());
        assert_eq!(c.push(0, 3, 8, 0), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn window_one_byte_coalescer_is_immediate() {
        let mut c: ByteCoalescer<u32> = ByteCoalescer::new(4, u64::MAX, 1);
        assert_eq!(c.push(2, 7, 64, 5), vec![vec![7]]);
        assert!(c.is_empty());
        assert_eq!(c.aggregation_factor(), 1.0);
    }

    #[test]
    fn deadline_takes_only_due_destinations() {
        let mut c: ByteCoalescer<u32> = ByteCoalescer::new(4, 1000, 64);
        c.push(0, 1, 10, 100);
        c.push(3, 2, 10, 400);
        assert_eq!(c.next_due(50), Some(150));
        // At t=200 with a 50-tick deadline only dst 0 (enqueued at 100)
        // is due.
        let due = c.take_due(200, 50);
        assert_eq!(due, vec![(0, vec![1])]);
        assert_eq!(c.next_due(50), Some(450));
        assert_eq!(c.take_due(200, 50), vec![]);
        assert_eq!(c.take_due(450, 50), vec![(3, vec![2])]);
        assert_eq!(c.next_due(50), None);
    }

    #[test]
    fn deadline_tracks_oldest_entry() {
        let mut c: ByteCoalescer<u32> = ByteCoalescer::new(1, 1000, 64);
        c.push(0, 1, 10, 100);
        c.push(0, 2, 10, 900); // later entry must not reset the clock
        assert_eq!(c.next_due(50), Some(150));
        assert_eq!(c.take_due(150, 50), vec![(0, vec![1, 2])]);
        // A fresh first entry restarts the clock.
        c.push(0, 3, 10, 2000);
        assert_eq!(c.next_due(50), Some(2050));
    }

    #[test]
    fn byte_conservation_under_interleaving() {
        // Bytes pushed = bytes emitted + bytes pending, always; and no
        // multi-item batch ever exceeds the budget.
        let budget = 128u64;
        let mut c: ByteCoalescer<u64> = ByteCoalescer::new(8, budget, 5);
        let mut emitted_items = 0usize;
        let mut emitted_bytes = 0u64;
        let mut check = |b: &Vec<u64>| {
            let bytes: u64 = b.iter().map(|&i| 8 + (i * 37) % 90).sum();
            assert!(b.len() == 1 || bytes <= budget, "batch of {bytes}B over budget");
            emitted_items += b.len();
            emitted_bytes += bytes;
        };
        for i in 0..1000u64 {
            let dst = (i % 7) as u16;
            let sz = 8 + (i * 37) % 90;
            for b in c.push(dst, i, sz, i) {
                check(&b);
            }
            if i % 61 == 0 {
                for (_, b) in c.take_due(i, 13) {
                    check(&b);
                }
            }
            if i % 157 == 0 {
                for (_, b) in c.drain_all() {
                    check(&b);
                }
            }
        }
        assert_eq!(emitted_items + c.pending(), 1000);
        assert_eq!(emitted_bytes + c.pending_bytes(), c.total_pushed_bytes());
        assert_eq!(c.total_pushed(), 1000);
    }

    #[test]
    #[should_panic(expected = "aggregation window")]
    fn byte_coalescer_zero_window_rejected() {
        let _ = ByteCoalescer::<u32>::new(1, 100, 0);
    }

    #[test]
    fn recycled_batch_capacity_is_reused() {
        let mut c: Coalescer<u64> = Coalescer::new(2, 4);
        for i in 0..3u64 {
            assert!(c.push(0, i).is_none());
        }
        let batch = c.push(0, 3).expect("window reached");
        let cap = batch.capacity();
        assert!(cap >= 4);
        c.recycle(batch);
        assert_eq!(c.pooled(), 1);
        for i in 0..3u64 {
            c.push(1, i);
        }
        let next = c.push(1, 3).expect("window reached");
        assert_eq!(next.capacity(), cap, "pooled capacity feeds the next flush");
        assert_eq!(c.pooled(), 0);
        assert_eq!(next, vec![0, 1, 2, 3]);
    }

    #[test]
    fn byte_coalescer_recycles_batches() {
        let mut c: ByteCoalescer<u32> = ByteCoalescer::new(1, u64::MAX, 2);
        c.push(0, 1, 8, 0);
        let mut out = c.push(0, 2, 8, 0);
        let batch = out.pop().expect("entry window reached");
        let cap = batch.capacity();
        c.recycle(batch);
        assert_eq!(c.pooled(), 1);
        c.push(0, 3, 8, 1);
        let next = c.push(0, 4, 8, 1).pop().expect("entry window reached");
        assert_eq!(next.capacity(), cap);
        assert_eq!(next, vec![3, 4]);
    }

    #[test]
    fn cloned_coalescer_starts_with_fresh_pool() {
        let mut c: Coalescer<u32> = Coalescer::new(1, 1);
        let b = c.push(0, 1).expect("immediate emit");
        c.recycle(b);
        assert_eq!(c.pooled(), 1);
        let d = c.clone();
        assert_eq!(d.pooled(), 0, "clones warm their own pool");
    }
}
