//! Per-destination coalescing buffers — the mechanism behind DPA's message
//! aggregation.
//!
//! Every remote request DPA wants to issue is first appended to the buffer
//! for its destination node. A buffer is handed back to the caller (to be
//! sent as a single packet) either when it reaches its capacity
//! ([`FlushReason::Full`]) or when the runtime decides no more local work is
//! available and drains everything ([`FlushReason::Drain`]). The runtime
//! never lets requests sit while the node idles — that would trade overhead
//! for latency — so `Drain` happens at every scheduling quiescence point.

use std::collections::VecDeque;

/// Why a batch was emitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// The per-destination buffer reached `max_entries`.
    Full,
    /// The runtime drained pending buffers at a quiescence point.
    Drain,
}

/// Per-destination batching of homogeneous items (e.g. object requests).
///
/// `T` is the per-request record (for DPA: a global pointer). The coalescer
/// tracks aggregate statistics so experiments can report achieved
/// aggregation factors.
#[derive(Clone, Debug)]
pub struct Coalescer<T> {
    buffers: Vec<VecDeque<T>>,
    max_entries: usize,
    /// Total items ever pushed.
    pushed: u64,
    /// Total batches ever emitted.
    batches: u64,
    /// Destinations with nonempty buffers (kept sorted for deterministic
    /// drain order).
    nonempty: Vec<u16>,
}

impl<T> Coalescer<T> {
    /// A coalescer for `nodes` destinations, flushing a destination once it
    /// holds `max_entries` items. `max_entries == 1` disables aggregation
    /// (every push emits immediately), which is how the `+Pipeline`-only
    /// DPA configuration is expressed.
    pub fn new(nodes: usize, max_entries: usize) -> Coalescer<T> {
        assert!(max_entries >= 1, "aggregation window must be >= 1");
        Coalescer {
            buffers: (0..nodes).map(|_| VecDeque::new()).collect(),
            max_entries,
            pushed: 0,
            batches: 0,
            nonempty: Vec::new(),
        }
    }

    /// Number of destinations.
    pub fn num_nodes(&self) -> usize {
        self.buffers.len()
    }

    /// The configured aggregation window.
    pub fn window(&self) -> usize {
        self.max_entries
    }

    /// Append `item` for `dst`. Returns a full batch if the buffer reached
    /// capacity, which the caller must transmit immediately.
    pub fn push(&mut self, dst: u16, item: T) -> Option<Vec<T>> {
        self.pushed += 1;
        let buf = &mut self.buffers[dst as usize];
        if buf.is_empty() {
            // Maintain sorted order for deterministic drains.
            match self.nonempty.binary_search(&dst) {
                Ok(_) => {}
                Err(pos) => self.nonempty.insert(pos, dst),
            }
        }
        buf.push_back(item);
        if buf.len() >= self.max_entries {
            self.batches += 1;
            let batch = buf.drain(..).collect();
            if let Ok(pos) = self.nonempty.binary_search(&dst) {
                self.nonempty.remove(pos);
            }
            Some(batch)
        } else {
            None
        }
    }

    /// Remove and return the pending batch for `dst`, if any.
    pub fn take(&mut self, dst: u16) -> Option<Vec<T>> {
        let buf = &mut self.buffers[dst as usize];
        if buf.is_empty() {
            return None;
        }
        self.batches += 1;
        if let Ok(pos) = self.nonempty.binary_search(&dst) {
            self.nonempty.remove(pos);
        }
        Some(buf.drain(..).collect())
    }

    /// The lowest-numbered destination with buffered items, if any.
    pub fn first_nonempty(&self) -> Option<u16> {
        self.nonempty.first().copied()
    }

    /// Drain every nonempty buffer, in ascending destination order.
    pub fn drain_all(&mut self) -> Vec<(u16, Vec<T>)> {
        let dests = std::mem::take(&mut self.nonempty);
        let mut out = Vec::with_capacity(dests.len());
        for dst in dests {
            let buf = &mut self.buffers[dst as usize];
            if !buf.is_empty() {
                self.batches += 1;
                out.push((dst, buf.drain(..).collect()));
            }
        }
        out
    }

    /// Items currently buffered across all destinations.
    pub fn pending(&self) -> usize {
        self.nonempty
            .iter()
            .map(|&d| self.buffers[d as usize].len())
            .sum()
    }

    /// `true` when no destination has buffered items.
    pub fn is_empty(&self) -> bool {
        self.nonempty.is_empty()
    }

    /// Total items pushed over the coalescer's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total batches emitted over the coalescer's lifetime.
    pub fn total_batches(&self) -> u64 {
        self.batches
    }

    /// Mean achieved aggregation factor (items per emitted batch); the
    /// experiments report this per configuration.
    pub fn aggregation_factor(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.pushed - self.pending() as u64) as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_one_emits_immediately() {
        let mut c: Coalescer<u32> = Coalescer::new(4, 1);
        assert_eq!(c.push(2, 7), Some(vec![7]));
        assert!(c.is_empty());
        assert_eq!(c.aggregation_factor(), 1.0);
    }

    #[test]
    fn fills_at_capacity() {
        let mut c: Coalescer<u32> = Coalescer::new(2, 3);
        assert_eq!(c.push(1, 10), None);
        assert_eq!(c.push(1, 11), None);
        assert_eq!(c.push(1, 12), Some(vec![10, 11, 12]));
        assert!(c.is_empty());
    }

    #[test]
    fn drain_all_is_sorted_and_complete() {
        let mut c: Coalescer<u32> = Coalescer::new(5, 100);
        c.push(3, 30);
        c.push(0, 0);
        c.push(3, 31);
        c.push(4, 40);
        let drained = c.drain_all();
        let dests: Vec<u16> = drained.iter().map(|(d, _)| *d).collect();
        assert_eq!(dests, vec![0, 3, 4]);
        let total: usize = drained.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, 4);
        assert!(c.is_empty());
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn take_specific_destination() {
        let mut c: Coalescer<&str> = Coalescer::new(3, 10);
        c.push(1, "a");
        c.push(2, "b");
        assert_eq!(c.take(1), Some(vec!["a"]));
        assert_eq!(c.take(1), None);
        assert_eq!(c.pending(), 1);
    }

    #[test]
    fn aggregation_factor_counts_emitted_only() {
        let mut c: Coalescer<u32> = Coalescer::new(2, 2);
        c.push(0, 1);
        c.push(0, 2); // batch of 2
        c.push(0, 3); // still buffered
        assert_eq!(c.total_batches(), 1);
        assert!((c.aggregation_factor() - 2.0).abs() < 1e-12);
        c.drain_all(); // batch of 1
        assert!((c.aggregation_factor() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "aggregation window")]
    fn zero_window_rejected() {
        let _ = Coalescer::<u32>::new(1, 0);
    }

    #[test]
    fn conservation_under_interleaving() {
        // Items pushed = items emitted + items pending, always.
        let mut c: Coalescer<u64> = Coalescer::new(8, 4);
        let mut emitted = 0usize;
        for i in 0..1000u64 {
            let dst = (i % 7) as u16;
            if let Some(b) = c.push(dst, i) {
                emitted += b.len();
            }
            if i % 97 == 0 {
                emitted += c.drain_all().iter().map(|(_, b)| b.len()).sum::<usize>();
            }
        }
        assert_eq!(emitted + c.pending(), 1000);
    }
}
