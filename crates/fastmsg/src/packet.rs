//! MTU segmentation for long messages.
//!
//! FM distinguishes short messages (one packet) from streamed long
//! messages, which travel as a train of MTU-sized packets. Each packet pays
//! the per-packet overheads, so a bulk reply of `n` bytes costs
//! `ceil(n/mtu)` packet overheads plus `n` bytes of gap. The DPA reply path
//! uses these helpers to split aggregated object replies into honest wire
//! units.

/// Maximum transfer unit for a single simulated packet, in payload bytes.
///
/// The default (2 KiB) approximates FM's streamed-packet size on the T3D.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mtu(pub u32);

impl Default for Mtu {
    fn default() -> Self {
        Mtu(2048)
    }
}

impl Mtu {
    /// Construct, rejecting a zero MTU.
    pub fn new(bytes: u32) -> Mtu {
        assert!(bytes > 0, "MTU must be positive");
        Mtu(bytes)
    }
}

/// Number of packets needed to carry `bytes` of payload under `mtu`.
/// Zero bytes still requires one packet (the header carries meaning).
pub fn packets_for(bytes: u32, mtu: Mtu) -> u32 {
    if bytes == 0 {
        1
    } else {
        bytes.div_ceil(mtu.0)
    }
}

/// The individual packet payload sizes for a `bytes`-long message: all
/// full-MTU packets plus a final remainder (or a single zero-length packet).
pub fn segment_sizes(bytes: u32, mtu: Mtu) -> Vec<u32> {
    let n = packets_for(bytes, mtu);
    let mut out = Vec::with_capacity(n as usize);
    let mut left = bytes;
    for _ in 0..n {
        let take = left.min(mtu.0);
        out.push(take);
        left -= take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple() {
        assert_eq!(packets_for(4096, Mtu(2048)), 2);
        assert_eq!(segment_sizes(4096, Mtu(2048)), vec![2048, 2048]);
    }

    #[test]
    fn remainder_packet() {
        assert_eq!(packets_for(5000, Mtu(2048)), 3);
        assert_eq!(segment_sizes(5000, Mtu(2048)), vec![2048, 2048, 904]);
    }

    #[test]
    fn zero_bytes_is_one_packet() {
        assert_eq!(packets_for(0, Mtu::default()), 1);
        assert_eq!(segment_sizes(0, Mtu::default()), vec![0]);
    }

    #[test]
    fn small_fits_in_one() {
        assert_eq!(packets_for(8, Mtu::default()), 1);
    }

    #[test]
    fn segments_sum_to_total() {
        for bytes in [0u32, 1, 7, 2048, 2049, 10_000, 65_535] {
            let sum: u32 = segment_sizes(bytes, Mtu(2048)).iter().sum();
            assert_eq!(sum, bytes);
        }
    }

    #[test]
    #[should_panic(expected = "MTU must be positive")]
    fn zero_mtu_rejected() {
        Mtu::new(0);
    }
}
