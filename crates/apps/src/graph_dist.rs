//! Pointer-chasing graph analytics: semi-naive transitive closure over a
//! mutable, skewed edge graph — the adversarial workload family.
//!
//! Every other workload in the repo is an n-body tree: octree locality,
//! balanced fan-out, read-mostly caches — exactly the regime the 1997
//! paper tuned for. This application is the opposite on purpose
//! (Graspan-style dataflow reachability): the PBDS is an edge graph with a
//! **power-law degree distribution** (configurable skew exponent), so a
//! handful of hub vertices are read by nearly every traversal while the
//! tail is touched once, and there is no spatial locality for placement to
//! exploit. Hubs additionally carry outsized records (their out-edge
//! lists), so a single hot key produces multi-MTU replies with fan-out to
//! every node — the stress case for dominant-consumer migration and
//! owner-side reply aggregation.
//!
//! The graph is *structurally mutable across phases*: at each phase
//! boundary a seeded subset of vertices is rewired (their out-edge lists
//! resampled), and [`GraphWorld::gen_at`] reports how many boundaries
//! rewired each vertex. That is what [`PtrApp::object_generation`] returns,
//! so `run_phase_differential` sees *structural* deltas — carried copies of
//! rewired vertices must be invalidated, not just `DiffPlan` value stamps.
//!
//! Each node runs one BFS per locally-owned root vertex. Expanding a
//! vertex requires its (potentially remote) record — one labeled demand
//! per `(root, vertex)` pair, marked visited at emission time so every
//! pair is expanded exactly once regardless of schedule. The checksum
//! folds [`DiffPlan::stamp`]`(ptr, generation-read)` with a wrapping add:
//! order-independent, but a stale carried entry (old generation) corrupts
//! it against the sequential oracle.

use crate::error::WorldError;
use dpa_core::{DiffPlan, PtrApp, WorkEnv};
use global_heap::{ClassTable, GPtr, ObjClass};
use sim_net::Rng;
use std::sync::Arc;

/// Per-operation costs of the traversal, ns.
#[derive(Clone, Copy, Debug)]
pub struct GraphCost {
    /// Per-vertex expansion (scan the out-list, test the visited set).
    pub expand_ns: u64,
    /// Per-edge bookkeeping inside an expansion.
    pub edge_ns: u64,
    /// Per-root setup.
    pub root_ns: u64,
}

impl Default for GraphCost {
    fn default() -> Self {
        GraphCost {
            expand_ns: 600,
            edge_ns: 150,
            root_ns: 400,
        }
    }
}

/// Generator + schedule parameters for [`GraphWorld`].
#[derive(Clone, Copy, Debug)]
pub struct GraphParams {
    /// Vertex count.
    pub n: usize,
    /// Machine size (contiguous even vertex partition).
    pub nodes: u16,
    /// Base out-degree of every vertex.
    pub degree: usize,
    /// Power-law skew exponent: edge targets are drawn with probability
    /// ∝ 1/(v+1)^skew, so vertex 0 is the hottest hub. 0.0 = uniform.
    pub skew: f64,
    /// Extra out-edges granted to low-id vertices, decaying with the same
    /// exponent: vertex v gets `hub_extra / (v+1)^skew` additional edges.
    /// This is what makes hub *records* big (multi-MTU replies).
    pub hub_extra: usize,
    /// Number of timestep phases the world carries adjacency for.
    pub phases: u32,
    /// Per-boundary structural-change probability, permille: at each phase
    /// boundary this fraction of vertices has its out-list resampled.
    pub rewire_permille: u32,
    /// Every `root_stride`-th owned vertex roots a traversal (≥ 1).
    pub root_stride: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for GraphParams {
    fn default() -> Self {
        GraphParams {
            n: 128,
            nodes: 4,
            degree: 3,
            skew: 1.6,
            hub_extra: 24,
            phases: 4,
            rewire_permille: 120,
            root_stride: 4,
            seed: 0x6EA9,
        }
    }
}

/// The shared graph world: per-phase adjacency snapshots plus the seeded
/// rewire schedule that produced them.
pub struct GraphWorld {
    /// Parameters the world was built from.
    pub params: GraphParams,
    /// `adj[phase][v]` = out-neighbors of `v` during `phase`.
    adj: Vec<Vec<Vec<u32>>>,
    /// `splits[i]..splits[i+1]` = node `i`'s vertices.
    pub splits: Vec<usize>,
    /// Cost model.
    pub cost: GraphCost,
    /// Object classes (one: VERTEX).
    pub classes: ClassTable,
    /// The vertex object class.
    pub vclass: ObjClass,
}

/// Splitmix-style hash used by the rewire schedule (pure in its inputs, so
/// every node and every engine agrees without communication).
#[inline]
fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(c);
    z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl GraphWorld {
    /// Build the world, panicking on invalid parameters.
    pub fn build(params: GraphParams) -> Arc<GraphWorld> {
        Self::try_build(params).expect("invalid GraphWorld configuration")
    }

    /// Fallible [`GraphWorld::build`]: rejects an empty machine, an empty
    /// graph, or a graph smaller than the machine.
    pub fn try_build(params: GraphParams) -> Result<Arc<GraphWorld>, WorldError> {
        if params.nodes == 0 {
            return Err(WorldError::NoNodes);
        }
        if params.n == 0 {
            return Err(WorldError::Empty { what: "vertices" });
        }
        if params.n < params.nodes as usize {
            return Err(WorldError::TooFewElements {
                what: "vertices",
                have: params.n,
                nodes: params.nodes,
            });
        }
        let n = params.n;
        let splits = nbody::morton::even_splits(n, params.nodes as usize);
        // Cumulative power-law weights: target v with prob ∝ 1/(v+1)^skew.
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for v in 0..n {
            total += ((v + 1) as f64).powf(-params.skew);
            cum.push(total);
        }
        let degree_of = |v: usize| -> usize {
            params.degree + (params.hub_extra as f64 * ((v + 1) as f64).powf(-params.skew)) as usize
        };
        let sample_list = |rng: &mut Rng, v: usize| -> Vec<u32> {
            let deg = degree_of(v);
            let mut out = Vec::with_capacity(deg);
            for _ in 0..deg {
                let r = rng.unit_f64() * total;
                let mut t = cum.partition_point(|&c| c < r).min(n - 1);
                if t == v {
                    t = (t + 1) % n; // no self-loops
                }
                out.push(t as u32);
            }
            out
        };
        // Phase-0 adjacency from the master stream; later phases patch the
        // seeded rewire set, each rewired list from its own (seed, v, b)
        // stream so nothing depends on visit order.
        let mut rng = Rng::new(params.seed);
        let mut adj = Vec::with_capacity(params.phases.max(1) as usize);
        adj.push((0..n).map(|v| sample_list(&mut rng, v)).collect::<Vec<_>>());
        for b in 1..params.phases.max(1) {
            let prev: Vec<Vec<u32>> = adj[b as usize - 1].clone();
            let mut next = prev;
            for (v, list) in next.iter_mut().enumerate() {
                if Self::rewired(params.seed, params.rewire_permille, b, v) {
                    let mut vr = Rng::new(mix(params.seed, v as u64, b as u64));
                    *list = sample_list(&mut vr, v);
                }
            }
            adj.push(next);
        }
        let mut classes = ClassTable::new();
        let vclass = classes.register("graph_vertex", 48);
        Ok(Arc::new(GraphWorld {
            params,
            adj,
            splits,
            cost: GraphCost::default(),
            classes,
            vclass,
        }))
    }

    /// `true` if boundary `b` (1-based) resamples vertex `v`'s out-list.
    #[inline]
    fn rewired(seed: u64, permille: u32, b: u32, v: usize) -> bool {
        mix(seed ^ 0x5712_0C7A, b as u64, v as u64) % 1000 < permille as u64
    }

    /// Structural generation of vertex `v` at `phase`: how many boundaries
    /// `1..=phase` rewired it. This is what the differential driver diffs.
    pub fn gen_at(&self, phase: u32, v: u32) -> u32 {
        (1..=phase)
            .filter(|&b| {
                Self::rewired(
                    self.params.seed,
                    self.params.rewire_permille,
                    b,
                    v as usize,
                )
            })
            .count() as u32
    }

    /// Out-neighbors of `v` during `phase`.
    #[inline]
    pub fn out(&self, phase: u32, v: u32) -> &[u32] {
        &self.adj[(phase as usize).min(self.adj.len() - 1)][v as usize]
    }

    /// Global pointer to vertex `v` (owned by its home node).
    #[inline]
    pub fn vptr(&self, v: u32) -> GPtr {
        let owner = u16::try_from(self.splits.partition_point(|&s| s <= v as usize) - 1)
            .expect("invariant: vertex owner < nodes, which is u16");
        GPtr::new(owner, self.vclass, v as u64)
    }

    /// Vertices owned by `node`.
    pub fn range(&self, node: u16) -> std::ops::Range<usize> {
        self.splits[node as usize]..self.splits[node as usize + 1]
    }

    /// Root vertices of `node`'s traversals (every `root_stride`-th owned
    /// vertex; always at least one).
    pub fn roots(&self, node: u16) -> Vec<u32> {
        self.range(node)
            .step_by(self.params.root_stride.max(1))
            .map(|v| v as u32)
            .collect()
    }

    /// Transfer size of vertex `v`'s record: header + its phase-0 out-list
    /// (sizes must be phase-stable, so the wire size uses the base list).
    /// The hub's list is `hub_extra` long, so hub replies span packets.
    pub fn vertex_bytes(&self, v: u32) -> u32 {
        16 + 4 * self.adj[0][v as usize].len() as u32
    }

    /// In-degree of every vertex during `phase` (test/diagnostic helper).
    pub fn in_degrees(&self, phase: u32) -> Vec<u32> {
        let mut d = vec![0u32; self.params.n];
        for list in &self.adj[(phase as usize).min(self.adj.len() - 1)] {
            for &t in list {
                d[t as usize] += 1;
            }
        }
        d
    }

    /// Host-side oracle: `(checksum, reached)` for `node`'s traversals at
    /// `phase` — a sequential BFS per root over the phase adjacency,
    /// folding the same order-independent stamp the app folds.
    pub fn expected(&self, phase: u32, node: u16) -> (u64, u64) {
        let mut sum = 0u64;
        let mut reached = 0u64;
        let mut stack: Vec<u32> = Vec::new();
        let words = self.params.n.div_ceil(64);
        for root in self.roots(node) {
            let mut visited = vec![0u64; words];
            visited[root as usize / 64] |= 1 << (root % 64);
            stack.push(root);
            while let Some(v) = stack.pop() {
                sum = sum.wrapping_add(DiffPlan::stamp(self.vptr(v), self.gen_at(phase, v)));
                reached += 1;
                for &t in self.out(phase, v) {
                    let (w, bit) = (t as usize / 64, 1u64 << (t % 64));
                    if visited[w] & bit == 0 {
                        visited[w] |= bit;
                        stack.push(t);
                    }
                }
            }
        }
        (sum, reached)
    }
}

/// A traversal work item: expand vertex `v` for root slot `slot`.
#[derive(Clone, Copy, Debug)]
pub struct Visit {
    /// Index into this node's root list.
    pub slot: u32,
    /// The vertex to expand (the labeled pointer).
    pub v: u32,
}

/// Per-node traversal state for one phase.
pub struct GraphApp {
    world: Arc<GraphWorld>,
    /// The node this instance runs on.
    pub me: u16,
    /// The phase this instance executes (selects adjacency + generations).
    pub phase: u32,
    roots: Vec<u32>,
    /// `visited[slot]` bitmask over all vertices.
    visited: Vec<Vec<u64>>,
    /// Order-independent reachability digest (stamp fold).
    pub sum: u64,
    /// Total `(root, vertex)` expansions.
    pub reached: u64,
}

impl GraphApp {
    /// The app instance for node `me`, executing `phase`.
    pub fn new(world: Arc<GraphWorld>, me: u16, phase: u32) -> GraphApp {
        let roots = world.roots(me);
        let words = world.params.n.div_ceil(64);
        GraphApp {
            visited: vec![vec![0u64; words]; roots.len()],
            roots,
            world,
            me,
            phase,
            sum: 0,
            reached: 0,
        }
    }

    #[inline]
    fn mark(&mut self, slot: u32, v: u32) -> bool {
        let (w, bit) = (v as usize / 64, 1u64 << (v % 64));
        let seen = self.visited[slot as usize][w] & bit != 0;
        self.visited[slot as usize][w] |= bit;
        !seen
    }
}

impl PtrApp for GraphApp {
    type Work = Visit;

    fn num_iterations(&self) -> usize {
        self.roots.len()
    }

    fn start_iteration(&mut self, iter: usize, env: &mut WorkEnv<'_, Visit>) {
        let root = self.roots[iter];
        env.charge(self.world.cost.root_ns);
        let slot = iter as u32;
        self.mark(slot, root);
        env.demand(self.world.vptr(root), Visit { slot, v: root });
    }

    fn run_work(&mut self, w: Visit, env: &mut WorkEnv<'_, Visit>) {
        let world = self.world.clone();
        let ptr = world.vptr(w.v);
        env.assert_readable(ptr);
        // The generation actually read: the runtime's stamp for fetched
        // copies, our own current generation for local/caching reads. A
        // stale carried copy reports an old generation here and corrupts
        // the digest against the sequential oracle.
        let gen = env
            .cached_generation(ptr)
            .unwrap_or_else(|| world.gen_at(self.phase, w.v));
        self.sum = self.sum.wrapping_add(DiffPlan::stamp(ptr, gen));
        self.reached += 1;
        let out = world.out(self.phase, w.v);
        env.charge(world.cost.expand_ns + world.cost.edge_ns * out.len() as u64);
        for &t in out {
            if self.mark(w.slot, t) {
                env.demand(world.vptr(t), Visit { slot: w.slot, v: t });
            }
        }
    }

    fn object_size(&self, ptr: GPtr) -> u32 {
        self.world.vertex_bytes(ptr.index() as u32)
    }

    fn object_generation(&self, ptr: GPtr) -> u32 {
        self.world.gen_at(self.phase, ptr.index() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GraphParams {
        GraphParams {
            n: 96,
            nodes: 4,
            degree: 3,
            skew: 1.6,
            hub_extra: 16,
            phases: 3,
            rewire_permille: 150,
            root_stride: 8,
            seed: 42,
        }
    }

    #[test]
    fn generator_is_deterministic_and_partitioned() {
        let a = GraphWorld::build(small());
        let b = GraphWorld::build(small());
        for ph in 0..3 {
            for v in 0..96 {
                assert_eq!(a.out(ph, v), b.out(ph, v));
            }
            for node in 0..4 {
                assert_eq!(a.expected(ph, node), b.expected(ph, node));
            }
        }
        let covered: usize = (0..4).map(|n| a.range(n).len()).sum();
        assert_eq!(covered, 96);
    }

    #[test]
    fn skew_concentrates_in_degree_on_the_hub() {
        let w = GraphWorld::build(small());
        let d = w.in_degrees(0);
        let max = *d.iter().max().unwrap();
        assert_eq!(d[0], max, "vertex 0 must be the hottest hub");
        let mean = d.iter().map(|&x| x as f64).sum::<f64>() / d.len() as f64;
        assert!(
            (d[0] as f64) > 4.0 * mean,
            "hub in-degree {} not skewed vs mean {mean:.1}",
            d[0]
        );
        // And the hub record is outsized: its reply spans several MTUs.
        assert!(w.vertex_bytes(0) > 3 * w.vertex_bytes(95));
    }

    #[test]
    fn vptr_owner_matches_split_and_hub_lives_on_node0() {
        let w = GraphWorld::build(small());
        for v in 0..96u32 {
            let p = w.vptr(v);
            assert!(w.range(p.node()).contains(&(v as usize)));
        }
        assert_eq!(w.vptr(0).node(), 0);
    }

    #[test]
    fn rewire_schedule_moves_generations_and_adjacency_together() {
        let w = GraphWorld::build(small());
        let mut moved = 0;
        for v in 0..96u32 {
            let (g1, g2) = (w.gen_at(1, v), w.gen_at(2, v));
            assert!(g2 >= g1, "generations are cumulative");
            if g1 > 0 {
                moved += 1;
            } else {
                assert_eq!(w.out(1, v), w.out(0, v), "unrewired vertex changed");
            }
        }
        assert!(moved > 0, "rewire plan selected nothing at 150 permille");
    }

    #[test]
    fn try_build_rejects_bad_configs() {
        let p = small();
        assert_eq!(
            GraphWorld::try_build(GraphParams { nodes: 0, ..p }).err().expect("config must be rejected"),
            WorldError::NoNodes
        );
        assert_eq!(
            GraphWorld::try_build(GraphParams { n: 0, ..p }).err().expect("config must be rejected"),
            WorldError::Empty { what: "vertices" }
        );
        assert_eq!(
            GraphWorld::try_build(GraphParams { n: 3, ..p }).err().expect("config must be rejected"),
            WorldError::TooFewElements {
                what: "vertices",
                have: 3,
                nodes: 4
            }
        );
    }

    #[test]
    fn oracle_reaches_at_least_the_roots() {
        let w = GraphWorld::build(small());
        for node in 0..4 {
            let (_, reached) = w.expected(0, node);
            assert!(reached >= w.roots(node).len() as u64);
        }
    }
}
