//! The distributed Barnes-Hut force-computation phase.
//!
//! Bodies are Morton-sorted and split into `P` contiguous, equal-count
//! chunks (a stand-in for SPLASH-2's costzones that preserves its spatial
//! locality). Octree cells are owned by the node whose body region
//! contains their center of mass, so each node's subtree is mostly local
//! and remote reads concentrate on other nodes' coarse summaries — the
//! paper's communication pattern.
//!
//! The top-level concurrent loop is "for each locally-owned body, walk the
//! tree"; a non-blocking thread visits exactly one cell (the pointer it is
//! labeled with), emitting child visits as new dependent threads. Leaves
//! carry their bodies inline (the paper's object inlining), so a fetched
//! leaf enables its body-body interactions with no further traffic.

use crate::error::WorldError;
use dpa_core::{DiffPlan, PtrApp, WorkEnv};
use global_heap::{ClassTable, GPtr, ObjClass};
use nbody::bh::{accepts, BhParams};
use nbody::body::{point_accel, Body};
use nbody::morton::{even_splits, morton3};
use nbody::octree::{Octree, NO_CELL};
use nbody::vec3::Vec3;
use std::sync::Arc;

/// Per-operation costs of the Barnes-Hut walk, in ns (T3D-node scale).
#[derive(Clone, Copy, Debug)]
pub struct BhCost {
    /// Distance computation + opening test per visited cell.
    pub visit_ns: u64,
    /// One body–cell monopole interaction.
    pub cell_interact_ns: u64,
    /// One body–body interaction.
    pub body_interact_ns: u64,
}

impl Default for BhCost {
    fn default() -> Self {
        BhCost {
            visit_ns: 1_000,
            cell_interact_ns: 5_200,
            body_interact_ns: 4_600,
        }
    }
}

/// How octree cells are assigned to owner nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OwnerPolicy {
    /// SPLASH-like: a cell lives where the processor that built it lives —
    /// leaves with their first body's owner, internal cells with the owner
    /// of a deterministically-arbitrary child (parallel tree construction
    /// races make upper-cell placement effectively arbitrary). This is the
    /// paper's setting: data placement is only loosely aligned with the
    /// computation, which is exactly why *dynamic* alignment pays.
    Builder,
    /// Idealized: a cell is owned by the node whose body region contains
    /// its center of mass. Kept as an ablation; note that any policy whose
    /// owner is one of the cell's *visitors* yields the same total miss
    /// count (Σ over cells of visitors−1), so this ties with `Builder` —
    /// a finding the experiments report.
    CmRegion,
    /// Spatially-uncorrelated placement (hash of the cell id): what a
    /// naive allocator gives. The owner is usually not a visitor, so
    /// remote reads balloon — the ablation that shows how much placement
    /// quality matters to the *baselines* and how well DPA tolerates it.
    Scatter,
}

/// Immutable shared world for one force phase: bodies, tree, ownership.
pub struct BhWorld {
    /// Bodies, Morton-sorted.
    pub bodies: Vec<Body>,
    /// The octree over `bodies`.
    pub tree: Octree,
    /// Walk parameters.
    pub params: BhParams,
    /// Cost model of the walk arithmetic.
    pub cost: BhCost,
    /// `splits[i]..splits[i+1]` are node `i`'s bodies.
    pub splits: Vec<usize>,
    /// Owner node per cell id.
    pub cell_owner: Vec<u16>,
    /// Wire size per cell id (header + inline leaf bodies).
    pub cell_bytes: Vec<u32>,
    /// Object classes (one: CELL).
    pub classes: ClassTable,
    /// Cell object class.
    pub cell_class: ObjClass,
    /// Machine size.
    pub nodes: u16,
}

/// Fixed per-cell header bytes on the wire: mass, cm, center, half,
/// nbodies + 8 child references.
const CELL_HEADER_BYTES: u32 = 8 * 8 + 8 * 4;
/// Bytes per inline body: position + mass.
const INLINE_BODY_BYTES: u32 = 32;

impl BhWorld {
    /// Build the world: sort bodies, build the tree, assign owners.
    pub fn build(
        bodies: Vec<Body>,
        nodes: u16,
        leaf_cap: usize,
        params: BhParams,
        cost: BhCost,
    ) -> Arc<BhWorld> {
        Self::build_with_policy(bodies, nodes, leaf_cap, params, cost, OwnerPolicy::Builder)
    }

    /// [`BhWorld::build`] with an explicit cell-ownership policy.
    pub fn build_with_policy(
        bodies: Vec<Body>,
        nodes: u16,
        leaf_cap: usize,
        params: BhParams,
        cost: BhCost,
        policy: OwnerPolicy,
    ) -> Arc<BhWorld> {
        Self::try_build_with_policy(bodies, nodes, leaf_cap, params, cost, policy)
            .expect("invalid BhWorld configuration")
    }

    /// Fallible [`BhWorld::build_with_policy`]: rejects an empty machine
    /// or body set with a structured [`WorldError`] instead of panicking.
    pub fn try_build_with_policy(
        mut bodies: Vec<Body>,
        nodes: u16,
        leaf_cap: usize,
        params: BhParams,
        cost: BhCost,
        policy: OwnerPolicy,
    ) -> Result<Arc<BhWorld>, WorldError> {
        if nodes == 0 {
            return Err(WorldError::NoNodes);
        }
        if bodies.is_empty() {
            return Err(WorldError::Empty { what: "bodies" });
        }
        // Morton sort for spatially-contiguous ownership.
        let mut lo = bodies[0].pos;
        let mut hi = bodies[0].pos;
        for b in &bodies {
            lo = lo.min(b.pos);
            hi = hi.max(b.pos);
        }
        let extent = (hi - lo).max_component().max(1e-12);
        bodies.sort_by_key(|b| morton3(b.pos, lo, extent));

        let tree = Octree::build(&bodies, leaf_cap);
        let splits = even_splits(bodies.len(), nodes as usize);

        // Owner of a body index: which contiguous chunk it falls into.
        let body_owner = |b: u32| -> u16 {
            u16::try_from(splits.partition_point(|&s| s <= b as usize) - 1)
                .expect("invariant: chunk index < nodes, which is u16")
        };

        let mut cell_owner = vec![0u16; tree.len()];
        match policy {
            OwnerPolicy::Scatter => {
                #[allow(clippy::needless_range_loop)] // id is also the hash input
                for id in 0..tree.len() {
                    let h = (id as u64)
                        .wrapping_mul(0xD6E8_FEB8_6659_FD93)
                        .rotate_left(29);
                    cell_owner[id] = u16::try_from(h % nodes as u64)
                        .expect("invariant: h % nodes < nodes, which is u16");
                }
            }
            OwnerPolicy::CmRegion => {
                // Owner of a position: which chunk its Morton rank falls in.
                let codes: Vec<u64> =
                    bodies.iter().map(|b| morton3(b.pos, lo, extent)).collect();
                for (id, cell) in tree.iter() {
                    let code = morton3(cell.cm, lo, extent);
                    let rank = codes.partition_point(|&c| c < code);
                    cell_owner[id as usize] =
                        body_owner(rank.min(bodies.len() - 1) as u32);
                }
            }
            OwnerPolicy::Builder => {
                // Children precede nothing: cells are stored parent-first,
                // so walk in reverse to resolve children before parents.
                #[allow(clippy::needless_range_loop)] // reverse index walk
                for id in (0..tree.len()).rev() {
                    let cell = &tree.cells[id];
                    cell_owner[id] = if cell.is_leaf() {
                        cell.bodies.first().map_or(0, |&b| body_owner(b))
                    } else {
                        let kids: Vec<i32> = cell
                            .children
                            .iter()
                            .copied()
                            .filter(|&c| c != NO_CELL)
                            .collect();
                        // Deterministically-arbitrary builder: whichever
                        // processor "got there first" in the parallel
                        // construction race.
                        let h = (id as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .rotate_left(31);
                        cell_owner[kids[(h % kids.len() as u64) as usize] as usize]
                    };
                }
            }
        }

        let mut cell_bytes = Vec::with_capacity(tree.len());
        for (_, cell) in tree.iter() {
            cell_bytes
                .push(CELL_HEADER_BYTES + cell.bodies.len() as u32 * INLINE_BODY_BYTES);
        }

        let mut classes = ClassTable::new();
        let cell_class = classes.register("bh_cell", CELL_HEADER_BYTES);

        Ok(Arc::new(BhWorld {
            bodies,
            tree,
            params,
            cost,
            splits,
            cell_owner,
            cell_bytes,
            classes,
            cell_class,
            nodes,
        }))
    }

    /// Global pointer to cell `id`.
    #[inline]
    pub fn cell_ptr(&self, id: u32) -> GPtr {
        GPtr::new(self.cell_owner[id as usize], self.cell_class, id as u64)
    }

    /// Bodies owned by `node` as a global index range.
    pub fn body_range(&self, node: u16) -> std::ops::Range<usize> {
        self.splits[node as usize]..self.splits[node as usize + 1]
    }

    /// Fraction of cells whose owner differs from `node` (diagnostics).
    pub fn remote_cell_fraction(&self, node: u16) -> f64 {
        let remote = self.cell_owner.iter().filter(|&&o| o != node).count();
        remote as f64 / self.cell_owner.len() as f64
    }
}

/// A Barnes-Hut non-blocking thread: body `body` visits cell `cell`.
#[derive(Clone, Copy, Debug)]
pub struct BhVisit {
    /// Global body index (always local to the executing node).
    pub body: u32,
    /// Cell id being visited (the labeled pointer).
    pub cell: u32,
}

/// Per-node Barnes-Hut application state.
pub struct BhApp {
    world: Arc<BhWorld>,
    me: u16,
    /// Accelerations for locally-owned bodies (index = body − first own).
    pub accel: Vec<Vec3>,
    /// Monopole interactions performed.
    pub cell_interactions: u64,
    /// Body-body interactions performed.
    pub body_interactions: u64,
    /// Cells visited.
    pub cells_visited: u64,
    /// Integer checksum of the interactions performed: the commutative
    /// `wrapping_add` of a hash per (body, partner) pair, so it is
    /// bit-identical regardless of execution order, strip size, object
    /// placement, or migration — the determinism oracle for this phase.
    pub interaction_hash: u64,
    /// Differential-mode change schedule; `None` for single-phase runs.
    plan: Option<DiffPlan>,
}

/// Mix two interaction ids into one well-spread 64-bit word
/// (splitmix64-style finalizer).
#[inline]
fn mix_pair(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BhApp {
    /// The app instance for node `me`.
    pub fn new(world: Arc<BhWorld>, me: u16) -> BhApp {
        let n_local = world.body_range(me).len();
        BhApp {
            world,
            me,
            accel: vec![Vec3::ZERO; n_local],
            cell_interactions: 0,
            body_interactions: 0,
            cells_visited: 0,
            interaction_hash: 0,
            plan: None,
        }
    }

    /// Like [`BhApp::new`] but value-sensitive for multi-timestep runs:
    /// every cell visit folds [`DiffPlan::stamp`] at the generation
    /// actually read into `interaction_hash`, so a stale carried cache
    /// entry corrupts the digest against a from-scratch run.
    pub fn new_diff(world: Arc<BhWorld>, me: u16, plan: DiffPlan) -> BhApp {
        BhApp {
            plan: Some(plan),
            ..BhApp::new(world, me)
        }
    }

    #[inline]
    fn add_accel(&mut self, body: u32, a: Vec3) {
        let base = self.world.splits[self.me as usize];
        self.accel[body as usize - base] += a;
    }
}

impl PtrApp for BhApp {
    type Work = BhVisit;

    fn num_iterations(&self) -> usize {
        self.world.body_range(self.me).len()
    }

    fn start_iteration(&mut self, iter: usize, env: &mut WorkEnv<'_, BhVisit>) {
        let body = (self.world.splits[self.me as usize] + iter) as u32;
        let root = self.world.tree.root();
        env.demand(
            self.world.cell_ptr(root),
            BhVisit { body, cell: root },
        );
    }

    fn run_work(&mut self, w: BhVisit, env: &mut WorkEnv<'_, BhVisit>) {
        let world = self.world.clone();
        let ptr = world.cell_ptr(w.cell);
        env.assert_readable(ptr);
        if let Some(plan) = self.plan {
            // The generation actually read: the renamed-storage stamp for
            // fetched/carried copies, the live generation for local reads.
            let gen = env
                .cached_generation(ptr)
                .unwrap_or_else(|| plan.gen_of(ptr));
            self.interaction_hash = self
                .interaction_hash
                .wrapping_add(DiffPlan::stamp(ptr, gen));
        }
        let cell = &world.tree.cells[w.cell as usize];
        let cost = world.cost;
        let pos = world.bodies[w.body as usize].pos;
        self.cells_visited += 1;
        env.charge(cost.visit_ns);

        if cell.is_leaf() {
            let mut acc = Vec3::ZERO;
            for &b in &cell.bodies {
                if b != w.body {
                    acc += point_accel(
                        pos,
                        world.bodies[b as usize].pos,
                        world.bodies[b as usize].mass,
                        world.params.eps,
                    );
                    self.body_interactions += 1;
                    self.interaction_hash = self
                        .interaction_hash
                        .wrapping_add(mix_pair(w.body as u64, b as u64));
                    env.charge(cost.body_interact_ns);
                }
            }
            self.add_accel(w.body, acc);
        } else if accepts(pos, cell.cm, cell.side(), world.params.theta) {
            let a = point_accel(pos, cell.cm, cell.mass, world.params.eps);
            self.add_accel(w.body, a);
            self.cell_interactions += 1;
            // Tag bit 32 separates cell partners from body partners: body
            // and cell ids share the u32 range.
            self.interaction_hash = self
                .interaction_hash
                .wrapping_add(mix_pair(w.body as u64, w.cell as u64 | (1 << 32)));
            env.charge(cost.cell_interact_ns);
        } else {
            for &c in &cell.children {
                if c != NO_CELL {
                    let c = c as u32;
                    env.demand(world.cell_ptr(c), BhVisit { body: w.body, cell: c });
                }
            }
        }
    }

    fn object_size(&self, ptr: GPtr) -> u32 {
        self.world.cell_bytes[ptr.index() as usize]
    }

    fn object_generation(&self, ptr: GPtr) -> u32 {
        match self.plan {
            Some(plan) => plan.gen_of(ptr),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::distrib::plummer;

    fn world(n: usize, nodes: u16) -> Arc<BhWorld> {
        BhWorld::build(
            plummer(n, 33),
            nodes,
            8,
            BhParams::default(),
            BhCost::default(),
        )
    }

    #[test]
    fn splits_partition_bodies() {
        let w = world(500, 4);
        let mut covered = 0;
        for node in 0..4 {
            covered += w.body_range(node).len();
        }
        assert_eq!(covered, 500);
    }

    #[test]
    fn cell_owners_valid() {
        let w = world(300, 4);
        assert_eq!(w.cell_owner.len(), w.tree.len());
        assert!(w.cell_owner.iter().all(|&o| o < 4));
    }

    #[test]
    fn ownership_is_spatially_local() {
        // Most cells of a node's own region should be owned by it: the
        // remote fraction per node must be well under uniform (3/4).
        let w = world(2000, 4);
        for node in 0..4 {
            let f = w.remote_cell_fraction(node);
            assert!(f < 0.95, "node {node} remote fraction {f}");
        }
        // And leaves holding a node's own bodies are mostly owned by it.
        let mut own = 0u32;
        let mut total = 0u32;
        for (id, cell) in w.tree.iter() {
            if cell.is_leaf() && !cell.bodies.is_empty() {
                let b = cell.bodies[0] as usize;
                let owner_of_body = u16::try_from(
                    w.splits
                        .windows(2)
                        .position(|win| b >= win[0] && b < win[1])
                        .expect("every body index falls inside a split window"),
                )
                .expect("invariant: split window index < nodes, which is u16");
                total += 1;
                if w.cell_owner[id as usize] == owner_of_body {
                    own += 1;
                }
            }
        }
        assert!(
            own * 2 > total,
            "most populated leaves should be owned by their bodies' node ({own}/{total})"
        );
    }

    #[test]
    fn leaf_bytes_include_inline_bodies() {
        let w = world(300, 2);
        for (id, cell) in w.tree.iter() {
            let expect =
                CELL_HEADER_BYTES + cell.bodies.len() as u32 * INLINE_BODY_BYTES;
            assert_eq!(w.cell_bytes[id as usize], expect);
        }
    }

    #[test]
    fn try_build_rejects_bad_configs() {
        let err = BhWorld::try_build_with_policy(
            Vec::new(),
            4,
            8,
            BhParams::default(),
            BhCost::default(),
            OwnerPolicy::Builder,
        )
        .err()
        .expect("config must be rejected");
        assert_eq!(err, WorldError::Empty { what: "bodies" });
        let err = BhWorld::try_build_with_policy(
            plummer(10, 1),
            0,
            8,
            BhParams::default(),
            BhCost::default(),
            OwnerPolicy::Builder,
        )
        .err()
        .expect("config must be rejected");
        assert_eq!(err, WorldError::NoNodes);
    }

    #[test]
    fn cell_ptr_roundtrip() {
        let w = world(100, 3);
        let p = w.cell_ptr(5);
        assert_eq!(p.index(), 5);
        assert_eq!(p.node(), w.cell_owner[5]);
        assert_eq!(p.class(), w.cell_class);
    }
}
