//! The distributed **adaptive** FMM force phase — the algorithm the
//! paper's SPLASH-2 FMM actually is (the uniform variant in
//! [`crate::fmm_dist`] keeps the paper's communication structure; this
//! one adds the adaptive tree and its U/V/W/X lists).
//!
//! Partitioning: the adaptive tree is cut into **grain subtrees** (the
//! shallowest nodes holding at most a target particle count); grains are
//! assigned to nodes in pre-order (Morton-like) by the particle-count
//! midpoint rule, so subtree-internal L2L chains stay node-local.
//! Ancestors above the grains are (re)computed by every node that owns a
//! descendant grain, exactly as the uniform variant handles its top
//! levels.
//!
//! The timed phase again runs as two barrier-separated sub-phases:
//!
//! 1. **Gather** ([`AfmmGatherApp`]) — per owned box: V-list M2L (remote
//!    multipole reads) and X-list P2L (remote particle-list reads);
//! 2. **Evaluate** ([`AfmmEvalApp`]) — per owned leaf: memoized L2L chain
//!    (local), local-expansion evaluation, W-list multipole evaluation
//!    (remote multipole reads), and U-list P2P (remote particle lists).

use crate::fmm_dist::FmmCost;
use dpa_core::{PtrApp, WorkEnv};
use global_heap::{ClassTable, GPtr, ObjClass};
use nbody::afmm::{p2l_into, AfmmParams, AfmmSolver, NO_NODE};
use nbody::cx::Cx;
use nbody::fmm::{eval_local_field, eval_multipole_field, l2l, m2l, p2p_field, Local};
use std::collections::HashMap;
use std::sync::Arc;

/// Immutable shared world for one adaptive-FMM force phase.
pub struct AfmmWorld {
    /// The sequential solver: adaptive tree + (untimed) upward-pass
    /// multipoles. `downward()` is *not* called here.
    pub solver: AfmmSolver,
    /// Owner node per tree node.
    pub owner: Vec<u16>,
    /// Grain subtree roots, in assignment order.
    pub grains: Vec<u32>,
    /// Subtree particle count per node.
    pub count: Vec<u32>,
    /// Precomputed V list per node (list construction belongs to the
    /// untimed tree-build phase, as in SPLASH-2).
    pub v_lists: Vec<Vec<u32>>,
    /// Precomputed X list per node.
    pub x_lists: Vec<Vec<u32>>,
    /// Precomputed W list per leaf (empty for internals).
    pub w_lists: Vec<Vec<u32>>,
    /// Precomputed U list per leaf (empty for internals).
    pub u_lists: Vec<Vec<u32>>,
    /// Cost model (shared with the uniform variant).
    pub cost: FmmCost,
    /// Object classes.
    pub classes: ClassTable,
    /// Multipole object class.
    pub mpole_class: ObjClass,
    /// Particle-list object class.
    pub plist_class: ObjClass,
    /// Machine size.
    pub nodes: u16,
}

fn mpole_bytes(p: usize) -> u32 {
    16 * (p as u32 + 1) + 16
}

fn plist_bytes(n: u32) -> u32 {
    24 * n + 16
}

impl AfmmWorld {
    /// Build the world: adaptive tree, upward pass, grain partition, and
    /// interaction lists.
    pub fn build(
        zs: Vec<Cx>,
        qs: Vec<f64>,
        nodes: u16,
        params: AfmmParams,
        cost: FmmCost,
    ) -> Arc<AfmmWorld> {
        assert!(nodes >= 1);
        let solver = AfmmSolver::new(zs, qs, params);
        let n_nodes = solver.nodes.len();

        // Subtree particle counts (children follow parents).
        let mut count = vec![0u32; n_nodes];
        for i in (0..n_nodes).rev() {
            count[i] = solver.nodes[i].particles.len() as u32;
            for &c in &solver.nodes[i].children {
                if c != NO_NODE {
                    count[i] += count[c as usize];
                }
            }
        }

        // Grain cut: shallowest nodes with <= target particles. Pre-order
        // walk keeps grains in spatial (Morton-like) order.
        let total = count[0].max(1);
        let target = (total / (nodes as u32 * 8)).max(1);
        let mut grains = Vec::new();
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            if count[i] <= target || solver.nodes[i].is_leaf() {
                if count[i] > 0 {
                    grains.push(i as u32);
                }
            } else {
                // Reverse child order so the pop order is pre-order.
                for &c in solver.nodes[i].children.iter().rev() {
                    if c != NO_NODE {
                        stack.push(c as usize);
                    }
                }
            }
        }

        // Midpoint-rule assignment of grains to nodes by particle weight.
        let mut grain_owner = HashMap::new();
        let mut cum = 0u64;
        for &g in &grains {
            let c = count[g as usize] as u64;
            let mid = 2 * cum + c;
            let owner = ((mid * nodes as u64) / (2 * total as u64)).min(nodes as u64 - 1);
            grain_owner.insert(
                g,
                u16::try_from(owner).expect("invariant: owner < nodes, which is u16"),
            );
            cum += c;
        }

        // Owner per tree node: grain ancestor's owner below the cut;
        // above it, the owner of the first descendant grain.
        let mut owner = vec![u16::MAX; n_nodes];
        for (&g, &o) in &grain_owner {
            // Whole subtree under the grain.
            let mut stack = vec![g as usize];
            while let Some(i) = stack.pop() {
                owner[i] = o;
                for &c in &solver.nodes[i].children {
                    if c != NO_NODE {
                        stack.push(c as usize);
                    }
                }
            }
        }
        for i in (0..n_nodes).rev() {
            if owner[i] == u16::MAX {
                // First child with an owner (internal above the cut).
                owner[i] = solver.nodes[i]
                    .children
                    .iter()
                    .filter(|&&c| c != NO_NODE)
                    .map(|&c| owner[c as usize])
                    .find(|&o| o != u16::MAX)
                    .unwrap_or(0);
            }
        }

        // Interaction lists (untimed tree-build product).
        let mut v_lists = Vec::with_capacity(n_nodes);
        let mut x_lists = Vec::with_capacity(n_nodes);
        let mut w_lists = Vec::with_capacity(n_nodes);
        let mut u_lists = Vec::with_capacity(n_nodes);
        for i in 0..n_nodes {
            v_lists.push(solver.v_list(i).into_iter().map(|x| x as u32).collect());
            x_lists.push(solver.x_list(i).into_iter().map(|x| x as u32).collect());
            if solver.nodes[i].is_leaf() {
                w_lists.push(solver.w_list(i).into_iter().map(|x| x as u32).collect());
                u_lists.push(solver.u_list(i).into_iter().map(|x| x as u32).collect());
            } else {
                w_lists.push(Vec::new());
                u_lists.push(Vec::new());
            }
        }

        let mut classes = ClassTable::new();
        let mpole_class = classes.register("afmm_multipole", mpole_bytes(params.terms));
        let plist_class = classes.register("afmm_plist", 16);

        Arc::new(AfmmWorld {
            solver,
            owner,
            grains,
            count,
            v_lists,
            x_lists,
            w_lists,
            u_lists,
            cost,
            classes,
            mpole_class,
            plist_class,
            nodes,
        })
    }

    /// Global pointer to a tree node's multipole expansion.
    #[inline]
    pub fn mpole_ptr(&self, i: u32) -> GPtr {
        GPtr::new(self.owner[i as usize], self.mpole_class, i as u64)
    }

    /// Global pointer to a leaf's particle list.
    #[inline]
    pub fn plist_ptr(&self, i: u32) -> GPtr {
        GPtr::new(self.owner[i as usize], self.plist_class, i as u64)
    }

    /// Grains owned by `node`.
    pub fn owned_grains(&self, node: u16) -> Vec<u32> {
        self.grains
            .iter()
            .copied()
            .filter(|&g| self.owner[g as usize] == node)
            .collect()
    }

    /// All boxes `node` computes local expansions for: every box in its
    /// grain subtrees, plus the (deduplicated) strict ancestors of its
    /// grains.
    pub fn owned_boxes(&self, node: u16) -> Vec<u32> {
        let mut out = Vec::new();
        for g in self.owned_grains(node) {
            let mut stack = vec![g as usize];
            while let Some(i) = stack.pop() {
                if self.count[i] > 0 {
                    out.push(i as u32);
                }
                for &c in &self.solver.nodes[i].children {
                    if c != NO_NODE {
                        stack.push(c as usize);
                    }
                }
            }
            // Strict ancestors.
            let mut a = self.solver.nodes[g as usize].parent;
            while a != NO_NODE {
                if !out.contains(&(a as u32)) {
                    out.push(a as u32);
                }
                a = self.solver.nodes[a as usize].parent;
            }
        }
        out
    }

    /// Owned nonempty leaves of `node`.
    pub fn owned_leaves(&self, node: u16) -> Vec<u32> {
        let mut out = Vec::new();
        for g in self.owned_grains(node) {
            let mut stack = vec![g as usize];
            while let Some(i) = stack.pop() {
                if self.solver.nodes[i].is_leaf() {
                    if !self.solver.nodes[i].particles.is_empty() {
                        out.push(i as u32);
                    }
                } else {
                    for &c in &self.solver.nodes[i].children {
                        if c != NO_NODE {
                            stack.push(c as usize);
                        }
                    }
                }
            }
        }
        out
    }

    /// Transfer size of `ptr`.
    pub fn object_size(&self, ptr: GPtr) -> u32 {
        if ptr.class() == self.mpole_class {
            mpole_bytes(self.solver.params.terms)
        } else {
            plist_bytes(self.solver.nodes[ptr.index() as usize].particles.len() as u32)
        }
    }

    fn points_of(&self, i: u32) -> Vec<(Cx, f64)> {
        self.solver.nodes[i as usize]
            .particles
            .iter()
            .map(|&pi| (self.solver.zs[pi as usize], self.solver.qs[pi as usize]))
            .collect()
    }
}

/// Phase-1 work: fold one V or X source into a target's local expansion.
#[derive(Clone, Copy, Debug)]
pub enum GatherWork {
    /// M2L from `src`'s multipole into `target`.
    V {
        /// Target box.
        target: u32,
        /// Source box (multipole read).
        src: u32,
    },
    /// P2L from `src`'s particles into `target`.
    X {
        /// Target box.
        target: u32,
        /// Source leaf (particle-list read).
        src: u32,
    },
}

/// Phase 1: V-list M2L and X-list P2L over owned boxes.
pub struct AfmmGatherApp {
    world: Arc<AfmmWorld>,
    targets: Vec<u32>,
    /// Accumulated local-expansion contributions per owned box.
    pub locals: HashMap<u32, Local>,
    /// M2L translations performed.
    pub m2l_count: u64,
    /// P2L source particles processed.
    pub p2l_points: u64,
}

impl AfmmGatherApp {
    /// The phase-1 app for node `me`.
    pub fn new(world: Arc<AfmmWorld>, me: u16) -> AfmmGatherApp {
        let targets = world.owned_boxes(me);
        AfmmGatherApp {
            world,
            targets,
            locals: HashMap::new(),
            m2l_count: 0,
            p2l_points: 0,
        }
    }
}

impl PtrApp for AfmmGatherApp {
    type Work = GatherWork;

    fn num_iterations(&self) -> usize {
        self.targets.len()
    }

    fn start_iteration(&mut self, iter: usize, env: &mut WorkEnv<'_, GatherWork>) {
        let t = self.targets[iter];
        let world = self.world.clone();
        for &v in &world.v_lists[t as usize] {
            if world.count[v as usize] > 0 {
                env.demand(world.mpole_ptr(v), GatherWork::V { target: t, src: v });
            }
        }
        for &x in &world.x_lists[t as usize] {
            if !world.solver.nodes[x as usize].particles.is_empty() {
                env.demand(world.plist_ptr(x), GatherWork::X { target: t, src: x });
            }
        }
    }

    fn run_work(&mut self, w: GatherWork, env: &mut WorkEnv<'_, GatherWork>) {
        let world = self.world.clone();
        let p = world.solver.params.terms;
        match w {
            GatherWork::V { target, src } => {
                env.assert_readable(world.mpole_ptr(src));
                let contrib = m2l(
                    &world.solver.multipoles[src as usize],
                    world.solver.nodes[src as usize].center()
                        - world.solver.nodes[target as usize].center(),
                    world.solver.binomials(),
                );
                self.locals
                    .entry(target)
                    .or_insert_with(|| Local::zero(p))
                    .add_assign(&contrib);
                self.m2l_count += 1;
                env.charge(world.cost.m2l_ns(p));
            }
            GatherWork::X { target, src } => {
                env.assert_readable(world.plist_ptr(src));
                let pts = world.points_of(src);
                let acc = self
                    .locals
                    .entry(target)
                    .or_insert_with(|| Local::zero(p));
                p2l_into(acc, &pts, world.solver.nodes[target as usize].center());
                self.p2l_points += pts.len() as u64;
                env.charge(world.cost.eval_term_ns * (p as u64) * pts.len() as u64
                    + world.cost.work_fixed_ns);
            }
        }
    }

    fn object_size(&self, ptr: GPtr) -> u32 {
        self.world.object_size(ptr)
    }
}

/// Phase-2 work.
#[derive(Clone, Copy, Debug)]
pub enum AEvalWork {
    /// Finalize a leaf's local expansion and evaluate it; emits W/U work.
    Eval(u32),
    /// Evaluate `src`'s multipole at `leaf`'s particles (W list).
    W {
        /// Target leaf.
        leaf: u32,
        /// Source box (multipole read).
        src: u32,
    },
    /// Direct interactions against `src`'s particles (U list).
    U {
        /// Target leaf.
        leaf: u32,
        /// Source leaf (particle-list read).
        src: u32,
    },
}

/// Phase 2: L2L chains, evaluation, W-multipole and U-direct near field.
pub struct AfmmEvalApp {
    world: Arc<AfmmWorld>,
    leaves: Vec<u32>,
    m2l_partial: HashMap<u32, Local>,
    finals: HashMap<u32, Local>,
    /// Complex field per particle (owned entries filled).
    pub fields: Vec<Cx>,
    /// L2L shifts performed.
    pub l2l_count: u64,
    /// P2P pairs computed.
    pub p2p_pairs: u64,
}

impl AfmmEvalApp {
    /// The phase-2 app for node `me`, consuming its phase-1 partials.
    pub fn new(world: Arc<AfmmWorld>, me: u16, m2l_partial: HashMap<u32, Local>) -> AfmmEvalApp {
        let leaves = world.owned_leaves(me);
        let n = world.solver.zs.len();
        AfmmEvalApp {
            world,
            leaves,
            m2l_partial,
            finals: HashMap::new(),
            fields: vec![Cx::ZERO; n],
            l2l_count: 0,
            p2p_pairs: 0,
        }
    }

    fn finalize(&mut self, i: u32, env: &mut WorkEnv<'_, AEvalWork>) -> Local {
        if let Some(l) = self.finals.get(&i) {
            return l.clone();
        }
        let world = self.world.clone();
        let p = world.solver.params.terms;
        let own = self
            .m2l_partial
            .get(&i)
            .cloned()
            .unwrap_or_else(|| Local::zero(p));
        let parent = world.solver.nodes[i as usize].parent;
        let result = if parent == NO_NODE {
            own
        } else {
            let from_parent = self.finalize(parent as u32, env);
            let mut shifted = l2l(
                &from_parent,
                world.solver.nodes[i as usize].center()
                    - world.solver.nodes[parent as usize].center(),
                world.solver.binomials(),
            );
            self.l2l_count += 1;
            env.charge(world.cost.l2l_ns(p));
            shifted.add_assign(&own);
            shifted
        };
        self.finals.insert(i, result.clone());
        result
    }
}

impl PtrApp for AfmmEvalApp {
    type Work = AEvalWork;

    fn num_iterations(&self) -> usize {
        self.leaves.len()
    }

    fn start_iteration(&mut self, iter: usize, env: &mut WorkEnv<'_, AEvalWork>) {
        env.local(AEvalWork::Eval(self.leaves[iter]));
    }

    fn run_work(&mut self, w: AEvalWork, env: &mut WorkEnv<'_, AEvalWork>) {
        let world = self.world.clone();
        let p = world.solver.params.terms;
        match w {
            AEvalWork::Eval(leaf) => {
                let local = self.finalize(leaf, env);
                let center = world.solver.nodes[leaf as usize].center();
                for &pi in &world.solver.nodes[leaf as usize].particles {
                    let z = world.solver.zs[pi as usize];
                    self.fields[pi as usize] += eval_local_field(&local, z, center);
                    env.charge(world.cost.eval_ns(p));
                }
                for &wbox in &world.w_lists[leaf as usize] {
                    if world.count[wbox as usize] > 0 {
                        env.demand(world.mpole_ptr(wbox), AEvalWork::W { leaf, src: wbox });
                    }
                }
                for &u in &world.u_lists[leaf as usize] {
                    if !world.solver.nodes[u as usize].particles.is_empty() {
                        env.demand(world.plist_ptr(u), AEvalWork::U { leaf, src: u });
                    }
                }
            }
            AEvalWork::W { leaf, src } => {
                env.assert_readable(world.mpole_ptr(src));
                let center = world.solver.nodes[src as usize].center();
                for &pi in &world.solver.nodes[leaf as usize].particles {
                    let z = world.solver.zs[pi as usize];
                    self.fields[pi as usize] +=
                        eval_multipole_field(&world.solver.multipoles[src as usize], z, center);
                    env.charge(world.cost.eval_term_ns * p as u64 + world.cost.work_fixed_ns);
                }
            }
            AEvalWork::U { leaf, src } => {
                env.assert_readable(world.plist_ptr(src));
                let sources = world.points_of(src);
                for &pi in &world.solver.nodes[leaf as usize].particles {
                    let z = world.solver.zs[pi as usize];
                    self.fields[pi as usize] += p2p_field(z, &sources);
                    self.p2p_pairs += sources.len() as u64;
                    env.charge(world.cost.p2p_pair_ns * sources.len() as u64);
                }
            }
        }
    }

    fn object_size(&self, ptr: GPtr) -> u32 {
        self.world.object_size(ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::distrib::clustered_square;

    fn world(nodes: u16) -> Arc<AfmmWorld> {
        let bodies = clustered_square(700, 4, 99);
        let zs: Vec<Cx> = bodies.iter().map(|b| Cx::new(b.pos.x, b.pos.y)).collect();
        let qs: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
        AfmmWorld::build(
            zs,
            qs,
            nodes,
            AfmmParams {
                terms: 10,
                leaf_cap: 12,
                max_level: 10,
            },
            FmmCost::default(),
        )
    }

    #[test]
    fn grains_cover_all_particles_disjointly() {
        let w = world(4);
        let mut seen = vec![false; w.solver.zs.len()];
        for &g in &w.grains {
            let mut stack = vec![g as usize];
            while let Some(i) = stack.pop() {
                for &pi in &w.solver.nodes[i].particles {
                    assert!(!seen[pi as usize], "particle in two grains");
                    seen[pi as usize] = true;
                }
                for &c in &w.solver.nodes[i].children {
                    if c != NO_NODE {
                        stack.push(c as usize);
                    }
                }
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn every_owner_is_valid_and_leaves_partition() {
        let w = world(4);
        assert!(w.owner.iter().all(|&o| o < 4));
        let mut total = 0;
        for node in 0..4 {
            total += w.owned_leaves(node).len();
        }
        let nonempty_leaves = w
            .solver
            .leaves()
            .filter(|&i| !w.solver.nodes[i].particles.is_empty())
            .count();
        assert_eq!(total, nonempty_leaves);
    }

    #[test]
    fn grain_subtrees_keep_l2l_local() {
        // Within a grain subtree, every node shares its grain's owner.
        let w = world(4);
        for &g in &w.grains {
            let o = w.owner[g as usize];
            let mut stack = vec![g as usize];
            while let Some(i) = stack.pop() {
                assert_eq!(w.owner[i], o);
                for &c in &w.solver.nodes[i].children {
                    if c != NO_NODE {
                        stack.push(c as usize);
                    }
                }
            }
        }
    }

    #[test]
    fn partition_balances_particles() {
        let w = world(4);
        let mut per_node = vec![0u64; 4];
        for node in 0..4u16 {
            for l in w.owned_leaves(node) {
                per_node[node as usize] += w.solver.nodes[l as usize].particles.len() as u64;
            }
        }
        let max = *per_node.iter().max().unwrap();
        let min = *per_node.iter().min().unwrap();
        assert!(max <= 5 * min.max(1), "imbalanced: {per_node:?}");
    }
}
