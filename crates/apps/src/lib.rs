//! # apps — the paper's evaluation applications, distributed over DPA
//!
//! The force-computation phases of SPLASH-2 **Barnes-Hut** and **FMM**,
//! expressed as pointer-labeled non-blocking threads over the global
//! object space and executed by any `dpa-core` variant (DPA, caching,
//! blocking, sequential):
//!
//! * [`bh_dist`] — Morton/costzones body partitioning, distributed octree
//!   walk with inline-allocated leaves;
//! * [`fmm_dist`] — uniform-tree FMM: subtree partitioning at level K,
//!   the M2L sub-phase (remote multipole reads), and the downward/eval/
//!   P2P sub-phase (remote particle-list reads);
//! * [`afmm_dist`] — the **adaptive** FMM (SPLASH-2's actual algorithm):
//!   grain-subtree partitioning of the variable-depth tree and the
//!   U/V/W/X list phases;
//! * [`relax`] — a push-style weighted graph relaxation exercising the
//!   remote-reduction extension (the paper's stated future work);
//! * [`graph_dist`] — semi-naive transitive closure over a mutable
//!   power-law edge graph: hot hubs, outsized hub records, structural
//!   per-phase deltas — the skew-adversarial workload family;
//! * [`setops_dist`] — batch-parallel ordered-set operations (insert /
//!   delete / range) over a distributed sorted map with power-law-hot
//!   range queries;
//! * [`driver`] — one-call phase runners returning forces + timing
//!   ([`driver::run_bh`], [`driver::run_fmm`]).
//!
//! Every variant runs the same decomposition, so forces agree across
//! variants to floating-point reassociation tolerance — verified in this
//! crate's tests against the sequential oracles in `nbody`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod afmm_dist;
pub mod bh_dist;
pub mod driver;
pub mod error;
pub mod fmm_dist;
pub mod graph_dist;
pub mod relax;
pub mod setops_dist;

pub use afmm_dist::{AEvalWork, AfmmEvalApp, AfmmGatherApp, AfmmWorld, GatherWork};
pub use error::WorldError;
pub use bh_dist::{BhApp, BhCost, BhVisit, BhWorld, OwnerPolicy};
pub use driver::{merge_stats, run_afmm, run_bh, run_fmm, AfmmRun, BhRun, FmmRun};
pub use fmm_dist::{EvalWork, FmmCost, FmmEvalApp, FmmM2lApp, FmmWorld, M2lWork};
pub use graph_dist::{GraphApp, GraphCost, GraphParams, GraphWorld, Visit};
pub use relax::{Push, RelaxApp, RelaxCost, RelaxWorld, Vertex};
pub use setops_dist::{key_stamp, Probe, SetOp, SetopsApp, SetopsParams, SetopsWorld};
