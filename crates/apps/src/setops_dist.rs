//! Batch-parallel ordered-set operations over a distributed sorted map —
//! the CPMA / finger-search-shaped companion to the graph workload.
//!
//! The key universe `0..universe` is divided into `buckets` contiguous
//! buckets; a bucket is one heap object, and buckets are range-partitioned
//! over the machine, so the world is a distributed sorted map keyed by
//! integer. Each node executes one *batch* of mixed operations per phase:
//!
//! - **Insert(k)** / **Delete(k)**: a remote reduction into `k`'s bucket
//!   ([`WorkEnv::accumulate`] with the signed encoded key); the owner
//!   applies it to its live membership at the phase barrier semantics the
//!   runtime guarantees (commutative, exactly-once).
//! - **Range(lo, hi)**: demands every covering bucket and folds the count
//!   and an order-independent digest of the members *at phase start* —
//!   reads are phase-immutable, mutations are end-of-phase reductions, so
//!   a `BTreeSet` model is exact: answer ranges against the initial set,
//!   then apply the batch.
//!
//! Every key is operated on by **at most one op machine-wide** (ops draw
//! distinct keys from a seeded permutation), which is what makes the
//! reduction fold order-independent and the model well-defined.
//!
//! Range queries are power-law skewed toward bucket 0, so the low buckets
//! — all owned by node 0 — are the hot keys: many consumers, no dominant
//! one, the adversarial case for migration's dominant-consumer pick.

use crate::error::WorldError;
use dpa_core::{PtrApp, WorkEnv};
use global_heap::{ClassTable, GPtr, ObjClass};
use sim_net::Rng;
use std::sync::Arc;

/// Per-operation costs, ns.
#[derive(Clone, Copy, Debug)]
pub struct SetopsCost {
    /// Per-op decode + dispatch.
    pub op_ns: u64,
    /// Per-bucket probe of a range query.
    pub probe_ns: u64,
    /// Per-key fold inside a probe.
    pub key_ns: u64,
}

impl Default for SetopsCost {
    fn default() -> Self {
        SetopsCost {
            op_ns: 300,
            probe_ns: 500,
            key_ns: 40,
        }
    }
}

/// One batched set operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetOp {
    /// Insert `key` (no-op if present).
    Insert(u64),
    /// Delete `key` (no-op if absent).
    Delete(u64),
    /// Count + digest the members of `[lo, hi)` at phase start.
    Range(u64, u64),
}

/// Generator parameters for [`SetopsWorld`].
#[derive(Clone, Copy, Debug)]
pub struct SetopsParams {
    /// Key universe `0..universe`.
    pub universe: u64,
    /// Bucket count (each bucket is one heap object).
    pub buckets: usize,
    /// Machine size (contiguous even bucket partition).
    pub nodes: u16,
    /// Ops per node per batch.
    pub ops_per_node: usize,
    /// Initial membership density, permille.
    pub fill_permille: u32,
    /// Power-law skew of range-query placement toward bucket 0.
    pub skew: f64,
    /// Max range width, in buckets.
    pub range_buckets: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for SetopsParams {
    fn default() -> Self {
        SetopsParams {
            universe: 4096,
            buckets: 64,
            nodes: 4,
            ops_per_node: 48,
            fill_permille: 400,
            skew: 1.5,
            range_buckets: 4,
            seed: 0x5E70,
        }
    }
}

/// The shared world: initial membership, per-node op batches, partition.
pub struct SetopsWorld {
    /// Parameters the world was built from.
    pub params: SetopsParams,
    /// Initial membership bitset over the key universe.
    initial: Vec<u64>,
    /// `ops[node]` = that node's batch.
    ops: Vec<Vec<SetOp>>,
    /// `splits[i]..splits[i+1]` = node `i`'s buckets.
    pub splits: Vec<usize>,
    /// Cost model.
    pub cost: SetopsCost,
    /// Object classes (one: BUCKET).
    pub classes: ClassTable,
    /// The bucket object class.
    pub bclass: ObjClass,
}

#[inline]
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-independent digest contribution of key `k` being present.
#[inline]
pub fn key_stamp(k: u64) -> u64 {
    mix(k ^ 0xA076_1D64_78BD_642F, 0x1357_9BDF)
}

impl SetopsWorld {
    /// Build the world, panicking on invalid parameters.
    pub fn build(params: SetopsParams) -> Arc<SetopsWorld> {
        Self::try_build(params).expect("invalid SetopsWorld configuration")
    }

    /// Fallible [`SetopsWorld::build`]: rejects an empty machine, empty
    /// universes/batches, machines larger than the bucket count, and op
    /// batches that cannot draw machine-wide-distinct keys.
    pub fn try_build(params: SetopsParams) -> Result<Arc<SetopsWorld>, WorldError> {
        if params.nodes == 0 {
            return Err(WorldError::NoNodes);
        }
        if params.buckets == 0 || params.universe == 0 {
            return Err(WorldError::Empty { what: "buckets" });
        }
        if params.buckets < params.nodes as usize {
            return Err(WorldError::TooFewElements {
                what: "buckets",
                have: params.buckets,
                nodes: params.nodes,
            });
        }
        let need = params.nodes as usize * params.ops_per_node;
        if (params.universe as usize) < need.max(params.buckets) {
            return Err(WorldError::TooFewElements {
                what: "keys",
                have: params.universe as usize,
                nodes: params.nodes,
            });
        }
        let splits = nbody::morton::even_splits(params.buckets, params.nodes as usize);
        let words = (params.universe as usize).div_ceil(64);
        let mut initial = vec![0u64; words];
        for k in 0..params.universe {
            if mix(params.seed ^ 0xF111, k) % 1000 < params.fill_permille as u64 {
                initial[k as usize / 64] |= 1 << (k % 64);
            }
        }
        // Machine-wide distinct op keys: a seeded Fisher-Yates permutation
        // of the universe, carved into per-node slices.
        let mut perm: Vec<u64> = (0..params.universe).collect();
        let mut rng = Rng::new(params.seed ^ 0x0B5E);
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.below(i as u64 + 1) as usize);
        }
        let bucket_width = params.universe.div_ceil(params.buckets as u64);
        // Power-law placement of range queries over buckets.
        let mut cum = Vec::with_capacity(params.buckets);
        let mut total = 0.0f64;
        for b in 0..params.buckets {
            total += ((b + 1) as f64).powf(-params.skew);
            cum.push(total);
        }
        let mut ops = Vec::with_capacity(params.nodes as usize);
        for node in 0..params.nodes as usize {
            let mut batch = Vec::with_capacity(params.ops_per_node);
            let mut nr = Rng::new(mix(params.seed, node as u64));
            for j in 0..params.ops_per_node {
                let k = perm[node * params.ops_per_node + j];
                batch.push(match mix(params.seed ^ 0x09, k) % 5 {
                    0 | 1 => SetOp::Insert(k),
                    2 | 3 => SetOp::Delete(k),
                    _ => {
                        let r = nr.unit_f64() * total;
                        let lo_b = cum.partition_point(|&c| c < r).min(params.buckets - 1);
                        let width = 1 + nr.below(params.range_buckets.max(1) as u64);
                        let lo = lo_b as u64 * bucket_width;
                        let hi = ((lo_b as u64 + width) * bucket_width).min(params.universe);
                        SetOp::Range(lo, hi)
                    }
                });
            }
            ops.push(batch);
        }
        let mut classes = ClassTable::new();
        let bclass = classes.register("setops_bucket", 64);
        Ok(Arc::new(SetopsWorld {
            params,
            initial,
            ops,
            splits,
            cost: SetopsCost::default(),
            classes,
            bclass,
        }))
    }

    /// Width of each bucket in keys.
    #[inline]
    pub fn bucket_width(&self) -> u64 {
        self.params.universe.div_ceil(self.params.buckets as u64)
    }

    /// The bucket holding `key`.
    #[inline]
    pub fn bucket_of(&self, key: u64) -> usize {
        ((key / self.bucket_width()) as usize).min(self.params.buckets - 1)
    }

    /// Global pointer to bucket `b` (owned by its home node).
    #[inline]
    pub fn bptr(&self, b: usize) -> GPtr {
        let owner = u16::try_from(self.splits.partition_point(|&s| s <= b) - 1)
            .expect("invariant: bucket owner < nodes, which is u16");
        GPtr::new(owner, self.bclass, b as u64)
    }

    /// Buckets owned by `node`.
    pub fn bucket_range(&self, node: u16) -> std::ops::Range<usize> {
        self.splits[node as usize]..self.splits[node as usize + 1]
    }

    /// Keys of bucket `b`.
    pub fn key_range(&self, b: usize) -> std::ops::Range<u64> {
        let w = self.bucket_width();
        (b as u64 * w)..((b as u64 + 1) * w).min(self.params.universe)
    }

    /// `true` if `key` is in the initial (phase-start) set.
    #[inline]
    pub fn initially_present(&self, key: u64) -> bool {
        self.initial[key as usize / 64] & (1 << (key % 64)) != 0
    }

    /// Node `node`'s op batch.
    pub fn batch(&self, node: u16) -> &[SetOp] {
        &self.ops[node as usize]
    }

    /// Transfer size of bucket `b`: header + its initial members.
    pub fn bucket_bytes(&self, b: usize) -> u32 {
        let members = self.key_range(b).filter(|&k| self.initially_present(k)).count();
        24 + 8 * members as u32
    }

    /// Host-side oracle for `node`: `(range_sum, final_digest)` — range
    /// queries answered against the initial set, then the whole machine's
    /// batch applied and the node's owned keys digested.
    pub fn expected(&self, node: u16) -> (u64, u64) {
        let mut range_sum = 0u64;
        for op in self.batch(node) {
            if let SetOp::Range(lo, hi) = *op {
                for k in lo..hi {
                    if self.initially_present(k) {
                        range_sum = range_sum.wrapping_add(key_stamp(k));
                    }
                }
            }
        }
        let member = |k: u64| self.initially_present(k);
        let mut inserted: Vec<u64> = Vec::new();
        let mut deleted: Vec<u64> = Vec::new();
        for batch in &self.ops {
            for op in batch {
                match *op {
                    SetOp::Insert(k) => inserted.push(k),
                    SetOp::Delete(k) => deleted.push(k),
                    SetOp::Range(..) => {}
                }
            }
        }
        let mut digest = 0u64;
        for b in self.bucket_range(node) {
            for k in self.key_range(b) {
                let now = if inserted.contains(&k) {
                    true
                } else if deleted.contains(&k) {
                    false
                } else {
                    member(k)
                };
                if now {
                    digest = digest.wrapping_add(key_stamp(k));
                }
            }
        }
        (range_sum, digest)
    }
}

/// A probe work item: fold one bucket's members within `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct Probe {
    /// Query lower bound (inclusive).
    pub lo: u64,
    /// Query upper bound (exclusive).
    pub hi: u64,
    /// The bucket to probe (the labeled pointer).
    pub b: u32,
}

/// Per-node batch-execution state.
pub struct SetopsApp {
    world: Arc<SetopsWorld>,
    me: u16,
    /// Mutable membership of owned keys (starts at the initial set).
    owned: Vec<u64>,
    /// Base key of this node's owned range.
    owned_base: u64,
    /// Order-independent digest over range-query results.
    pub range_sum: u64,
    /// Probes executed.
    pub probes: u64,
    /// Reductions applied on this owner.
    pub applied: u64,
}

impl SetopsApp {
    /// The app instance for node `me`.
    pub fn new(world: Arc<SetopsWorld>, me: u16) -> SetopsApp {
        let r = world.bucket_range(me);
        let lo = world.key_range(r.start).start;
        let hi = world.key_range(r.end - 1).end;
        let words = ((hi - lo) as usize).div_ceil(64);
        let mut owned = vec![0u64; words];
        for k in lo..hi {
            if world.initially_present(k) {
                owned[(k - lo) as usize / 64] |= 1 << ((k - lo) % 64);
            }
        }
        SetopsApp {
            world,
            me,
            owned,
            owned_base: lo,
            range_sum: 0,
            probes: 0,
            applied: 0,
        }
    }

    /// Digest of this node's final owned membership (order-independent).
    pub fn final_digest(&self) -> u64 {
        let r = self.world.bucket_range(self.me);
        let lo = self.world.key_range(r.start).start;
        let hi = self.world.key_range(r.end - 1).end;
        let mut d = 0u64;
        for k in lo..hi {
            let i = (k - self.owned_base) as usize;
            if self.owned[i / 64] & (1 << (i % 64)) != 0 {
                d = d.wrapping_add(key_stamp(k));
            }
        }
        d
    }
}

impl PtrApp for SetopsApp {
    type Work = Probe;

    fn num_iterations(&self) -> usize {
        self.world.batch(self.me).len()
    }

    fn start_iteration(&mut self, iter: usize, env: &mut WorkEnv<'_, Probe>) {
        let world = self.world.clone();
        env.charge(world.cost.op_ns);
        match world.batch(self.me)[iter] {
            SetOp::Insert(k) => env.accumulate(world.bptr(world.bucket_of(k)), (k + 1) as f64),
            SetOp::Delete(k) => {
                env.accumulate(world.bptr(world.bucket_of(k)), -((k + 1) as f64))
            }
            SetOp::Range(lo, hi) => {
                let (blo, bhi) = (world.bucket_of(lo), world.bucket_of(hi.saturating_sub(1)));
                for b in blo..=bhi {
                    env.demand(world.bptr(b), Probe { lo, hi, b: b as u32 });
                }
            }
        }
    }

    fn run_work(&mut self, w: Probe, env: &mut WorkEnv<'_, Probe>) {
        let world = self.world.clone();
        let ptr = world.bptr(w.b as usize);
        env.assert_readable(ptr);
        let keys = world.key_range(w.b as usize);
        let (lo, hi) = (w.lo.max(keys.start), w.hi.min(keys.end));
        let mut folded = 0u64;
        for k in lo..hi {
            if world.initially_present(k) {
                self.range_sum = self.range_sum.wrapping_add(key_stamp(k));
                folded += 1;
            }
        }
        env.charge(world.cost.probe_ns + world.cost.key_ns * folded);
        self.probes += 1;
    }

    fn object_size(&self, ptr: GPtr) -> u32 {
        self.world.bucket_bytes(ptr.index() as usize)
    }

    fn apply_update(&mut self, ptr: GPtr, value: f64) {
        debug_assert_eq!(ptr.class(), self.world.bclass);
        let k = (value.abs() as u64) - 1;
        debug_assert_eq!(self.world.bucket_of(k), ptr.index() as usize);
        let i = (k - self.owned_base) as usize;
        if value > 0.0 {
            self.owned[i / 64] |= 1 << (i % 64);
        } else {
            self.owned[i / 64] &= !(1 << (i % 64));
        }
        self.applied += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetopsParams {
        SetopsParams {
            universe: 1024,
            buckets: 32,
            nodes: 4,
            ops_per_node: 24,
            fill_permille: 400,
            skew: 1.5,
            range_buckets: 3,
            seed: 7,
        }
    }

    #[test]
    fn world_is_deterministic_and_partitioned() {
        let a = SetopsWorld::build(small());
        let b = SetopsWorld::build(small());
        for node in 0..4 {
            assert_eq!(a.batch(node), b.batch(node));
            assert_eq!(a.expected(node), b.expected(node));
        }
        let covered: usize = (0..4).map(|n| a.bucket_range(n).len()).sum();
        assert_eq!(covered, 32);
    }

    #[test]
    fn op_keys_are_machine_wide_distinct() {
        let w = SetopsWorld::build(small());
        let mut seen = std::collections::HashSet::new();
        for node in 0..4 {
            for op in w.batch(node) {
                if let SetOp::Insert(k) | SetOp::Delete(k) = *op {
                    assert!(seen.insert(k), "key {k} operated on twice");
                }
            }
        }
        assert!(!seen.is_empty());
    }

    #[test]
    fn range_queries_skew_toward_node0_buckets() {
        let w = SetopsWorld::build(SetopsParams { ops_per_node: 200, ..small() });
        let mut hits = vec![0u64; 4];
        for node in 0..4 {
            for op in w.batch(node) {
                if let SetOp::Range(lo, _) = *op {
                    hits[w.bptr(w.bucket_of(lo)).node() as usize] += 1;
                }
            }
        }
        assert!(
            hits[0] > hits[1] + hits[2] + hits[3],
            "low buckets not hot: {hits:?}"
        );
    }

    #[test]
    fn bptr_owner_matches_split() {
        let w = SetopsWorld::build(small());
        for b in 0..32 {
            assert!(w.bucket_range(w.bptr(b).node()).contains(&b));
        }
    }

    #[test]
    fn try_build_rejects_bad_configs() {
        let p = small();
        assert_eq!(
            SetopsWorld::try_build(SetopsParams { nodes: 0, ..p }).err().expect("config must be rejected"),
            WorldError::NoNodes
        );
        assert_eq!(
            SetopsWorld::try_build(SetopsParams { buckets: 0, ..p }).err().expect("config must be rejected"),
            WorldError::Empty { what: "buckets" }
        );
        assert_eq!(
            SetopsWorld::try_build(SetopsParams { buckets: 3, ..p }).err().expect("config must be rejected"),
            WorldError::TooFewElements { what: "buckets", have: 3, nodes: 4 }
        );
        assert_eq!(
            SetopsWorld::try_build(SetopsParams { universe: 64, ..p }).err().expect("config must be rejected"),
            WorldError::TooFewElements { what: "keys", have: 64, nodes: 4 }
        );
    }

    #[test]
    fn oracle_digest_reflects_inserts_and_deletes() {
        let w = SetopsWorld::build(small());
        // Find an insert of an absent key and a delete of a present key;
        // with 400-permille fill and 96 op slots both exist at this seed.
        let mut any_flip = false;
        for node in 0..4 {
            for op in w.batch(node) {
                match *op {
                    SetOp::Insert(k) if !w.initially_present(k) => any_flip = true,
                    SetOp::Delete(k) if w.initially_present(k) => any_flip = true,
                    _ => {}
                }
            }
        }
        assert!(any_flip, "batch never changes membership — oracle untestable");
        // The final digest differs from the initial digest somewhere.
        let initial_digest: Vec<u64> = (0..4u16)
            .map(|node| {
                let mut d = 0u64;
                for b in w.bucket_range(node) {
                    for k in w.key_range(b) {
                        if w.initially_present(k) {
                            d = d.wrapping_add(key_stamp(k));
                        }
                    }
                }
                d
            })
            .collect();
        let moved = (0..4u16).any(|n| w.expected(n).1 != initial_digest[n as usize]);
        assert!(moved, "applying the batch left every node's digest unchanged");
    }
}
