//! Structured configuration errors for world builders.
//!
//! The builders distribute a workload over a `u16`-indexed machine; every
//! owner index they compute is provably `< nodes` and narrows with a
//! *checked* conversion (`u16::try_from(..).expect("invariant: ..")`).
//! What can genuinely go wrong is the caller's configuration — an empty
//! machine or an empty workload — and those surface as a [`WorldError`]
//! from the `try_build*` constructors instead of a panic deep inside the
//! build.

use std::fmt;

/// A world-builder configuration rejected before construction starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorldError {
    /// The machine must have at least one node.
    NoNodes,
    /// The workload has no elements to distribute.
    Empty {
        /// What was empty (`"bodies"`, `"vertices"`, ...).
        what: &'static str,
    },
    /// Fewer elements than nodes: some node would own nothing, which the
    /// contiguous-chunk partitioners do not support.
    TooFewElements {
        /// What is being distributed.
        what: &'static str,
        /// How many elements there are.
        have: usize,
        /// Machine size requested.
        nodes: u16,
    },
}

impl fmt::Display for WorldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorldError::NoNodes => write!(f, "machine must have at least one node"),
            WorldError::Empty { what } => write!(f, "workload has no {what}"),
            WorldError::TooFewElements { what, have, nodes } => write!(
                f,
                "only {have} {what} for {nodes} nodes: every node must own at least one"
            ),
        }
    }
}

impl std::error::Error for WorldError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            WorldError::NoNodes.to_string(),
            "machine must have at least one node"
        );
        assert_eq!(
            WorldError::Empty { what: "bodies" }.to_string(),
            "workload has no bodies"
        );
        let e = WorldError::TooFewElements {
            what: "vertices",
            have: 3,
            nodes: 8,
        };
        assert!(e.to_string().contains("3 vertices for 8 nodes"));
    }
}
