//! The distributed FMM force-computation phase.
//!
//! The quadtree is partitioned at level `K` (the coarsest level with at
//! least one box per node): level-`K` subtrees are assigned to nodes in
//! Morton order, weighted by particle counts; deeper boxes inherit their
//! subtree's owner. Setup (tree build + upward pass) is untimed, matching
//! the paper's timing of the force-computation phase only.
//!
//! The timed phase runs in two barrier-separated sub-phases, mirroring
//! SPLASH-2 FMM's phase structure:
//!
//! 1. **M2L** ([`FmmM2lApp`]) — for every owned box, convert the multipole
//!    expansions of its interaction list into local-expansion
//!    contributions. Interaction-list multipoles are the remote reads
//!    (~500-byte objects at 29 terms); each node also computes the
//!    (deduplicated) M2L of its subtree roots' few top-level ancestors.
//! 2. **Downward + evaluate + P2P** ([`FmmEvalApp`]) — L2L-chain final
//!    local expansions down each owned subtree (memoized, all local),
//!    evaluate fields at owned particles, and do direct P2P against the
//!    ≤9 neighbor leaves, whose particle lists may be remote.
//!
//! Both sub-phases run under any [`dpa_core::Variant`]; forces agree with
//! the sequential [`nbody::fmm::FmmSolver`] to floating-point tolerance.

use dpa_core::{PtrApp, WorkEnv};
use global_heap::{ClassTable, GPtr, ObjClass};
use nbody::cx::Cx;
use nbody::fmm::{eval_local_field, l2l, m2l, FmmParams, FmmSolver, Local};
use nbody::quadtree::BoxId;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-operation costs of the FMM arithmetic, in ns (T3D-node scale),
/// parameterized by the term count so term sweeps behave sensibly.
#[derive(Clone, Copy, Debug)]
pub struct FmmCost {
    /// ns per (p+1)² unit of an M2L translation.
    pub m2l_unit_ns: u64,
    /// ns per (p+1)² unit of an L2L shift.
    pub l2l_unit_ns: u64,
    /// ns per term per particle of a local-expansion evaluation.
    pub eval_term_ns: u64,
    /// ns per particle-particle pair.
    pub p2p_pair_ns: u64,
    /// Fixed ns per work dispatch (loop setup etc.).
    pub work_fixed_ns: u64,
}

impl Default for FmmCost {
    fn default() -> Self {
        FmmCost {
            m2l_unit_ns: 100,
            l2l_unit_ns: 55,
            eval_term_ns: 120,
            p2p_pair_ns: 400,
            work_fixed_ns: 300,
        }
    }
}

impl FmmCost {
    /// Full M2L cost at `p` terms.
    pub fn m2l_ns(&self, p: usize) -> u64 {
        self.m2l_unit_ns * ((p + 1) * (p + 1)) as u64 + self.work_fixed_ns
    }

    /// Full L2L cost at `p` terms.
    pub fn l2l_ns(&self, p: usize) -> u64 {
        self.l2l_unit_ns * ((p + 1) * (p + 1)) as u64 + self.work_fixed_ns
    }

    /// Local-expansion evaluation cost for one particle at `p` terms.
    pub fn eval_ns(&self, p: usize) -> u64 {
        self.eval_term_ns * p as u64 + self.work_fixed_ns
    }
}

/// Immutable shared world for one FMM force phase.
pub struct FmmWorld {
    /// Sequential solver holding tree, particles, and the (untimed)
    /// upward-pass multipoles. `downward()` is *not* called on it here —
    /// the distributed phase does that work.
    pub solver: FmmSolver,
    /// Owner node per dense box index.
    pub box_owner: Vec<u16>,
    /// Subtree particle count per dense box index.
    pub box_count: Vec<u32>,
    /// Partition level K.
    pub part_level: u32,
    /// Cost model.
    pub cost: FmmCost,
    /// Object classes.
    pub classes: ClassTable,
    /// Multipole-expansion object class.
    pub mpole_class: ObjClass,
    /// Leaf particle-list object class.
    pub plist_class: ObjClass,
    /// Machine size.
    pub nodes: u16,
}

/// Bytes of a multipole object at `p` terms: (p+1) complex + header.
fn mpole_bytes(p: usize) -> u32 {
    16 * (p as u32 + 1) + 16
}

/// Bytes of a leaf particle list with `n` particles.
fn plist_bytes(n: u32) -> u32 {
    24 * n + 16
}

impl FmmWorld {
    /// Build the world: tree, upward pass, space partition.
    pub fn build(
        zs: Vec<Cx>,
        qs: Vec<f64>,
        nodes: u16,
        params: FmmParams,
        cost: FmmCost,
    ) -> Arc<FmmWorld> {
        Self::build_with_grain(zs, qs, nodes, params, cost, 0)
    }

    /// [`FmmWorld::build`] with `grain_extra` additional partition levels:
    /// subtrees are assigned at level `K + grain_extra`, trading a few
    /// more cross-subtree L2L ancestors for finer load-balance grains
    /// (useful on clustered inputs where level-K subtrees are indivisible
    /// hotspots).
    pub fn build_with_grain(
        zs: Vec<Cx>,
        qs: Vec<f64>,
        nodes: u16,
        params: FmmParams,
        cost: FmmCost,
        grain_extra: u32,
    ) -> Arc<FmmWorld> {
        assert!(nodes >= 1);
        let solver = FmmSolver::new(zs, qs, params);
        let levels = params.levels;
        let total = BoxId::total_boxes(levels);

        // Subtree particle counts, bottom-up.
        let mut box_count = vec![0u32; total];
        for b in solver.tree.leaves() {
            box_count[b.dense_index()] = solver.tree.particles_in(b).len() as u32;
        }
        for level in (0..levels).rev() {
            for b in solver.tree.boxes_at(level) {
                box_count[b.dense_index()] = b
                    .children
                    ()
                    .iter()
                    .map(|c| box_count[c.dense_index()])
                    .sum();
            }
        }

        // Partition level: coarsest with >= nodes boxes (at least 2),
        // plus any requested extra grain refinement.
        let mut part_level = 2u32;
        while (1usize << (2 * part_level)) < nodes as usize {
            part_level += 1;
        }
        assert!(
            part_level <= levels,
            "too many nodes ({nodes}) for tree depth {levels}"
        );
        part_level = (part_level + grain_extra).min(levels);

        // Level-K boxes in Morton order, split by cumulative particle count.
        let mut roots: Vec<BoxId> = (0..(1u32 << part_level))
            .flat_map(|y| {
                (0..(1u32 << part_level)).map(move |x| BoxId {
                    level: part_level,
                    x,
                    y,
                })
            })
            .collect();
        roots.sort_by_key(|b| nbody::morton::morton2(
            (b.x as f64 + 0.5) / (1u64 << part_level) as f64,
            (b.y as f64 + 0.5) / (1u64 << part_level) as f64,
        ));
        let total_particles: u64 = (solver.zs.len() as u64).max(1);
        let mut root_owner: HashMap<BoxId, u16> = HashMap::new();
        let mut cum = 0u64;
        for b in &roots {
            // Midpoint rule: a root belongs to the node whose ideal
            // 1/P-of-the-particles segment contains the root's cumulative
            // midpoint. Robust to count jitter (equal-weight roots map
            // exactly one per node when counts allow), monotone in Morton
            // order, and balanced for clustered inputs.
            let c = box_count[b.dense_index()] as u64;
            let mid = 2 * cum + c; // midpoint × 2 to stay in integers
            let owner = ((mid * nodes as u64) / (2 * total_particles)).min(nodes as u64 - 1);
            root_owner.insert(
                *b,
                u16::try_from(owner).expect("invariant: owner < nodes, which is u16"),
            );
            cum += c;
        }

        // Owner per box: level-K ancestor's owner (coarser levels: owner of
        // the first level-K descendant in Morton order = ancestor chain of
        // child 0).
        let mut box_owner = vec![0u16; total];
        #[allow(clippy::needless_range_loop)] // idx decodes to a BoxId
        for idx in 0..total {
            let b = BoxId::from_dense(idx);
            let anchor = if b.level >= part_level {
                b.ancestor_at(part_level)
            } else {
                // Descend to level K via first child.
                let mut d = b;
                while d.level < part_level {
                    d = d.children()[0];
                }
                d
            };
            box_owner[idx] = root_owner[&anchor];
        }

        let mut classes = ClassTable::new();
        let mpole_class = classes.register("fmm_multipole", mpole_bytes(params.terms));
        let plist_class = classes.register("fmm_plist", 16);

        Arc::new(FmmWorld {
            solver,
            box_owner,
            box_count,
            part_level,
            cost,
            classes,
            mpole_class,
            plist_class,
            nodes,
        })
    }

    /// FMM parameters in effect.
    pub fn params(&self) -> FmmParams {
        self.solver.params
    }

    /// `true` if the box's subtree holds any particle.
    #[inline]
    pub fn nonempty(&self, b: BoxId) -> bool {
        self.box_count[b.dense_index()] > 0
    }

    /// Global pointer to a box's multipole expansion.
    #[inline]
    pub fn mpole_ptr(&self, b: BoxId) -> GPtr {
        let idx = b.dense_index();
        GPtr::new(self.box_owner[idx], self.mpole_class, idx as u64)
    }

    /// Global pointer to a leaf's particle list.
    #[inline]
    pub fn plist_ptr(&self, b: BoxId) -> GPtr {
        debug_assert_eq!(b.level, self.solver.params.levels);
        let idx = b.dense_index();
        GPtr::new(self.box_owner[idx], self.plist_class, idx as u64)
    }

    /// Boxes at levels `K..=finest` owned by `node` with particles.
    pub fn owned_boxes(&self, node: u16) -> Vec<BoxId> {
        let mut out = Vec::new();
        for level in self.part_level..=self.solver.params.levels {
            for b in self.solver.tree.boxes_at(level) {
                if self.box_owner[b.dense_index()] == node && self.nonempty(b) {
                    out.push(b);
                }
            }
        }
        out
    }

    /// Owned nonempty leaves of `node`.
    pub fn owned_leaves(&self, node: u16) -> Vec<BoxId> {
        self.solver
            .tree
            .leaves()
            .filter(|b| self.box_owner[b.dense_index()] == node && self.nonempty(*b))
            .collect()
    }

    /// Deduplicated ancestors (levels 2..K) of `node`'s owned subtree
    /// roots — the top-level boxes whose M2L this node computes itself.
    pub fn owned_ancestors(&self, node: u16) -> Vec<BoxId> {
        let mut out = Vec::new();
        for b in self.solver.tree.boxes_at(self.part_level) {
            if self.box_owner[b.dense_index()] == node && self.nonempty(b) {
                for k in 2..self.part_level {
                    let a = b.ancestor_at(k);
                    if !out.contains(&a) {
                        out.push(a);
                    }
                }
            }
        }
        out
    }

    /// Resolve a dense index back to a box id.
    #[inline]
    pub fn box_of(&self, dense: usize) -> BoxId {
        BoxId::from_dense(dense)
    }

    /// The size in bytes of the object `ptr` names.
    pub fn object_size(&self, ptr: GPtr) -> u32 {
        if ptr.class() == self.mpole_class {
            mpole_bytes(self.solver.params.terms)
        } else {
            let b = self.box_of(ptr.index() as usize);
            plist_bytes(self.solver.tree.particles_in(b).len() as u32)
        }
    }
}

/// Mix two interaction ids into one well-spread 64-bit word
/// (splitmix64-style finalizer); summed commutatively into the
/// interaction checksums so they are independent of execution order.
#[inline]
fn mix_pair(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A phase-1 non-blocking thread: apply the multipole of `src` to the
/// local expansion of `target` (both dense indices).
#[derive(Clone, Copy, Debug)]
pub struct M2lWork {
    /// Target box (owned by the executing node).
    pub target: u32,
    /// Source box whose multipole is read (possibly remote).
    pub src: u32,
}

/// Phase 1: M2L over interaction lists.
pub struct FmmM2lApp {
    world: Arc<FmmWorld>,
    #[allow(dead_code)]
    me: u16,
    targets: Vec<BoxId>,
    /// Accumulated local-expansion contributions per owned box.
    pub locals: HashMap<u32, Local>,
    /// M2L translations performed.
    pub m2l_count: u64,
    /// Integer checksum of the M2L translations performed: the
    /// commutative `wrapping_add` of a hash per (target, src) pair, so it
    /// is bit-identical regardless of execution order, strip size, object
    /// placement, or migration — the determinism oracle for this phase.
    pub interaction_hash: u64,
}

impl FmmM2lApp {
    /// The phase-1 app for node `me`.
    pub fn new(world: Arc<FmmWorld>, me: u16) -> FmmM2lApp {
        let mut targets = world.owned_boxes(me);
        targets.extend(world.owned_ancestors(me));
        FmmM2lApp {
            world,
            me,
            targets,
            locals: HashMap::new(),
            m2l_count: 0,
            interaction_hash: 0,
        }
    }

    /// Number of target boxes (owned + ancestor).
    pub fn num_targets(&self) -> usize {
        self.targets.len()
    }
}

impl PtrApp for FmmM2lApp {
    type Work = M2lWork;

    fn num_iterations(&self) -> usize {
        self.targets.len()
    }

    fn start_iteration(&mut self, iter: usize, env: &mut WorkEnv<'_, M2lWork>) {
        let t = self.targets[iter];
        let tdense = t.dense_index() as u32;
        for s in t.interaction_list() {
            if self.world.nonempty(s) {
                env.demand(
                    self.world.mpole_ptr(s),
                    M2lWork {
                        target: tdense,
                        src: s.dense_index() as u32,
                    },
                );
            }
        }
    }

    fn run_work(&mut self, w: M2lWork, env: &mut WorkEnv<'_, M2lWork>) {
        let world = self.world.clone();
        let src = world.box_of(w.src as usize);
        let tgt = world.box_of(w.target as usize);
        env.assert_readable(world.mpole_ptr(src));
        let p = world.solver.params.terms;
        let contrib = m2l(
            &world.solver.multipoles[w.src as usize],
            src.center() - tgt.center(),
            solver_bin(&world),
        );
        self.locals
            .entry(w.target)
            .or_insert_with(|| Local::zero(p))
            .add_assign(&contrib);
        self.m2l_count += 1;
        self.interaction_hash = self
            .interaction_hash
            .wrapping_add(mix_pair(w.target as u64, w.src as u64));
        env.charge(world.cost.m2l_ns(p));
    }

    fn object_size(&self, ptr: GPtr) -> u32 {
        self.world.object_size(ptr)
    }
}

fn solver_bin(world: &FmmWorld) -> &nbody::cx::Binomials {
    world.solver.binomials()
}

/// A phase-2 non-blocking thread.
#[derive(Clone, Copy, Debug)]
pub enum EvalWork {
    /// Finalize the local expansion of a leaf (dense index) and evaluate
    /// the far field at its particles; emits the P2P demands.
    Eval(u32),
    /// Direct interactions of leaf `target`'s particles against the
    /// particle list of `src` (≤9 neighbor leaves incl. self).
    P2p {
        /// Target leaf (owned by the executing node).
        target: u32,
        /// Source leaf whose particle list is read (possibly remote).
        src: u32,
    },
}

/// Phase 2: downward L2L chain, far-field evaluation, and near-field P2P.
pub struct FmmEvalApp {
    world: Arc<FmmWorld>,
    #[allow(dead_code)]
    me: u16,
    leaves: Vec<BoxId>,
    /// Phase-1 M2L accumulations (moved in at the barrier).
    m2l_partial: HashMap<u32, Local>,
    /// Memoized final local expansions.
    finals: HashMap<u32, Local>,
    /// Computed complex fields, indexed by global particle id (only owned
    /// particles are filled).
    pub fields: Vec<Cx>,
    /// L2L shifts performed.
    pub l2l_count: u64,
    /// P2P pair interactions performed.
    pub p2p_pairs: u64,
    /// Integer checksum of the evaluations and P2P leaf pairs performed
    /// (commutative; evaluation entries carry a tag bit to keep the two
    /// kinds distinct). Bit-identical regardless of execution order,
    /// strip size, placement, or migration.
    pub interaction_hash: u64,
}

impl FmmEvalApp {
    /// The phase-2 app for node `me`; `m2l_partial` comes from the node's
    /// phase-1 app.
    pub fn new(world: Arc<FmmWorld>, me: u16, m2l_partial: HashMap<u32, Local>) -> FmmEvalApp {
        let leaves = world.owned_leaves(me);
        let n = world.solver.zs.len();
        FmmEvalApp {
            world,
            me,
            leaves,
            m2l_partial,
            finals: HashMap::new(),
            fields: vec![Cx::ZERO; n],
            l2l_count: 0,
            p2p_pairs: 0,
            interaction_hash: 0,
        }
    }

    /// Compute (memoized) the final local expansion of `b`, charging each
    /// fresh L2L. Level-2 boxes take their M2L partial as-is (levels 0/1
    /// have empty interaction lists).
    fn finalize(&mut self, b: BoxId, env: &mut WorkEnv<'_, EvalWork>) -> Local {
        let key = b.dense_index() as u32;
        if let Some(l) = self.finals.get(&key) {
            return l.clone();
        }
        let p = self.world.solver.params.terms;
        let own = self
            .m2l_partial
            .get(&key)
            .cloned()
            .unwrap_or_else(|| Local::zero(p));
        let result = if b.level <= 2 {
            own
        } else {
            let parent = b.parent().expect("level > 2 has a parent");
            let from_parent = self.finalize(parent, env);
            let mut shifted = l2l(
                &from_parent,
                b.center() - parent.center(),
                solver_bin(&self.world),
            );
            self.l2l_count += 1;
            env.charge(self.world.cost.l2l_ns(p));
            shifted.add_assign(&own);
            shifted
        };
        self.finals.insert(key, result.clone());
        result
    }
}

impl PtrApp for FmmEvalApp {
    type Work = EvalWork;

    fn num_iterations(&self) -> usize {
        self.leaves.len()
    }

    fn start_iteration(&mut self, iter: usize, env: &mut WorkEnv<'_, EvalWork>) {
        let leaf = self.leaves[iter];
        env.local(EvalWork::Eval(leaf.dense_index() as u32));
    }

    fn run_work(&mut self, w: EvalWork, env: &mut WorkEnv<'_, EvalWork>) {
        let world = self.world.clone();
        let p = world.solver.params.terms;
        match w {
            EvalWork::Eval(dense) => {
                let leaf = world.box_of(dense as usize);
                // Tag bit distinguishes evaluation entries from P2P pairs.
                self.interaction_hash = self
                    .interaction_hash
                    .wrapping_add(mix_pair(dense as u64 | (1 << 32), dense as u64));
                let local = self.finalize(leaf, env);
                let center = leaf.center();
                for &i in world.solver.tree.particles_in(leaf) {
                    let z = world.solver.zs[i as usize];
                    self.fields[i as usize] += eval_local_field(&local, z, center);
                    env.charge(world.cost.eval_ns(p));
                }
                // Near field: self plus neighbors.
                let mut near = vec![leaf];
                near.extend(leaf.neighbors());
                for nb in near {
                    if world.nonempty(nb) {
                        env.demand(
                            world.plist_ptr(nb),
                            EvalWork::P2p {
                                target: dense,
                                src: nb.dense_index() as u32,
                            },
                        );
                    }
                }
            }
            EvalWork::P2p { target, src } => {
                let tgt = world.box_of(target as usize);
                let sb = world.box_of(src as usize);
                env.assert_readable(world.plist_ptr(sb));
                self.interaction_hash = self
                    .interaction_hash
                    .wrapping_add(mix_pair(target as u64, src as u64));
                let sources: Vec<(Cx, f64)> = world
                    .solver
                    .tree
                    .particles_in(sb)
                    .iter()
                    .map(|&i| (world.solver.zs[i as usize], world.solver.qs[i as usize]))
                    .collect();
                for &i in world.solver.tree.particles_in(tgt) {
                    let z = world.solver.zs[i as usize];
                    self.fields[i as usize] += nbody::fmm::p2p_field(z, &sources);
                    self.p2p_pairs += sources.len() as u64;
                    env.charge(world.cost.p2p_pair_ns * sources.len() as u64);
                }
            }
        }
    }

    fn object_size(&self, ptr: GPtr) -> u32 {
        self.world.object_size(ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::distrib::uniform_square;

    fn small_world(nodes: u16) -> Arc<FmmWorld> {
        let bodies = uniform_square(600, 77);
        let zs: Vec<Cx> = bodies.iter().map(|b| Cx::new(b.pos.x, b.pos.y)).collect();
        let qs: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
        FmmWorld::build(
            zs,
            qs,
            nodes,
            FmmParams {
                terms: 12,
                levels: 3,
            },
            FmmCost::default(),
        )
    }

    #[test]
    fn every_box_has_a_valid_owner() {
        let w = small_world(4);
        assert!(w.box_owner.iter().all(|&o| o < 4));
    }

    #[test]
    fn deep_boxes_inherit_subtree_owner() {
        let w = small_world(4);
        for b in w.solver.tree.leaves() {
            let anchor = b.ancestor_at(w.part_level);
            assert_eq!(
                w.box_owner[b.dense_index()],
                w.box_owner[anchor.dense_index()]
            );
        }
    }

    #[test]
    fn owned_boxes_cover_all_nonempty() {
        let w = small_world(4);
        let mut count = 0;
        for node in 0..4 {
            count += w.owned_boxes(node).len();
        }
        let expect = (w.part_level..=w.solver.params.levels)
            .flat_map(|l| w.solver.tree.boxes_at(l))
            .filter(|b| w.nonempty(*b))
            .count();
        assert_eq!(count, expect);
    }

    #[test]
    fn partition_balances_particles() {
        let w = small_world(4);
        let mut per_node = vec![0u64; 4];
        for b in w.solver.tree.leaves() {
            per_node[w.box_owner[b.dense_index()] as usize] +=
                w.solver.tree.particles_in(b).len() as u64;
        }
        let max = *per_node.iter().max().unwrap();
        let min = *per_node.iter().min().unwrap();
        assert!(
            max <= 4 * min.max(1),
            "partition too imbalanced: {per_node:?}"
        );
    }

    #[test]
    fn box_counts_sum_up() {
        let w = small_world(2);
        let root = BoxId {
            level: 0,
            x: 0,
            y: 0,
        };
        assert_eq!(w.box_count[root.dense_index()] as usize, w.solver.zs.len());
    }

    #[test]
    fn object_sizes_are_plausible() {
        let w = small_world(2);
        let leaf = w.owned_leaves(0)[0];
        let ms = w.object_size(w.mpole_ptr(leaf));
        assert_eq!(ms, 16 * 13 + 16);
        let ps = w.object_size(w.plist_ptr(leaf));
        assert!(ps >= 16);
    }

    #[test]
    fn cost_model_scales_with_terms() {
        let c = FmmCost::default();
        assert!(c.m2l_ns(29) > c.m2l_ns(8));
        assert!(c.l2l_ns(29) < c.m2l_ns(29));
        assert!(c.eval_ns(29) > c.eval_ns(4));
    }
}
