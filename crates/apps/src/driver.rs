//! Application-level experiment drivers: run a whole force phase for a
//! configuration and return forces plus timing.

use crate::afmm_dist::{AfmmEvalApp, AfmmGatherApp, AfmmWorld};
use crate::bh_dist::{BhApp, BhWorld};
use crate::fmm_dist::{FmmEvalApp, FmmM2lApp, FmmWorld};
use dpa_core::{run_phase, DpaConfig};
use nbody::cx::Cx;
use nbody::fmm::Local;
use nbody::vec3::Vec3;
use sim_net::{NetConfig, RunStats, Time};
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of a distributed Barnes-Hut force phase.
#[derive(Clone, Debug)]
pub struct BhRun {
    /// Acceleration per body (global, Morton-sorted order).
    pub accel: Vec<Vec3>,
    /// Phase execution time in ns (the paper's reported quantity).
    pub makespan_ns: u64,
    /// Per-node breakdown and counters.
    pub stats: RunStats,
    /// Total body–cell interactions.
    pub cell_interactions: u64,
    /// Total body–body interactions.
    pub body_interactions: u64,
    /// Order-independent checksum of the interactions performed (the
    /// `wrapping_add` of every node's [`BhApp::interaction_hash`]) —
    /// bit-identical across strip sizes, schedules, and migration.
    pub interaction_hash: u64,
}

/// Run the Barnes-Hut force phase under `cfg`.
pub fn run_bh(world: &Arc<BhWorld>, cfg: DpaConfig, net: NetConfig) -> BhRun {
    let mut accel = vec![Vec3::ZERO; world.bodies.len()];
    let mut cell_interactions = 0;
    let mut body_interactions = 0;
    let mut interaction_hash = 0u64;
    let report = run_phase(
        world.nodes,
        net,
        cfg,
        |i| BhApp::new(world.clone(), i),
        |i, app: &BhApp| {
            let base = world.splits[i as usize];
            for (off, a) in app.accel.iter().enumerate() {
                accel[base + off] = *a;
            }
            cell_interactions += app.cell_interactions;
            body_interactions += app.body_interactions;
            interaction_hash = interaction_hash.wrapping_add(app.interaction_hash);
        },
    );
    BhRun {
        accel,
        makespan_ns: report.makespan().as_ns(),
        stats: report.stats,
        cell_interactions,
        body_interactions,
        interaction_hash,
    }
}

/// Outcome of a distributed FMM force phase (both sub-phases).
#[derive(Clone, Debug)]
pub struct FmmRun {
    /// Complex field per particle (conjugate ∝ force vector).
    pub fields: Vec<Cx>,
    /// Total phase time: M2L sub-phase + eval sub-phase (barrier between).
    pub makespan_ns: u64,
    /// M2L sub-phase stats.
    pub m2l_stats: RunStats,
    /// Eval sub-phase stats.
    pub eval_stats: RunStats,
    /// Total M2L translations.
    pub m2l_count: u64,
    /// Total P2P pairs.
    pub p2p_pairs: u64,
    /// Order-independent checksum of both sub-phases' interactions (the
    /// `wrapping_add` of every node's M2L and eval hashes) — bit-identical
    /// across strip sizes, schedules, and migration.
    pub interaction_hash: u64,
}

/// Run the FMM force phase (M2L, barrier, downward+eval+P2P) under `cfg`.
pub fn run_fmm(world: &Arc<FmmWorld>, cfg: DpaConfig, net: NetConfig) -> FmmRun {
    // Sub-phase 1: M2L over interaction lists.
    let mut partials: Vec<HashMap<u32, Local>> =
        (0..world.nodes).map(|_| HashMap::new()).collect();
    let mut m2l_count = 0;
    let mut interaction_hash = 0u64;
    let r1 = run_phase(
        world.nodes,
        net.clone(),
        cfg.clone(),
        |i| FmmM2lApp::new(world.clone(), i),
        |i, app: &FmmM2lApp| {
            partials[i as usize] = app.locals.clone();
            m2l_count += app.m2l_count;
            interaction_hash = interaction_hash.wrapping_add(app.interaction_hash);
        },
    );

    // Sub-phase 2: downward chain + evaluation + near field.
    let n = world.solver.zs.len();
    let mut fields = vec![Cx::ZERO; n];
    let mut p2p_pairs = 0;
    let mut partials_iter = partials.into_iter();
    let r2 = run_phase(
        world.nodes,
        net,
        cfg,
        |i| {
            let part = partials_iter.next().expect("one partial map per node");
            debug_assert_eq!(usize::from(i), {
                // keep the zip honest in debug builds
                i as usize
            });
            FmmEvalApp::new(world.clone(), i, part)
        },
        |_, app: &FmmEvalApp| {
            for (i, f) in app.fields.iter().enumerate() {
                if f.norm2() != 0.0 {
                    fields[i] += *f;
                }
            }
            p2p_pairs += app.p2p_pairs;
            interaction_hash = interaction_hash.wrapping_add(app.interaction_hash);
        },
    );

    FmmRun {
        fields,
        makespan_ns: r1.makespan().as_ns() + r2.makespan().as_ns(),
        m2l_stats: r1.stats,
        eval_stats: r2.stats,
        m2l_count,
        p2p_pairs,
        interaction_hash,
    }
}

/// Outcome of a distributed *adaptive* FMM force phase.
#[derive(Clone, Debug)]
pub struct AfmmRun {
    /// Complex field per particle.
    pub fields: Vec<Cx>,
    /// Total phase time (gather + evaluate, barrier between).
    pub makespan_ns: u64,
    /// Gather sub-phase stats.
    pub gather_stats: RunStats,
    /// Evaluate sub-phase stats.
    pub eval_stats: RunStats,
    /// Total M2L translations.
    pub m2l_count: u64,
    /// Total P2P pairs.
    pub p2p_pairs: u64,
}

/// Run the adaptive-FMM force phase (gather, barrier, evaluate) under
/// `cfg`.
pub fn run_afmm(world: &Arc<AfmmWorld>, cfg: DpaConfig, net: NetConfig) -> AfmmRun {
    let mut partials: Vec<HashMap<u32, Local>> =
        (0..world.nodes).map(|_| HashMap::new()).collect();
    let mut m2l_count = 0;
    let r1 = run_phase(
        world.nodes,
        net.clone(),
        cfg.clone(),
        |i| AfmmGatherApp::new(world.clone(), i),
        |i, app: &AfmmGatherApp| {
            partials[i as usize] = app.locals.clone();
            m2l_count += app.m2l_count;
        },
    );

    let n = world.solver.zs.len();
    let mut fields = vec![Cx::ZERO; n];
    let mut p2p_pairs = 0;
    let mut partials_iter = partials.into_iter();
    let r2 = run_phase(
        world.nodes,
        net,
        cfg,
        |i| {
            let part = partials_iter.next().expect("one partial map per node");
            AfmmEvalApp::new(world.clone(), i, part)
        },
        |_, app: &AfmmEvalApp| {
            for (i, f) in app.fields.iter().enumerate() {
                if f.norm2() != 0.0 {
                    fields[i] += *f;
                }
            }
            p2p_pairs += app.p2p_pairs;
        },
    );

    AfmmRun {
        fields,
        makespan_ns: r1.makespan().as_ns() + r2.makespan().as_ns(),
        gather_stats: r1.stats,
        eval_stats: r2.stats,
        m2l_count,
        p2p_pairs,
    }
}

/// Merge two [`RunStats`] (e.g. the FMM sub-phases) by summing per-node
/// buckets, counters, and makespans.
pub fn merge_stats(a: &RunStats, b: &RunStats) -> RunStats {
    assert_eq!(a.nodes.len(), b.nodes.len());
    let mut out = a.clone();
    out.makespan = Time(a.makespan.as_ns() + b.makespan.as_ns());
    out.dropped_packets += b.dropped_packets;
    for (x, y) in out.nodes.iter_mut().zip(&b.nodes) {
        x.local += y.local;
        x.overhead += y.overhead;
        x.idle += y.idle;
        x.msgs_sent += y.msgs_sent;
        x.bytes_sent += y.bytes_sent;
        x.msgs_recv += y.msgs_recv;
        x.bytes_recv += y.bytes_recv;
        for (k, v) in &y.user {
            *x.user.entry(k).or_insert(0) += v;
        }
    }
    out
}
