//! Push-style graph relaxation — the reduction extension in action.
//!
//! The paper optimizes remote *reads* and names reductions as the natural
//! next access pattern ("more precise aliasing information can enable
//! optimizations of more general access patterns, such as reductions").
//! This application exercises that extension: one sweep of a weighted
//! digraph in which every vertex pushes `x[u]·w[v]` along each out-edge
//! `(u,v)` — a PageRank/Jacobi-shaped kernel over a pointer-based graph.
//!
//! Each edge does one remote **read** (the target's record, to get its
//! weight) and one remote **reduction** (fold the contribution into the
//! target's accumulator). Under DPA both directions batch: requests
//! aggregate per owner, and so do updates; the baselines send one message
//! per miss and per update.

use crate::error::WorldError;
use dpa_core::{PtrApp, WorkEnv};
use global_heap::{ClassTable, GPtr, ObjClass};
use sim_net::Rng;
use std::sync::Arc;

/// Per-operation costs of the relaxation arithmetic, ns.
#[derive(Clone, Copy, Debug)]
pub struct RelaxCost {
    /// Per-edge multiply-accumulate + bookkeeping.
    pub edge_ns: u64,
    /// Per-vertex loop setup.
    pub vertex_ns: u64,
}

impl Default for RelaxCost {
    fn default() -> Self {
        RelaxCost {
            edge_ns: 900,
            vertex_ns: 400,
        }
    }
}

/// One vertex record: value, weight, and out-edges.
#[derive(Clone, Debug)]
pub struct Vertex {
    /// Current value (read-only during a sweep).
    pub x: f64,
    /// Weight applied to incoming contributions (read remotely per edge).
    pub w: f64,
    /// Out-neighbors (global vertex ids).
    pub out: Vec<u32>,
}

/// The shared, immutable graph world.
pub struct RelaxWorld {
    /// All vertices (global ids index this).
    pub vertices: Vec<Vertex>,
    /// `splits[i]..splits[i+1]` = node `i`'s vertices.
    pub splits: Vec<usize>,
    /// Cost model.
    pub cost: RelaxCost,
    /// Object classes (one: VERTEX).
    pub classes: ClassTable,
    /// The vertex object class.
    pub vclass: ObjClass,
    /// Machine size.
    pub nodes: u16,
}

impl RelaxWorld {
    /// Build a random graph: `n` vertices in `nodes` contiguous chunks,
    /// `degree` out-edges each, a `remote_fraction` of which point at
    /// vertices of other nodes. Deterministic in `seed`.
    pub fn build(
        n: usize,
        nodes: u16,
        degree: usize,
        remote_fraction: f64,
        seed: u64,
    ) -> Arc<RelaxWorld> {
        Self::try_build(n, nodes, degree, remote_fraction, seed)
            .expect("invalid RelaxWorld configuration")
    }

    /// Fallible [`RelaxWorld::build`]: rejects an empty machine or a graph
    /// smaller than the machine with a structured [`WorldError`].
    pub fn try_build(
        n: usize,
        nodes: u16,
        degree: usize,
        remote_fraction: f64,
        seed: u64,
    ) -> Result<Arc<RelaxWorld>, WorldError> {
        if nodes == 0 {
            return Err(WorldError::NoNodes);
        }
        if n == 0 {
            return Err(WorldError::Empty { what: "vertices" });
        }
        if n < nodes as usize {
            return Err(WorldError::TooFewElements {
                what: "vertices",
                have: n,
                nodes,
            });
        }
        let splits = nbody::morton::even_splits(n, nodes as usize);
        let owner_of = |v: usize| -> usize {
            splits.partition_point(|&s| s <= v) - 1
        };
        let mut rng = Rng::new(seed);
        let mut vertices = Vec::with_capacity(n);
        for u in 0..n {
            let home = owner_of(u);
            let mut out = Vec::with_capacity(degree);
            for _ in 0..degree {
                let v = if nodes > 1 && rng.chance(remote_fraction) {
                    // Any vertex on another node.
                    loop {
                        let v = rng.below(n as u64) as usize;
                        if owner_of(v) != home {
                            break v;
                        }
                    }
                } else {
                    // A vertex on the same node.
                    let lo = splits[home];
                    let hi = splits[home + 1];
                    lo + rng.below((hi - lo) as u64) as usize
                };
                out.push(v as u32);
            }
            vertices.push(Vertex {
                x: 0.5 + rng.unit_f64(),
                w: 0.1 + rng.unit_f64(),
                out,
            });
        }
        let mut classes = ClassTable::new();
        let vclass = classes.register("relax_vertex", 32);
        Ok(Arc::new(RelaxWorld {
            vertices,
            splits,
            cost: RelaxCost::default(),
            classes,
            vclass,
            nodes,
        }))
    }

    /// Global pointer to vertex `v` (owned by its home node).
    #[inline]
    pub fn vptr(&self, v: u32) -> GPtr {
        let owner = u16::try_from(self.splits.partition_point(|&s| s <= v as usize) - 1)
            .expect("invariant: vertex owner < nodes, which is u16");
        GPtr::new(owner, self.vclass, v as u64)
    }

    /// Vertices owned by `node`.
    pub fn range(&self, node: u16) -> std::ops::Range<usize> {
        self.splits[node as usize]..self.splits[node as usize + 1]
    }

    /// Total edges.
    pub fn total_edges(&self) -> u64 {
        self.vertices.iter().map(|v| v.out.len() as u64).sum()
    }

    /// Host-side oracle: the accumulator every vertex must hold after one
    /// sweep: `next[v] = Σ_{(u,v)} x[u] · w[v]`.
    pub fn expected(&self) -> Vec<f64> {
        let mut next = vec![0.0; self.vertices.len()];
        for u in &self.vertices {
            for &v in &u.out {
                next[v as usize] += u.x * self.vertices[v as usize].w;
            }
        }
        next
    }
}

/// A relaxation work item: push along one edge.
#[derive(Clone, Copy, Debug)]
pub struct Push {
    /// Source vertex.
    pub u: u32,
    /// Target vertex (the labeled pointer).
    pub v: u32,
}

/// Per-node relaxation state.
pub struct RelaxApp {
    world: Arc<RelaxWorld>,
    me: u16,
    /// Accumulators (only this node's entries are filled).
    pub next: Vec<f64>,
    /// Edges pushed.
    pub pushes: u64,
}

impl RelaxApp {
    /// The app instance for node `me`.
    pub fn new(world: Arc<RelaxWorld>, me: u16) -> RelaxApp {
        let n = world.vertices.len();
        RelaxApp {
            world,
            me,
            next: vec![0.0; n],
            pushes: 0,
        }
    }
}

impl PtrApp for RelaxApp {
    type Work = Push;

    fn num_iterations(&self) -> usize {
        self.world.range(self.me).len()
    }

    fn start_iteration(&mut self, iter: usize, env: &mut WorkEnv<'_, Push>) {
        let u = (self.world.splits[self.me as usize] + iter) as u32;
        env.charge(self.world.cost.vertex_ns);
        let world = self.world.clone();
        for &v in &world.vertices[u as usize].out {
            // Read the target's record (its weight), then push into it.
            env.demand(world.vptr(v), Push { u, v });
        }
    }

    fn run_work(&mut self, w: Push, env: &mut WorkEnv<'_, Push>) {
        let world = self.world.clone();
        let ptr = world.vptr(w.v);
        env.assert_readable(ptr);
        let contribution =
            world.vertices[w.u as usize].x * world.vertices[w.v as usize].w;
        env.charge(world.cost.edge_ns);
        self.pushes += 1;
        env.accumulate(ptr, contribution);
    }

    fn object_size(&self, ptr: GPtr) -> u32 {
        self.world.classes.size(ptr.class())
    }

    fn apply_update(&mut self, ptr: GPtr, value: f64) {
        debug_assert_eq!(ptr.class(), self.world.vclass);
        self.next[ptr.index() as usize] += value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_is_deterministic_and_partitioned() {
        let a = RelaxWorld::build(200, 4, 6, 0.4, 7);
        let b = RelaxWorld::build(200, 4, 6, 0.4, 7);
        assert_eq!(a.expected(), b.expected());
        let covered: usize = (0..4).map(|n| a.range(n).len()).sum();
        assert_eq!(covered, 200);
        assert_eq!(a.total_edges(), 200 * 6);
    }

    #[test]
    fn vptr_owner_matches_split() {
        let w = RelaxWorld::build(100, 4, 3, 0.5, 1);
        for v in 0..100u32 {
            let p = w.vptr(v);
            assert!(w.range(p.node()).contains(&(v as usize)));
        }
    }

    #[test]
    fn try_build_rejects_bad_configs() {
        assert_eq!(
            RelaxWorld::try_build(100, 0, 3, 0.5, 1).err().expect("config must be rejected"),
            WorldError::NoNodes
        );
        assert_eq!(
            RelaxWorld::try_build(0, 4, 3, 0.5, 1).err().expect("config must be rejected"),
            WorldError::Empty { what: "vertices" }
        );
        assert_eq!(
            RelaxWorld::try_build(3, 4, 3, 0.5, 1).err().expect("config must be rejected"),
            WorldError::TooFewElements {
                what: "vertices",
                have: 3,
                nodes: 4
            }
        );
    }

    #[test]
    fn zero_remote_fraction_keeps_edges_home() {
        let w = RelaxWorld::build(120, 3, 5, 0.0, 2);
        for node in 0..3 {
            for u in w.range(node) {
                for &v in &w.vertices[u].out {
                    assert_eq!(w.vptr(v).node(), node);
                }
            }
        }
    }
}
