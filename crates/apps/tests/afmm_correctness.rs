//! Distributed adaptive-FMM correctness: every variant must match the
//! sequential adaptive solver, which itself matches direct summation.

use apps::afmm_dist::AfmmWorld;
use apps::driver::run_afmm;
use apps::fmm_dist::FmmCost;
use dpa_core::DpaConfig;
use nbody::afmm::{AfmmParams, AfmmSolver};
use nbody::cx::Cx;
use nbody::distrib::clustered_square;
use sim_net::NetConfig;
use std::sync::Arc;

fn world(nodes: u16, n: usize) -> Arc<AfmmWorld> {
    let bodies = clustered_square(n, 5, 0xADA);
    let zs: Vec<Cx> = bodies.iter().map(|b| Cx::new(b.pos.x, b.pos.y)).collect();
    let qs: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
    AfmmWorld::build(
        zs,
        qs,
        nodes,
        AfmmParams {
            terms: 12,
            leaf_cap: 12,
            max_level: 10,
        },
        FmmCost::default(),
    )
}

fn max_rel_err(a: &[Cx], b: &[Cx]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs() / y.abs().max(1e-12))
        .fold(0.0, f64::max)
}

#[test]
fn distributed_matches_sequential_adaptive() {
    let w = world(4, 800);
    let run = run_afmm(&w, DpaConfig::dpa(50), NetConfig::default());
    // Oracle: the same adaptive solver run to completion sequentially.
    let mut oracle = AfmmSolver::new(w.solver.zs.clone(), w.solver.qs.clone(), w.solver.params);
    oracle.downward();
    let exact = oracle.evaluate();
    let err = max_rel_err(&run.fields, &exact);
    assert!(err < 1e-9, "worst rel err vs sequential adaptive: {err}");
}

#[test]
fn distributed_matches_direct_summation() {
    let w = world(2, 600);
    let run = run_afmm(&w, DpaConfig::dpa(50), NetConfig::default());
    let exact = w.solver.direct();
    let err = max_rel_err(&run.fields, &exact);
    assert!(err < 1e-5, "worst rel err vs direct: {err}");
}

#[test]
fn all_variants_agree() {
    let w = world(4, 700);
    let reference = run_afmm(&w, DpaConfig::dpa(50), NetConfig::default());
    for cfg in [
        DpaConfig::dpa_base(50),
        DpaConfig::caching(),
        DpaConfig::blocking(),
    ] {
        let label = cfg.describe();
        let run = run_afmm(&w, cfg, NetConfig::default());
        assert_eq!(run.m2l_count, reference.m2l_count, "{label}");
        assert_eq!(run.p2p_pairs, reference.p2p_pairs, "{label}");
        let err = max_rel_err(&run.fields, &reference.fields);
        assert!(err < 1e-9, "{label}: worst rel err {err}");
    }
}

#[test]
fn adaptive_beats_uniform_on_clusters_in_simulated_time() {
    // The same clustered input under the distributed uniform FMM (with
    // its count-chosen level) vs the adaptive one: the adaptive method
    // must be substantially faster end to end.
    let n = 2_000;
    let bodies = clustered_square(n, 4, 0xBEE);
    let zs: Vec<Cx> = bodies.iter().map(|b| Cx::new(b.pos.x, b.pos.y)).collect();
    let qs: Vec<f64> = bodies.iter().map(|b| b.mass).collect();

    let aw = AfmmWorld::build(
        zs.clone(),
        qs.clone(),
        8,
        AfmmParams {
            terms: 12,
            leaf_cap: 16,
            max_level: 12,
        },
        FmmCost::default(),
    );
    let t_adaptive = run_afmm(&aw, DpaConfig::dpa(50), NetConfig::default()).makespan_ns;

    let levels = nbody::quadtree::QuadTree::level_for(n, 16);
    let uw = apps::fmm_dist::FmmWorld::build(
        zs,
        qs,
        8,
        nbody::fmm::FmmParams { terms: 12, levels },
        FmmCost::default(),
    );
    let t_uniform = apps::driver::run_fmm(&uw, DpaConfig::dpa(50), NetConfig::default()).makespan_ns;

    assert!(
        t_adaptive * 2 < t_uniform,
        "adaptive ({t_adaptive} ns) should be >2x faster than uniform \
         ({t_uniform} ns) on clustered input"
    );
}

#[test]
fn deterministic() {
    let w = world(4, 500);
    let a = run_afmm(&w, DpaConfig::dpa(50), NetConfig::default());
    let b = run_afmm(&w, DpaConfig::dpa(50), NetConfig::default());
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.fields, b.fields);
}
