//! Cross-variant force correctness: every execution scheme must produce
//! the same physics as the sequential oracles in `nbody`, differing only
//! by floating-point reassociation.

use apps::bh_dist::{BhCost, BhWorld};
use apps::driver::{run_bh, run_fmm};
use apps::fmm_dist::{FmmCost, FmmWorld};
use dpa_core::DpaConfig;
use nbody::bh::{all_accels, BhParams};
use nbody::cx::Cx;
use nbody::distrib::{plummer, uniform_square};
use nbody::fmm::{FmmParams, FmmSolver};
use sim_net::NetConfig;
use std::sync::Arc;

const N_BH: usize = 1200;
const N_FMM: usize = 900;

fn bh_world(nodes: u16) -> Arc<BhWorld> {
    BhWorld::build(
        plummer(N_BH, 99),
        nodes,
        8,
        BhParams::default(),
        BhCost::default(),
    )
}

fn fmm_world(nodes: u16) -> Arc<FmmWorld> {
    let bodies = uniform_square(N_FMM, 55);
    let zs: Vec<Cx> = bodies.iter().map(|b| Cx::new(b.pos.x, b.pos.y)).collect();
    let qs: Vec<f64> = bodies.iter().map(|b| b.mass).collect();
    FmmWorld::build(
        zs,
        qs,
        nodes,
        FmmParams {
            terms: 14,
            levels: 3,
        },
        FmmCost::default(),
    )
}

#[test]
fn bh_distributed_matches_sequential_walk() {
    let world = bh_world(4);
    let run = run_bh(&world, DpaConfig::dpa(50), NetConfig::default());
    let seq = all_accels(&world.tree, &world.bodies, world.params);
    let mut worst = 0.0f64;
    for (i, w) in seq.iter().enumerate() {
        let err = (run.accel[i] - w.acc).norm() / w.acc.norm().max(1e-12);
        worst = worst.max(err);
    }
    assert!(worst < 1e-9, "worst rel err {worst}");
    let seq_cells: u64 = seq.iter().map(|w| w.cell_interactions).sum();
    let seq_bodies: u64 = seq.iter().map(|w| w.body_interactions).sum();
    assert_eq!(run.cell_interactions, seq_cells);
    assert_eq!(run.body_interactions, seq_bodies);
}

#[test]
fn bh_all_variants_agree() {
    let world = bh_world(4);
    let reference = run_bh(&world, DpaConfig::dpa(50), NetConfig::default());
    for cfg in [
        DpaConfig::dpa_base(50),
        DpaConfig::dpa_pipeline(50),
        DpaConfig::caching(),
        DpaConfig::blocking(),
    ] {
        let label = cfg.describe();
        eprintln!("running variant {label}");
        let run = run_bh(&world, cfg, NetConfig::default());
        assert_eq!(
            run.cell_interactions, reference.cell_interactions,
            "{label}: interaction counts must match exactly"
        );
        let mut worst = 0.0f64;
        for (a, b) in run.accel.iter().zip(&reference.accel) {
            worst = worst.max((*a - *b).norm() / b.norm().max(1e-12));
        }
        assert!(worst < 1e-9, "{label}: worst rel err {worst}");
    }
}

#[test]
fn bh_sequential_variant_on_one_node() {
    let world = bh_world(1);
    let run = run_bh(&world, DpaConfig::sequential(), NetConfig::default());
    // With zero runtime cost, makespan is exactly the charged local work.
    assert_eq!(run.stats.nodes[0].overhead.as_ns(), 0);
    assert!(run.makespan_ns > 0);
    assert_eq!(run.stats.total_msgs(), 0);
    let seq = all_accels(&world.tree, &world.bodies, world.params);
    for (i, w) in seq.iter().enumerate() {
        let err = (run.accel[i] - w.acc).norm() / w.acc.norm().max(1e-12);
        assert!(err < 1e-9);
    }
}

#[test]
fn fmm_distributed_matches_solver() {
    let world = fmm_world(4);
    let run = run_fmm(&world, DpaConfig::dpa(50), NetConfig::default());
    // Oracle: the same solver run to completion sequentially.
    let mut oracle = FmmSolver::new(
        world.solver.zs.clone(),
        world.solver.qs.clone(),
        world.solver.params,
    );
    oracle.downward();
    let exact = oracle.evaluate();
    let mut worst = 0.0f64;
    for (a, b) in run.fields.iter().zip(&exact) {
        worst = worst.max((*a - *b).abs() / b.abs().max(1e-12));
    }
    assert!(worst < 1e-9, "worst rel err {worst}");
}

#[test]
fn fmm_matches_direct_summation() {
    // End-to-end physics: distributed FMM against the O(n²) oracle.
    let world = fmm_world(2);
    let run = run_fmm(&world, DpaConfig::dpa(50), NetConfig::default());
    let exact = world.solver.direct();
    let mut worst = 0.0f64;
    for (a, b) in run.fields.iter().zip(&exact) {
        worst = worst.max((*a - *b).abs() / b.abs().max(1e-12));
    }
    assert!(worst < 1e-6, "worst rel err vs direct {worst}");
}

#[test]
fn fmm_all_variants_agree() {
    let world = fmm_world(4);
    let reference = run_fmm(&world, DpaConfig::dpa(50), NetConfig::default());
    for cfg in [
        DpaConfig::dpa_base(50),
        DpaConfig::dpa_pipeline(50),
        DpaConfig::caching(),
        DpaConfig::blocking(),
    ] {
        let label = cfg.describe();
        eprintln!("running variant {label}");
        let run = run_fmm(&world, cfg, NetConfig::default());
        assert_eq!(run.m2l_count, reference.m2l_count, "{label}");
        assert_eq!(run.p2p_pairs, reference.p2p_pairs, "{label}");
        let mut worst = 0.0f64;
        for (a, b) in run.fields.iter().zip(&reference.fields) {
            worst = worst.max((*a - *b).abs() / b.abs().max(1e-12));
        }
        assert!(worst < 1e-9, "{label}: worst rel err {worst}");
    }
}

#[test]
fn runs_are_deterministic() {
    let world = bh_world(4);
    let a = run_bh(&world, DpaConfig::dpa(50), NetConfig::default());
    let b = run_bh(&world, DpaConfig::dpa(50), NetConfig::default());
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.accel, b.accel);

    let fw = fmm_world(2);
    let fa = run_fmm(&fw, DpaConfig::dpa(50), NetConfig::default());
    let fb = run_fmm(&fw, DpaConfig::dpa(50), NetConfig::default());
    assert_eq!(fa.makespan_ns, fb.makespan_ns);
}
