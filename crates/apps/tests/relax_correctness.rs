//! Correctness and shape tests for the remote-reduction extension on the
//! graph-relaxation application.

use apps::relax::{RelaxApp, RelaxWorld};
use dpa_core::{run_phase, DpaConfig};
use sim_net::NetConfig;
use std::sync::Arc;

fn run(world: &Arc<RelaxWorld>, cfg: DpaConfig) -> (Vec<f64>, u64, sim_net::RunStats) {
    let n = world.vertices.len();
    let mut next = vec![0.0; n];
    let mut pushes = 0;
    let report = run_phase(
        world.nodes,
        NetConfig::default(),
        cfg,
        |i| RelaxApp::new(world.clone(), i),
        |i, app: &RelaxApp| {
            for v in world.range(i) {
                next[v] = app.next[v];
            }
            pushes += app.pushes;
        },
    );
    (next, pushes, report.stats)
}

#[test]
fn all_variants_match_oracle() {
    let world = RelaxWorld::build(400, 4, 8, 0.45, 0xE1);
    let expected = world.expected();
    for cfg in [
        DpaConfig::dpa(16),
        DpaConfig::dpa_base(16),
        DpaConfig::caching(),
        DpaConfig::blocking(),
    ] {
        let label = cfg.describe();
        let (next, pushes, stats) = run(&world, cfg);
        assert_eq!(pushes, world.total_edges(), "{label}: every edge pushed");
        assert_eq!(
            stats.user_total("updates_applied"),
            world.total_edges(),
            "{label}: every reduction applied exactly once"
        );
        let mut worst = 0.0f64;
        for (a, b) in next.iter().zip(&expected) {
            worst = worst.max((a - b).abs() / b.abs().max(1e-12));
        }
        assert!(worst < 1e-12, "{label}: worst rel err {worst}");
    }
}

#[test]
fn dpa_aggregates_updates() {
    let world = RelaxWorld::build(600, 8, 8, 0.6, 0xE2);
    let (_, _, dpa_stats) = run(&world, DpaConfig::dpa(32));
    let (_, _, cache_stats) = run(&world, DpaConfig::caching());
    let dpa_msgs = dpa_stats.user_total("update_msgs");
    let cache_msgs = cache_stats.user_total("update_msgs");
    assert!(
        dpa_msgs * 4 < cache_msgs,
        "DPA update messages ({dpa_msgs}) must be far fewer than the \
         baseline's one-per-edge ({cache_msgs})"
    );
    // Remote edges each cost the baseline one message.
    let remote_edges: u64 = world
        .vertices
        .iter()
        .enumerate()
        .map(|(u, vx)| {
            let uo = world.vptr(u as u32).node();
            vx.out
                .iter()
                .filter(|&&v| world.vptr(v).node() != uo)
                .count() as u64
        })
        .sum();
    assert_eq!(cache_msgs, remote_edges);
}

#[test]
fn dpa_outruns_baselines_on_reductions() {
    let world = RelaxWorld::build(800, 8, 10, 0.5, 0xE3);
    let time = |cfg: DpaConfig| {
        run_phase(
            8,
            NetConfig::default(),
            cfg,
            |i| RelaxApp::new(world.clone(), i),
            |_, _| {},
        )
        .makespan()
        .as_ns()
    };
    let dpa = time(DpaConfig::dpa(32));
    let caching = time(DpaConfig::caching());
    let blocking = time(DpaConfig::blocking());
    assert!(dpa < caching, "DPA {dpa} vs caching {caching}");
    assert!(dpa < blocking, "DPA {dpa} vs blocking {blocking}");
}

#[test]
fn deterministic_including_float_accumulation_order() {
    // Same config twice: bit-identical accumulators (the DES schedule is
    // deterministic, so even f64 accumulation order repeats).
    let world = RelaxWorld::build(300, 4, 6, 0.4, 0xE4);
    let (a, _, _) = run(&world, DpaConfig::dpa(8));
    let (b, _, _) = run(&world, DpaConfig::dpa(8));
    assert_eq!(a, b);
}

#[test]
fn single_node_all_local() {
    let world = RelaxWorld::build(100, 1, 5, 0.9, 0xE5);
    let (next, _, stats) = run(&world, DpaConfig::dpa(8));
    assert_eq!(stats.total_msgs(), 0, "one node: no messages at all");
    let expected = world.expected();
    for (a, b) in next.iter().zip(&expected) {
        assert!((a - b).abs() < 1e-12);
    }
}
