//! A synthetic pointer-chasing workload for tests, examples, and
//! microbenchmarks.
//!
//! Each node owns `lists_per_node` linked lists whose records are
//! scattered across the machine with a configurable remote fraction — the
//! archetypal pointer-based computation the paper's introduction opens
//! with. Every variant (DPA, caching, blocking, sequential) must compute
//! the same per-node checksum, which makes this workload a sharp
//! equivalence oracle for the drivers.

use crate::work::{DiffPlan, PtrApp, WorkEnv};
use global_heap::{ClassTable, GPtr};
use sim_net::Rng;
use std::sync::Arc;

/// One list record: a payload value and the next pointer.
#[derive(Clone, Copy, Debug)]
pub struct SynthRecord {
    /// Payload folded into the checksum.
    pub value: u64,
    /// Next record, or [`GPtr::NULL`] at the tail.
    pub next: GPtr,
}

/// The shared, read-only world: all records plus the list heads.
#[derive(Clone, Debug)]
pub struct SynthWorld {
    /// Machine size the world was built for.
    pub nodes: u16,
    /// Lists owned by (i.e. iterated by) each node.
    pub lists_per_node: usize,
    /// Records per list.
    pub list_len: usize,
    /// `records[node][index]` — per-owner arenas.
    records: Vec<Vec<SynthRecord>>,
    /// `heads[node][list]` — first record of each list.
    heads: Vec<Vec<GPtr>>,
    classes: ClassTable,
}

/// Parameters for building a [`SynthWorld`].
#[derive(Clone, Copy, Debug)]
pub struct SynthParams {
    /// Machine size.
    pub nodes: u16,
    /// Lists per node (the top-level loop length).
    pub lists_per_node: usize,
    /// Records per list.
    pub list_len: usize,
    /// Probability that a record lives on a random *other* node.
    pub remote_fraction: f64,
    /// Probability that a list ends by linking into an earlier list of the
    /// same home node (a shared tail). Shared structure is what gives
    /// caching its hits and DPA its tiling: several iterations touch the
    /// same objects, as tree cells do in Barnes-Hut.
    pub shared_fraction: f64,
    /// Bytes transferred per record.
    pub record_bytes: u32,
    /// ns of useful work charged per record visited.
    pub work_ns: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            nodes: 4,
            lists_per_node: 8,
            list_len: 16,
            remote_fraction: 0.3,
            shared_fraction: 0.4,
            record_bytes: 32,
            work_ns: 500,
            seed: 0xD1A,
        }
    }
}

impl SynthWorld {
    /// Build a world from `params`. Deterministic in the seed.
    pub fn build(params: SynthParams) -> Arc<SynthWorld> {
        assert!(params.nodes >= 1);
        let mut classes = ClassTable::new();
        let class = classes.register("synth_record", params.record_bytes);
        let mut rng = Rng::new(params.seed);
        let n = params.nodes as usize;
        let mut records: Vec<Vec<SynthRecord>> = vec![Vec::new(); n];
        let mut heads: Vec<Vec<GPtr>> = vec![Vec::new(); n];

        #[allow(clippy::needless_range_loop)] // `home` indexes two arrays
        for home in 0..n {
            // Records reachable from this home's earlier lists; candidate
            // shared tails.
            let mut prior: Vec<GPtr> = Vec::new();
            for _ in 0..params.lists_per_node {
                // Build the list back to front so each record can point at
                // its successor. With probability `shared_fraction` the
                // list ends in a tail shared with an earlier list (a DAG,
                // never a cycle: links only target earlier records).
                let mut next = if !prior.is_empty() && rng.chance(params.shared_fraction) {
                    prior[rng.below(prior.len() as u64) as usize]
                } else {
                    GPtr::NULL
                };
                for _ in 0..params.list_len {
                    let owner = if params.nodes > 1 && rng.chance(params.remote_fraction) {
                        // A random node other than `home`.
                        let mut o = rng.below(params.nodes as u64 - 1) as usize;
                        if o >= home {
                            o += 1;
                        }
                        o
                    } else {
                        home
                    };
                    let idx = records[owner].len() as u64;
                    records[owner].push(SynthRecord {
                        value: rng.below(1 << 32),
                        next,
                    });
                    next = GPtr::new(owner as u16, class, idx);
                    prior.push(next);
                }
                heads[home].push(next);
            }
        }

        Arc::new(SynthWorld {
            nodes: params.nodes,
            lists_per_node: params.lists_per_node,
            list_len: params.list_len,
            records,
            heads,
            classes,
        })
    }

    /// The record `ptr` points at.
    #[inline]
    pub fn record(&self, ptr: GPtr) -> &SynthRecord {
        &self.records[ptr.node() as usize][ptr.index() as usize]
    }

    /// The head of `node`'s `list`-th list.
    pub fn head(&self, node: u16, list: usize) -> GPtr {
        self.heads[node as usize][list]
    }

    /// Ground truth for `node`: `(checksum, records visited)` — what any
    /// correct execution of that node's iterations must produce. Shared
    /// tails are counted once per traversal that reaches them, exactly as
    /// the runtime executes them.
    pub fn expected(&self, node: u16) -> (u64, u64) {
        let mut sum = 0u64;
        let mut visits = 0u64;
        for list in 0..self.lists_per_node {
            let mut p = self.head(node, list);
            while !p.is_null() {
                let r = self.record(p);
                sum = sum.wrapping_add(r.value);
                visits += 1;
                p = r.next;
            }
        }
        (sum, visits)
    }

    /// Ground-truth checksum for `node` (see [`SynthWorld::expected`]).
    pub fn expected_sum(&self, node: u16) -> u64 {
        self.expected(node).0
    }

    /// Ground-truth checksum for `node` under a differential plan: every
    /// record's contribution is its value plus [`DiffPlan::stamp`] at the
    /// record's *current* generation. A correct differential execution —
    /// one that invalidated every carried entry whose object changed —
    /// matches this exactly; a stale read cannot.
    pub fn expected_diff_sum(&self, node: u16, plan: DiffPlan) -> u64 {
        let mut sum = 0u64;
        for list in 0..self.lists_per_node {
            let mut p = self.head(node, list);
            while !p.is_null() {
                let r = self.record(p);
                sum = sum
                    .wrapping_add(r.value)
                    .wrapping_add(DiffPlan::stamp(p, plan.gen_of(p)));
                p = r.next;
            }
        }
        sum
    }

    /// Total records across all owners.
    pub fn total_records(&self) -> usize {
        self.records.iter().map(Vec::len).sum()
    }
}

/// Per-node application state: walks this node's lists, accumulating a
/// checksum.
pub struct SynthApp {
    world: Arc<SynthWorld>,
    me: u16,
    /// Checksum accumulated by completed work.
    pub sum: u64,
    /// Records visited.
    pub visited: u64,
    work_ns: u64,
    /// Differential-mode change schedule; `None` for single-phase runs.
    plan: Option<DiffPlan>,
}

/// A non-blocking thread of the synthetic walk: "visit the record at
/// `ptr`".
#[derive(Debug, Clone, Copy)]
pub struct Walk {
    /// Record to visit (the pointer this thread is labeled with).
    pub ptr: GPtr,
}

impl SynthApp {
    /// The app instance for node `me`.
    pub fn new(world: Arc<SynthWorld>, me: u16, work_ns: u64) -> SynthApp {
        SynthApp {
            world,
            me,
            sum: 0,
            visited: 0,
            work_ns,
            plan: None,
        }
    }

    /// Like [`SynthApp::new`] but value-sensitive for multi-timestep runs:
    /// each visit folds [`DiffPlan::stamp`] at the generation actually
    /// read into the checksum, making a stale carried cache entry corrupt
    /// the digest (see [`SynthWorld::expected_diff_sum`]).
    pub fn new_diff(world: Arc<SynthWorld>, me: u16, work_ns: u64, plan: DiffPlan) -> SynthApp {
        SynthApp {
            plan: Some(plan),
            ..SynthApp::new(world, me, work_ns)
        }
    }
}

impl PtrApp for SynthApp {
    type Work = Walk;

    fn num_iterations(&self) -> usize {
        self.world.lists_per_node
    }

    fn start_iteration(&mut self, iter: usize, env: &mut WorkEnv<'_, Walk>) {
        let head = self.world.head(self.me, iter);
        if !head.is_null() {
            env.demand(head, Walk { ptr: head });
        }
    }

    fn run_work(&mut self, work: Walk, env: &mut WorkEnv<'_, Walk>) {
        env.assert_readable(work.ptr);
        let rec = *self.world.record(work.ptr);
        env.charge(self.work_ns);
        let mut v = rec.value;
        if let Some(plan) = self.plan {
            // The generation actually read: the renamed-storage stamp for
            // fetched/carried copies, the live generation for local (or
            // adopted) reads. A stale carry surfaces here as an old stamp.
            let gen = env
                .cached_generation(work.ptr)
                .unwrap_or_else(|| plan.gen_of(work.ptr));
            v = v.wrapping_add(DiffPlan::stamp(work.ptr, gen));
        }
        self.sum = self.sum.wrapping_add(v);
        self.visited += 1;
        if !rec.next.is_null() {
            env.demand(rec.next, Walk { ptr: rec.next });
        }
    }

    fn object_size(&self, ptr: GPtr) -> u32 {
        self.world.classes.size(ptr.class())
    }

    fn object_generation(&self, ptr: GPtr) -> u32 {
        match self.plan {
            Some(plan) => plan.gen_of(ptr),
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_is_deterministic() {
        let a = SynthWorld::build(SynthParams::default());
        let b = SynthWorld::build(SynthParams::default());
        for n in 0..a.nodes {
            assert_eq!(a.expected_sum(n), b.expected_sum(n));
        }
    }

    #[test]
    fn record_count_matches() {
        let p = SynthParams::default();
        let w = SynthWorld::build(p);
        assert_eq!(
            w.total_records(),
            p.nodes as usize * p.lists_per_node * p.list_len
        );
    }

    #[test]
    fn zero_remote_fraction_stays_home() {
        let w = SynthWorld::build(SynthParams {
            remote_fraction: 0.0,
            ..SynthParams::default()
        });
        for node in 0..w.nodes {
            for list in 0..w.lists_per_node {
                let mut p = w.head(node, list);
                while !p.is_null() {
                    assert_eq!(p.node(), node);
                    p = w.record(p).next;
                }
            }
        }
    }

    #[test]
    fn single_node_world() {
        let w = SynthWorld::build(SynthParams {
            nodes: 1,
            remote_fraction: 0.9, // irrelevant with one node
            ..SynthParams::default()
        });
        assert!(w.expected_sum(0) > 0);
    }
}
