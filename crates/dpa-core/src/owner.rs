//! Owner-side request service shared by every node driver.
//!
//! Whichever scheme the *requesting* node runs, the owner's job is the
//! same: look up each requested object and stream it back, segmenting the
//! reply at the MTU so large batches pay honest per-packet costs. A single
//! object larger than the MTU cannot be split across [`DpaMsg::Reply`]
//! entries, so it travels as its own message and the owner is explicitly
//! charged for every extra packet it occupies ([`charge_extra_packets`]).
//!
//! The DPA driver additionally runs a reply-path *scheduler* (see
//! `proc_dpa`) that buffers reply entries per destination instead of
//! answering immediately; it shares [`lookup_entries`] and
//! [`charge_extra_packets`] with the immediate path below so both charge
//! identically per object and per packet.

use crate::config::DpaConfig;
use crate::msg::DpaMsg;
use crate::work::PtrApp;
use fastmsg::packets_for;
use global_heap::{GPtr, MigrationTable};
use sim_net::{Ctx, NodeId};

/// What one request-service call put on the wire.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ReplyAccounting {
    /// Reply messages sent.
    pub msgs: u64,
    /// Reply entries (objects) sent.
    pub entries: u64,
}

/// Charge the overhead of the extra packets a `payload`-byte message
/// occupies beyond the first: `Ctx::send` charges one send overhead plus
/// per-byte gap for one header, so a k-packet message owes `(k-1)` more of
/// each. Zero for any payload within the MTU — applied uniformly so every
/// reply path pays the same honest per-packet cost.
pub(crate) fn charge_extra_packets(cfg: &DpaConfig, ctx: &mut Ctx<'_, DpaMsg>, payload: u32) {
    let packets = packets_for(payload, cfg.mtu) as u64;
    if packets > 1 {
        let net = ctx.net();
        let per_packet = net.send_overhead_ns + net.gap_ns_per_byte * net.header_bytes as u64;
        ctx.charge_overhead((packets - 1) * per_packet);
    }
}

/// Charge per-object lookup and resolve `ptrs` to `(pointer, size)` reply
/// entries.
///
/// `mig` is the serving node's migration table (`None` when migration is
/// off): a node legitimately serves objects it was born with *and has not
/// shipped away*, plus objects it has adopted. Anything else reaching this
/// point is a routing bug — departed objects must take the forwarding
/// path, and not-yet-adopted objects must wait in the orphan queue.
pub(crate) fn lookup_entries<A: PtrApp>(
    app: &A,
    cfg: &DpaConfig,
    ctx: &mut Ctx<'_, DpaMsg>,
    ptrs: &[GPtr],
    mig: Option<&MigrationTable>,
) -> Vec<(GPtr, u32)> {
    ptrs.iter()
        .map(|&p| {
            debug_assert!(
                match mig {
                    None => p.is_local_to(ctx.me().0),
                    Some(m) =>
                        (p.is_local_to(ctx.me().0) && !m.is_departed(p)) || m.is_adopted(p),
                },
                "request for non-owned object {p}"
            );
            ctx.charge_overhead(cfg.cost.owner_lookup_ns);
            (p, app.object_size(p))
        })
        .collect()
}

/// Payload bytes a reply batch occupies on the wire.
pub(crate) fn reply_payload_bytes(batch: &[(GPtr, u32)]) -> u32 {
    batch.iter().map(|&(_, size)| size + GPtr::WIRE_BYTES).sum()
}

/// Send one reply batch to `dst`, charging for every packet it spans.
pub(crate) fn send_reply_batch(
    cfg: &DpaConfig,
    ctx: &mut Ctx<'_, DpaMsg>,
    dst: NodeId,
    batch: Vec<(GPtr, u32)>,
) {
    debug_assert!(!batch.is_empty());
    charge_extra_packets(cfg, ctx, reply_payload_bytes(&batch));
    ctx.send(dst, DpaMsg::Reply(batch));
}

/// Service one incoming request batch immediately: charge per-object
/// lookup, then send one or more MTU-bounded replies to `src` (an entry
/// that alone exceeds the MTU becomes its own multi-packet message).
/// Returns what went on the wire.
pub(crate) fn service_request<A: PtrApp>(
    app: &A,
    cfg: &DpaConfig,
    ctx: &mut Ctx<'_, DpaMsg>,
    src: NodeId,
    ptrs: &[GPtr],
    mig: Option<&MigrationTable>,
) -> ReplyAccounting {
    let mtu = cfg.mtu.0;
    let mut acct = ReplyAccounting::default();
    let mut chunk: Vec<(GPtr, u32)> = Vec::new();
    let mut chunk_bytes = 0u32;
    for (p, size) in lookup_entries(app, cfg, ctx, ptrs, mig) {
        let entry = size + GPtr::WIRE_BYTES;
        if !chunk.is_empty() && chunk_bytes + entry > mtu {
            acct.msgs += 1;
            acct.entries += chunk.len() as u64;
            send_reply_batch(cfg, ctx, src, std::mem::take(&mut chunk));
            chunk_bytes = 0;
        }
        chunk_bytes += entry;
        chunk.push((p, size));
    }
    if !chunk.is_empty() {
        acct.msgs += 1;
        acct.entries += chunk.len() as u64;
        send_reply_batch(cfg, ctx, src, chunk);
    }
    acct
}
