//! Owner-side request service shared by every node driver.
//!
//! Whichever scheme the *requesting* node runs, the owner's job is the
//! same: look up each requested object and stream it back, segmenting the
//! reply at the MTU so large batches pay honest per-packet costs.

use crate::config::DpaConfig;
use crate::msg::DpaMsg;
use crate::work::PtrApp;
use global_heap::GPtr;
use sim_net::{Ctx, NodeId};

/// Service one incoming request batch: charge per-object lookup, then send
/// one or more MTU-bounded replies to `src`. Returns the number of reply
/// messages sent.
pub(crate) fn service_request<A: PtrApp>(
    app: &A,
    cfg: &DpaConfig,
    ctx: &mut Ctx<'_, DpaMsg>,
    src: NodeId,
    ptrs: Vec<GPtr>,
) -> u64 {
    let mtu = cfg.mtu.0;
    let mut sent = 0u64;
    let mut chunk: Vec<(GPtr, u32)> = Vec::new();
    let mut chunk_bytes = 0u32;
    for p in ptrs {
        debug_assert!(p.is_local_to(ctx.me().0), "request for non-owned object");
        ctx.charge_overhead(cfg.cost.owner_lookup_ns);
        let size = app.object_size(p);
        let entry = size + GPtr::WIRE_BYTES;
        if !chunk.is_empty() && chunk_bytes + entry > mtu {
            sent += 1;
            ctx.send(src, DpaMsg::Reply(std::mem::take(&mut chunk)));
            chunk_bytes = 0;
        }
        chunk_bytes += entry;
        chunk.push((p, size));
    }
    if !chunk.is_empty() {
        sent += 1;
        ctx.send(src, DpaMsg::Reply(chunk));
    }
    sent
}
