//! # dpa-core — the Dynamic Pointer Alignment runtime
//!
//! The paper's primary contribution (Zhang & Chien, PPoPP'97): generalize
//! loop tiling and communication optimizations — message pipelining and
//! aggregation — to pointer-based data structures, where neither precise
//! aliasing nor the iteration space is known at compile time.
//!
//! **How it works.** The compiler half (see the `dpa-compiler` crate)
//! decomposes a computation into non-blocking threads, each labeled with
//! the global pointer it will dereference. This crate is the runtime half:
//!
//! * an explicit mapping **M** from pointers to dependent threads
//!   ([`mapping::PointerMap`]), updated at thread creation;
//! * the outstanding-request table **D** ([`pending::PendingRequests`]);
//! * a scheduler ([`proc_dpa::DpaProc`]) that k-bounds the top-level loop
//!   (*strip-mining*), runs ready threads, and — when an object arrives —
//!   releases every thread aligned under it in one batch (*tiling*);
//! * a communication scheduler that issues requests eagerly so transfers
//!   overlap local work (*pipelining*) and batches requests per
//!   destination (*aggregation*, via `fastmsg`'s coalescing buffers).
//!
//! The baselines the paper compares against live here too
//! ([`proc_caching::CachingProc`]): software caching (hash probe per
//! access, blocking misses) and naive blocking. All drivers execute the
//! *same* application decomposition ([`work::PtrApp`]), so every variant
//! provably computes identical results; only scheduling and communication
//! differ — exactly the paper's experimental design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod driver;
pub mod fxmap;
pub mod invariant;
pub mod mapping;
pub mod msg;
mod owner;
pub mod pending;
pub mod proc_caching;
pub mod proc_dpa;
pub mod stripctl;
pub mod synth;
pub mod work;

pub use config::{ConfigError, CostModel, DpaConfig, Variant};
pub use driver::{
    heal_departed_orphans, run_phase, run_phase_differential, run_phase_dst, run_phase_faulty,
    run_phase_migrating, run_phase_traced, DstOptions,
};
pub use fxmap::{FxHashMap, FxHashSet};
pub use invariant::{check_completed, check_conservation, NodeSnapshot, Violation};
pub use mapping::PointerMap;
pub use msg::DpaMsg;
pub use pending::PendingRequests;
pub use proc_caching::CachingProc;
pub use proc_dpa::DpaProc;
pub use stripctl::{AdaptiveStrip, StripController, StripMode, StripObs};
pub use work::{DiffPlan, Emit, PtrApp, Tagged, WorkEnv};
