//! Runtime configuration: execution variant, strip size, aggregation
//! window, pipelining toggle, and the CPU cost model.
//!
//! The paper's evaluation sweeps exactly these knobs:
//! * **variant** — full DPA vs the software-caching baseline (Table 1),
//! * **strip size** — the k-bounded top-level loop window (strip-size
//!   figure; "DPA (50)" in Table 1 means strip = 50),
//! * **pipeline / aggregation** — the communication-optimization ladder of
//!   the breakdown figure (Base → +Pipeline → +Pipeline+Aggregate).

use crate::stripctl::{AdaptiveStrip, StripMode};
use fastmsg::Mtu;
use global_heap::EvictPolicy;
use std::fmt;

/// Which execution scheme drives the force phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Dynamic Pointer Alignment: non-blocking threads, pointer→thread
    /// mapping, tiled execution on arrival, scheduled communication.
    Dpa,
    /// Software caching baseline: hash probe on every global access,
    /// blocking round trip per miss, reuse via the cache.
    Caching,
    /// Naive blocking baseline: every remote access is a blocking round
    /// trip; no reuse (one-entry cache), no per-access hashing.
    Blocking,
    /// Zero-overhead single-node reference (the paper's "sequential
    /// version"); only meaningful on one node.
    Sequential,
}

impl Variant {
    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Dpa => "DPA",
            Variant::Caching => "Caching",
            Variant::Blocking => "Blocking",
            Variant::Sequential => "Sequential",
        }
    }
}

/// Per-operation CPU costs of the runtime and baselines, in nanoseconds.
///
/// Defaults are calibrated to a ~150 MHz in-order node (T3D Alpha 21064)
/// so that single-node DPA overhead over the sequential version lands near
/// the paper's observed ~20% (118.02 s vs 97.84 s on Barnes-Hut) and the
/// caching baseline's near ~18% (115.15 s).
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Create one dependent thread and label it with its pointer.
    pub thread_create_ns: u64,
    /// Insert/lookup one entry in the pointer→threads mapping M.
    pub map_update_ns: u64,
    /// Dequeue and dispatch one ready thread.
    pub resume_ns: u64,
    /// Append one request to a coalescing buffer.
    pub request_entry_ns: u64,
    /// Install one arrived object into renamed storage.
    pub reply_install_ns: u64,
    /// Owner-side lookup + copy-out per requested object.
    pub owner_lookup_ns: u64,
    /// Caching baseline: hash probe per global access.
    pub cache_probe_ns: u64,
    /// Caching baseline: install per miss fill.
    pub cache_fill_ns: u64,
    /// Caching baseline: extra probe cost per log2 of the cache's entry
    /// count. A populated hash table no longer fits the (8 KB, on the
    /// T3D) L1, so every probe takes a hardware cache miss — the effect
    /// the paper names when crediting DPA's win to "minimized hashing and
    /// better cache performance because of access hoisting". Empty cache
    /// (e.g. the all-local single-node run) pays nothing.
    pub cache_probe_thrash_step_ns: u64,
    /// Cap on the probe-thrash surcharge.
    pub cache_probe_thrash_cap_ns: u64,
    /// Live-thread count beyond which runtime-structure operations slow
    /// down (hash/queue working set exceeding fast storage). This is what
    /// penalizes very large strips in the strip-size experiment.
    pub pressure_threshold_threads: u64,
    /// Added ns per structure operation once past the pressure threshold,
    /// per doubling over the threshold.
    pub pressure_step_ns: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            thread_create_ns: 740,
            map_update_ns: 150,
            resume_ns: 376,
            request_entry_ns: 100,
            reply_install_ns: 200,
            owner_lookup_ns: 300,
            cache_probe_ns: 960,
            cache_fill_ns: 700,
            cache_probe_thrash_step_ns: 70,
            cache_probe_thrash_cap_ns: 840,
            pressure_threshold_threads: 4096,
            pressure_step_ns: 60,
        }
    }
}

impl CostModel {
    /// A zero-cost model (used by the sequential reference and by logic
    /// tests that only check scheduling order).
    pub fn free() -> CostModel {
        CostModel {
            thread_create_ns: 0,
            map_update_ns: 0,
            resume_ns: 0,
            request_entry_ns: 0,
            reply_install_ns: 0,
            owner_lookup_ns: 0,
            cache_probe_ns: 0,
            cache_fill_ns: 0,
            cache_probe_thrash_step_ns: 0,
            cache_probe_thrash_cap_ns: 0,
            pressure_threshold_threads: u64::MAX,
            pressure_step_ns: 0,
        }
    }

    /// Probe-thrash surcharge for a cache currently holding `entries`
    /// objects: `step × log2(entries)`, capped. Zero for an empty cache.
    #[inline]
    pub fn probe_thrash_ns(&self, entries: usize) -> u64 {
        if entries == 0 {
            0
        } else {
            let bits = (usize::BITS - entries.leading_zeros()) as u64;
            (self.cache_probe_thrash_step_ns * bits).min(self.cache_probe_thrash_cap_ns)
        }
    }

    /// Extra per-structure-operation cost at `live` outstanding threads:
    /// zero below the threshold, then `pressure_step_ns` per doubling.
    #[inline]
    pub fn pressure_extra_ns(&self, live: u64) -> u64 {
        if live <= self.pressure_threshold_threads {
            0
        } else {
            let ratio = live / self.pressure_threshold_threads;
            // integer log2 of the overflow ratio, >= 1
            let doublings = 64 - ratio.leading_zeros() as u64;
            self.pressure_step_ns * doublings
        }
    }
}

/// A configuration value that would hang or panic deep inside a run,
/// rejected up front by [`DpaConfig::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A strip (fixed `k`, or the adaptive `min`) of 0 admits no
    /// iterations: the phase would never start and never finish.
    ZeroStrip,
    /// Adaptive bounds with `min > max` leave the controller no legal
    /// strip.
    StripBoundsInverted {
        /// The configured lower bound.
        min: usize,
        /// The configured upper bound.
        max: usize,
    },
    /// A coalescing window of 0 can never fill: entries would buffer
    /// forever. Names the offending knob.
    ZeroWindow(&'static str),
    /// Reply aggregation with a zero flush deadline: every enqueue would
    /// arm an immediate wake, livelocking the owner.
    ZeroFlushDeadline,
    /// A zero poll interval makes the drive loop yield after every work
    /// item without advancing time.
    ZeroPollInterval,
    /// Migration with a zero threshold would migrate on the first remote
    /// touch, thrashing objects between nodes.
    ZeroMigrationThreshold,
    /// Replication without differential re-alignment: only the carried
    /// `(ptr,size,gen)` stamps and the `PhaseDelta` gate make a stale
    /// replica a diagnosable stall instead of a silent wrong read.
    ReplicationWithoutDifferential,
    /// Replication without migration epochs: promotion reads the owner's
    /// affinity fan-out, which only `Affinity` reports populate.
    ReplicationWithoutMigration,
    /// A replication knob set to a value that can never promote (zero
    /// fan-out or zero read threshold). Names the offending knob.
    ZeroReplicationKnob(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroStrip => {
                write!(f, "strip size must be >= 1 (a 0 strip admits no iterations)")
            }
            ConfigError::StripBoundsInverted { min, max } => write!(
                f,
                "adaptive strip bounds inverted: min {min} > max {max}"
            ),
            ConfigError::ZeroWindow(knob) => {
                write!(f, "{knob} must be >= 1 (a 0 window can never fill)")
            }
            ConfigError::ZeroFlushDeadline => write!(
                f,
                "reply_flush_deadline_ns must be > 0 when reply_agg_window > 1"
            ),
            ConfigError::ZeroPollInterval => write!(f, "poll_interval_ns must be > 0"),
            ConfigError::ZeroMigrationThreshold => {
                write!(f, "migration_threshold must be >= 1 when migration is enabled")
            }
            ConfigError::ReplicationWithoutDifferential => write!(
                f,
                "replication requires differential mode (the PhaseDelta gate is what \
                 keeps a stale replica a stall, never a silent wrong read)"
            ),
            ConfigError::ReplicationWithoutMigration => write!(
                f,
                "replication requires migration epochs (promotion reads the affinity \
                 fan-out that Affinity reports populate)"
            ),
            ConfigError::ZeroReplicationKnob(knob) => {
                write!(f, "{knob} must be >= 1 when replication is enabled")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of a phase execution.
#[derive(Clone, Debug, PartialEq)]
pub struct DpaConfig {
    /// Execution scheme.
    pub variant: Variant,
    /// k-bound of the top-level concurrent loop: at most this many loop
    /// iterations are live at once per node — a fixed `k` (the paper's
    /// static strip) or the feedback-controlled adaptive strip (see
    /// [`crate::stripctl`]).
    pub strip_mode: StripMode,
    /// Aggregation window: requests per destination buffered into one
    /// message. `1` disables aggregation.
    pub agg_window: usize,
    /// When `true`, request batches are sent as soon as they fill and all
    /// buffers are drained at quiescence (latency overlaps local work).
    /// When `false`, a single batch is sent per quiescence and the node
    /// waits — communication is serialized with computation.
    pub pipeline: bool,
    /// Reply-path aggregation window: owner-side reply entries per
    /// destination buffered into one message (also reused by the `Update`
    /// reduction path). `1` disables reply aggregation — the owner answers
    /// each request batch immediately and separately, which is how the
    /// `Base` and `+Pipeline`-only ladder rungs are expressed. Buffered
    /// replies additionally flush at MTU occupancy, at
    /// [`reply_flush_deadline_ns`](Self::reply_flush_deadline_ns), and
    /// unconditionally at poll-quiescence.
    pub reply_agg_window: usize,
    /// Deadline for buffered owner-side replies (and batched updates), in
    /// simulated ns since the first entry was enqueued for a destination.
    /// Bounds how much latency reply aggregation can add when the owner
    /// stays busy between poll-quiescence points.
    pub reply_flush_deadline_ns: u64,
    /// CPU cost model.
    pub cost: CostModel,
    /// Maximum packet payload; longer replies are segmented.
    pub mtu: Mtu,
    /// Simulated time between polls of the network while driving local
    /// work. Bounds how stale an incoming request can get before the node
    /// services it (FM-style polling).
    pub poll_interval_ns: u64,
    /// Flow control: maximum objects with requests in flight per node.
    /// When at the cap, filled request batches wait in the buffers until
    /// replies retire in-flight objects (at least one batch is always
    /// allowed out, so progress is guaranteed). Models the storage bound
    /// the paper notes DPA trades for latency tolerance.
    pub max_outstanding: usize,
    /// Caching baseline: bound on cached objects (`None` = unbounded, the
    /// paper's per-phase configuration).
    pub cache_capacity: Option<usize>,
    /// Caching baseline: eviction policy for a bounded cache.
    pub cache_policy: EvictPolicy,
    /// Locality-driven object migration: epoch length in simulated ns.
    /// Every epoch each node ships its sampled per-pointer remote
    /// dereference counts to the objects' homes (`Affinity`), and owners
    /// migrate high-affinity objects to their dominant consumer
    /// (`Migrate`). `0` disables migration entirely (the default — all
    /// baselines and paper configurations run with it off).
    pub migration_epoch_ns: u64,
    /// Minimum remote dereference count a single consumer must accumulate
    /// on an object before the owner will migrate it.
    pub migration_threshold: u64,
    /// Maximum objects a node may migrate away per phase. Bounds both the
    /// migration traffic burst and the forwarding-stub table.
    pub migration_budget: usize,
    /// Differential re-alignment: carry renamed storage, M/D interners,
    /// and migration state across phase barriers, patching them with
    /// boundary deltas (`PhaseDelta`) instead of rebuilding — only objects
    /// whose generation or home moved are refetched. Off by default; the
    /// one-shot paper configurations are bit-for-bit unchanged. Driven by
    /// `run_phase_differential`.
    pub differential: bool,
    /// Read-mostly pointer replication: the third alignment mode next to
    /// caching and migration. At each phase boundary the driver promotes
    /// pointers whose owner-side affinity shows high fan-out with no
    /// dominant consumer and a read-mostly mix to *replicated*: the owner
    /// broadcasts a generation-stamped copy (`Replicate`) to the consumer
    /// set and subsequent remote reads hit the local replica with zero
    /// messages. Writes still funnel through the owner (single-writer),
    /// are counted per window, and demote the pointer past
    /// [`replication_write_demote`](Self::replication_write_demote).
    /// Requires `differential` (replicas ride the carry + `PhaseDelta`
    /// gating) and migration epochs (the affinity signal); replicated
    /// pointers are pinned against re-homing while replicated. Off by
    /// default — every earlier configuration is bit-for-bit unchanged.
    pub replication: bool,
    /// Minimum distinct consumers with affinity signal before a pointer
    /// can be promoted to replicated.
    pub replication_min_fanout: usize,
    /// Minimum total remote dereferences (summed over consumers) before
    /// promotion.
    pub replication_threshold: u64,
    /// Maximum fresh promotions per owner per phase boundary. Bounds the
    /// broadcast burst and the directory the way `migration_budget`
    /// bounds shipments.
    pub replication_budget: usize,
    /// Writes per window past which a replicated pointer is demoted (the
    /// read-mostly contract).
    pub replication_write_demote: u64,
    /// Per-consumer floor on affinity reporting: a node only reports a
    /// pointer to its owner when its own dereference count for the window
    /// reached this floor. `1` (the default) reports everything —
    /// bit-identical to the pre-knob behaviour. The replicating preset
    /// raises it so uniform background traffic (one or two touches per
    /// consumer, already absorbed by differential carrying) never reaches
    /// the promotion policy: hub-shaped pointers clear the floor on every
    /// consumer, noise clears it on none, and the affinity report shrinks
    /// from "every remote pointer touched" to "the pointers worth acting
    /// on".
    pub affinity_report_floor: u32,
}

impl Default for DpaConfig {
    fn default() -> Self {
        DpaConfig {
            variant: Variant::Dpa,
            strip_mode: StripMode::Fixed(50),
            agg_window: 32,
            pipeline: true,
            // Half the poll interval: an owner mid-slice coalesces replies
            // across roughly one poll window without doubling the
            // requester-visible round trip.
            reply_agg_window: 32,
            reply_flush_deadline_ns: 20_000,
            cost: CostModel::default(),
            mtu: Mtu::default(),
            poll_interval_ns: 40_000,
            max_outstanding: usize::MAX,
            cache_capacity: None,
            cache_policy: EvictPolicy::Fifo,
            migration_epoch_ns: 0,
            migration_threshold: 3,
            migration_budget: 64,
            differential: false,
            replication: false,
            replication_min_fanout: 3,
            replication_threshold: 12,
            replication_budget: 4,
            replication_write_demote: 8,
            affinity_report_floor: 1,
        }
    }
}

impl DpaConfig {
    /// The paper's headline configuration: "DPA (50)".
    pub fn dpa(strip: usize) -> DpaConfig {
        DpaConfig {
            strip_mode: StripMode::Fixed(strip),
            ..DpaConfig::default()
        }
    }

    /// Full DPA with the adaptive k-bound controller in `[min, max]`
    /// (default idle target; see [`AdaptiveStrip`]).
    pub fn dpa_adaptive(min: usize, max: usize) -> DpaConfig {
        DpaConfig {
            strip_mode: StripMode::Adaptive(AdaptiveStrip {
                min,
                max,
                ..AdaptiveStrip::default()
            }),
            ..DpaConfig::default()
        }
    }

    /// DPA with tiling only: no pipelining, no aggregation on either path
    /// (the "Base" bars of the breakdown figure).
    pub fn dpa_base(strip: usize) -> DpaConfig {
        DpaConfig {
            strip_mode: StripMode::Fixed(strip),
            agg_window: 1,
            reply_agg_window: 1,
            pipeline: false,
            ..DpaConfig::default()
        }
    }

    /// DPA with pipelining but no aggregation ("+Pipeline"): requests go
    /// out one per push and owners answer immediately.
    pub fn dpa_pipeline(strip: usize) -> DpaConfig {
        DpaConfig {
            strip_mode: StripMode::Fixed(strip),
            agg_window: 1,
            reply_agg_window: 1,
            pipeline: true,
            ..DpaConfig::default()
        }
    }

    /// Full DPA plus locality-driven object migration: owners ship
    /// high-affinity objects toward their dominant consumers once per
    /// epoch (one epoch per poll interval by default).
    pub fn dpa_migrating(strip: usize) -> DpaConfig {
        DpaConfig {
            strip_mode: StripMode::Fixed(strip),
            migration_epoch_ns: 40_000,
            ..DpaConfig::default()
        }
    }

    /// Full DPA driven differentially across timesteps: phase barriers
    /// patch the runtime tables with boundary deltas instead of rebuilding
    /// them (see `run_phase_differential`). Composes with migration the
    /// way [`dpa_migrating`](DpaConfig::dpa_migrating) configures it.
    pub fn dpa_differential(strip: usize) -> DpaConfig {
        DpaConfig {
            strip_mode: StripMode::Fixed(strip),
            differential: true,
            ..DpaConfig::default()
        }
    }

    /// Full DPA with read-mostly replication: differential barriers plus
    /// the affinity signal, with a *conservative* migration threshold —
    /// replication-first: an object only re-homes when one consumer
    /// really dominates, while the broad-fan-out hub is promoted to
    /// replicated at the first boundary and pinned. The migration epoch
    /// is `u64::MAX` — *boundary-only* mode: no periodic epoch ever
    /// fires, because the promotion policy only needs the final
    /// per-phase affinity report (sent at phase end whenever migration
    /// is on). Skipping the periodic reports keeps the preset's message
    /// overhead down to that single report plus the broadcasts
    /// themselves, and the raised
    /// [`affinity_report_floor`](Self::affinity_report_floor) keeps even
    /// that report hub-shaped: a consumer that touched a pointer fewer
    /// than four times in the phase (uniform background, already covered
    /// by the differential carry) reports nothing about it.
    pub fn dpa_replicating(strip: usize) -> DpaConfig {
        DpaConfig {
            strip_mode: StripMode::Fixed(strip),
            differential: true,
            migration_epoch_ns: u64::MAX,
            migration_threshold: 24,
            replication: true,
            affinity_report_floor: 4,
            ..DpaConfig::default()
        }
    }

    /// `true` when locality-driven object migration is enabled.
    pub fn migration_enabled(&self) -> bool {
        self.migration_epoch_ns > 0
    }

    /// `true` when read-mostly pointer replication is enabled.
    pub fn replication_enabled(&self) -> bool {
        self.replication
    }

    /// `true` when the k-bound is feedback-controlled.
    pub fn adaptive_strip(&self) -> bool {
        self.strip_mode.is_adaptive()
    }

    /// The strip in force before the first controller boundary (equal to
    /// `k` for a fixed strip).
    pub fn initial_strip(&self) -> usize {
        self.strip_mode.initial_strip()
    }

    /// Check the configuration for values that would hang or panic deep
    /// in a run. Called by the node drivers at construction; callable
    /// directly for an early, actionable `Err`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self.strip_mode {
            StripMode::Fixed(0) => return Err(ConfigError::ZeroStrip),
            StripMode::Fixed(_) => {}
            StripMode::Adaptive(p) => {
                if p.min == 0 {
                    return Err(ConfigError::ZeroStrip);
                }
                if p.min > p.max {
                    return Err(ConfigError::StripBoundsInverted {
                        min: p.min,
                        max: p.max,
                    });
                }
            }
        }
        if self.agg_window == 0 {
            return Err(ConfigError::ZeroWindow("agg_window"));
        }
        if self.reply_agg_window == 0 {
            return Err(ConfigError::ZeroWindow("reply_agg_window"));
        }
        if self.reply_agg_window > 1 && self.reply_flush_deadline_ns == 0 {
            return Err(ConfigError::ZeroFlushDeadline);
        }
        if self.poll_interval_ns == 0 {
            return Err(ConfigError::ZeroPollInterval);
        }
        if self.max_outstanding == 0 {
            return Err(ConfigError::ZeroWindow("max_outstanding"));
        }
        if self.migration_enabled() && self.migration_threshold == 0 {
            return Err(ConfigError::ZeroMigrationThreshold);
        }
        if self.replication {
            if !self.differential {
                return Err(ConfigError::ReplicationWithoutDifferential);
            }
            if !self.migration_enabled() {
                return Err(ConfigError::ReplicationWithoutMigration);
            }
            if self.replication_min_fanout == 0 {
                return Err(ConfigError::ZeroReplicationKnob("replication_min_fanout"));
            }
            if self.replication_threshold == 0 {
                return Err(ConfigError::ZeroReplicationKnob("replication_threshold"));
            }
            if self.replication_budget == 0 {
                return Err(ConfigError::ZeroReplicationKnob("replication_budget"));
            }
        }
        Ok(())
    }

    /// The software-caching baseline. Owners answer immediately: the
    /// requester blocks on every miss, so a buffered reply would serialize
    /// the whole machine behind the flush deadline.
    pub fn caching() -> DpaConfig {
        DpaConfig {
            variant: Variant::Caching,
            reply_agg_window: 1,
            ..DpaConfig::default()
        }
    }

    /// The naive blocking baseline (immediate replies, like caching).
    pub fn blocking() -> DpaConfig {
        DpaConfig {
            variant: Variant::Blocking,
            reply_agg_window: 1,
            ..DpaConfig::default()
        }
    }

    /// The zero-overhead sequential reference (single node).
    pub fn sequential() -> DpaConfig {
        DpaConfig {
            variant: Variant::Sequential,
            cost: CostModel::free(),
            ..DpaConfig::default()
        }
    }

    /// A one-line description for experiment headers.
    pub fn describe(&self) -> String {
        match self.variant {
            Variant::Dpa => {
                let mig = if self.migration_enabled() {
                    format!(
                        ", migrate(epoch={}ns, thr={}, budget={})",
                        self.migration_epoch_ns, self.migration_threshold, self.migration_budget
                    )
                } else {
                    String::new()
                };
                let diff = if self.differential {
                    ", differential"
                } else {
                    ""
                };
                let repl = if self.replication {
                    format!(
                        ", replicate(fanout>={}, reads>={}, budget={}, demote>{}w, floor={})",
                        self.replication_min_fanout,
                        self.replication_threshold,
                        self.replication_budget,
                        self.replication_write_demote,
                        self.affinity_report_floor
                    )
                } else {
                    String::new()
                };
                format!(
                    "DPA(strip={}, agg={}, reply_agg={}, pipeline={}{}{}{})",
                    self.strip_mode,
                    self.agg_window,
                    self.reply_agg_window,
                    self.pipeline,
                    mig,
                    diff,
                    repl
                )
            }
            v => v.label().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_ladder() {
        let base = DpaConfig::dpa_base(50);
        assert!(!base.pipeline);
        assert_eq!(base.agg_window, 1);
        assert_eq!(base.reply_agg_window, 1);
        let pipe = DpaConfig::dpa_pipeline(50);
        assert!(pipe.pipeline);
        assert_eq!(pipe.agg_window, 1);
        assert_eq!(pipe.reply_agg_window, 1);
        let full = DpaConfig::dpa(50);
        assert!(full.pipeline);
        assert!(full.agg_window > 1);
        assert!(full.reply_agg_window > 1);
        assert!(full.reply_flush_deadline_ns > 0);
        assert_eq!(full.strip_mode, StripMode::Fixed(50));
        assert_eq!(full.initial_strip(), 50);
        assert!(!full.adaptive_strip());
    }

    #[test]
    fn adaptive_preset_bounds_and_description() {
        let a = DpaConfig::dpa_adaptive(8, 512);
        assert!(a.adaptive_strip());
        assert_eq!(a.initial_strip(), 64);
        assert!(a.validate().is_ok());
        let d = a.describe();
        assert!(d.contains("adaptive[8..512]"), "{d}");
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let ok = DpaConfig::dpa(50);
        assert!(ok.validate().is_ok());
        for preset in [
            DpaConfig::default(),
            DpaConfig::dpa_base(1),
            DpaConfig::dpa_pipeline(300),
            DpaConfig::dpa_migrating(50),
            DpaConfig::dpa_adaptive(1, 1),
            DpaConfig::caching(),
            DpaConfig::blocking(),
            DpaConfig::sequential(),
        ] {
            assert!(preset.validate().is_ok(), "{}", preset.describe());
        }

        let zero = DpaConfig::dpa(0);
        assert_eq!(zero.validate(), Err(ConfigError::ZeroStrip));
        let zero_min = DpaConfig::dpa_adaptive(0, 8);
        assert_eq!(zero_min.validate(), Err(ConfigError::ZeroStrip));
        let inverted = DpaConfig::dpa_adaptive(300, 50);
        assert_eq!(
            inverted.validate(),
            Err(ConfigError::StripBoundsInverted { min: 300, max: 50 })
        );
        let no_deadline = DpaConfig {
            reply_flush_deadline_ns: 0,
            ..DpaConfig::default()
        };
        assert_eq!(no_deadline.validate(), Err(ConfigError::ZeroFlushDeadline));
        // ...but a deadline of 0 is fine when replies go out immediately.
        let immediate = DpaConfig {
            reply_flush_deadline_ns: 0,
            ..DpaConfig::dpa_base(50)
        };
        assert!(immediate.validate().is_ok());
        let no_window = DpaConfig {
            agg_window: 0,
            ..DpaConfig::default()
        };
        assert_eq!(no_window.validate(), Err(ConfigError::ZeroWindow("agg_window")));
        let no_poll = DpaConfig {
            poll_interval_ns: 0,
            ..DpaConfig::default()
        };
        assert_eq!(no_poll.validate(), Err(ConfigError::ZeroPollInterval));
        // Errors render actionably.
        assert!(zero.validate().unwrap_err().to_string().contains("strip"));
        assert!(inverted
            .validate()
            .unwrap_err()
            .to_string()
            .contains("min 300 > max 50"));
    }

    #[test]
    fn baselines_reply_immediately() {
        // The blocking requesters of these variants cannot tolerate a
        // buffered reply; the presets must pin reply aggregation off.
        assert_eq!(DpaConfig::caching().reply_agg_window, 1);
        assert_eq!(DpaConfig::blocking().reply_agg_window, 1);
    }

    #[test]
    fn pressure_kicks_in_above_threshold() {
        let c = CostModel::default();
        assert_eq!(c.pressure_extra_ns(10), 0);
        assert_eq!(c.pressure_extra_ns(4096), 0);
        let just_over = c.pressure_extra_ns(4097);
        assert!(just_over > 0);
        let way_over = c.pressure_extra_ns(4096 * 16);
        assert!(way_over > just_over);
    }

    #[test]
    fn free_model_is_free() {
        let c = CostModel::free();
        assert_eq!(c.thread_create_ns, 0);
        assert_eq!(c.pressure_extra_ns(u64::MAX), 0);
    }

    #[test]
    fn describe_mentions_knobs() {
        let d = DpaConfig::dpa(300).describe();
        assert!(d.contains("300"));
        assert_eq!(DpaConfig::caching().describe(), "Caching");
    }

    #[test]
    fn migration_defaults_off_everywhere() {
        // Every pre-existing preset must keep migration disabled so the
        // paper baselines are bit-for-bit unchanged.
        for cfg in [
            DpaConfig::default(),
            DpaConfig::dpa(50),
            DpaConfig::dpa_base(50),
            DpaConfig::dpa_pipeline(50),
            DpaConfig::caching(),
            DpaConfig::blocking(),
            DpaConfig::sequential(),
        ] {
            assert_eq!(cfg.migration_epoch_ns, 0);
            assert!(!cfg.migration_enabled());
        }
        let m = DpaConfig::dpa_migrating(50);
        assert!(m.migration_enabled());
        assert!(m.migration_threshold > 0);
        assert!(m.migration_budget > 0);
        assert!(m.describe().contains("migrate"));
        assert!(!DpaConfig::dpa(50).describe().contains("migrate"));
    }

    #[test]
    fn differential_defaults_off_everywhere() {
        // Every pre-existing preset must keep differential mode disabled
        // so one-shot runs and their stat tables are bit-for-bit
        // unchanged.
        for cfg in [
            DpaConfig::default(),
            DpaConfig::dpa(50),
            DpaConfig::dpa_base(50),
            DpaConfig::dpa_pipeline(50),
            DpaConfig::dpa_adaptive(2, 64),
            DpaConfig::dpa_migrating(50),
            DpaConfig::caching(),
            DpaConfig::blocking(),
            DpaConfig::sequential(),
        ] {
            assert!(!cfg.differential);
        }
        let d = DpaConfig::dpa_differential(50);
        assert!(d.differential);
        assert!(d.validate().is_ok());
        assert!(d.describe().contains("differential"));
        assert!(!DpaConfig::dpa(50).describe().contains("differential"));
    }

    #[test]
    fn replication_defaults_off_everywhere() {
        // Every pre-existing preset must keep replication disabled so the
        // paper baselines and all earlier figures are bit-for-bit
        // unchanged.
        for cfg in [
            DpaConfig::default(),
            DpaConfig::dpa(50),
            DpaConfig::dpa_base(50),
            DpaConfig::dpa_pipeline(50),
            DpaConfig::dpa_adaptive(2, 64),
            DpaConfig::dpa_migrating(50),
            DpaConfig::dpa_differential(50),
            DpaConfig::caching(),
            DpaConfig::blocking(),
            DpaConfig::sequential(),
        ] {
            assert!(!cfg.replication);
            assert!(!cfg.replication_enabled());
        }
        let r = DpaConfig::dpa_replicating(50);
        assert!(r.replication_enabled());
        assert!(r.differential, "replicas ride the differential carry");
        assert!(r.migration_enabled(), "promotion needs the affinity signal");
        assert!(r.validate().is_ok());
        assert!(r.describe().contains("replicate"));
        assert!(!DpaConfig::dpa_differential(50).describe().contains("replicate"));
    }

    #[test]
    fn replication_validation_requires_its_substrate() {
        let no_diff = DpaConfig {
            differential: false,
            ..DpaConfig::dpa_replicating(50)
        };
        assert_eq!(
            no_diff.validate(),
            Err(ConfigError::ReplicationWithoutDifferential)
        );
        let no_mig = DpaConfig {
            migration_epoch_ns: 0,
            ..DpaConfig::dpa_replicating(50)
        };
        assert_eq!(
            no_mig.validate(),
            Err(ConfigError::ReplicationWithoutMigration)
        );
        let zero_fanout = DpaConfig {
            replication_min_fanout: 0,
            ..DpaConfig::dpa_replicating(50)
        };
        assert_eq!(
            zero_fanout.validate(),
            Err(ConfigError::ZeroReplicationKnob("replication_min_fanout"))
        );
        let zero_threshold = DpaConfig {
            replication_threshold: 0,
            ..DpaConfig::dpa_replicating(50)
        };
        assert_eq!(
            zero_threshold.validate(),
            Err(ConfigError::ZeroReplicationKnob("replication_threshold"))
        );
        let zero_budget = DpaConfig {
            replication_budget: 0,
            ..DpaConfig::dpa_replicating(50)
        };
        assert_eq!(
            zero_budget.validate(),
            Err(ConfigError::ZeroReplicationKnob("replication_budget"))
        );
        // The errors render actionably.
        assert!(no_diff.validate().unwrap_err().to_string().contains("differential"));
        assert!(no_mig.validate().unwrap_err().to_string().contains("affinity"));
    }
}
