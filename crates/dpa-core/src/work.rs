//! The non-blocking thread abstraction shared by the DPA runtime and the
//! baseline drivers.
//!
//! The compiler half of DPA decomposes a computation into *non-blocking
//! threads*: units that run to completion without suspension, touching at
//! most one potentially-remote object — the one they were created for.
//! [`PtrApp`] is the runtime's view of such a decomposition: an application
//! provides top-level loop iterations, each of which unfolds into work
//! items; a work item may emit purely-local continuations and *demands*,
//! i.e. new work items labeled with the global pointer they will read.
//!
//! The same decomposition runs under every execution variant (DPA,
//! caching, blocking, sequential), which is what guarantees all variants
//! compute identical results — only scheduling and communication differ.

use global_heap::{ArrivalSet, GPtr, MigrationTable, SoftCache};

/// A deterministic per-object *generation* schedule for multi-timestep
/// (differential) runs: which objects mutate at which phase.
///
/// The simulated worlds are immutable, so "the object changed between
/// timesteps" is modeled as a pure function of `(object, phase, seed)`:
/// at each phase boundary, roughly `change_permille`/1000 of all objects
/// are selected (by a seeded hash) to bump their generation. An object's
/// generation at phase `t` is the number of boundaries `1..=t` that
/// selected it — exactly what [`PtrApp::object_generation`] reports, and
/// what the differential driver diffs at each barrier to decide which
/// carried cache entries to invalidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiffPlan {
    /// Seed of the change schedule (shared by every node and phase).
    pub seed: u64,
    /// Per-boundary change probability, in permille (0..=1000).
    pub change_permille: u32,
    /// The phase this app instance executes (0 = first timestep).
    pub phase: u32,
}

impl DiffPlan {
    /// `true` if boundary `boundary` (1-based) mutates `ptr`.
    #[inline]
    fn changes(&self, ptr: GPtr, boundary: u32) -> bool {
        let mut z = ptr
            .bits()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.seed)
            .wrapping_add(boundary as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 1000) < self.change_permille as u64
    }

    /// Generation of `ptr` at this plan's phase: the number of boundaries
    /// `1..=phase` whose seeded selection includes it. Phase counts are a
    /// handful in practice, so the linear scan is free.
    pub fn gen_of(&self, ptr: GPtr) -> u32 {
        (1..=self.phase).filter(|&b| self.changes(ptr, b)).count() as u32
    }

    /// The same plan advanced to `phase`.
    pub fn at_phase(self, phase: u32) -> DiffPlan {
        DiffPlan { phase, ..self }
    }

    /// Order-independent digest contribution of *reading* `ptr` at
    /// generation `gen`. Value-sensitive applications fold this into their
    /// checksums (wrapping add, so arrival order cannot matter); because
    /// the contribution depends on the generation actually read, a stale
    /// carried cache entry — one whose stamp lags the object's current
    /// generation — produces a digest that differs from a from-scratch
    /// run. That is the observable the differential equivalence matrix
    /// checks.
    #[inline]
    pub fn stamp(ptr: GPtr, gen: u32) -> u64 {
        let mut z = ptr.bits() ^ ((gen as u64) << 33) ^ 0xA076_1D64_78BD_642F;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// What a running work item emits for later execution.
#[derive(Debug)]
pub enum Emit<W> {
    /// A continuation that touches no new potentially-remote object.
    Local(W),
    /// A dependent thread labeled with the pointer it will read. The
    /// runtime routes it: run now if the object is local or already
    /// arrived, otherwise align it under the pointer in M.
    Demand(GPtr, W),
    /// A remote reduction: fold `f64` into the object at `GPtr`
    /// (commutative-associative). Local targets apply immediately; remote
    /// targets are batched by the communication scheduler.
    Accum(GPtr, f64),
}

/// Availability view used for the honesty check: which remote objects may
/// be read right now.
pub(crate) enum Avail<'a> {
    /// Everything readable (used by logic-only tests).
    #[cfg_attr(not(test), allow(dead_code))]
    All,
    /// DPA renamed storage.
    Arrived(&'a ArrivalSet),
    /// Caching baseline's cache contents.
    Cached(&'a SoftCache),
}

/// Execution environment handed to [`PtrApp::run_work`] /
/// [`PtrApp::start_iteration`].
///
/// The application charges its useful computation through
/// [`WorkEnv::charge`] and emits follow-on work through
/// [`WorkEnv::local`] / [`WorkEnv::demand`]. Reads of object payloads go
/// straight to the application's own arenas (single host address space);
/// [`WorkEnv::assert_readable`] enforces, in debug builds, that no object
/// is read before the simulated machine has actually delivered it.
pub struct WorkEnv<'a, W> {
    node: u16,
    nodes: u16,
    charged_ns: u64,
    emits: Vec<Emit<W>>,
    avail: Avail<'a>,
    /// Migration view (when enabled): objects born here that have departed
    /// are *not* readable locally any more, and adopted objects are.
    mig: Option<&'a MigrationTable>,
}

impl<'a, W> WorkEnv<'a, W> {
    pub(crate) fn new(node: u16, nodes: u16, avail: Avail<'a>) -> WorkEnv<'a, W> {
        WorkEnv {
            node,
            nodes,
            charged_ns: 0,
            emits: Vec::new(),
            avail,
            mig: None,
        }
    }

    /// Like [`WorkEnv::new`] but honoring a migration table in the
    /// readability check (used by the DPA driver when migration is on).
    pub(crate) fn with_migration(
        node: u16,
        nodes: u16,
        avail: Avail<'a>,
        mig: Option<&'a MigrationTable>,
    ) -> WorkEnv<'a, W> {
        WorkEnv {
            mig,
            ..WorkEnv::new(node, nodes, avail)
        }
    }

    /// Adopt a recycled (empty, capacity-bearing) emission buffer so a
    /// steady-state work item emits without touching the allocator. The
    /// driver threads one scratch buffer through every env it builds.
    pub(crate) fn reuse_buffer(&mut self, buf: Vec<Emit<W>>) {
        debug_assert!(buf.is_empty(), "recycled emit buffer must be drained");
        self.emits = buf;
    }

    /// The node this work runs on.
    #[inline]
    pub fn me(&self) -> u16 {
        self.node
    }

    /// Number of nodes in the machine.
    #[inline]
    pub fn num_nodes(&self) -> u16 {
        self.nodes
    }

    /// Charge `ns` of useful local computation.
    #[inline]
    pub fn charge(&mut self, ns: u64) {
        self.charged_ns += ns;
    }

    /// Emit a purely-local continuation (no new remote object touched).
    #[inline]
    pub fn local(&mut self, w: W) {
        self.emits.push(Emit::Local(w));
    }

    /// Emit a dependent thread labeled with the pointer it will read.
    /// `ptr` may be local or remote; the runtime routes it.
    #[inline]
    pub fn demand(&mut self, ptr: GPtr, w: W) {
        debug_assert!(!ptr.is_null(), "demand on null pointer");
        self.emits.push(Emit::Demand(ptr, w));
    }

    /// Emit a remote reduction: fold `value` into the object at `ptr` via
    /// [`PtrApp::apply_update`] on the owner. Reductions are
    /// commutative-associative, so the runtime may batch and reorder them
    /// freely; they are guaranteed applied by the end of the phase.
    #[inline]
    pub fn accumulate(&mut self, ptr: GPtr, value: f64) {
        debug_assert!(!ptr.is_null(), "accumulate on null pointer");
        self.emits.push(Emit::Accum(ptr, value));
    }

    /// `true` if `ptr`'s payload may be read right now on this node.
    pub fn readable(&self, ptr: GPtr) -> bool {
        if ptr.is_local_to(self.node) {
            // Born here — readable unless the object was migrated away
            // (its payload now lives at the adoptee; reading the departed
            // slot would be a stale read).
            if !self.mig.is_some_and(|m| m.is_departed(ptr)) {
                return true;
            }
        } else if self.mig.is_some_and(|m| m.is_adopted(ptr)) {
            return true;
        }
        match &self.avail {
            Avail::All => true,
            Avail::Arrived(a) => a.contains(ptr),
            Avail::Cached(c) => c.contains(ptr),
        }
    }

    /// The generation stamp the runtime's renamed storage holds for a
    /// *remote* object it has fetched (or carried across a phase barrier),
    /// or `None` when the object is not in renamed storage — locally-owned
    /// objects and the non-DPA availability views land here, and the
    /// application should fall back to its own current generation. A
    /// value-sensitive application folds this into its checksum, which is
    /// what makes a stale carried entry *observable*: a cache entry that
    /// survived a value change reports the old generation and corrupts the
    /// digest against a from-scratch run.
    pub fn cached_generation(&self, ptr: GPtr) -> Option<u32> {
        match &self.avail {
            Avail::Arrived(a) => a.generation(ptr),
            Avail::All | Avail::Cached(_) => None,
        }
    }

    /// Debug-build honesty check: panic if `ptr` has not been delivered.
    /// Release builds compile this to nothing.
    #[inline]
    pub fn assert_readable(&self, ptr: GPtr) {
        debug_assert!(
            self.readable(ptr),
            "node {} read object {ptr} before it arrived",
            self.node
        );
    }

    pub(crate) fn finish(self) -> (u64, Vec<Emit<W>>) {
        (self.charged_ns, self.emits)
    }
}

/// An application decomposed into pointer-labeled non-blocking threads.
///
/// One instance exists per simulated node; shared read-only world state
/// (the tree, the bodies) typically lives behind an `Arc` inside the
/// implementor.
///
/// Apps (and their thread states) are `Send`: the parallel simulation
/// engine (`sim_net::Machine::run_parallel`) moves each node's proc — app
/// and queued work included — onto a worker thread. Nothing is ever
/// *shared* mutably across threads (each node stays on one worker), so
/// `Sync` is not required.
pub trait PtrApp: Send {
    /// The state of one non-blocking thread.
    type Work: Send;

    /// Length of this node's top-level concurrent loop (e.g. the number of
    /// locally-owned bodies whose forces this node computes).
    fn num_iterations(&self) -> usize;

    /// Emit the initial work of iteration `iter`.
    fn start_iteration(&mut self, iter: usize, env: &mut WorkEnv<'_, Self::Work>);

    /// Run one non-blocking thread to completion.
    fn run_work(&mut self, work: Self::Work, env: &mut WorkEnv<'_, Self::Work>);

    /// Transfer size in bytes of the object `ptr` points to.
    fn object_size(&self, ptr: GPtr) -> u32;

    /// Approximate bytes of saved state per suspended thread (for the
    /// memory column of the thread-statistics table).
    fn work_state_bytes(&self) -> u32 {
        std::mem::size_of::<Self::Work>() as u32 + 8
    }

    /// Apply a remote reduction to a locally-owned object (the owner-side
    /// handler for [`WorkEnv::accumulate`]). Applications that never
    /// accumulate need not implement it.
    fn apply_update(&mut self, ptr: GPtr, value: f64) {
        let _ = value;
        panic!("application does not support remote updates (target {ptr})");
    }

    /// Current generation of the object `ptr` points to, for differential
    /// (multi-timestep) runs: the runtime stamps fetched objects with this
    /// value and the differential driver re-fetches only objects whose
    /// generation moved between phases. Single-phase applications keep the
    /// default constant `0` — every carried entry then validates and the
    /// differential machinery degenerates to a pure carry.
    fn object_generation(&self, ptr: GPtr) -> u32 {
        let _ = ptr;
        0
    }
}

/// A work item tagged with the top-level iteration it belongs to, so the
/// strip driver can track iteration completion.
#[derive(Debug)]
pub struct Tagged<W> {
    /// Index of the owning top-level iteration.
    pub iter: u32,
    /// The work itself.
    pub work: W,
}

#[cfg(test)]
mod tests {
    use super::*;
    use global_heap::ObjClass;

    #[test]
    fn env_collects_charges_and_emits() {
        let mut env: WorkEnv<'_, u32> = WorkEnv::new(0, 4, Avail::All);
        env.charge(100);
        env.charge(20);
        env.local(7);
        env.demand(GPtr::new(1, ObjClass(0), 5), 8);
        assert_eq!(env.me(), 0);
        assert_eq!(env.num_nodes(), 4);
        let (ns, emits) = env.finish();
        assert_eq!(ns, 120);
        assert_eq!(emits.len(), 2);
        assert!(matches!(emits[0], Emit::Local(7)));
        assert!(matches!(emits[1], Emit::Demand(_, 8)));
    }

    #[test]
    fn readable_local_always() {
        let env: WorkEnv<'_, u32> = WorkEnv::new(2, 4, Avail::All);
        assert!(env.readable(GPtr::new(2, ObjClass(0), 1)));
        assert!(env.readable(GPtr::new(3, ObjClass(0), 1)));
    }

    #[test]
    fn readable_respects_arrival_set() {
        let mut arr = ArrivalSet::new();
        let remote = GPtr::new(1, ObjClass(0), 9);
        {
            let env: WorkEnv<'_, u32> = WorkEnv::new(0, 2, Avail::Arrived(&arr));
            assert!(!env.readable(remote));
        }
        arr.insert(remote, 64);
        let env: WorkEnv<'_, u32> = WorkEnv::new(0, 2, Avail::Arrived(&arr));
        assert!(env.readable(remote));
        // own objects always readable
        assert!(env.readable(GPtr::new(0, ObjClass(0), 3)));
    }

    #[test]
    fn readable_honors_migration_table() {
        let mut mig = MigrationTable::new();
        let departed = GPtr::new(0, ObjClass(0), 1);
        let adopted = GPtr::new(1, ObjClass(0), 2);
        mig.depart(departed, 1);
        mig.adopt(adopted, 64);
        let arr = ArrivalSet::new();
        let env: WorkEnv<'_, u32> =
            WorkEnv::with_migration(0, 2, Avail::Arrived(&arr), Some(&mig));
        assert!(
            !env.readable(departed),
            "a departed object is no longer readable at its birth home"
        );
        assert!(env.readable(adopted), "an adopted object reads locally");
        assert!(env.readable(GPtr::new(0, ObjClass(0), 9)), "untouched local");
        assert!(!env.readable(GPtr::new(1, ObjClass(0), 9)), "untouched remote");
    }

    #[test]
    fn readable_respects_cache() {
        let mut cache = SoftCache::new(None);
        let remote = GPtr::new(1, ObjClass(0), 9);
        cache.fill(remote, 64);
        let env: WorkEnv<'_, u32> = WorkEnv::new(0, 2, Avail::Cached(&cache));
        assert!(env.readable(remote));
        assert!(!env.readable(GPtr::new(1, ObjClass(0), 10)));
    }
}
