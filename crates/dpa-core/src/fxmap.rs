//! Fast deterministic hashing for the runtime's hot maps.
//!
//! One definition serves the whole stack: the multiply-rotate FxHash
//! hasher lives in [`global_heap::fxhash`] (the lowest crate that needs
//! it — its arrival set, software cache, and migration tables are probed
//! on every access) and is re-exported here for the runtime's own tables
//! (the M mapping interner, the pending-request interner, per-destination
//! batch maps, dedup sets).
//!
//! Note that *iteration order* of a `HashMap` is still arbitrary under any
//! hasher; code that iterates these maps must keep sorting (the runtime
//! already does, e.g. `proc_dpa`'s sorted per-destination fan-outs) or
//! iterate a dense-id side table instead (as the SoA `PointerMap` and
//! `PendingRequests` do).

pub use global_heap::fxhash::{FxHashMap, FxHashSet, FxHasher};

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{Hash, Hasher};

    #[test]
    fn reexport_is_the_shared_definition() {
        // Same hasher type, same function: a value hashes identically
        // through either path.
        let mut a = FxHasher::default();
        let mut b = global_heap::fxhash::FxHasher::default();
        0xDEAD_BEEFu64.hash(&mut a);
        0xDEAD_BEEFu64.hash(&mut b);
        assert_eq!(a.finish(), b.finish());
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
        let s: FxHashSet<u32> = (0..10).collect();
        assert!(s.contains(&9));
    }
}
