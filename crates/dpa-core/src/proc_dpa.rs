//! The DPA node driver: strip-mined thread scheduling plus communication
//! scheduling, as a [`sim_net::Proc`].
//!
//! Per node, the driver maintains the paper's two runtime structures —
//! **M**, the pointer→dependent-threads mapping ([`PointerMap`]), and
//! **D**, the outstanding-request table ([`PendingRequests`]) — plus the
//! per-destination coalescing buffers of the communication scheduler.
//!
//! Scheduling template (the paper's Figure 14 shape):
//!
//! 1. **Admit** — keep at most `strip_size` top-level iterations live
//!    (k-bounded loop); admitting an iteration runs its creation code,
//!    which emits pointer-labeled dependent threads.
//! 2. **Execute** — run ready threads depth-first. A demand on a local or
//!    already-arrived object becomes immediately ready; a demand on a
//!    missing remote object is aligned under its pointer in M, and the
//!    first alignment enqueues a request in the coalescing buffer for the
//!    owner node.
//! 3. **Communicate** — with pipelining, full buffers are sent the moment
//!    they fill and everything pending is drained at quiescence, so
//!    transfers overlap the remaining local work; without pipelining
//!    (the "Base" configuration) one batch is sent per quiescence and the
//!    node waits for its reply — each round trip is exposed.
//!
//! The *owner* side runs its own communication scheduler: with
//! `reply_agg_window > 1`, reply entries for incoming requests (and
//! batched `Update` reductions) are buffered per destination in a
//! [`ByteCoalescer`] and flushed adaptively — at MTU occupancy or the
//! entry window (whichever fills first), after `reply_flush_deadline_ns`
//! of simulated time since a destination's first entry (deadline wakes),
//! and unconditionally at every local quiescence point. A request that
//! finds the owner already idle is answered immediately: buffering only
//! happens while there is local work to overlap, so latency is never
//! traded for overhead.
//! 4. **Tile** — when a reply installs an object, *all* threads aligned
//!    under it are released consecutively: threads using the same object
//!    execute together, paying its fetch exactly once.
//!
//! Long drives are sliced at `poll_interval_ns` of simulated time so the
//! node services incoming requests at realistic polling granularity (the
//! paper notes poll placement was hand-tuned in their codes).

use crate::config::{DpaConfig, Variant};
use crate::invariant::NodeSnapshot;
use crate::mapping::PointerMap;
use crate::msg::DpaMsg;
use crate::pending::PendingRequests;
use crate::work::{Avail, Emit, PtrApp, Tagged, WorkEnv};
use fastmsg::{ByteCoalescer, Coalescer};
use global_heap::{ArrivalSet, GPtr};
use sim_net::{Ctx, Dur, NodeId, NodeStats, Proc};
use std::collections::{HashMap, HashSet, VecDeque};

/// Wire bytes of one `(pointer, f64)` reduction entry.
const UPDATE_ENTRY_BYTES: u64 = GPtr::WIRE_BYTES as u64 + 8;

/// A DPA node: the application's per-node instance plus runtime state.
pub struct DpaProc<A: PtrApp> {
    app: A,
    cfg: DpaConfig,
    /// Ready non-blocking threads (depth-first stack).
    stack: Vec<Tagged<A::Work>>,
    /// M: pointer → aligned dependent threads.
    map: PointerMap<Tagged<A::Work>>,
    /// D: outstanding (buffered or in-flight) requests.
    pending: PendingRequests,
    /// Renamed storage: remote objects fetched so far this phase.
    arrived: ArrivalSet,
    /// Per-destination request batching.
    coal: Coalescer<GPtr>,
    /// Batches that filled while sending was deferred (no pipelining).
    held: VecDeque<(u16, Vec<GPtr>)>,
    /// Per-destination reduction batching (fire-and-forget, so sent when
    /// full regardless of the pipelining flag).
    upd_coal: ByteCoalescer<(GPtr, f64)>,
    /// Owner-side reply scheduler: per-destination reply-entry batching
    /// under the adaptive flush policy (budget / window / deadline /
    /// quiescence). Unused (always empty) when `reply_agg_window == 1`.
    reply_coal: ByteCoalescer<(GPtr, u32)>,
    /// Earliest armed deadline wake for buffered replies/updates, in
    /// simulated ns. Wakes cannot be cancelled, so this only suppresses
    /// arming a *later* duplicate; a stale earlier wake fires harmlessly.
    flush_wake_at: Option<u64>,
    /// Live work count per open iteration.
    iter_live: HashMap<u32, u32>,
    next_iter: usize,
    total_iters: usize,
    completed_iters: u64,
    threads_created: u64,
    peak_stack: u64,
    /// Objects with requests currently in flight (sent, reply pending).
    in_flight: usize,
    peak_in_flight: u64,
    request_msgs: u64,
    reply_msgs: u64,
    /// Update messages sent; doubles as this node's per-sender update
    /// sequence counter (the k-th Update we send carries `seq == k`).
    update_msgs: u64,
    updates_emitted: u64,
    updates_applied: u64,
    /// Request entries put on the wire (conservation vs. `coal` pushes).
    request_entries_sent: u64,
    /// Reduction entries put on the wire.
    update_entries_sent: u64,
    /// Reply entries accepted for sending (immediate or buffered).
    reply_entries_pushed: u64,
    /// Reply entries put on the wire (conservation vs. pushes).
    reply_entries_sent: u64,
    /// `(sender, seq)` pairs of Update messages already applied; makes
    /// reduction application idempotent under duplicated delivery.
    seen_updates: HashSet<(u16, u64)>,
    wake_scheduled: bool,
    done: bool,
}

impl<A: PtrApp> DpaProc<A> {
    /// Wrap one node's application instance under `cfg`.
    ///
    /// `nodes` is the machine size (drives coalescer sizing). Panics if
    /// `cfg.variant` is not [`Variant::Dpa`] or [`Variant::Sequential`] —
    /// the baselines have their own driver.
    pub fn new(app: A, nodes: usize, cfg: DpaConfig) -> DpaProc<A> {
        assert!(
            matches!(cfg.variant, Variant::Dpa | Variant::Sequential),
            "DpaProc drives DPA/Sequential, got {:?}",
            cfg.variant
        );
        assert!(cfg.strip_size >= 1, "strip size must be >= 1");
        assert!(cfg.reply_agg_window >= 1, "reply window must be >= 1");
        let total_iters = app.num_iterations();
        // Without pipelining, batches are held rather than auto-sent, so
        // the window can stay as configured; `held` captures overflow.
        let coal = Coalescer::new(nodes, cfg.agg_window);
        let upd_coal = ByteCoalescer::new(nodes, cfg.mtu.0 as u64, cfg.agg_window);
        let reply_coal = ByteCoalescer::new(nodes, cfg.mtu.0 as u64, cfg.reply_agg_window);
        DpaProc {
            app,
            cfg,
            stack: Vec::new(),
            map: PointerMap::new(),
            pending: PendingRequests::new(),
            arrived: ArrivalSet::new(),
            coal,
            held: VecDeque::new(),
            upd_coal,
            reply_coal,
            flush_wake_at: None,
            iter_live: HashMap::new(),
            next_iter: 0,
            total_iters,
            completed_iters: 0,
            threads_created: 0,
            peak_stack: 0,
            in_flight: 0,
            peak_in_flight: 0,
            request_msgs: 0,
            reply_msgs: 0,
            update_msgs: 0,
            updates_emitted: 0,
            updates_applied: 0,
            request_entries_sent: 0,
            update_entries_sent: 0,
            reply_entries_pushed: 0,
            reply_entries_sent: 0,
            seen_updates: HashSet::new(),
            wake_scheduled: false,
            done: false,
        }
    }

    /// The wrapped application (post-run inspection).
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Completed top-level iterations.
    pub fn completed_iterations(&self) -> u64 {
        self.completed_iters
    }

    /// Export the runtime-state counters the DST invariant checker needs
    /// (see [`crate::invariant`]). `node` is this proc's node id (the proc
    /// itself does not know it outside a message context).
    pub fn snapshot(&self, node: u16) -> NodeSnapshot {
        let held_entries: usize = self.held.iter().map(|(_, b)| b.len()).sum();
        NodeSnapshot {
            node,
            map_keys: self.map.keys(),
            map_threads: self.map.live_threads(),
            pending_requests: self.pending.len(),
            pending_sample: self.pending.iter().take(4).map(|p| p.to_string()).collect(),
            in_flight: self.in_flight,
            requests_issued: self.pending.total(),
            objects_installed: self.arrived.total_inserts(),
            req_pushed: self.coal.total_pushed(),
            req_sent: self.request_entries_sent,
            req_buffered: self.coal.pending() + held_entries,
            updates_emitted: self.updates_emitted,
            updates_applied: self.updates_applied,
            upd_sent: self.update_entries_sent,
            upd_buffered: self.upd_coal.pending(),
            reply_pushed: self.reply_entries_pushed,
            reply_sent: self.reply_entries_sent,
            reply_buffered: self.reply_coal.pending(),
            request_msgs: self.request_msgs,
            reply_msgs: self.reply_msgs,
            update_msgs: self.update_msgs,
        }
    }

    #[inline]
    fn pressure(&self) -> u64 {
        self.cfg.cost.pressure_extra_ns(self.map.live_threads())
    }

    /// Route the emissions of one finished work/creation, tagging them
    /// with `iter`.
    fn route_emissions(
        &mut self,
        ctx: &mut Ctx<'_, DpaMsg>,
        iter: u32,
        emits: Vec<Emit<A::Work>>,
    ) {
        let me = ctx.me().0;
        // Reverse so that, popped from the stack, work runs in emission
        // order (depth-first).
        for e in emits.into_iter().rev() {
            if let Emit::Accum(ptr, value) = e {
                // Reductions are not threads: apply locally or batch for
                // the owner; no alignment, no iteration accounting.
                self.updates_emitted += 1;
                if ptr.is_local_to(me) {
                    ctx.charge_overhead(self.cfg.cost.owner_lookup_ns);
                    self.updates_applied += 1;
                    self.app.apply_update(ptr, value);
                } else {
                    ctx.charge_overhead(self.cfg.cost.request_entry_ns);
                    let now = ctx.now().as_ns();
                    for batch in self.upd_coal.push(ptr.node(), (ptr, value), UPDATE_ENTRY_BYTES, now)
                    {
                        self.send_update(ctx, ptr.node(), batch);
                    }
                }
                continue;
            }
            self.threads_created += 1;
            *self.iter_live.entry(iter).or_insert(0) += 1;
            ctx.charge_overhead(self.cfg.cost.thread_create_ns);
            match e {
                Emit::Local(work) => {
                    self.stack.push(Tagged { iter, work });
                }
                Emit::Demand(ptr, work) => {
                    if ptr.is_local_to(me) || self.arrived.contains(ptr) {
                        // Data already here: immediately ready.
                        self.stack.push(Tagged { iter, work });
                    } else {
                        ctx.charge_overhead(self.cfg.cost.map_update_ns + self.pressure());
                        let first = self.map.align(ptr, Tagged { iter, work });
                        if first && self.pending.insert(ptr) {
                            ctx.charge_overhead(self.cfg.cost.request_entry_ns);
                            if let Some(batch) = self.coal.push(ptr.node(), ptr) {
                                if self.cfg.pipeline && self.can_send() {
                                    self.send_request(ctx, ptr.node(), batch);
                                } else {
                                    self.held.push_back((ptr.node(), batch));
                                }
                            }
                        }
                    }
                }
                Emit::Accum(..) => unreachable!("handled above"),
            }
        }
        self.peak_stack = self.peak_stack.max(self.stack.len() as u64);
    }

    fn send_update(&mut self, ctx: &mut Ctx<'_, DpaMsg>, dst: u16, batch: Vec<(GPtr, f64)>) {
        debug_assert!(!batch.is_empty());
        let seq = self.update_msgs;
        self.update_msgs += 1;
        self.update_entries_sent += batch.len() as u64;
        ctx.send(
            NodeId(dst),
            DpaMsg::Update {
                seq,
                entries: batch,
            },
        );
    }

    fn send_reply(&mut self, ctx: &mut Ctx<'_, DpaMsg>, dst: u16, batch: Vec<(GPtr, u32)>) {
        self.reply_msgs += 1;
        self.reply_entries_sent += batch.len() as u64;
        crate::owner::send_reply_batch(&self.cfg, ctx, NodeId(dst), batch);
    }

    /// Owner-side scheduler: buffer reply entries for `src`, sending any
    /// batches the push forces out (budget/window full, oversized entry).
    fn enqueue_replies(&mut self, ctx: &mut Ctx<'_, DpaMsg>, src: NodeId, ptrs: Vec<GPtr>) {
        let now = ctx.now().as_ns();
        for (p, size) in crate::owner::lookup_entries(&self.app, &self.cfg, ctx, ptrs) {
            self.reply_entries_pushed += 1;
            let entry_bytes = (size + GPtr::WIRE_BYTES) as u64;
            for batch in self.reply_coal.push(src.0, (p, size), entry_bytes, now) {
                self.send_reply(ctx, src.0, batch);
            }
        }
        self.ensure_flush_wake(ctx);
    }

    /// Flush every buffered reply/update destination whose oldest entry
    /// has aged past the deadline, then re-arm the wake for what remains.
    fn flush_due(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        let now = ctx.now().as_ns();
        if self.flush_wake_at.is_some_and(|t| t <= now) {
            self.flush_wake_at = None;
        }
        let deadline = self.cfg.reply_flush_deadline_ns;
        for (dst, batch) in self.reply_coal.take_due(now, deadline) {
            self.send_reply(ctx, dst, batch);
        }
        for (dst, batch) in self.upd_coal.take_due(now, deadline) {
            self.send_update(ctx, dst, batch);
        }
        self.ensure_flush_wake(ctx);
    }

    /// Arm a deadline wake covering the oldest buffered reply/update entry
    /// (no-op when nothing is buffered or an earlier wake is already
    /// armed). This is what guarantees a buffered batch can never be
    /// stranded: every enqueue path ends with a wake at its deadline.
    fn ensure_flush_wake(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        let deadline = self.cfg.reply_flush_deadline_ns;
        let due = match (
            self.reply_coal.next_due(deadline),
            self.upd_coal.next_due(deadline),
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if let Some(due) = due {
            let rearm = match self.flush_wake_at {
                None => true,
                Some(t) => due < t,
            };
            if rearm {
                self.flush_wake_at = Some(due);
                let now = ctx.now().as_ns();
                ctx.wake_after(Dur::from_ns(due.saturating_sub(now)));
            }
        }
    }

    fn finish_one_work(&mut self, iter: u32) {
        let live = self
            .iter_live
            .get_mut(&iter)
            .expect("finished work for unknown iteration");
        *live -= 1;
        if *live == 0 {
            self.iter_live.remove(&iter);
            self.completed_iters += 1;
        }
    }

    fn admit(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        while self.iter_live.len() < self.cfg.strip_size && self.next_iter < self.total_iters {
            let iter = self.next_iter as u32;
            self.next_iter += 1;
            let mut env = WorkEnv::new(ctx.me().0, ctx.num_nodes(), Avail::Arrived(&self.arrived));
            self.app.start_iteration(iter as usize, &mut env);
            let (ns, emits) = env.finish();
            ctx.charge_local(ns);
            self.route_emissions(ctx, iter, emits);
            // An iteration that spawned no threads (nothing, or only
            // reductions) is already complete.
            if !self.iter_live.contains_key(&iter) {
                self.completed_iters += 1;
            }
        }
    }

    fn send_request(&mut self, ctx: &mut Ctx<'_, DpaMsg>, dst: u16, batch: Vec<GPtr>) {
        debug_assert!(!batch.is_empty());
        debug_assert!(dst != ctx.me().0, "self-requests must be routed locally");
        self.in_flight += batch.len();
        self.peak_in_flight = self.peak_in_flight.max(self.in_flight as u64);
        self.request_msgs += 1;
        self.request_entries_sent += batch.len() as u64;
        ctx.send(NodeId(dst), DpaMsg::Request(batch));
    }

    /// Flow control: may another batch be sent right now? At least one
    /// batch is always allowed when nothing is in flight.
    #[inline]
    fn can_send(&self) -> bool {
        self.in_flight == 0 || self.in_flight < self.cfg.max_outstanding
    }

    /// Requester side: install arrived objects and release their aligned
    /// threads (tiling: they will run consecutively).
    ///
    /// Idempotent: a duplicated reply (fault injection) finds the object
    /// already in the arrival set and changes nothing — no double release,
    /// no D/in-flight corruption. The handler overhead is still charged
    /// (the CPU really does re-hash the pointer before discovering the dup).
    fn install_reply(&mut self, ctx: &mut Ctx<'_, DpaMsg>, objs: Vec<(GPtr, u32)>) {
        for (ptr, size) in objs {
            ctx.charge_overhead(self.cfg.cost.reply_install_ns + self.pressure());
            let fresh = self.arrived.insert(ptr, size);
            if !fresh {
                continue;
            }
            self.in_flight = self.in_flight.saturating_sub(1);
            let was_pending = self.pending.complete(ptr);
            debug_assert!(was_pending, "unsolicited reply for {ptr}");
            let released = self.map.release(ptr);
            self.stack.extend(released);
        }
        self.peak_stack = self.peak_stack.max(self.stack.len() as u64);
    }

    /// The scheduling loop: execute, admit, then schedule communication.
    /// Slices itself every `poll_interval_ns` of simulated time.
    fn drive(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        let slice_start = ctx.now();
        let slice = Dur::from_ns(self.cfg.poll_interval_ns);
        loop {
            // Execute ready threads (and keep the admission window full).
            while let Some(t) = self.stack.pop() {
                ctx.charge_overhead(self.cfg.cost.resume_ns + self.pressure());
                let mut env =
                    WorkEnv::new(ctx.me().0, ctx.num_nodes(), Avail::Arrived(&self.arrived));
                self.app.run_work(t.work, &mut env);
                let (ns, emits) = env.finish();
                ctx.charge_local(ns);
                self.route_emissions(ctx, t.iter, emits);
                self.finish_one_work(t.iter);
                self.admit(ctx);
                if ctx.now().since(slice_start) >= slice {
                    // Yield to the event loop so incoming requests are
                    // serviced at poll granularity; resume immediately.
                    if !self.wake_scheduled {
                        self.wake_scheduled = true;
                        ctx.wake_after(Dur::ZERO);
                    }
                    return;
                }
            }
            self.admit(ctx);
            if !self.stack.is_empty() {
                continue;
            }

            // Local quiescence: schedule communication. Buffered replies
            // and reductions are flushed unconditionally — there is no
            // local work left to overlap, so holding them would trade
            // latency for nothing.
            let replies = self.reply_coal.drain_all();
            for (dst, batch) in replies {
                self.send_reply(ctx, dst, batch);
            }
            let upd = self.upd_coal.drain_all();
            for (dst, batch) in upd {
                self.send_update(ctx, dst, batch);
            }
            if self.cfg.pipeline {
                while self.can_send() {
                    if let Some((dst, batch)) = self.held.pop_front() {
                        self.send_request(ctx, dst, batch);
                    } else if let Some(dst) = self.coal.first_nonempty() {
                        let batch = self.coal.take(dst).expect("nonempty buffer");
                        self.send_request(ctx, dst, batch);
                    } else {
                        break;
                    }
                }
            } else if let Some((dst, batch)) = self.held.pop_front() {
                self.send_request(ctx, dst, batch);
            } else if let Some(dst) = self.coal.first_nonempty() {
                if let Some(batch) = self.coal.take(dst) {
                    self.send_request(ctx, dst, batch);
                }
            }

            // Finished? (Nothing ready, nothing admitted, nothing owed.)
            if self.next_iter == self.total_iters
                && self.iter_live.is_empty()
                && self.pending.is_empty()
            {
                debug_assert!(self.map.is_empty());
                debug_assert!(self.coal.is_empty() && self.held.is_empty());
                debug_assert!(self.upd_coal.is_empty());
                debug_assert!(self.reply_coal.is_empty());
                self.done = true;
            }
            return;
        }
    }
}

impl<A: PtrApp> Proc for DpaProc<A> {
    type Msg = DpaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        self.admit(ctx);
        self.drive(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DpaMsg>, src: NodeId, msg: DpaMsg) {
        match msg {
            DpaMsg::Request(ptrs) => {
                // Adaptive policy: buffer replies only while local work is
                // in progress (the buffering overlaps it, bounded by the
                // deadline wake); an idle or finished owner answers
                // immediately — quiescence means flush.
                if self.cfg.reply_agg_window > 1 && !self.stack.is_empty() && !self.done {
                    self.enqueue_replies(ctx, src, ptrs);
                } else {
                    let acct = crate::owner::service_request(&self.app, &self.cfg, ctx, src, ptrs);
                    self.reply_msgs += acct.msgs;
                    self.reply_entries_pushed += acct.entries;
                    self.reply_entries_sent += acct.entries;
                }
            }
            DpaMsg::Reply(objs) => {
                self.install_reply(ctx, objs);
                self.drive(ctx);
            }
            DpaMsg::Update { seq, entries } => {
                // Exactly-once application under at-least-once delivery:
                // a duplicated Update message is recognized by its
                // (sender, seq) pair and skipped wholesale.
                if !self.seen_updates.insert((src.0, seq)) {
                    return;
                }
                for (ptr, value) in entries {
                    debug_assert!(ptr.is_local_to(ctx.me().0));
                    ctx.charge_overhead(self.cfg.cost.owner_lookup_ns);
                    self.updates_applied += 1;
                    self.app.apply_update(ptr, value);
                }
            }
        }
    }

    fn on_wake(&mut self, ctx: &mut Ctx<'_, DpaMsg>) {
        self.wake_scheduled = false;
        self.flush_due(ctx);
        self.drive(ctx);
    }

    fn quiescent(&self) -> bool {
        self.done
    }

    fn stall_detail(&self) -> Option<String> {
        if self.done {
            return None;
        }
        let stuck: Vec<String> = self.pending.iter().take(4).map(|p| p.to_string()).collect();
        Some(format!(
            "iters {}/{} done, {} live; D={} in_flight={} M={} keys/{} threads; stuck on [{}]",
            self.completed_iters,
            self.total_iters,
            self.iter_live.len(),
            self.pending.len(),
            self.in_flight,
            self.map.keys(),
            self.map.live_threads(),
            stuck.join(", ")
        ))
    }

    fn on_finish(&mut self, stats: &mut NodeStats) {
        stats.bump("iterations", self.completed_iters);
        stats.bump("threads_created", self.threads_created);
        stats.bump("threads_aligned", self.map.total_aligned());
        stats.bump("peak_aligned_threads", self.map.peak_threads());
        stats.bump("peak_map_keys", self.map.peak_keys());
        stats.bump("peak_pending_requests", self.pending.peak());
        stats.bump("requests_issued", self.pending.total());
        stats.bump("request_msgs", self.request_msgs);
        stats.bump("reply_msgs", self.reply_msgs);
        stats.bump("peak_ready_stack", self.peak_stack);
        stats.bump("renamed_peak_bytes", self.arrived.peak_bytes());
        stats.bump("remote_objects_fetched", self.arrived.total_inserts());
        stats.bump(
            "thread_state_peak_bytes",
            self.map.peak_threads() * self.app.work_state_bytes() as u64,
        );
        // Per-path aggregation factors (entries per message, x1000). The
        // request and update paths read their coalescers; the reply path
        // covers both the scheduler and the immediate-service path, so it
        // is computed from the wire counters.
        stats.bump(
            "req_agg_factor_milli",
            (self.coal.aggregation_factor() * 1000.0) as u64,
        );
        stats.bump(
            "upd_agg_factor_milli",
            (self.upd_coal.aggregation_factor() * 1000.0) as u64,
        );
        let reply_agg = if self.reply_msgs == 0 {
            0.0
        } else {
            self.reply_entries_sent as f64 / self.reply_msgs as f64
        };
        stats.bump("reply_agg_factor_milli", (reply_agg * 1000.0) as u64);
        stats.bump("request_entries", self.request_entries_sent);
        stats.bump("reply_entries", self.reply_entries_sent);
        stats.bump("update_entries", self.update_entries_sent);
        stats.bump("peak_in_flight", self.peak_in_flight);
        stats.bump("updates_emitted", self.updates_emitted);
        stats.bump("updates_applied", self.updates_applied);
        stats.bump("update_msgs", self.update_msgs);
    }
}
